"""Working with trace files and the profiler.

Run:  python examples/trace_files.py

The simulator is trace-driven, like Accel-Sim: kernels can live as plain
text files in a SASS-like assembly.  This example writes a kernel by hand,
assembles it, simulates it, prints the profiler report, and round-trips a
registry application through the text format.
"""

import tempfile
from pathlib import Path

from repro import simulate, volta_v100
from repro.metrics import compare_report, profile_report
from repro.trace import dump_kernel, load_kernel, parse_kernel, save_kernel
from repro.workloads import get_kernel

HAND_WRITTEN = """
# A hand-written kernel: 4 warps stream data and accumulate.
.kernel handwritten-stream
.regs_per_thread 16
.ctas 4

.cta
.warp
LDG R4, [R0] lines=4 addr=0x10000
LDG R5, [R0] lines=4 addr=0x20000
FFMA R6, R4, R5, R6
FADD R7, R6, R4
STG R7, [R0] lines=4 addr=0x30000
BAR
EXIT
.warp
LDG R4, [R0] lines=4 addr=0x40000
IMAD R6, R4, R4, R6
BAR
EXIT
.warp
FFMA R6, R1, R2, R3
FFMA R7, R6, R2, R3
BAR
EXIT
.warp
BAR
EXIT
"""


def main():
    # 1. Assemble and run a hand-written kernel.
    kernel = parse_kernel(HAND_WRITTEN)
    stats = simulate(kernel, volta_v100(), num_sms=1)
    print(profile_report(stats))

    # 2. Save/load round trip through a file.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "kernel.trace"
        save_kernel(kernel, path)
        again = load_kernel(path)
        rerun = simulate(again, volta_v100(), num_sms=1)
        assert rerun.cycles == stats.cycles
        print(f"\nround-trip through {path.name}: identical ({rerun.cycles} cycles)")

    # 3. Dump a registry application to text (first warp shown).
    app = get_kernel("cg-bfs")
    text = dump_kernel(app)
    head = "\n".join(text.splitlines()[:14])
    print(f"\ncg-bfs as a trace file ({len(text.splitlines())} lines):\n{head}\n...")

    # 4. Profiler comparison: the same kernel under RBA.
    from repro import rba

    better = simulate(kernel, rba(), num_sms=1)
    print()
    print(compare_report(stats, better))


if __name__ == "__main__":
    main()
