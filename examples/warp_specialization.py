"""Warp-specialized workloads and sub-core assignment (the TPC-H story).

Run:  python examples/warp_specialization.py

Warp-specialized programs (e.g. the snappy decompression kernels behind
compressed TPC-H) give some warps far more work than others.  With the
hardware's round-robin warp->sub-core assignment, a pathological program
layout can pile every long-running warp onto one sub-core, which then
serializes while its three siblings idle — resources are only released at
thread-block granularity, so nothing can move in behind the stragglers.

This example builds a TPC-H-like kernel (one long warp in every four),
runs it under round-robin, SRR and Shuffle assignment, and prints both the
speedup and the per-sub-core issue balance (Fig. 17's CoV metric).
"""

from repro import shuffle, simulate, srr, volta_v100
from repro.workloads import get_kernel, scaled_imbalance_microbenchmark


def report(name, stats, baseline_cycles):
    speedup = (baseline_cycles / stats.cycles - 1) * 100
    counts = stats.sms[0].issue_counts
    print(f"  {name:12s} cycles={stats.cycles:7d}  speedup={speedup:+6.1f}%  "
          f"issue CoV={stats.issue_cov():.2f}  per-sub-core={counts}")


def run_kernel(title, kernel):
    print(f"\n{title}")
    base = simulate(kernel, volta_v100(), num_sms=1)
    report("round-robin", base, base.cycles)
    report("SRR", simulate(kernel, srr(), num_sms=1), base.cycles)
    report("Shuffle", simulate(kernel, shuffle(), num_sms=1), base.cycles)


def main():
    # A synthetic warp-specialized kernel: every 4th warp does 16x the work.
    run_kernel(
        "synthetic warp-specialized kernel (1 long warp in 4, 16x work):",
        scaled_imbalance_microbenchmark(16, base_fmas=64),
    )

    # The modelled TPC-H query 8 — the paper's worst baseline imbalance.
    run_kernel("TPC-H query 8 (uncompressed database model):", get_kernel("tpcU-q8"))

    # And the compressed query 9 with the snappy-style divergence.
    run_kernel("TPC-H query 9 (compressed database model):", get_kernel("tpcC-q9"))

    print(
        "\nSRR spreads the every-4th-warp pattern perfectly (it was designed"
        "\nfor it); Shuffle randomizes pathologies away and is within a few"
        "\npercent — matching the paper's Figs. 15-17."
    )


if __name__ == "__main__":
    main()
