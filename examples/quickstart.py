"""Quickstart: build a kernel, simulate it, measure the sub-core effect.

Run:  python examples/quickstart.py

Builds the paper's FMA microbenchmark family with the fluent TraceBuilder
(8 compute warps, optionally padded with empty warps so round-robin
assignment lands all the work on one sub-core), then measures the cost of
SM partitioning directly: the unbalanced layout runs ~4x slower on a
partitioned Volta SM, is unaffected on a monolithic (Kepler-style) SM, and
is fully repaired by hashed SRR sub-core assignment.
"""

from repro import kepler, simulate, srr, volta_v100
from repro.trace import TraceBuilder, make_kernel


def build_fma_kernel(layout: str):
    """Fig. 4's layouts: 8 compute warps, 24 empty warps for the padded ones."""
    compute = {"baseline": set(range(8)), "unbalanced": set(range(0, 32, 4))}[layout]
    total = 8 if layout == "baseline" else 32
    warps = []
    for i in range(total):
        builder = TraceBuilder()
        if i in compute:
            builder.fma_chain(256)  # FMAs on register-resident data
        builder.barrier()           # CTA-wide barrier before exit
        warps.append(builder.build())
    return make_kernel(f"fma-{layout}", warps)


def main():
    baseline = build_fma_kernel("baseline")
    unbalanced = build_fma_kernel("unbalanced")

    print("FMA microbenchmark on a partitioned Volta SM (4 sub-cores):")
    base = simulate(baseline, volta_v100(), num_sms=1)
    unb = simulate(unbalanced, volta_v100(), num_sms=1)
    print(f"  baseline layout:   {base.cycles:6d} cycles  (IPC {base.ipc:.2f})")
    print(f"  unbalanced layout: {unb.cycles:6d} cycles  (IPC {unb.ipc:.2f})")
    print(f"  slowdown from sub-core imbalance: {unb.cycles / base.cycles:.2f}x "
          "(paper measures 3.9x on A100 silicon)")

    print("\nSame binaries on a monolithic Kepler-style SM:")
    kb = simulate(baseline, kepler(), num_sms=1)
    ku = simulate(unbalanced, kepler(), num_sms=1)
    print(f"  baseline: {kb.cycles} cycles, unbalanced: {ku.cycles} cycles "
          f"({ku.cycles / kb.cycles:.2f}x — no partitioning, no penalty)")

    print("\nFix it in hardware with hashed (SRR) sub-core assignment:")
    fixed = simulate(unbalanced, srr(), num_sms=1)
    print(f"  unbalanced layout under SRR: {fixed.cycles} cycles "
          f"({unb.cycles / fixed.cycles:.2f}x faster than round-robin)")

    print("\nNext: examples/register_pressure.py (the RBA scheduler) and "
          "examples/warp_specialization.py (TPC-H).")


if __name__ == "__main__":
    main()
