"""Register-file bank pressure and the RBA scheduler (the cuGraph story).

Run:  python examples/register_pressure.py

Each Volta sub-core sees only 2 register-file banks, so a warp instruction
with several source operands frequently queues behind other warps' reads.
Workloads that reuse a small register set in bank-coherent phases (graph
analytics are the paper's example) pile requests onto one bank while the
other idles — exactly what Register-Bank-Aware scheduling fixes by issuing
the warp whose operands sit in the *least* loaded banks.

The example compares GTO, RBA, bank stealing, doubled collector units, and
the fully-connected SM on a cuGraph-style kernel, then prints the
register-read utilization the designs achieve (Fig. 14's metric).
"""

from repro import bank_stealing, fully_connected, rba, simulate, volta_v100, with_cus
from repro.workloads import get_kernel


def main():
    kernel = get_kernel("cg-lou")  # Louvain community detection model
    print(f"kernel: {kernel.name}, {kernel.dynamic_instructions} instructions")

    designs = [
        ("GTO baseline", volta_v100()),
        ("RBA", rba()),
        ("bank stealing [36]", bank_stealing()),
        ("4 CUs/sub-core", with_cus(4)),
        ("8 CUs/sub-core", with_cus(8)),
        ("fully-connected SM", fully_connected()),
    ]

    base_cycles = None
    print(f"\n{'design':22s} {'cycles':>8s} {'speedup':>9s} "
          f"{'reads/cycle':>12s} {'conflict cycles':>16s}")
    for name, cfg in designs:
        stats = simulate(kernel, cfg, num_sms=1)
        if base_cycles is None:
            base_cycles = stats.cycles
        speedup = (base_cycles / stats.cycles - 1) * 100
        # 1 bank grant = one warp-operand = 32 four-byte reads (paper unit)
        reads = stats.rf_reads_per_cycle() * 32
        print(f"{name:22s} {stats.cycles:8d} {speedup:+8.1f}% "
              f"{reads:12.1f} {stats.bank_conflict_cycles():16d}")

    print(
        "\nRBA raises average register-file utilization at ~1% hardware cost;"
        "\nscaling collector units buys less and costs +27% area / +60% power"
        "\n(see benchmarks/test_fig12_cu_scaling.py and test_fig13_area_power.py)."
    )


if __name__ == "__main__":
    main()
