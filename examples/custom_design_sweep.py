"""Exploring your own design points: config sweeps and custom hash tables.

Run:  python examples/custom_design_sweep.py

Everything in the simulator is a `GPUConfig` knob, so design-space
exploration is a loop.  This example:

1. sweeps (register banks x collector units) per sub-core over a
   register-intensive kernel and prints the IPC surface;
2. programs a *custom* sub-core assignment hash table (Fig. 7's hardware
   is a 4-entry table of arbitrary 4-warp assignments) and compares it
   against the built-in policies on a divergent kernel.
"""

from repro import GPU, simulate, volta_v100
from repro.core import HashTableAssignment, StreamingMultiprocessor
from repro.memory import MemorySubsystem
from repro.workloads import get_kernel, scaled_imbalance_microbenchmark


def sweep_banks_and_cus():
    kernel = get_kernel("pb-sgemm")
    print("IPC surface for pb-sgemm (rows: banks/sub-core, cols: CUs/sub-core)")
    cus = (1, 2, 4, 8)
    print("        " + "".join(f"{c:>8d}" for c in cus))
    for banks in (1, 2, 4):
        row = []
        for cu in cus:
            cfg = volta_v100().replace(
                rf_banks_per_subcore=banks, collector_units_per_subcore=cu
            )
            row.append(simulate(kernel, cfg, num_sms=1).ipc)
        print(f"banks={banks:2d} " + "".join(f"{v:8.2f}" for v in row))


def run_with_custom_table(kernel, table):
    """Run a kernel with a hand-programmed assignment hash table."""
    cfg = volta_v100()
    gpu = GPU(cfg, num_sms=1)
    # Swap the SM's assignment policy for a custom-programmed table.
    sm = gpu.sms[0]
    gpu.sms[0] = StreamingMultiprocessor(
        sm.sm_id,
        cfg,
        MemorySubsystem(cfg, l2=gpu.l2, dram=gpu.dram),
        assignment=HashTableAssignment(4, table),
    )
    return gpu.run(kernel)


def custom_hash_table():
    kernel = scaled_imbalance_microbenchmark(12, base_fmas=64)
    base = simulate(kernel, volta_v100(), num_sms=1)
    print("\ncustom assignment tables on a 12x-imbalanced kernel "
          f"(round-robin: {base.cycles} cycles)")

    tables = {
        # SRR expressed as an explicit table (rotate phase each group).
        "srr-as-table": [[0, 1, 2, 3], [1, 2, 3, 0], [2, 3, 0, 1], [3, 0, 1, 2]],
        # A deliberately pathological table: long warps (every 4th) pinned
        # to sub-core 0 *and* group order scrambled for the short warps.
        "pathological": [[0, 1, 2, 3], [0, 3, 2, 1], [0, 2, 1, 3], [0, 1, 3, 2]],
    }
    for name, table in tables.items():
        stats = run_with_custom_table(kernel, table)
        speedup = (base.cycles / stats.cycles - 1) * 100
        print(f"  {name:14s} cycles={stats.cycles:7d} speedup={speedup:+6.1f}% "
              f"CoV={stats.issue_cov():.2f}")


def main():
    sweep_banks_and_cus()
    custom_hash_table()


if __name__ == "__main__":
    main()
