"""Additional property-based tests over the trace and viz layers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Instruction, MemRef, Opcode
from repro.trace import dump_kernel, make_kernel, parse_kernel
from repro.trace.warp_trace import WarpTrace
from repro.viz import hbar, histogram, sparkline

ARITH = [Opcode.FADD, Opcode.FMUL, Opcode.FFMA, Opcode.IADD, Opcode.IMAD, Opcode.SHF]


@st.composite
def instructions(draw):
    kind = draw(st.sampled_from(["arith", "ldg", "stg", "lds", "bar"]))
    if kind == "arith":
        op = draw(st.sampled_from(ARITH))
        n = draw(st.integers(min_value=1, max_value=3))
        srcs = tuple(draw(st.integers(min_value=0, max_value=31)) for _ in range(n))
        return Instruction(op, dst_reg=draw(st.integers(min_value=0, max_value=31)),
                           src_regs=srcs)
    if kind == "ldg":
        return Instruction(
            Opcode.LDG,
            dst_reg=draw(st.integers(min_value=0, max_value=31)),
            src_regs=(draw(st.integers(min_value=0, max_value=31)),),
            mem=MemRef(
                base_address=draw(st.integers(min_value=0, max_value=1 << 20)) * 128,
                num_lines=draw(st.integers(min_value=1, max_value=8)),
            ),
        )
    if kind == "stg":
        return Instruction(
            Opcode.STG,
            src_regs=(
                draw(st.integers(min_value=0, max_value=31)),
                draw(st.integers(min_value=0, max_value=31)),
            ),
            mem=MemRef(
                base_address=draw(st.integers(min_value=0, max_value=1 << 20)) * 128,
                num_lines=draw(st.integers(min_value=1, max_value=4)),
                is_store=True,
            ),
        )
    if kind == "lds":
        return Instruction(
            Opcode.LDS,
            dst_reg=draw(st.integers(min_value=0, max_value=31)),
            src_regs=(draw(st.integers(min_value=0, max_value=31)),),
        )
    return Instruction(Opcode.BAR)


@given(
    bodies=st.lists(
        st.lists(instructions(), min_size=0, max_size=12),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=40, deadline=None)
def test_property_text_format_round_trips_any_kernel(bodies):
    warps = [WarpTrace.from_instructions(b) for b in bodies]
    kernel = make_kernel("prop", warps, num_ctas=2)
    again = parse_kernel(dump_kernel(kernel))
    assert again.num_ctas == kernel.num_ctas
    for w1, w2 in zip(kernel.ctas[0].warps, again.ctas[0].warps):
        assert w1.instructions == w2.instructions


@given(
    values=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=64),
)
@settings(max_examples=40, deadline=None)
def test_property_viz_total_counts_conserved(values):
    text = histogram("h", values, bins=6)
    counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()[2:]]
    assert sum(counts) == len(values)


@given(
    value=st.floats(min_value=0, max_value=100),
    vmax=st.floats(min_value=0.1, max_value=100),
    width=st.integers(min_value=1, max_value=60),
)
@settings(max_examples=60, deadline=None)
def test_property_hbar_never_exceeds_width(value, vmax, width):
    assert len(hbar(value, vmax, width)) <= width


@given(values=st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=50))
@settings(max_examples=40, deadline=None)
def test_property_sparkline_length(values):
    assert len(sparkline(values)) == len(values)
