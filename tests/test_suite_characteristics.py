"""Registry-wide workload validation.

Each suite's profiles must statically stress the bottleneck the paper
attributes to it — this is the guard that keeps the 112-app population
meaningful as the generator evolves.
"""

import pytest

from repro.workloads import (
    RF_SENSITIVE_APPS,
    app_names,
    characterize,
    get_kernel,
    get_profile,
)


@pytest.fixture(scope="module")
def char():
    cache = {}

    def get(app):
        if app not in cache:
            cache[app] = characterize(get_kernel(app))
        return cache[app]

    return get


class TestTPCHCharacteristics:
    def test_every_query_diverges(self, char):
        for app in app_names("tpch-uncompressed") + app_names("tpch-compressed"):
            c = char(app)
            assert c.interwarp_divergence > 1.8, app

    def test_compressed_diverges_more(self, char):
        for q in (3, 9, 15):
            comp = char(f"tpcC-q{q}").interwarp_divergence
            uncomp = char(f"tpcU-q{q}").interwarp_divergence
            assert comp > uncomp

    def test_queries_triage_as_imbalance(self, char):
        hits = sum(
            1
            for app in app_names("tpch-uncompressed")
            if char(app).dominant_effect() == "issue-imbalance"
        )
        assert hits == 22


class TestCuGraphCharacteristics:
    def test_register_intensive_and_coherent(self, char):
        for app in app_names("cugraph"):
            c = char(app)
            assert c.reads_per_instruction > 1.7, app
            assert c.bank_coherence > 0.5, app
            assert c.memory_fraction < 0.15, app

    def test_triage(self, char):
        for app in app_names("cugraph"):
            assert char(app).dominant_effect() == "read-operand-limited", app


class TestSensitiveSubset:
    def test_rf_sensitive_apps_are_not_memory_bound(self, char):
        for app in RF_SENSITIVE_APPS:
            assert char(app).memory_fraction < 0.2, app

    def test_rf_sensitive_apps_are_balanced(self, char):
        for app in RF_SENSITIVE_APPS:
            assert char(app).interwarp_divergence < 1.3, app


class TestFillerPopulation:
    def test_registry_has_memory_bound_population(self, char):
        memory_bound = [
            app
            for suite in ("parboil", "rodinia", "polybench")
            for app in app_names(suite)
            if char(app).dominant_effect() == "memory-bound"
        ]
        # Fig. 1's near-1.0 population needs a real insensitive mass.
        assert len(memory_bound) >= 10

    def test_every_app_characterizes_cleanly(self, char):
        for app in app_names():
            c = char(app)
            assert c.dynamic_instructions > 0
            assert 0.0 <= c.memory_fraction <= 1.0
            assert c.mean_operands <= 3.0

    def test_tensor_suites_use_tensor_units(self, char):
        for app in app_names("cutlass"):
            assert char(app).unit_mix.get("tensor", 0.0) > 0.1, app
