"""Tests for warp state, the scoreboard, and CTA barrier protocol."""

import pytest

from repro.core import ThreadBlock, Warp, WarpState
from repro.isa import bar, exit_, fadd, ffma
from repro.trace import CTATrace, WarpTrace


def make_warp(instrs, warp_id=0, cta=None):
    trace = WarpTrace.from_instructions(instrs)
    if cta is None:
        cta = ThreadBlock(0, CTATrace([trace]), regs=1024, shared_mem=0)
    w = Warp(warp_id=warp_id, cta=cta, trace=trace, subcore_id=0, age=warp_id)
    cta.add_warp(w)
    return w


class TestScoreboard:
    def test_raw_hazard(self):
        w = make_warp([fadd(0, 1, 2), fadd(3, 0, 1)])
        inst = w.next_instruction
        w.note_issue(inst)  # writes R0
        assert 0 in w.pending_writes
        assert w.state is WarpState.BLOCKED  # next reads R0

    def test_waw_hazard(self):
        w = make_warp([fadd(0, 1, 2), fadd(0, 3, 4)])
        w.note_issue(w.next_instruction)
        assert w.state is WarpState.BLOCKED

    def test_independent_instruction_stays_ready(self):
        w = make_warp([fadd(0, 1, 2), fadd(3, 4, 5)])
        w.note_issue(w.next_instruction)
        assert w.state is WarpState.READY

    def test_writeback_unblocks(self):
        w = make_warp([fadd(0, 1, 2), fadd(3, 0, 1)])
        w.note_issue(w.next_instruction)
        w.complete_write(0)
        assert w.state is WarpState.READY
        assert not w.pending_writes

    def test_unrelated_writeback_keeps_blocked(self):
        w = make_warp([fadd(0, 1, 2), fadd(5, 6, 7), fadd(3, 0, 1)])
        w.note_issue(w.next_instruction)   # writes R0
        w.note_issue(w.next_instruction)   # writes R5, next reads R0
        assert w.state is WarpState.BLOCKED
        w.complete_write(5)
        assert w.state is WarpState.BLOCKED
        w.complete_write(0)
        assert w.state is WarpState.READY

    def test_pc_advances(self):
        w = make_warp([fadd(0, 1, 2), fadd(3, 4, 5)])
        assert w.pc == 0
        w.note_issue(w.next_instruction)
        assert w.pc == 1
        assert w.issued_instructions == 1

    def test_finish_records_cycle(self):
        w = make_warp([])
        w.finish(123)
        assert w.done
        assert w.finish_cycle == 123


class TestReadyPoolSync:
    def test_pool_tracks_transitions(self):
        pool = {}  # dict-as-set, insertion-ordered (see SubCore.ready)
        w = make_warp([fadd(0, 1, 2), fadd(3, 0, 1)])
        w.ready_pool = pool
        pool[w] = None
        w.note_issue(w.next_instruction)
        assert w not in pool  # blocked on R0
        w.complete_write(0)
        assert w in pool
        w.finish(5)
        assert w not in pool


class TestBarrierProtocol:
    def make_cta(self, n_warps, body=None):
        body = body if body is not None else [bar()]
        traces = [WarpTrace.from_instructions(list(body)) for _ in range(n_warps)]
        cta = ThreadBlock(0, CTATrace(traces), regs=1024, shared_mem=0)
        warps = [
            Warp(warp_id=i, cta=cta, trace=traces[i], subcore_id=i % 4, age=i)
            for i in range(n_warps)
        ]
        for w in warps:
            cta.add_warp(w)
        return cta, warps

    def test_barrier_holds_until_all_arrive(self):
        cta, warps = self.make_cta(3)
        assert cta.arrive_at_barrier(warps[0]) == []
        assert warps[0].state is WarpState.AT_BARRIER
        assert cta.arrive_at_barrier(warps[1]) == []
        released = cta.arrive_at_barrier(warps[2])
        assert set(released) == set(warps)
        assert all(w.state is WarpState.READY for w in warps)

    def test_exited_warps_count_as_arrived(self):
        cta, warps = self.make_cta(3)
        warps[2].finish(0)
        cta.note_warp_exit(warps[2])
        assert cta.arrive_at_barrier(warps[0]) == []
        released = cta.arrive_at_barrier(warps[1])
        assert set(released) == {warps[0], warps[1]}

    def test_late_exit_releases_barrier(self):
        cta, warps = self.make_cta(2)
        cta.arrive_at_barrier(warps[0])
        warps[1].finish(0)
        released = cta.note_warp_exit(warps[1])
        assert released == [warps[0]]

    def test_two_barriers_in_sequence(self):
        cta, warps = self.make_cta(2, body=[bar(), bar()])
        cta.arrive_at_barrier(warps[0])
        cta.arrive_at_barrier(warps[1])
        # everyone released; second barrier must hold again
        for w in warps:
            w.note_issue(w.next_instruction)
        assert cta.arrive_at_barrier(warps[0]) == []
        assert set(cta.arrive_at_barrier(warps[1])) == set(warps)

    def test_cta_finished(self):
        cta, warps = self.make_cta(2)
        assert not cta.finished
        for w in warps:
            w.finish(1)
        assert cta.finished
