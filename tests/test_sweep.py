"""Tests for the generic design-space sweep utility."""

import pytest

from repro.experiments import sweep as sw
from repro.workloads import fma_microbenchmark


@pytest.fixture(scope="module")
def result():
    k = fma_microbenchmark("baseline", fmas=24)
    return sw.sweep(
        k,
        {"rf_banks_per_subcore": [1, 2], "collector_units_per_subcore": [2, 4]},
    )


class TestSweep:
    def test_grid_size(self, result):
        assert len(result.points) == 4

    def test_lookup(self, result):
        p = result.lookup(rf_banks_per_subcore=2, collector_units_per_subcore=4)
        assert p.stats.cycles > 0

    def test_lookup_missing(self, result):
        with pytest.raises(KeyError):
            result.lookup(rf_banks_per_subcore=8, collector_units_per_subcore=2)

    def test_best_maximizes_ipc(self, result):
        best = result.best("ipc")
        assert all(best.value("ipc") >= p.value("ipc") for p in result.points)

    def test_best_minimizes_cycles(self, result):
        best = result.best("cycles", maximize=False)
        assert all(best.value("cycles") <= p.value("cycles") for p in result.points)

    def test_more_banks_never_slower(self, result):
        slow = result.lookup(rf_banks_per_subcore=1, collector_units_per_subcore=2)
        fast = result.lookup(rf_banks_per_subcore=2, collector_units_per_subcore=2)
        assert fast.stats.cycles <= slow.stats.cycles

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            sw.sweep(fma_microbenchmark("baseline", fmas=8), {})

    def test_unknown_metric(self, result):
        with pytest.raises(KeyError):
            result.points[0].value("flops")


class TestFormatGrid:
    def test_two_axis_grid(self, result):
        text = sw.format_grid(result, metric="ipc")
        assert "rf_banks_per_subcore" in text
        assert text.count("\n") >= 3

    def test_one_axis_grid(self):
        k = fma_microbenchmark("baseline", fmas=16)
        res = sw.sweep(k, {"collector_units_per_subcore": [1, 2]})
        text = sw.format_grid(res, metric="cycles")
        assert "cycles" in text

    def test_three_axes_rejected_for_grid(self):
        k = fma_microbenchmark("baseline", fmas=8)
        res = sw.sweep(k, {
            "rf_banks_per_subcore": [2],
            "collector_units_per_subcore": [2],
            "issue_width": [1],
        })
        with pytest.raises(ValueError):
            sw.format_grid(res)
