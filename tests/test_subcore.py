"""Unit tests for the sub-core's per-cycle phases."""

import pytest

from repro.config import volta_v100
from repro.core import StreamingMultiprocessor, WarpState
from repro.isa import Instruction, Opcode, fadd, ffma, iadd
from repro.memory import MemorySubsystem
from repro.trace import WarpTrace, make_kernel


def make_subcore(config=None):
    cfg = config if config is not None else volta_v100()
    sm = StreamingMultiprocessor(0, cfg, MemorySubsystem(cfg))
    return sm, sm.subcores[0]


def load_warps(sm, instr_lists, regs_per_thread=32):
    traces = [WarpTrace.from_instructions(list(b)) for b in instr_lists]
    k = make_kernel("k", traces, regs_per_thread=regs_per_thread)
    assert sm.try_allocate_cta(k, k.ctas[0], 0, 0)
    return [w for sc in sm.subcores for w in sc.warps]


class TestIssuePhase:
    def test_register_instruction_allocates_cu(self):
        sm, sc = make_subcore()
        load_warps(sm, [[fadd(8, 0, 1)]] * 4)  # one warp per sub-core
        sc.issue(now=0)
        assert sc._busy_cus == 1
        assert sc.arbitration.pending == 0 or sc.arbitration.pending <= 2

    def test_issue_width_limits_to_one(self):
        sm, sc = make_subcore()
        load_warps(sm, [[fadd(8, 0, 1), fadd(9, 2, 3)]] * 8)  # 2 warps/sub-core
        issued = sc.issue(now=0)
        assert issued == 1

    def test_no_cu_stall(self):
        sm, sc = make_subcore()
        load_warps(sm, [[fadd(8, 0, 1), fadd(9, 2, 3), fadd(10, 4, 5)]] * 12)
        sc.issue(now=0)
        sc.issue(now=1)  # both CUs now busy (no grants ran)
        stalls_before = sc.issue_stall_no_cu
        sc.issue(now=2)
        assert sc.issue_stall_no_cu == stalls_before + 1

    def test_direct_issue_bypasses_cu(self):
        sm, sc = make_subcore()
        load_warps(sm, [[Instruction(Opcode.BAR)]] * 4)
        issued = sc.issue(now=0)
        assert issued == 1
        assert sc._busy_cus == 0  # BAR never touches the operand collector

    def test_no_ready_warp_stall_counted(self):
        sm, sc = make_subcore()
        assert sc.issue(now=0) == 0
        assert sc.issue_stall_no_ready == 1


class TestCollectAndDispatch:
    def test_full_pipeline_one_instruction(self):
        sm, sc = make_subcore()
        warps = load_warps(sm, [[fadd(8, 0, 1)]] * 4)
        w = sc.warps[0]
        sm.step(0)   # issue + collect both operands (2 banks)
        assert sc.collector_units[0].ready or sc.arbitration.pending
        sm.step(1)   # dispatch
        assert sc._busy_cus == 0
        # FADD: interval 2 + latency 4 after dispatch at t=1 -> wb at t=7
        sm.step(7)
        assert 8 not in w.pending_writes

    def test_same_bank_operands_serialize(self):
        cfg = volta_v100().replace(bank_mapping="mod")
        sm, sc = make_subcore(cfg)
        # both sources even -> both in bank 0
        load_warps(sm, [[fadd(9, 0, 2)]] * 4)
        sm.step(0)
        assert sc.arbitration.pending == 1  # one granted, one queued
        assert sc.arbitration.conflict_cycles == 1

    def test_grants_counted_in_register_file(self):
        sm, sc = make_subcore()
        load_warps(sm, [[ffma(9, 0, 1, 2)]] * 4)
        sm.step(0)
        sm.step(1)
        assert sc.register_file.reads == 3


class TestQuiescence:
    def test_fresh_subcore_quiescent(self):
        _, sc = make_subcore()
        assert sc.quiescent()

    def test_ready_warp_not_quiescent(self):
        sm, sc = make_subcore()
        load_warps(sm, [[fadd(8, 0, 1)]] * 4)
        assert not sc.quiescent()

    def test_busy_cu_not_quiescent(self):
        sm, sc = make_subcore()
        load_warps(sm, [[fadd(8, 0, 1), fadd(9, 8, 8)]] * 4)
        sm.step(0)
        # warp now blocked on R8 (RAW), but the CU is still in flight
        assert not sc.quiescent()

    def test_blocked_on_memory_is_quiescent(self):
        sm, sc = make_subcore()
        ld = Instruction(
            Opcode.LDG, dst_reg=8, src_regs=(0,),
            mem=__import__("repro.isa", fromlist=["MemRef"]).MemRef(0),
        )
        load_warps(sm, [[ld, fadd(9, 8, 1)]] * 4)
        sm.step(0)  # issue LDG
        sm.step(1)  # dispatch to LDST
        sm.step(2)
        # warp blocked on the load; nothing to do until writeback
        assert sc.quiescent()
        assert sm.next_event(2) is not None  # the writeback event


class TestRegisterAccounting:
    def test_add_remove_warp_tracks_registers(self):
        sm, sc = make_subcore()
        load_warps(sm, [[fadd(8, 0, 1)]] * 4, regs_per_thread=64)
        assert sc.registers_used == 64 * 32
        assert sc.free_registers() == sc.max_registers - 64 * 32

    def test_slot_exhaustion_raises(self):
        sm, sc = make_subcore()
        from repro.core import ThreadBlock, Warp
        from repro.trace import CTATrace

        tr = WarpTrace.from_instructions([fadd(8, 0, 1)])
        cta = ThreadBlock(0, CTATrace([tr]), regs=1024, shared_mem=0)
        for i in range(sc.max_warps):
            w = Warp(i, cta, tr, 0, i)
            sc.add_warp(w, 0)
        with pytest.raises(RuntimeError):
            sc.add_warp(Warp(99, cta, tr, 0, 99), 0)


class TestStallReasonEquivalence:
    """The allocation-free `_stall_reason` rewrite (simcheck RPR101 fix)
    must match the original set-based priority logic on every warp-state
    combination."""

    @staticmethod
    def _reference(states):
        from repro.obs.stall import BARRIER, DRAIN, IDLE, NO_READY_WARP, SCOREBOARD

        if not states:
            return IDLE
        present = set(states)
        if WarpState.BLOCKED in present:
            return SCOREBOARD
        if WarpState.AT_BARRIER in present:
            return BARRIER
        if WarpState.MIGRATING in present or WarpState.READY in present:
            return NO_READY_WARP
        return DRAIN

    def test_matches_reference_on_all_state_combinations(self):
        import itertools
        from types import SimpleNamespace

        _, subcore = make_subcore()
        states = list(WarpState)
        combos = [()]
        for size in (1, 2, 3):
            combos.extend(itertools.product(states, repeat=size))
        for combo in combos:
            subcore.warps = [SimpleNamespace(state=s) for s in combo]
            assert subcore._stall_reason() == self._reference(combo), combo
        subcore.warps = []
