"""Tests for the crash-safe run journal (``repro.obs.journal``).

The journal is the durable index of a batch's progress: one
atomically-appended line per settled point.  These tests pin the append
format (single write, under ``PIPE_BUF``), the tolerant loader
(torn tails, unknown versions, last-wins), the strict validator, and the
dashboard's shape-based classification of journal files.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    JOURNAL_SCHEMA_VERSION,
    RunJournal,
    load_journal,
    validate_journal,
    validate_journal_record,
)
from repro.obs.dashboard import classify_input, collect_inputs, render_dashboard


def write_lines(path, lines):
    path.write_text("".join(line + "\n" for line in lines), encoding="utf-8")


class TestAppend:
    def test_record_and_load_round_trip(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.record("k1", "d1", "rod-nw x baseline")
        journal.record("k2", "d2", "rod-nw x rba")
        assert journal.records_written == 2
        assert load_journal(journal.path) == {"k1": "d1", "k2": "d2"}

    def test_append_only_across_instances(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        RunJournal(path).record("k1", "d1", "p1")
        RunJournal(path).record("k2", "d2", "p2")  # a resumed run appends
        assert load_journal(path) == {"k1": "d1", "k2": "d2"}

    def test_creates_parent_directories(self, tmp_path):
        journal = RunJournal(tmp_path / "deep" / "nested" / "journal.jsonl")
        journal.record("k", "d", "p")
        assert load_journal(journal.path) == {"k": "d"}

    def test_lines_stay_under_the_atomic_append_bound(self, tmp_path):
        # POSIX guarantees O_APPEND writes under PIPE_BUF (>= 512) never
        # interleave; journal lines must stay comfortably below that even
        # with realistic sha256 keys/digests and long point labels.
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.record("a" * 64, "b" * 64, "some-app x some-design (num_sms=80)")
        line = journal.path.read_bytes()
        assert line.endswith(b"\n")
        assert len(line) < 512

    def test_last_record_for_a_key_wins(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.record("k", "stale", "p")
        journal.record("k", "fresh", "p")
        assert load_journal(journal.path) == {"k": "fresh"}


class TestLoadTolerance:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_journal(tmp_path / "nope.jsonl") == {}

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        RunJournal(path).record("k1", "d1", "p1")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "key": "k2", "dig')  # crash mid-append
        assert load_journal(path) == {"k1": "d1"}

    def test_unknown_version_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_lines(
            path,
            [
                json.dumps({"v": 99, "key": "k1", "digest": "d", "point": "p"}),
                json.dumps(
                    {
                        "v": JOURNAL_SCHEMA_VERSION,
                        "key": "k2",
                        "digest": "d2",
                        "point": "p",
                    }
                ),
            ],
        )
        assert load_journal(path) == {"k2": "d2"}

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        RunJournal(path).record("k", "d", "p")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n\n")
        assert load_journal(path) == {"k": "d"}


class TestValidate:
    def test_clean_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        journal.record("k1", "d1", "p1")
        journal.record("k2", "d2", "p2")
        counts, problems = validate_journal(path)
        assert counts == {"ok": 2, "error": 0, "torn_tail": 0}
        assert problems == []

    def test_single_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        RunJournal(path).record("k1", "d1", "p1")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "key"')
        counts, problems = validate_journal(path)
        assert counts == {"ok": 1, "error": 0, "torn_tail": 1}
        assert problems == []

    def test_torn_middle_line_is_an_error(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_lines(
            path,
            [
                '{"v": 1, "key"',
                json.dumps(
                    {"v": 1, "key": "k", "digest": "d", "point": "p"}
                ),
            ],
        )
        counts, problems = validate_journal(path)
        assert counts["error"] == 1 and counts["ok"] == 1
        assert problems and "unparseable" in problems[0]

    @pytest.mark.parametrize(
        "record, needle",
        [
            ("not a dict", "object"),
            ({"v": 99, "key": "k", "digest": "d", "point": "p"}, "version"),
            ({"v": 1, "digest": "d", "point": "p"}, "key"),
            ({"v": 1, "key": "k", "digest": "", "point": "p"}, "digest"),
            ({"v": 1, "key": "k", "digest": "d"}, "point"),
        ],
    )
    def test_record_validation(self, record, needle):
        problems = validate_journal_record(record)
        assert problems and any(needle in p for p in problems)

    def test_valid_record_passes(self):
        assert (
            validate_journal_record(
                {
                    "v": JOURNAL_SCHEMA_VERSION,
                    "key": "k",
                    "digest": "d",
                    "point": "p",
                }
            )
            == []
        )


class TestDashboardIntegration:
    def test_journal_files_classify_by_shape(self, tmp_path):
        # Journals and manifests are both JSONL; journals are the ones
        # with key+digest checkpoints and no record "source".
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        journal.record("k1", "d1", "p1")
        kind, records = classify_input(path)
        assert kind == "journal"
        assert records[0]["key"] == "k1"

    def test_collect_and_render(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        journal.record("k1", "d1", "rod-nw x baseline")
        journal.record("k2", "d2", "rod-nw x rba")
        model = collect_inputs([path])
        assert len(model["journals"]) == 1
        assert model["problems"] == []
        html = render_dashboard(model)
        assert "journal" in html.lower()
        assert "resume" in html.lower()
