"""Cross-design simulation invariants (property-based).

Scheduling and assignment policies change *when* instructions run, never
*what* runs: for any workload, every design must execute the same
instruction stream to completion.  These properties catch whole classes of
bugs (lost instructions, double issue, leaked resources) that golden tests
would miss.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import simulate
from repro.experiments import get_design
from repro.workloads import AppProfile, build_kernel

DESIGNS = (
    "baseline",
    "rba",
    "srr",
    "shuffle",
    "shuffle_rba",
    "fully_connected",
    "bank_stealing",
    "cu4",
    "two_level",
)


def random_profile(seed, bias, mem, divergent):
    return AppProfile(
        name=f"inv-{seed}",
        suite="test",
        seed=seed,
        warps_per_cta=16,
        num_ctas=2,
        insts_per_warp=50,
        bank_bias=bias,
        mem_fraction=mem,
        divergence_period=4 if divergent else 0,
        divergence_multiplier=4.0 if divergent else 1.0,
    )


@given(
    seed=st.integers(min_value=0, max_value=300),
    bias=st.sampled_from([0.0, 0.5, 0.9]),
    mem=st.sampled_from([0.0, 0.15]),
    divergent=st.booleans(),
)
@settings(max_examples=8, deadline=None)
def test_property_all_designs_execute_the_same_work(seed, bias, mem, divergent):
    kernel = build_kernel(random_profile(seed, bias, mem, divergent))
    reference = None
    for design in DESIGNS:
        stats = simulate(kernel, get_design(design), num_sms=1)
        work = (
            stats.instructions,
            sum(sm.ctas_completed for sm in stats.sms),
            stats.total_rf_reads(),
        )
        if reference is None:
            reference = work
        assert work == reference, design
        # per-sub-core issue counts account for every instruction
        assert sum(stats.sms[0].issue_counts) == stats.instructions
        assert stats.cycles > 0
        # aggregate issue can never beat total issue bandwidth
        cfg = get_design(design)
        assert stats.ipc <= cfg.issue_width * cfg.subcores_per_sm + 1e-9


@given(seed=st.integers(min_value=0, max_value=300))
@settings(max_examples=6, deadline=None)
def test_property_assignment_changes_placement_not_work(seed):
    kernel = build_kernel(random_profile(seed, 0.3, 0.1, divergent=True))
    base = simulate(kernel, get_design("baseline"), num_sms=1)
    srr = simulate(kernel, get_design("srr"), num_sms=1)
    # same total, different distribution (for divergent workloads)
    assert sum(base.sms[0].issue_counts) == sum(srr.sms[0].issue_counts)
    assert base.sms[0].issue_counts != srr.sms[0].issue_counts


@given(
    seed=st.integers(min_value=0, max_value=300),
    sms=st.sampled_from([1, 2, 3]),
)
@settings(max_examples=6, deadline=None)
def test_property_sm_count_conserves_work(seed, sms):
    kernel = build_kernel(random_profile(seed, 0.2, 0.1, divergent=False))
    stats = simulate(kernel, get_design("baseline"), num_sms=sms)
    assert sum(sm.ctas_completed for sm in stats.sms) == kernel.num_ctas
    assert stats.instructions == kernel.dynamic_instructions + kernel.total_warps
