"""Tests for the profiler report module."""

import pytest

from repro import rba, simulate, volta_v100
from repro.metrics import SimStats, SMStats, compare_report, profile_report
from repro.workloads import fma_microbenchmark


def run(kernel, cfg):
    return simulate(kernel, cfg, num_sms=1)


@pytest.fixture(scope="module")
def baseline_stats():
    return run(fma_microbenchmark("unbalanced", fmas=64), volta_v100())


class TestProfileReport:
    def test_header_and_throughput(self, baseline_stats):
        text = profile_report(baseline_stats)
        assert "fma-unbalanced" in text
        assert "IPC" in text
        assert "cycles" in text

    def test_issue_balance_shown(self, baseline_stats):
        text = profile_report(baseline_stats)
        assert "per-sub-core issue" in text
        assert "CoV" in text

    def test_divergence_callout(self, baseline_stats):
        # the unbalanced layout has a large warp-finish spread
        assert "inter-warp divergence" in profile_report(baseline_stats)

    def test_no_memory_section_for_compute_kernel(self, baseline_stats):
        assert "no global accesses" in profile_report(baseline_stats)

    def test_memory_section_when_loads_present(self):
        from repro.trace import TraceBuilder, make_kernel

        tb = TraceBuilder()
        for i in range(8):
            tb.global_load(1, 0, i * 8192, num_lines=2)
        stats = run(make_kernel("mem", [tb.build()]), volta_v100())
        text = profile_report(stats)
        assert "L1" in text and "DRAM accesses" in text

    def test_idle_sms_hidden_by_default(self):
        stats = simulate(fma_microbenchmark("baseline", fmas=16), volta_v100(), num_sms=4)
        text = profile_report(stats)
        assert text.count("SM ") == 1
        shown = profile_report(stats, show_idle_sms=True)
        assert shown.count("SM ") == 4


class TestCompareReport:
    def test_speedup_and_metrics(self, baseline_stats):
        k = fma_microbenchmark("unbalanced", fmas=64)
        better = run(k, rba())
        text = compare_report(baseline_stats, better)
        assert "speedup" in text
        assert "bank-conflict cycles" in text

    def test_rejects_different_kernels(self, baseline_stats):
        other = run(fma_microbenchmark("baseline", fmas=16), volta_v100())
        with pytest.raises(ValueError):
            compare_report(baseline_stats, other)
