"""Tests for the dynamic warp-migration (work-stealing) extension."""

import pytest

from repro import simulate, srr, volta_v100
from repro.core import WarpState
from repro.core.warp import RUNNABLE_STATES
from repro.workloads import fma_microbenchmark, scaled_imbalance_microbenchmark


def stealing_config(latency=64):
    return volta_v100().replace(work_stealing=True, migration_latency=latency)


class TestConfig:
    def test_flag_default_off(self):
        assert not volta_v100().work_stealing

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            volta_v100().replace(migration_latency=-1)

    def test_runnable_states(self):
        assert WarpState.READY in RUNNABLE_STATES
        assert WarpState.MIGRATING in RUNNABLE_STATES
        assert WarpState.FINISHED not in RUNNABLE_STATES
        assert WarpState.AT_BARRIER not in RUNNABLE_STATES


class TestStealingBehaviour:
    def test_fixes_unbalanced_fma(self):
        k = fma_microbenchmark("unbalanced", fmas=128)
        base = simulate(k, volta_v100(), num_sms=1)
        stolen = simulate(k, stealing_config(0), num_sms=1)
        assert base.cycles / stolen.cycles > 2.0
        assert sum(sm.migrations for sm in stolen.sms) > 0

    def test_free_migration_close_to_srr(self):
        k = scaled_imbalance_microbenchmark(8, base_fmas=48)
        srr_cycles = simulate(k, srr(), num_sms=1).cycles
        steal_cycles = simulate(k, stealing_config(0), num_sms=1).cycles
        assert steal_cycles < srr_cycles * 1.25

    def test_migration_cost_monotone(self):
        k = scaled_imbalance_microbenchmark(8, base_fmas=48)
        costs = [
            simulate(k, stealing_config(lat), num_sms=1).cycles
            for lat in (0, 256, 4096)
        ]
        assert costs[0] <= costs[1] <= costs[2]

    def test_no_migrations_on_balanced_work(self):
        k = fma_microbenchmark("baseline", fmas=64)
        stats = simulate(k, stealing_config(), num_sms=1)
        assert sum(sm.migrations for sm in stats.sms) == 0

    def test_results_still_correct(self):
        # Same instruction count with and without stealing.
        k = scaled_imbalance_microbenchmark(4, base_fmas=32)
        base = simulate(k, volta_v100(), num_sms=1)
        stolen = simulate(k, stealing_config(), num_sms=1)
        assert stolen.instructions == base.instructions
        assert stolen.sms[0].ctas_completed == base.sms[0].ctas_completed

    def test_deterministic(self):
        k = scaled_imbalance_microbenchmark(8, base_fmas=32)
        a = simulate(k, stealing_config(), num_sms=1)
        b = simulate(k, stealing_config(), num_sms=1)
        assert a.cycles == b.cycles
        assert sum(sm.migrations for sm in a.sms) == sum(
            sm.migrations for sm in b.sms
        )


class TestExperimentHarness:
    def test_study_runs_on_microbench_only(self):
        from repro.experiments import work_stealing_study as wss

        res = wss.run(apps=(), imbalance=8, latencies=(0, 128))
        assert res.workloads == ["fma-8x"]
        sp0 = res.mean_speedup("steal_lat0")
        sp128 = res.mean_speedup("steal_lat128")
        assert sp0 >= sp128 > 1.0
        text = wss.format_result(res)
        assert "migration" in text
