"""Tests for the sub-core warp-assignment policies (Sec. IV-B)."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AssignmentPolicy, volta_v100
from repro.core import (
    HashTableAssignment,
    RoundRobinAssignment,
    ShuffleAssignment,
    SRRAssignment,
    make_assignment,
)


class TestRoundRobin:
    def test_cycles_through_subcores(self):
        rr = RoundRobinAssignment(4)
        assert rr.plan(8) == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_state_persists_across_ctas(self):
        rr = RoundRobinAssignment(4)
        rr.commit(3)
        assert rr.plan(2) == [3, 0]

    def test_plan_without_commit_is_pure(self):
        rr = RoundRobinAssignment(4)
        assert rr.plan(4) == rr.plan(4)

    def test_pathology_every_fourth_warp_lands_together(self):
        # The unbalanced-FMA pathology: warps 0,4,8,... all on sub-core 0.
        rr = RoundRobinAssignment(4)
        plan = rr.plan(32)
        assert all(plan[i] == 0 for i in range(0, 32, 4))


class TestSRR:
    def test_matches_paper_equation(self):
        srr = SRRAssignment(4)
        for w in range(64):
            assert srr.subcore_for(w) == (w + w // 4) % 4

    def test_spreads_every_fourth_warp(self):
        # SRR was crafted so the long warps (every 4th) spread evenly.
        srr = SRRAssignment(4)
        plan = srr.plan(32)
        long_warps = [plan[i] for i in range(0, 32, 4)]
        assert Counter(long_warps) == {0: 2, 1: 2, 2: 2, 3: 2}

    def test_counts_stay_even(self):
        srr = SRRAssignment(4)
        counts = Counter(srr.plan(64))
        assert set(counts.values()) == {16}

    def test_pattern_repeats_every_16(self):
        srr = SRRAssignment(4)
        plan = srr.plan(32)
        assert plan[:16] == plan[16:]


class TestShuffle:
    def test_group_balance_exact(self):
        sh = ShuffleAssignment(4, table_entries=4, seed=7)
        plan = sh.plan(16)
        for g in range(4):
            group = plan[g * 4 : (g + 1) * 4]
            assert sorted(group) == [0, 1, 2, 3]

    def test_counts_never_differ_by_more_than_one(self):
        sh = ShuffleAssignment(4, table_entries=4, seed=3)
        for n in (5, 13, 27, 63):
            counts = Counter(sh.plan(n))
            values = [counts.get(s, 0) for s in range(4)]
            assert max(values) - min(values) <= 1

    def test_deterministic_by_seed(self):
        a = ShuffleAssignment(4, seed=11).plan(32)
        b = ShuffleAssignment(4, seed=11).plan(32)
        c = ShuffleAssignment(4, seed=12).plan(32)
        assert a == b
        assert a != c  # overwhelmingly likely

    def test_4_entry_table_wraps(self):
        sh = ShuffleAssignment(4, table_entries=4, seed=1)
        plan = sh.plan(32)
        assert plan[:16] == plan[16:]

    def test_16_entry_table_covers_64_warps(self):
        sh = ShuffleAssignment(4, table_entries=16, seed=1)
        plan = sh.plan(128)
        assert plan[:64] == plan[64:]

    def test_validation(self):
        with pytest.raises(ValueError):
            ShuffleAssignment(4, table_entries=0)


class TestHashTable:
    def test_custom_table(self):
        ht = HashTableAssignment(2, table=[[0, 0], [1, 1]])
        assert ht.plan(8) == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_rejects_wrong_entry_width(self):
        with pytest.raises(ValueError):
            HashTableAssignment(4, table=[[0, 1]])

    def test_rejects_invalid_subcore(self):
        with pytest.raises(ValueError):
            HashTableAssignment(2, table=[[0, 5]])

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            HashTableAssignment(2, table=[])

    def test_unbalanced_tables_allowed(self):
        ht = HashTableAssignment(4, table=[[0, 0, 0, 0]])
        assert set(ht.plan(8)) == {0}


class TestFactory:
    def test_dispatch(self):
        assert isinstance(make_assignment(volta_v100()), RoundRobinAssignment)
        assert isinstance(
            make_assignment(volta_v100().replace(assignment=AssignmentPolicy.SRR)),
            SRRAssignment,
        )
        sh = make_assignment(
            volta_v100().replace(
                assignment=AssignmentPolicy.SHUFFLE, hash_table_entries=16
            )
        )
        assert isinstance(sh, ShuffleAssignment)
        assert sh.table_entries == 16

    def test_hash_table_policy_needs_explicit_table(self):
        cfg = volta_v100().replace(assignment=AssignmentPolicy.HASH_TABLE)
        with pytest.raises(ValueError):
            make_assignment(cfg)

    def test_reset(self):
        rr = RoundRobinAssignment(4)
        rr.commit(5)
        rr.reset()
        assert rr.plan(1) == [0]


@given(
    n_subcores=st.sampled_from([1, 2, 4, 8]),
    n_warps=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=50, deadline=None)
def test_property_all_policies_balanced_and_in_range(n_subcores, n_warps, seed):
    policies = [
        RoundRobinAssignment(n_subcores),
        SRRAssignment(n_subcores),
        ShuffleAssignment(n_subcores, seed=seed),
    ]
    for policy in policies:
        plan = policy.plan(n_warps)
        assert len(plan) == n_warps
        assert all(0 <= s < n_subcores for s in plan)
        counts = Counter(plan)
        values = [counts.get(s, 0) for s in range(n_subcores)]
        assert max(values) - min(values) <= 1
