"""Tests for the textual (SASS-like) trace format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Instruction, Opcode, bar, exit_, ffma, ldg, stg
from repro.trace import (
    TraceBuilder,
    TraceParseError,
    dump_kernel,
    format_instruction,
    load_kernel,
    make_kernel,
    parse_instruction,
    parse_kernel,
    save_kernel,
)
from repro.workloads import get_kernel

DEMO = """
# demo kernel
.kernel demo
.regs_per_thread 16
.shared_mem 4096
.ctas 2

.cta
.warp
FFMA R4, R1, R2, R3
LDG R5, [R0] lines=4 addr=0x1000
BAR
EXIT
.warp
IADD R6, R4, R5
EXIT
"""


class TestFormatInstruction:
    def test_arithmetic(self):
        assert format_instruction(ffma(4, 1, 2, 3)) == "FFMA R4, R1, R2, R3"

    def test_load(self):
        text = format_instruction(ldg(5, 0, 0x1000, num_lines=4))
        assert text == "LDG R5, [R0] lines=4 addr=0x1000"

    def test_store(self):
        text = format_instruction(stg(2, 0, 0x80))
        assert text == "STG R2, [R0] lines=1 addr=0x80"

    def test_control(self):
        assert format_instruction(bar()) == "BAR"
        assert format_instruction(exit_()) == "EXIT"


class TestParseInstruction:
    def test_round_trip_simple(self):
        for inst in [ffma(4, 1, 2, 3), ldg(5, 0, 4096, 4), stg(2, 0, 128), bar()]:
            assert parse_instruction(format_instruction(inst)) == inst

    def test_unknown_opcode(self):
        with pytest.raises(TraceParseError, match="unknown opcode"):
            parse_instruction("FROB R1, R2", lineno=7)

    def test_bad_operand(self):
        with pytest.raises(TraceParseError, match="bad operand"):
            parse_instruction("FADD R1, X2")

    def test_ldg_requires_address(self):
        with pytest.raises(TraceParseError, match="address operand"):
            parse_instruction("LDG R5, R0")

    def test_bar_takes_no_operands(self):
        with pytest.raises(TraceParseError, match="no operands"):
            parse_instruction("BAR R0")

    def test_comment_stripped(self):
        inst = parse_instruction("FADD R1, R2, R3  # comment")
        assert inst.opcode is Opcode.FADD

    def test_case_insensitive_opcode(self):
        assert parse_instruction("fadd R1, R2, R3").opcode is Opcode.FADD


class TestParseKernel:
    def test_demo_parses(self):
        k = parse_kernel(DEMO)
        assert k.name == "demo"
        assert k.num_ctas == 2
        assert k.regs_per_thread == 16
        assert k.shared_mem_per_cta == 4096
        assert k.warps_per_cta == 2
        first = k.ctas[0].warps[0]
        assert first.instructions[0] == ffma(4, 1, 2, 3)
        assert first.instructions[1].mem.num_lines == 4

    def test_missing_kernel_directive(self):
        with pytest.raises(TraceParseError, match=".kernel"):
            parse_kernel(".cta\n.warp\nEXIT\n")

    def test_instruction_outside_warp(self):
        with pytest.raises(TraceParseError, match="outside"):
            parse_kernel(".kernel k\n.cta\nFADD R1, R2, R3\n")

    def test_warp_outside_cta(self):
        with pytest.raises(TraceParseError, match="outside"):
            parse_kernel(".kernel k\n.warp\nEXIT\n")

    def test_replication_requires_single_cta(self):
        text = ".kernel k\n.ctas 2\n.cta\n.warp\nEXIT\n.cta\n.warp\nEXIT\n"
        with pytest.raises(TraceParseError, match="replication"):
            parse_kernel(text)

    def test_unknown_directive(self):
        with pytest.raises(TraceParseError, match="unknown directive"):
            parse_kernel(".kernel k\n.magic 3\n")

    def test_default_regs_inferred(self):
        k = parse_kernel(".kernel k\n.cta\n.warp\nFADD R9, R1, R2\nEXIT\n")
        assert k.regs_per_thread >= 10


class TestRoundTrip:
    def test_builder_kernel_round_trips(self):
        warps = [
            TraceBuilder().fma_chain(8).barrier().build(),
            TraceBuilder().global_load(1, 0, 4096, 2).build(),
        ]
        k = make_kernel("rt", warps, num_ctas=3, shared_mem_per_cta=1024)
        k2 = parse_kernel(dump_kernel(k))
        assert k2.name == k.name
        assert k2.num_ctas == k.num_ctas
        assert k2.shared_mem_per_cta == k.shared_mem_per_cta
        for w1, w2 in zip(k.ctas[0].warps, k2.ctas[0].warps):
            assert w1.instructions == w2.instructions

    def test_registry_app_round_trips(self):
        k = get_kernel("rod-nw")
        k2 = parse_kernel(dump_kernel(k))
        assert k2.dynamic_instructions == k.dynamic_instructions
        assert k2.ctas[0].warps[0].instructions == k.ctas[0].warps[0].instructions

    def test_file_io(self, tmp_path):
        k = make_kernel("file-k", [TraceBuilder().fma_chain(4).build()])
        path = tmp_path / "k.trace"
        save_kernel(k, path)
        k2 = load_kernel(path)
        assert k2.name == "file-k"
        assert k2.ctas[0].warps[0].instructions == k.ctas[0].warps[0].instructions

    def test_round_tripped_kernel_simulates_identically(self):
        from repro import simulate, volta_v100

        k = get_kernel("ply-atax")
        k2 = parse_kernel(dump_kernel(k))
        a = simulate(k, volta_v100(), num_sms=1)
        b = simulate(k2, volta_v100(), num_sms=1)
        assert a.cycles == b.cycles


@given(
    dst=st.integers(min_value=0, max_value=63),
    srcs=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=3),
    op=st.sampled_from([Opcode.FADD, Opcode.FMUL, Opcode.FFMA, Opcode.IADD, Opcode.IMAD]),
)
@settings(max_examples=50, deadline=None)
def test_property_arithmetic_round_trip(dst, srcs, op):
    inst = Instruction(op, dst_reg=dst, src_regs=tuple(srcs))
    assert parse_instruction(format_instruction(inst)) == inst
