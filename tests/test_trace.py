"""Tests for warp/CTA/kernel traces and the TraceBuilder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Instruction, Opcode, bar, exit_, fadd, ffma
from repro.trace import (
    WARP_SIZE,
    CTATrace,
    KernelTrace,
    TraceBuilder,
    WarpTrace,
    make_cta,
    make_kernel,
)


class TestWarpTrace:
    def test_must_end_with_exit(self):
        with pytest.raises(ValueError):
            WarpTrace([fadd(0, 1, 2)])

    def test_exit_only_at_end(self):
        with pytest.raises(ValueError):
            WarpTrace([exit_(), exit_()])

    def test_from_instructions_appends_exit(self):
        tr = WarpTrace.from_instructions([fadd(0, 1, 2)])
        assert tr[-1].opcode.is_exit
        assert len(tr) == 2
        assert tr.dynamic_instructions == 1

    def test_from_instructions_keeps_existing_exit(self):
        tr = WarpTrace.from_instructions([fadd(0, 1, 2), exit_()])
        assert len(tr) == 2

    def test_empty_trace_is_just_exit(self):
        tr = WarpTrace.from_instructions([])
        assert len(tr) == 1
        assert tr.dynamic_instructions == 0

    def test_register_accounting(self):
        tr = WarpTrace.from_instructions([ffma(9, 1, 2, 3), fadd(4, 5, 6)])
        assert tr.max_register() == 9
        assert tr.register_reads() == 5

    def test_count_opcode(self):
        tr = WarpTrace.from_instructions([fadd(0, 1, 2), fadd(0, 1, 2), bar()])
        assert tr.count_opcode(Opcode.FADD) == 2
        assert tr.count_opcode(Opcode.BAR) == 1


class TestCTAAndKernel:
    def test_cta_requires_warps(self):
        with pytest.raises(ValueError):
            CTATrace([])

    def test_cta_thread_count(self):
        cta = make_cta([WarpTrace.from_instructions([]) for _ in range(4)])
        assert cta.num_warps == 4
        assert cta.num_threads == 4 * WARP_SIZE

    def test_kernel_requires_ctas(self):
        with pytest.raises(ValueError):
            KernelTrace("k", [])

    def test_kernel_register_declaration_check(self):
        warp = WarpTrace.from_instructions([ffma(40, 1, 2, 3)])
        with pytest.raises(ValueError, match="R40"):
            KernelTrace("k", [make_cta([warp])], regs_per_thread=8)

    def test_make_kernel_defaults_regs(self):
        k = make_kernel("k", [WarpTrace.from_instructions([ffma(20, 1, 2, 3)])])
        assert k.regs_per_thread >= 21

    def test_uniform_kernel_replicates(self):
        cta = make_cta([WarpTrace.from_instructions([fadd(0, 1, 2)])])
        k = KernelTrace.uniform("k", cta, num_ctas=5)
        assert k.num_ctas == 5
        assert k.dynamic_instructions == 5 * cta.dynamic_instructions

    def test_uniform_rejects_zero_ctas(self):
        cta = make_cta([WarpTrace.from_instructions([])])
        with pytest.raises(ValueError):
            KernelTrace.uniform("k", cta, num_ctas=0)

    def test_resource_arithmetic(self):
        k = make_kernel(
            "k",
            [WarpTrace.from_instructions([fadd(0, 1, 2)])] * 4,
            regs_per_thread=32,
        )
        assert k.regs_per_warp() == 32 * WARP_SIZE
        assert k.regs_per_cta() == 4 * 32 * WARP_SIZE
        assert k.warps_per_cta == 4
        assert k.total_warps == 4


class TestTraceBuilder:
    def test_fma_chain_shape(self):
        tr = TraceBuilder().fma_chain(10).build()
        assert tr.dynamic_instructions == 10
        assert all(i.opcode is Opcode.FFMA for i in tr.instructions[:-1])

    def test_fma_chain_requires_registers(self):
        with pytest.raises(ValueError):
            TraceBuilder().fma_chain(4, regs=2)

    def test_barrier_then_exit(self):
        tr = TraceBuilder().barrier().build()
        assert tr.instructions[0].opcode.is_barrier
        assert tr.instructions[1].opcode.is_exit

    def test_global_load_store(self):
        tr = (
            TraceBuilder()
            .global_load(dst=1, addr_reg=0, base_address=0, num_lines=2)
            .global_store(data_reg=1, addr_reg=0, base_address=128)
            .build()
        )
        ld, st_ = tr.instructions[0], tr.instructions[1]
        assert ld.opcode is Opcode.LDG and ld.mem.num_lines == 2
        assert st_.opcode is Opcode.STG and st_.mem.is_store

    def test_shared_load(self):
        tr = TraceBuilder().shared_load(dst=1, addr_reg=0).build()
        assert tr.instructions[0].opcode is Opcode.LDS

    def test_compute_block_respects_count_and_window(self):
        rng = np.random.default_rng(0)
        tr = TraceBuilder().compute_block(50, rng, regs=8, base_reg=4).build()
        assert tr.dynamic_instructions == 50
        for inst in tr.instructions[:-1]:
            for r in inst.src_regs:
                assert 4 <= r < 12

    def test_compute_block_operand_weights(self):
        rng = np.random.default_rng(0)
        tr = TraceBuilder().compute_block(
            200, rng, operand_weights=(1.0, 0.0, 0.0), sfu_fraction=0.0
        ).build()
        assert all(i.num_src_operands == 1 for i in tr.instructions[:-1])

    def test_compute_block_unit_fractions(self):
        rng = np.random.default_rng(0)
        tr = TraceBuilder().compute_block(
            200, rng, tensor_fraction=1.0
        ).build()
        assert all(i.opcode is Opcode.HMMA for i in tr.instructions[:-1])


@given(
    n=st.integers(min_value=1, max_value=60),
    regs=st.integers(min_value=4, max_value=24),
)
@settings(max_examples=25, deadline=None)
def test_fma_chain_property_all_registers_in_window(n, regs):
    tr = TraceBuilder().fma_chain(n, base_reg=2, regs=regs).build()
    assert tr.dynamic_instructions == n
    for inst in tr.instructions[:-1]:
        for r in inst.registers():
            assert 2 <= r < 2 + regs


@given(counts=st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=6))
@settings(max_examples=25, deadline=None)
def test_warp_trace_always_ends_with_single_exit(counts):
    body = []
    for c in counts:
        body.extend(fadd(0, 1, 2) for _ in range(c))
    tr = WarpTrace.from_instructions(body)
    assert tr[-1].opcode.is_exit
    assert sum(1 for i in tr.instructions if i.opcode.is_exit) == 1
