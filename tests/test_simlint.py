"""The determinism linter: rules, suppressions, CLI and output formats.

The fixture file (``tests/data/simlint_fixture.py``) carries the expected
outcome inline: every line tagged ``# expect: RPRxxx`` must produce exactly
that unsuppressed finding, every ``# expect-suppressed: RPRxxx`` line a
suppressed one, and no other line may produce anything.
"""

import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import RULES, lint_paths, lint_source
from repro.analysis.linter import iter_python_files, rule_listing

FIXTURE = Path(__file__).parent / "data" / "simlint_fixture.py"
_EXPECT_RE = re.compile(r"#\s*expect(?P<sup>-suppressed)?:\s*(?P<rule>RPR\d{3})")


def _expected_findings():
    """(line, rule, suppressed) triples declared inline in the fixture."""
    expected = []
    for lineno, text in enumerate(FIXTURE.read_text().splitlines(), start=1):
        m = _EXPECT_RE.search(text)
        if m:
            expected.append((lineno, m.group("rule"), bool(m.group("sup"))))
    return expected


def test_fixture_declares_every_rule():
    declared = {rule for _, rule, _ in _expected_findings()}
    assert declared == set(RULES), (
        "fixture must exercise every rule ID exactly; missing "
        f"{set(RULES) - declared}, unknown {declared - set(RULES)}"
    )


def test_fixture_findings_match_inline_expectations():
    report = lint_paths([str(FIXTURE)])
    actual = sorted((f.line, f.rule_id, f.suppressed) for f in report.findings)
    assert actual == sorted(_expected_findings())


def test_good_examples_are_silent():
    """Lines without an expect tag — the good examples — yield nothing."""
    tagged = {line for line, _, _ in _expected_findings()}
    report = lint_paths([str(FIXTURE)])
    untagged = [f for f in report.findings if f.line not in tagged]
    assert untagged == []


@pytest.mark.parametrize(
    "source, rule",
    [
        ("for x in {1, 2}:\n    pass\n", "RPR001"),
        ("xs = sorted({1, 2})\n", "RPR002"),
        ("import random\nx = random.random()\n", "RPR003"),
        ("import time\nt = time.time()\n", "RPR004"),
        ("key = id(object())\n", "RPR005"),
        ("def f(xs=[]):\n    return xs\n", "RPR006"),
    ],
)
def test_minimal_bad_source_fires(source, rule):
    findings = lint_source(source)
    assert [f.rule_id for f in findings] == [rule]
    assert not findings[0].suppressed


@pytest.mark.parametrize(
    "source",
    [
        "for x in [1, 2]:\n    pass\n",
        "xs = sorted({1, 2}, key=str)\n",
        "import numpy as np\nrng = np.random.default_rng(7)\n",
        "import time\nt = time.perf_counter()\n",
        "def f(xs=None):\n    return xs or []\n",
    ],
)
def test_minimal_good_source_is_silent(source):
    assert lint_source(source) == []


def test_syntax_error_reports_rpr000():
    findings = lint_source("def broken(:\n", path="bad.py")
    assert [f.rule_id for f in findings] == ["RPR000"]
    assert findings[0].path == "bad.py"
    assert "syntax error" in findings[0].message


def test_suppression_comment_variants():
    all_rules = "for x in {1, 2}:  # simlint: ignore\n    pass\n"
    one_rule = "xs = sorted({1, 2})  # simlint: ignore[RPR002]\n"
    wrong_rule = "xs = sorted({1, 2})  # simlint: ignore[RPR001]\n"
    assert all(f.suppressed for f in lint_source(all_rules))
    assert all(f.suppressed for f in lint_source(one_rule))
    assert not any(f.suppressed for f in lint_source(wrong_rule))


def test_format_is_path_line_col_rule():
    (finding,) = lint_source("xs = sorted({1, 2})\n", path="src/x.py")
    text = finding.format()
    assert text.startswith("src/x.py:1:6: RPR002 ")
    assert "(fix: " in text


def test_github_annotation_format():
    (finding,) = lint_source("xs = sorted({1, 2})\n", path="src/x.py")
    line = finding.format_github()
    assert line.startswith("::error file=src/x.py,line=1,col=6,title=simlint RPR002::")
    assert "\n" not in line


def test_rule_listing_covers_all_rules():
    listing = rule_listing()
    for rule_id in RULES:
        assert rule_id in listing


def test_iter_python_files_rejects_non_python():
    with pytest.raises(FileNotFoundError):
        iter_python_files([str(FIXTURE.with_suffix(".txt"))])


# -- the repository gate -----------------------------------------------------

def test_repo_tree_is_lint_clean():
    """The acceptance gate: zero unsuppressed findings on src/repro."""
    import repro

    pkg_dir = Path(repro.__file__).parent
    report = lint_paths([str(pkg_dir)])
    assert report.ok, "\n".join(f.format() for f in report.unsuppressed)


# -- CLI ---------------------------------------------------------------------

def _run_cli(*args, env=None):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
    )


def test_cli_exits_nonzero_on_findings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    proc = _run_cli("--lint", str(bad))
    assert proc.returncode == 1
    assert "RPR004" in proc.stdout


def test_cli_exits_zero_on_clean_tree(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("x = sorted([2, 1])\n")
    proc = _run_cli("--lint", str(good))
    assert proc.returncode == 0
    assert "0 finding(s)" in proc.stdout


def test_cli_github_flag_emits_annotations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("k = id(object())\n")
    proc = _run_cli("--lint", "--github", str(bad))
    assert proc.returncode == 1
    assert "::error file=" in proc.stdout


def test_cli_usage_error_exit_code():
    proc = _run_cli("--bogus-flag")
    assert proc.returncode == 2
