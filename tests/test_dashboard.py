"""Dashboard, bench-history and obs-CLI dispatch tests.

The dashboard's contract: inputs classify by shape, validators gate what
renders, and rendering is a pure function of the inputs (byte-identical
on re-render).  The bench history table is the dashboard's trajectory
source, so its ratio math is pinned here too.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.__main__ import main as bench_main
from repro.bench.history import (
    _order_key,
    default_history_paths,
    history_table,
    load_history,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.dashboard import (
    build_dashboard,
    classify_input,
    collect_inputs,
    manifest_summary,
    render_dashboard,
)
from repro.obs.heartbeat import Heartbeat
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry


def _bench_report(suite="quick", norm=2.0, stall_shares=None):
    point = {
        "name": "p0",
        "app": "rod-nw",
        "design": "baseline",
        "num_sms": 1,
        "cycles": 100,
        "instructions": 200,
        "wall_seconds": 0.5,
        "cycles_per_sec": 200.0,
        "insts_per_sec": 400.0,
        "normalized_cycles_per_sec": norm,
        "stall_shares": stall_shares,
    }
    return {
        "schema": 1,
        "suite": suite,
        "suite_version": 1,
        "sim_version": "1.0.0",
        "python": "3.11.0",
        "platform": "test",
        "repeats": 1,
        "calibration_ops_per_sec": 100.0,
        "points": [point],
        "totals": {
            "wall_seconds": 0.5,
            "cycles": 100,
            "instructions": 200,
            "cycles_per_sec": 200.0,
            "insts_per_sec": 400.0,
            "normalized_cycles_per_sec": norm,
        },
    }


def _write_artifacts(tmp_path: Path) -> dict:
    """One of each artifact kind, returned as {kind: path}."""
    manifest = RunManifest(tmp_path / "manifest.jsonl")
    manifest.record("p × a", "key1", "sim", "digest1", seconds=1.0, worker=42)
    manifest.record("p × a", "key1", "memory", "digest1")
    manifest.warn("chunk_timeout", "chunk 0 stuck", point="chunk:app")

    registry = MetricsRegistry()
    registry.counter("x_total", "help", ("l",)).labels(l="a").inc(2)
    (tmp_path / "metrics.json").write_text(
        json.dumps(registry.to_json()), encoding="utf-8"
    )

    hb = Heartbeat(tmp_path / "status.json", clock=lambda: 50.0)
    hb.begin(4, in_flight=1)

    shares = {
        "issued": 0.25, "no_ready_warp": 0.25, "scoreboard": 0.0,
        "no_free_cu": 0.25, "bank_conflict": 0.0, "barrier": 0.0,
        "drain": 0.0, "idle": 0.25,
    }
    (tmp_path / "BENCH_baseline_quick.json").write_text(
        json.dumps(_bench_report(norm=2.0, stall_shares=shares)),
        encoding="utf-8",
    )
    (tmp_path / "BENCH_pr7.json").write_text(
        json.dumps(_bench_report(norm=3.0)), encoding="utf-8"
    )
    return {
        "manifest": tmp_path / "manifest.jsonl",
        "metrics": tmp_path / "metrics.json",
        "status": tmp_path / "status.json",
        "bench": tmp_path / "BENCH_baseline_quick.json",
        "bench2": tmp_path / "BENCH_pr7.json",
    }


class TestClassify:
    def test_each_shape_classifies(self, tmp_path):
        paths = _write_artifacts(tmp_path)
        assert classify_input(paths["manifest"])[0] == "manifest"
        assert classify_input(paths["metrics"])[0] == "metrics"
        assert classify_input(paths["status"])[0] == "status"
        assert classify_input(paths["bench"])[0] == "bench"

    def test_events_jsonl_detected(self, tmp_path):
        path = tmp_path / "x.events.jsonl"
        path.write_text('{"e": "warp_issue", "t": 3, "sm": 0}\n')
        assert classify_input(path)[0] == "events"

    def test_chrome_trace_detected(self, tmp_path):
        path = tmp_path / "x.trace.json"
        path.write_text('{"traceEvents": []}')
        assert classify_input(path)[0] == "trace"

    def test_garbage_is_an_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        kind, payload = classify_input(path)
        assert kind == "error" and "bad.json" in payload
        assert classify_input(tmp_path / "absent.json")[0] == "error"


class TestManifestSummary:
    def test_counts_and_digest_mismatch(self):
        records = [
            {"point": "p", "key": "k", "source": "sim", "digest": "a",
             "seconds": 2.0},
            {"point": "p", "key": "k", "source": "disk", "digest": "b"},
            {"source": "warning", "kind": "chunk_timeout", "detail": "x"},
        ]
        info = manifest_summary(records)
        assert info["by_source"] == {"sim": 1, "disk": 1, "warning": 1}
        assert info["sim_seconds"] == 2.0
        assert info["digest_mismatches"] == ["k"]
        assert len(info["warnings"]) == 1


class TestDashboard:
    def test_build_renders_every_section(self, tmp_path):
        paths = _write_artifacts(tmp_path)
        out = tmp_path / "report.html"
        model = build_dashboard(list(paths.values()), out)
        assert model["problems"] == []
        html_text = out.read_text(encoding="utf-8")
        assert html_text.startswith("<!DOCTYPE html>")
        assert "run manifest" in html_text
        assert "performance trajectory" in html_text
        assert "issue slots went" in html_text
        assert "run health" in html_text
        assert "metrics" in html_text
        # Structured warning and digest mismatch surface as problems.
        assert "chunk 0 stuck" in html_text
        assert "nondeterminism suspect" not in html_text  # digests agree here

    def test_rendering_is_byte_stable(self, tmp_path):
        paths = list(_write_artifacts(tmp_path).values())
        a = render_dashboard(collect_inputs(paths))
        b = render_dashboard(collect_inputs(paths))
        assert a == b

    def test_digest_mismatch_is_called_out(self, tmp_path):
        manifest = RunManifest(tmp_path / "m.jsonl")
        manifest.record("p", "key1", "sim", "digest-a")
        manifest.record("p", "key1", "disk", "digest-b")
        html_text = render_dashboard(collect_inputs([tmp_path / "m.jsonl"]))
        assert "digest mismatch" in html_text
        assert "nondeterminism" in html_text

    def test_invalid_inputs_become_problems_not_crashes(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text('{"suite": "x", "points": []}')
        model = collect_inputs([bad])
        assert model["bench"] == []
        assert model["problems"]
        assert "input problems" in render_dashboard(model)

    def test_stall_bar_widths_are_shares(self, tmp_path):
        paths = _write_artifacts(tmp_path)
        html_text = render_dashboard(collect_inputs([paths["bench"]]))
        assert 'width:25.00%' in html_text
        # Zero-share buckets draw no segment; legend still lists all 8.
        assert html_text.count('class="swatch"') == 8


class TestHistory:
    def test_order_key_baseline_then_pr_numeric(self):
        names = [
            "BENCH_pr10.json", "BENCH_baseline.json", "BENCH_pr9.json",
            "BENCH_pr6.json", "BENCH_zzz.json",
        ]
        ordered = sorted(names, key=_order_key)
        assert ordered == [
            "BENCH_baseline.json", "BENCH_pr6.json", "BENCH_pr9.json",
            "BENCH_pr10.json", "BENCH_zzz.json",
        ]

    def test_ratio_vs_previous_per_suite(self, tmp_path):
        paths = _write_artifacts(tmp_path)
        rows, problems = load_history([paths["bench"], paths["bench2"]])
        assert problems == []
        assert rows[0]["ratio"] is None
        assert rows[1]["ratio"] == 1.5  # 3.0 / 2.0, same suite

    def test_invalid_report_is_a_problem(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{}")
        rows, problems = load_history([bad])
        assert rows == [] and problems

    def test_table_renders_per_suite(self, tmp_path):
        paths = _write_artifacts(tmp_path)
        rows, _ = load_history([paths["bench"], paths["bench2"]])
        table = history_table(rows)
        assert "suite: quick" in table
        assert "1.50x" in table
        assert history_table([]) == "no benchmark reports found"

    def test_default_paths_glob(self, tmp_path):
        _write_artifacts(tmp_path)
        found = [p.name for p in default_history_paths(tmp_path)]
        assert found == ["BENCH_baseline_quick.json", "BENCH_pr7.json"]


class TestCLI:
    def test_bench_history_cli(self, tmp_path, capsys, monkeypatch):
        _write_artifacts(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert bench_main(["--history"]) == 0
        out = capsys.readouterr().out
        assert "suite: quick" in out and "1.50x" in out

    def test_obs_validate_dispatches_on_shape(self, tmp_path, capsys):
        paths = _write_artifacts(tmp_path)
        rc = obs_main(
            ["--validate"] + [str(p) for p in paths.values()]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "records" in out and "metric families" in out
        assert "state" in out and "bench points" in out

    def test_obs_validate_rejects_unknown_manifest_version(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        path.write_text('{"v": 99, "source": "sim"}\n')
        assert obs_main(["--validate", str(path)]) == 1
        err = capsys.readouterr().err
        assert "unknown manifest schema version" in err

    def test_obs_dashboard_cli(self, tmp_path, capsys):
        paths = _write_artifacts(tmp_path)
        out = tmp_path / "dash.html"
        rc = obs_main(
            ["--dashboard", "--out", str(out)]
            + [str(p) for p in paths.values()]
        )
        assert rc == 0
        assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
        assert "dashboard written" in capsys.readouterr().out

    def test_obs_dashboard_defaults_to_cwd_bench_files(
        self, tmp_path, capsys, monkeypatch
    ):
        _write_artifacts(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert obs_main(["--dashboard"]) == 0
        html_text = Path("repro-dashboard.html").read_text(encoding="utf-8")
        assert "performance trajectory" in html_text
