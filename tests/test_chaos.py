"""Tests for the deterministic fault-injection framework (``repro.chaos``).

The framework's contract is determinism: whether a rule fires depends
only on the plan seed, the rule, the site, the site key and per-process
counters — never on entropy or wall-clock time.  These tests pin the
plan grammar, the trip/arming mechanics (``times``/``after``/``match``),
process scoping, and each fault's effect.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.chaos import (
    FAULTS,
    PARENT_ENV,
    PLAN_ENV,
    PLAN_SCHEMA_VERSION,
    SITES,
    ChaosFault,
    FaultPlan,
    FaultRule,
    active_plan,
    clear_plan,
    install_plan,
    plan_loads,
    reset,
    single_fault_plan,
    trip,
    validate_plan,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def _no_plan():
    """Every test starts and ends with no active plan."""
    clear_plan()
    yield
    clear_plan()


class TestPlanGrammar:
    def test_dumps_loads_round_trip(self):
        plan = FaultPlan(
            seed=7,
            rules=(
                FaultRule("crash", "sim", match="rod*", times=2),
                FaultRule("io_error", "result_store", times=0, after=3),
            ),
        )
        assert plan_loads(plan.dumps()) == plan

    def test_serialized_rules_omit_defaults(self):
        doc = FaultRule("crash", "sim").to_json()
        assert doc == {"fault": "crash", "site": "sim"}

    def test_validate_accepts_the_grammar_example(self):
        doc = {
            "schema": PLAN_SCHEMA_VERSION,
            "seed": 31337,
            "rules": [
                {"fault": "crash", "site": "sim", "match": "rod-nw*"},
                {"fault": "kill", "site": "journal", "after": 5},
            ],
        }
        assert validate_plan(doc) == []

    @pytest.mark.parametrize(
        "doc, needle",
        [
            ({"schema": 99, "rules": []}, "schema"),
            ({"schema": 1, "rules": "nope"}, "rules"),
            (
                {"schema": 1, "rules": [{"fault": "meteor", "site": "sim"}]},
                "fault",
            ),
            (
                {"schema": 1, "rules": [{"fault": "crash", "site": "moon"}]},
                "site",
            ),
            (
                {
                    "schema": 1,
                    "rules": [
                        {"fault": "crash", "site": "sim", "scope": "galaxy"}
                    ],
                },
                "scope",
            ),
            (
                {
                    "schema": 1,
                    "rules": [{"fault": "crash", "site": "sim", "times": -1}],
                },
                "times",
            ),
            ("not a dict", "object"),
        ],
    )
    def test_validate_rejects(self, doc, needle):
        problems = validate_plan(doc)
        assert problems and any(needle in p for p in problems)

    def test_plan_loads_rejects_bad_json_and_bad_plans(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            plan_loads("{nope")
        with pytest.raises(ValueError, match="invalid fault plan"):
            plan_loads('{"schema": 99, "rules": []}')

    def test_decide_is_deterministic_and_key_dependent(self):
        plan = FaultPlan(seed=42)
        rule = FaultRule("crash", "sim", p=0.5)
        keys = [f"point-{i}" for i in range(64)]
        first = [plan.decide(rule, k) for k in keys]
        assert first == [plan.decide(rule, k) for k in keys]
        # A fair-ish p=0.5 draw over 64 keys produces both outcomes.
        assert True in first and False in first
        # A different seed redraws.
        assert first != [FaultPlan(seed=43).decide(rule, k) for k in keys]

    def test_decide_degenerate_probabilities(self):
        plan = FaultPlan()
        assert plan.decide(FaultRule("crash", "sim", p=1.0), "k")
        assert not plan.decide(FaultRule("crash", "sim", p=0.0), "k")


class TestTripMechanics:
    def test_no_plan_is_a_no_op(self):
        trip("sim", "anything")  # must not raise

    def test_crash_raises_chaos_fault(self):
        install_plan(single_fault_plan("crash", "sim"))
        with pytest.raises(ChaosFault, match="injected crash"):
            trip("sim", "point")

    def test_io_error_raises_oserror(self):
        install_plan(single_fault_plan("io_error", "result_store"))
        with pytest.raises(OSError, match="injected I/O failure"):
            trip("result_store", "key")

    def test_match_glob_selects_keys(self):
        install_plan(single_fault_plan("crash", "sim", match="rod*", times=0))
        trip("sim", "cg-lou x baseline")  # no match, no fire
        with pytest.raises(ChaosFault):
            trip("sim", "rod-nw x baseline")

    def test_site_mismatch_never_fires(self):
        install_plan(single_fault_plan("crash", "sim", times=0))
        trip("result_read", "rod-nw")  # different site

    def test_times_limits_firings_per_process(self):
        install_plan(single_fault_plan("crash", "sim", times=2))
        for _ in range(2):
            with pytest.raises(ChaosFault):
                trip("sim", "p")
        trip("sim", "p")  # third invocation: rule exhausted

    def test_after_skips_leading_invocations(self):
        install_plan(single_fault_plan("crash", "sim", after=2))
        trip("sim", "p")
        trip("sim", "p")
        with pytest.raises(ChaosFault):
            trip("sim", "p")

    def test_times_zero_is_unlimited(self):
        install_plan(single_fault_plan("crash", "sim", times=0))
        for _ in range(5):
            with pytest.raises(ChaosFault):
                trip("sim", "p")

    def test_slow_returns_after_sleeping(self):
        install_plan(single_fault_plan("slow", "sim", seconds=0.0))
        trip("sim", "p")  # returns, no exception

    def test_corrupt_garbles_the_target_file(self, tmp_path):
        target = tmp_path / "entry.json"
        target.write_text(json.dumps({"schema": 1, "payload": list(range(50))}))
        original = target.read_bytes()
        install_plan(single_fault_plan("corrupt", "result_read"))
        trip("result_read", "key", path=str(target))
        garbled = target.read_bytes()
        assert garbled != original
        with pytest.raises(ValueError):
            json.loads(garbled.decode("utf-8", errors="replace"))

    def test_corrupt_without_a_file_stays_armed(self, tmp_path):
        # A corrupt rule skips invocations with no file to damage and
        # does not burn its ``times`` budget on them.
        target = tmp_path / "entry.json"
        install_plan(single_fault_plan("corrupt", "result_read", times=1))
        trip("result_read", "key", path=str(target))  # nothing there yet
        target.write_text("payload")
        trip("result_read", "key", path=str(target))
        assert target.read_bytes() != b"payload"

    def test_reset_rearms_counters(self):
        install_plan(single_fault_plan("crash", "sim", times=1))
        with pytest.raises(ChaosFault):
            trip("sim", "p")
        trip("sim", "p")  # exhausted
        reset()
        with pytest.raises(ChaosFault):
            trip("sim", "p")


class TestScopes:
    def test_worker_scope_skips_the_installing_parent(self):
        install_plan(
            single_fault_plan("crash", "sim", scope="worker", times=0)
        )
        trip("sim", "p")  # this process IS the parent: no fire

    def test_parent_scope_fires_in_the_installing_parent(self):
        install_plan(
            single_fault_plan("crash", "sim", scope="parent", times=0)
        )
        with pytest.raises(ChaosFault):
            trip("sim", "p")

    def test_worker_scope_fires_in_another_process(self, monkeypatch):
        install_plan(
            single_fault_plan("crash", "sim", scope="worker", times=0)
        )
        # Simulate being a forked worker: the recorded parent pid differs.
        monkeypatch.setenv(PARENT_ENV, str(os.getpid() + 1))
        with pytest.raises(ChaosFault):
            trip("sim", "p")


class TestEnvActivation:
    def test_install_sets_env_and_clear_removes_it(self):
        install_plan(single_fault_plan("crash", "sim"))
        assert os.environ[PARENT_ENV] == str(os.getpid())
        assert active_plan() is not None
        clear_plan()
        assert PLAN_ENV not in os.environ
        assert active_plan() is None

    def test_install_into_a_child_env_dict(self):
        env = {}
        install_plan(single_fault_plan("crash", "sim"), env=env)
        assert set(env) == {PLAN_ENV, PARENT_ENV}
        assert plan_loads(env[PLAN_ENV]).rules[0].fault == "crash"

    def test_plan_from_env_json(self, monkeypatch):
        plan = single_fault_plan("io_error", "result_store", times=3)
        monkeypatch.setenv(PLAN_ENV, plan.dumps())
        reset()
        assert active_plan() == plan

    def test_plan_from_at_file(self, tmp_path, monkeypatch):
        plan = single_fault_plan("slow", "sim", seconds=0.25)
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(plan.dumps(), encoding="utf-8")
        monkeypatch.setenv(PLAN_ENV, f"@{plan_file}")
        reset()
        assert active_plan() == plan

    def test_kill_fault_sigkills_the_process(self):
        env = dict(os.environ)
        env[PLAN_ENV] = single_fault_plan("kill", "sim").dumps()
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.chaos import trip; trip('sim', 'p'); print('alive')",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == -signal.SIGKILL
        assert "alive" not in proc.stdout

    def test_children_inherit_the_plan_through_the_env(self):
        env = dict(os.environ)
        install_plan(single_fault_plan("crash", "sim", times=0), env=env)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.chaos import ChaosFault, trip\n"
                "try:\n"
                "    trip('sim', 'p')\n"
                "except ChaosFault:\n"
                "    print('fired')\n",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0
        assert "fired" in proc.stdout


class TestVocabulary:
    def test_fault_and_site_names_are_stable(self):
        # Plans are written against these names; renames break saved
        # plans and the CI chaos-smoke job.
        assert FAULTS == ("crash", "hang", "slow", "corrupt", "io_error", "kill")
        assert "sim" in SITES and "journal" in SITES
        assert len(SITES) == 8

    def test_list_cli(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.chaos", "--list"],
            env={
                **os.environ,
                "PYTHONPATH": SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
            },
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0
        for name in FAULTS + SITES:
            assert name in proc.stdout
