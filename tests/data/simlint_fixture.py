"""Lint fixture: one bad and one good example per simlint rule.

Never imported or executed — ``tests/test_simlint.py`` parses this file and
asserts that every line tagged ``# expect: RPRxxx`` produces exactly that
finding, that untagged lines produce none, and that ``# simlint: ignore``
lines land in the suppressed bucket (tagged ``# expect-suppressed:``).
"""

import random
import time
from datetime import datetime

import numpy as np


# -- RPR001: iteration over a set/frozenset ---------------------------------

def bad_set_iteration():
    total = 0
    for item in {3, 1, 2}:  # expect: RPR001
        total += item
    squares = [x * x for x in frozenset((1, 2))]  # expect: RPR001
    pool = {1, 2, 3}
    for item in pool:  # expect: RPR001
        total += item
    materialized = list(set([1, 2]))  # expect: RPR001
    return total, squares, materialized


def bad_set_algebra(left: set, right: set):
    return [x for x in left | right]  # expect: RPR001


def good_ordered_iteration():
    total = 0
    for item in [3, 1, 2]:
        total += item
    pool = [1, 2, 3]
    for item in pool:
        total += item
    shadowed = {1, 2}
    shadowed = [1, 2]
    for item in shadowed:  # reassigned to a list above: no finding
        total += item
    return total


# -- RPR002: sorted() on a set without a key --------------------------------

def bad_sorted_set():
    return sorted({3, 1, 2})  # expect: RPR002


def good_sorted():
    with_key = sorted({3, 1, 2}, key=abs)
    a_list = sorted([3, 1, 2])
    return with_key, a_list


# -- RPR003: unseeded or global RNG -----------------------------------------

def bad_rng():
    a = random.random()  # expect: RPR003
    b = np.random.shuffle([1, 2, 3])  # expect: RPR003
    rng = np.random.default_rng()  # expect: RPR003
    return a, b, rng


def good_rng(seed: int):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 10)


# -- RPR004: wall-clock reads -----------------------------------------------

def bad_wall_clock():
    t = time.time()  # expect: RPR004
    d = datetime.now()  # expect: RPR004
    return t, d


def good_clock(now: int):
    elapsed = time.perf_counter()  # observability timer, not model time
    return now + 1, elapsed


# -- RPR005: id()/hash() in model code --------------------------------------

def bad_identity(warp):
    return id(warp)  # expect: RPR005


def good_identity(warp):
    return warp.warp_id


# -- RPR006: mutable default arguments --------------------------------------

def bad_mutable_default(counts=[]):  # expect: RPR006
    counts.append(1)
    return counts


def bad_factory_default(table=dict()):  # expect: RPR006
    return table


def good_default(counts=None):
    if counts is None:
        counts = []
    counts.append(1)
    return counts


# -- suppressions -----------------------------------------------------------

def suppressed_all():
    for item in {1, 2}:  # simlint: ignore  # expect-suppressed: RPR001
        yield item


def suppressed_specific():
    return sorted({1, 2})  # simlint: ignore[RPR002]  # expect-suppressed: RPR002


def suppression_wrong_rule():
    # The ignore names a different rule, so the finding still fires.
    return sorted({1, 2})  # simlint: ignore[RPR001]  # expect: RPR002
