"""End-to-end GPU tests: cycle loop, TB scheduler, determinism, multi-SM."""

import pytest

from repro import GPU, DeadlockError, KernelLaunch, simulate, volta_v100
from repro.gpu import ThreadBlockScheduler
from repro.trace import TraceBuilder, make_kernel

from tests.conftest import fma_warp, independent_warp, simple_kernel


class TestRun:
    def test_simple_kernel_completes(self):
        stats = simulate(simple_kernel(), volta_v100(), num_sms=1)
        assert stats.cycles > 0
        # 8 warps x (32 FMAs + EXIT)
        assert stats.instructions == 8 * 33

    def test_determinism(self):
        k = simple_kernel()
        a = simulate(k, volta_v100(), num_sms=1)
        b = simulate(k, volta_v100(), num_sms=1)
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions
        assert a.sms[0].issue_counts == b.sms[0].issue_counts

    def test_multi_cta_waves(self):
        k = make_kernel("k", [fma_warp(16) for _ in range(32)], num_ctas=4)
        one_wave = make_kernel("k1", [fma_warp(16) for _ in range(32)], num_ctas=1)
        s4 = simulate(k, volta_v100(), num_sms=1)
        s1 = simulate(one_wave, volta_v100(), num_sms=1)
        # 4 CTAs of 32 warps: 2 resident at a time -> at least 2 waves
        assert s4.cycles > s1.cycles
        assert s4.sms[0].ctas_completed == 4

    def test_more_sms_go_faster(self):
        k = make_kernel("k", [fma_warp(64) for _ in range(32)], num_ctas=8)
        s1 = simulate(k, volta_v100(), num_sms=1)
        s4 = simulate(k, volta_v100(), num_sms=4)
        assert s4.cycles < s1.cycles
        assert sum(sm.ctas_completed for sm in s4.sms) == 8

    def test_kernel_launch_max_sms(self):
        k = make_kernel("k", [fma_warp(16) for _ in range(32)], num_ctas=4)
        gpu = GPU(volta_v100(), num_sms=4)
        stats = gpu.run(KernelLaunch(k, max_sms=1))
        assert stats.sms[0].ctas_completed == 4
        assert all(s.ctas_completed == 0 for s in stats.sms[1:])

    def test_sequential_kernels_on_same_gpu(self):
        gpu = GPU(volta_v100(), num_sms=1)
        s1 = gpu.run(simple_kernel())
        s2 = gpu.run(simple_kernel())
        assert s1.cycles > 0 and s2.cycles > 0

    def test_max_cycles_guard(self):
        k = make_kernel("k", [fma_warp(512) for _ in range(8)])
        with pytest.raises(DeadlockError):
            simulate_with_limit(k, max_cycles=10)

    def test_wedged_sm_raises_deadlock_not_hang(self):
        # An SM whose warps all block on a writeback that never arrives
        # makes next_event() return None with CTAs still resident; the
        # cycle loop must diagnose the deadlock instead of spinning or
        # fast-forwarding past it.
        from repro.core.warp import WarpState

        gpu = GPU(volta_v100(), num_sms=1)
        sm = gpu.sms[0]
        k = simple_kernel()
        assert sm.try_allocate_cta(k, k.ctas[0], cta_id=0, now=0)
        for sc in sm.subcores:
            for w in sc.warps:
                w.pending_writes.add(99)  # writeback never scheduled
                w.set_state(WarpState.BLOCKED)
        assert sm.next_event(0) is None
        with pytest.raises(DeadlockError, match="no.*pending events"):
            gpu._advance([sm], 0, "wedged")

    def test_oversized_cta_rejected(self):
        k = make_kernel("k", [fma_warp(4) for _ in range(65)])
        with pytest.raises(ValueError, match="never fit"):
            simulate(k, volta_v100(), num_sms=1)

    def test_memory_stats_populated(self):
        tb = TraceBuilder()
        for i in range(8):
            tb.global_load(dst=1, addr_reg=0, base_address=i * 4096, num_lines=4)
        k = make_kernel("mem", [tb.build() for _ in range(4)])
        stats = simulate(k, volta_v100(), num_sms=1)
        assert stats.l1_misses > 0
        assert stats.dram_accesses > 0

    def test_fast_forward_preserves_results(self):
        # A memory-latency-bound kernel exercises the fast-forward path;
        # IPC must match a config whose DRAM is instant only in latency.
        tb = TraceBuilder()
        tb.global_load(dst=1, addr_reg=0, base_address=0)
        tb.extend([])
        k = make_kernel("mem", [tb.build()])
        s = simulate(k, volta_v100(), num_sms=1)
        mem = volta_v100().memory
        # LDG must pay at least L1+L2+DRAM latency
        assert s.cycles > mem.dram_latency


class TestThreadBlockScheduler:
    def test_round_robin_distribution(self):
        cfg = volta_v100()
        gpu = GPU(cfg, num_sms=4)
        k = make_kernel("k", [fma_warp(8) for _ in range(32)], num_ctas=8)
        gpu.run(k)
        per_sm = [sm.ctas_completed for sm in gpu.sms]
        assert per_sm == [2, 2, 2, 2]

    def test_launch_rejects_double_launch(self):
        cfg = volta_v100()
        gpu = GPU(cfg, num_sms=1)
        sched = ThreadBlockScheduler(gpu.sms)
        k = simple_kernel()
        sched.launch(k)
        with pytest.raises(RuntimeError):
            sched.launch(k)

    def test_needs_sms(self):
        with pytest.raises(ValueError):
            ThreadBlockScheduler([])

    def test_pending_counts(self):
        cfg = volta_v100()
        gpu = GPU(cfg, num_sms=1)
        sched = ThreadBlockScheduler(gpu.sms)
        k = make_kernel("k", [fma_warp(4) for _ in range(32)], num_ctas=5)
        sched.launch(k)
        assert sched.pending_ctas == 5
        placed = sched.fill(0)
        assert placed == 2  # 64 warp slots / 32 warps per CTA
        assert sched.pending_ctas == 3
        assert not sched.done


class TestStats:
    def test_ipc_and_summary(self):
        s = simulate(simple_kernel(), volta_v100(), num_sms=1)
        assert 0 < s.ipc < 4 * 4  # bounded by total issue width
        text = s.summary()
        assert "cycles" in text and "IPC" in text

    def test_rf_reads_match_trace(self):
        k = make_kernel("k", [independent_warp(16) for _ in range(4)])
        s = simulate(k, volta_v100(), num_sms=1)
        assert s.total_rf_reads() == 4 * 16 * 2

    def test_issue_cov_zero_for_balanced(self):
        k = make_kernel("k", [fma_warp(32) for _ in range(8)])
        s = simulate(k, volta_v100(), num_sms=1)
        assert s.issue_cov() < 0.05


def simulate_with_limit(kernel, max_cycles):
    gpu = GPU(volta_v100(), num_sms=1)
    return gpu.run(kernel, max_cycles=max_cycles)
