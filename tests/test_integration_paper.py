"""Integration tests asserting the paper's headline shapes end-to-end.

These are the regression net for the reproduction itself: if a simulator
change breaks one of the paper's qualitative results, it fails here —
with workload sizes trimmed for test-suite latency.
"""

import pytest

from repro import (
    bank_stealing,
    fully_connected,
    kepler,
    rba,
    shuffle,
    simulate,
    srr,
    volta_v100,
)
from repro.workloads import fma_microbenchmark, get_kernel, scaled_imbalance_microbenchmark


def cycles(kernel, cfg):
    return simulate(kernel, cfg, num_sms=1).cycles


class TestImbalancePathology:
    """Sec. III-B / Fig. 3: static RR assignment serializes the unbalanced
    FMA microbenchmark on partitioned SMs only."""

    def test_volta_unbalanced_near_4x(self):
        base = cycles(fma_microbenchmark("baseline", fmas=128), volta_v100())
        unb = cycles(fma_microbenchmark("unbalanced", fmas=128), volta_v100())
        assert 3.0 < unb / base < 4.5

    def test_balanced_layout_recovers(self):
        base = cycles(fma_microbenchmark("baseline", fmas=128), volta_v100())
        bal = cycles(fma_microbenchmark("balanced", fmas=128), volta_v100())
        assert bal / base < 1.15

    def test_kepler_immune(self):
        base = cycles(fma_microbenchmark("baseline", fmas=128), kepler())
        unb = cycles(fma_microbenchmark("unbalanced", fmas=128), kepler())
        assert unb / base < 1.15

    def test_hashed_assignment_fixes_unbalanced(self):
        k = scaled_imbalance_microbenchmark(8, base_fmas=32)
        rr_t = cycles(k, volta_v100())
        srr_t = cycles(k, srr())
        shuffle_t = cycles(k, shuffle())
        assert rr_t / srr_t > 1.5          # SRR fixes the 1-in-4 pattern
        assert rr_t / shuffle_t > 1.2      # Shuffle helps, less than SRR
        assert srr_t <= shuffle_t


class TestRBAHeadline:
    """Sec. VI-B: RBA speeds up read-operand-limited apps at ~zero cost."""

    def test_rba_speeds_up_cugraph(self):
        k = get_kernel("cg-lou")
        base, fast = cycles(k, volta_v100()), cycles(k, rba())
        assert base / fast > 1.08

    def test_rba_beats_fully_connected_on_cugraph(self):
        k = get_kernel("cg-lou")
        assert cycles(k, rba()) < cycles(k, fully_connected())

    def test_rba_harmless_on_insensitive_app(self):
        k = get_kernel("pb-stencil")
        base, fast = cycles(k, volta_v100()), cycles(k, rba())
        assert abs(base / fast - 1.0) < 0.05

    def test_bank_stealing_is_marginal(self):
        k = get_kernel("cg-lou")
        base, steal = cycles(k, volta_v100()), cycles(k, bank_stealing())
        assert abs(base / steal - 1.0) < 0.06

    def test_rba_reduces_bank_conflict_pressure(self):
        k = get_kernel("cg-lou")
        base = simulate(k, volta_v100(), num_sms=1)
        fast = simulate(k, rba(), num_sms=1)
        # Same reads, fewer cycles -> higher reads/cycle utilization.
        assert fast.rf_reads_per_cycle() > base.rf_reads_per_cycle()


class TestTPCHHeadline:
    """Sec. VI-C: TPC-H gains from assignment, not from RBA."""

    def test_srr_speeds_up_divergent_query(self):
        k = get_kernel("tpcU-q8")
        base, fast = cycles(k, volta_v100()), cycles(k, srr())
        assert base / fast > 1.10

    def test_rba_barely_helps_tpch(self):
        k = get_kernel("tpcU-q8")
        base, fast = cycles(k, volta_v100()), cycles(k, rba())
        assert abs(base / fast - 1.0) < 0.06

    def test_srr_collapses_issue_cov(self):
        k = get_kernel("tpcU-q8")
        base = simulate(k, volta_v100(), num_sms=1)
        fixed = simulate(k, srr(), num_sms=1)
        assert base.issue_cov() > 0.6
        assert fixed.issue_cov() < 0.15

    def test_assignment_neutral_on_balanced_apps(self):
        k = get_kernel("pb-stencil")
        base = cycles(k, volta_v100())
        assert abs(base / cycles(k, srr()) - 1.0) < 0.05
        assert abs(base / cycles(k, shuffle()) - 1.0) < 0.05
