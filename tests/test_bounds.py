"""Tests for the analytical IPC-bounds (roofline) model.

The load-bearing invariant: simulated IPC never exceeds the analytic
ceiling, for any scheduler/assignment design, because the bound only uses
physical resource limits.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import simulate, volta_v100
from repro.config import fully_connected
from repro.experiments import get_design
from repro.metrics import IPCBounds, bound_report, ipc_bounds
from repro.workloads import AppProfile, build_kernel, fma_microbenchmark, get_kernel


class TestBoundsStructure:
    def test_binding_is_minimum(self):
        b = IPCBounds(issue=4.0, read_bandwidth=2.0, execution=3.0,
                      memory_bandwidth=10.0)
        assert b.binding == "read_bandwidth"
        assert b.ipc == 2.0

    def test_as_dict_roundtrip(self):
        b = IPCBounds(1.0, 2.0, 3.0, 4.0)
        assert set(b.as_dict()) == {
            "issue", "read_bandwidth", "execution", "memory_bandwidth"
        }

    def test_pure_compute_unbounded_memory(self):
        k = fma_microbenchmark("baseline", fmas=16)
        b = ipc_bounds(k, volta_v100())
        assert b.memory_bandwidth == float("inf")

    def test_pure_fp_kernel_execution_bound(self):
        # All-FFMA kernel: FP32 accepts 0.5 warps/cycle/sub-core -> 2 IPC.
        k = fma_microbenchmark("baseline", fmas=32)
        b = ipc_bounds(k, volta_v100())
        assert b.execution == pytest.approx(2.0, rel=0.05)

    def test_issue_bound_scales_with_subcores(self):
        k = fma_microbenchmark("baseline", fmas=16)
        assert ipc_bounds(k, volta_v100()).issue == 4.0
        assert ipc_bounds(k, fully_connected()).issue == 4.0

    def test_read_bound_uses_operand_count(self):
        k = fma_microbenchmark("baseline", fmas=32)  # ~3 ops/instr
        b = ipc_bounds(k, volta_v100())
        # 8 banks x 1 port / ~2.9 reads per instruction
        assert 2.4 < b.read_bandwidth < 3.0

    def test_report_renders(self):
        text = bound_report(get_kernel("cg-lou"), volta_v100())
        assert "binding constraint" in text


class TestBoundInvariant:
    DESIGNS = ("baseline", "rba", "shuffle_rba", "fully_connected", "cu8")
    APPS = ("cg-lou", "pb-stencil", "tpcU-q8", "rod-nw", "db-conv-tr")

    @pytest.mark.parametrize("app", APPS)
    def test_simulation_never_beats_bound(self, app):
        k = get_kernel(app)
        for design in self.DESIGNS:
            cfg = get_design(design)
            bound = ipc_bounds(k, cfg).ipc
            got = simulate(k, cfg, num_sms=1).ipc
            assert got <= bound * 1.01, (app, design, got, bound)

    def test_rba_closes_gap_on_rf_sensitive_app(self):
        k = get_kernel("cg-lou")
        cfg = volta_v100()
        bound = ipc_bounds(k, cfg).ipc
        gto_gap = bound - simulate(k, cfg, num_sms=1).ipc
        rba_gap = bound - simulate(k, get_design("rba"), num_sms=1).ipc
        assert rba_gap < gto_gap


@given(
    seed=st.integers(min_value=0, max_value=500),
    bias=st.floats(min_value=0.0, max_value=1.0),
    mem=st.floats(min_value=0.0, max_value=0.3),
    fp=st.floats(min_value=0.2, max_value=0.8),
)
@settings(max_examples=10, deadline=None)
def test_property_bound_holds_for_random_profiles(seed, bias, mem, fp):
    p = AppProfile(
        "prop", "s", seed, warps_per_cta=16, num_ctas=2, insts_per_warp=60,
        bank_bias=bias, mem_fraction=mem, fp_fraction=fp,
    )
    k = build_kernel(p)
    cfg = volta_v100()
    bound = ipc_bounds(k, cfg).ipc
    got = simulate(k, cfg, num_sms=1).ipc
    assert got <= bound * 1.01
