"""Tests for concurrent kernel execution (effect #4 substrate)."""

import pytest

from repro import GPU, volta_v100
from repro.trace import TraceBuilder, make_kernel


def kernel(name, warps=8, insts=32, regs=16, num_ctas=2):
    traces = [TraceBuilder().fma_chain(insts).build() for _ in range(warps)]
    return make_kernel(name, traces, num_ctas=num_ctas, regs_per_thread=regs)


class TestRunConcurrent:
    def test_both_kernels_complete(self):
        g = GPU(volta_v100(), num_sms=1)
        a, b = kernel("a"), kernel("b")
        stats = g.run_concurrent([a, b])
        total = sum(sm.ctas_completed for sm in stats.sms)
        assert total == a.num_ctas + b.num_ctas
        assert stats.instructions == a.dynamic_instructions + b.dynamic_instructions + a.total_warps + b.total_warps

    def test_name_joined(self):
        g = GPU(volta_v100(), num_sms=1)
        stats = g.run_concurrent([kernel("a"), kernel("b")])
        assert stats.kernel_name == "a+b"

    def test_concurrent_not_slower_than_sequential(self):
        a, b = kernel("a", insts=64), kernel("b", insts=64)
        g_seq = GPU(volta_v100(), num_sms=1)
        seq = g_seq.run(a).cycles + g_seq.run(b).cycles
        g_conc = GPU(volta_v100(), num_sms=1)
        conc = g_conc.run_concurrent([a, b]).cycles
        assert conc <= seq * 1.05

    def test_empty_list_rejected(self):
        g = GPU(volta_v100(), num_sms=1)
        with pytest.raises(ValueError):
            g.run_concurrent([])

    def test_single_kernel_equivalent_to_run(self):
        k = kernel("solo", insts=48)
        a = GPU(volta_v100(), num_sms=1).run(k).cycles
        b = GPU(volta_v100(), num_sms=1).run_concurrent([k]).cycles
        assert a == b

    def test_mixed_register_footprints_coexist(self):
        fat = kernel("fat", warps=8, regs=240, num_ctas=2)
        thin = kernel("thin", warps=8, regs=16, num_ctas=2)
        g = GPU(volta_v100(), num_sms=1)
        stats = g.run_concurrent([fat, thin])
        assert sum(sm.ctas_completed for sm in stats.sms) == 4

    def test_deterministic(self):
        a1 = GPU(volta_v100(), num_sms=1).run_concurrent([kernel("a"), kernel("b")])
        a2 = GPU(volta_v100(), num_sms=1).run_concurrent([kernel("a"), kernel("b")])
        assert a1.cycles == a2.cycles

    def test_different_warp_counts_have_unique_warp_ids(self):
        # Regression: warp ids were once derived from cta_id * warps_per_cta,
        # which collides across kernels of different CTA sizes.
        wide = kernel("wide", warps=16, num_ctas=1)
        narrow = kernel("narrow", warps=4, num_ctas=2)
        g = GPU(volta_v100(), num_sms=1)
        stats = g.run_concurrent([wide, narrow])
        assert sum(sm.ctas_completed for sm in stats.sms) == 3


class TestEffect4Harness:
    def test_runs_and_reports(self):
        from repro.experiments import effect4_concurrent as e4

        res = e4.run(num_ctas=3)
        text = e4.format_result(res)
        assert "efficiency" in text
        # Both architectures should benefit from overlapping compute with
        # latency-bound work.
        assert res.efficiency("partitioned") > 1.0
        assert res.efficiency("fully_connected") > 1.0
        # The paper classifies effect 4 as minor: the fragmentation loss
        # must be small either way.
        assert abs(res.fragmentation_loss()) < 0.15
