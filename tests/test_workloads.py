"""Tests for the workload layer: microbenchmarks, profiles, synthesis and
the 112-app registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Opcode
from repro.workloads import (
    EXPECTED_APP_COUNT,
    RF_SENSITIVE_APPS,
    SENSITIVE_APPS,
    AppProfile,
    all_profiles,
    app_names,
    build_kernel,
    build_warp_trace,
    cu_validation_microbenchmarks,
    fma_microbenchmark,
    get_kernel,
    get_profile,
    scaled_imbalance_microbenchmark,
    suites,
    tpch_profile,
)


class TestFMAMicrobenchmark:
    def test_baseline_shape(self):
        k = fma_microbenchmark("baseline", fmas=16)
        assert k.warps_per_cta == 8
        assert all(w.count_opcode(Opcode.FFMA) == 16 for w in k.ctas[0].warps)

    def test_unbalanced_layout_stride(self):
        k = fma_microbenchmark("unbalanced", fmas=16)
        assert k.warps_per_cta == 32
        compute = [i for i, w in enumerate(k.ctas[0].warps)
                   if w.count_opcode(Opcode.FFMA)]
        assert compute == list(range(0, 32, 4))

    def test_balanced_layout_spreads_over_subcores(self):
        k = fma_microbenchmark("balanced", fmas=16)
        compute = [i for i, w in enumerate(k.ctas[0].warps)
                   if w.count_opcode(Opcode.FFMA)]
        assert len(compute) == 8
        # one compute warp per (row, sub-core) diagonal cell
        assert sorted(i % 4 for i in compute) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_all_warps_barrier(self):
        k = fma_microbenchmark("unbalanced", fmas=4)
        assert all(w.count_opcode(Opcode.BAR) == 1 for w in k.ctas[0].warps)

    def test_unknown_layout(self):
        with pytest.raises(ValueError):
            fma_microbenchmark("sideways")


class TestScaledImbalance:
    def test_every_fourth_warp_is_long(self):
        k = scaled_imbalance_microbenchmark(8, base_fmas=10)
        lengths = [w.count_opcode(Opcode.FFMA) for w in k.ctas[0].warps]
        for i, n in enumerate(lengths):
            assert n == (80 if i % 4 == 0 else 10)

    def test_imbalance_one_is_uniform(self):
        k = scaled_imbalance_microbenchmark(1, base_fmas=10)
        assert len({w.count_opcode(Opcode.FFMA) for w in k.ctas[0].warps}) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            scaled_imbalance_microbenchmark(0)


class TestCUValidationSuite:
    def test_seven_kernels(self):
        kernels = cu_validation_microbenchmarks(insts=32, warps=4)
        assert len(kernels) == 7
        for k in kernels.values():
            assert k.warps_per_cta == 4

    def test_conflict_variant_uses_one_parity(self):
        kernels = cu_validation_microbenchmarks(insts=16, warps=1)
        trace = kernels["ub-2op-conflict"].ctas[0].warps[0]
        for inst in trace.instructions[:-1]:
            assert all(r % 2 == inst.src_regs[0] % 2 for r in inst.src_regs)


class TestAppProfile:
    def test_validation_fractions(self):
        with pytest.raises(ValueError):
            AppProfile("x", "s", 0, mem_fraction=0.8, lds_fraction=0.3)
        with pytest.raises(ValueError):
            AppProfile("x", "s", 0, bank_bias=1.5)
        with pytest.raises(ValueError):
            AppProfile("x", "s", 0, divergence_multiplier=0.5)
        with pytest.raises(ValueError):
            AppProfile("x", "s", 0, operand_weights=(0, 0, 0))

    def test_warp_lengths_divergence(self):
        p = AppProfile(
            "x", "s", 0, warps_per_cta=8, insts_per_warp=10,
            divergence_period=4, divergence_multiplier=3.0,
        )
        assert p.warp_lengths() == (30, 10, 10, 10, 30, 10, 10, 10)

    def test_warp_lengths_uniform_without_divergence(self):
        p = AppProfile("x", "s", 0, warps_per_cta=4, insts_per_warp=7)
        assert p.warp_lengths() == (7, 7, 7, 7)

    def test_mean_operands(self):
        p = AppProfile("x", "s", 0, operand_weights=(1.0, 0.0, 0.0))
        assert p.mean_operands == 1.0

    def test_variant(self):
        p = AppProfile("x", "s", 0)
        q = p.variant(num_ctas=9)
        assert q.num_ctas == 9 and p.num_ctas != 9


class TestSynthesis:
    def test_deterministic(self):
        p = get_profile("cg-lou")
        a = build_warp_trace(p, 3, 50)
        b = build_warp_trace(p, 3, 50)
        assert [str(i) for i in a.instructions] == [str(i) for i in b.instructions]

    def test_warp_index_changes_stream(self):
        p = get_profile("cg-lou")
        a = build_warp_trace(p, 0, 50)
        b = build_warp_trace(p, 1, 50)
        assert [str(i) for i in a.instructions] != [str(i) for i in b.instructions]

    def test_instruction_count(self):
        p = AppProfile("x", "s", 1, insts_per_warp=40, barrier=True)
        tr = build_warp_trace(p, 0, 40)
        assert tr.dynamic_instructions == 41  # body + barrier

    def test_registers_within_declared_budget(self):
        p = get_profile("pb-sgemm")
        k = build_kernel(p)
        assert k.ctas[0].max_register() < p.regs_per_thread

    def test_pure_memory_profile(self):
        p = AppProfile("x", "s", 1, mem_fraction=1.0, insts_per_warp=30,
                       store_fraction=0.5, barrier=False)
        tr = build_warp_trace(p, 0, 30)
        mem_ops = sum(1 for i in tr.instructions if i.opcode.is_memory)
        assert mem_ops == 30

    def test_bank_bias_keeps_parity(self):
        p = AppProfile("x", "s", 1, bank_bias=1.0, mem_fraction=0.0,
                       dep_fraction=0.0, read_regs=16, insts_per_warp=60,
                       barrier=False)
        tr = build_warp_trace(p, 0, 60)
        for inst in tr.instructions[:-1]:
            if inst.src_regs:
                parities = {r % 2 for r in inst.src_regs}
                assert len(parities) == 1

    def test_kernel_level_attributes(self):
        p = AppProfile("x", "s", 1, shared_mem_per_cta=4096,
                       shared_conflict_degree=3, num_ctas=2)
        k = build_kernel(p)
        assert k.shared_mem_per_cta == 4096
        assert k.shared_conflict_degree == 3
        assert k.num_ctas == 2


class TestRegistry:
    def test_112_apps(self):
        assert len(all_profiles()) == EXPECTED_APP_COUNT == 112

    def test_eight_suites(self):
        assert len(suites()) == 8

    def test_suite_sizes(self):
        assert len(app_names("tpch-compressed")) == 22
        assert len(app_names("tpch-uncompressed")) == 22
        assert len(app_names("cugraph")) == 7
        assert len(app_names("parboil")) == 11
        assert len(app_names("rodinia")) == 20
        assert len(app_names("polybench")) == 15
        assert len(app_names("deepbench")) == 8
        assert len(app_names("cutlass")) == 7

    def test_sensitive_apps_registered(self):
        profiles = all_profiles()
        for name in SENSITIVE_APPS + RF_SENSITIVE_APPS:
            assert name in profiles

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            get_profile("nope")
        with pytest.raises(KeyError):
            app_names("nope-suite")

    def test_get_kernel_builds(self):
        k = get_kernel("rod-nw")
        assert k.dynamic_instructions > 0

    def test_tpch_q8_has_deepest_uncompressed_divergence(self):
        mult = {q: tpch_profile(q, False).divergence_multiplier for q in range(1, 23)}
        assert max(mult, key=mult.get) == 8

    def test_compressed_diverges_more_than_uncompressed(self):
        for q in (1, 9, 17):
            assert (
                tpch_profile(q, True).divergence_multiplier
                > tpch_profile(q, False).divergence_multiplier
            )

    def test_names_match_profiles(self):
        for name, p in all_profiles().items():
            assert p.name == name


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    bias=st.floats(min_value=0.0, max_value=1.0),
    mem=st.floats(min_value=0.0, max_value=0.5),
)
@settings(max_examples=20, deadline=None)
def test_property_synth_traces_are_wellformed(seed, bias, mem):
    p = AppProfile("prop", "s", seed, insts_per_warp=30, bank_bias=bias,
                   mem_fraction=mem)
    tr = build_warp_trace(p, 0, 30)
    assert tr[-1].opcode.is_exit
    assert tr.max_register() < p.regs_per_thread
    for inst in tr.instructions:
        assert inst.num_src_operands <= 3
