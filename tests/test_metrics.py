"""Tests for statistics and analysis helpers."""

import math

import numpy as np
import pytest

from repro.metrics import (
    SimStats,
    SMStats,
    coefficient_of_variation,
    geomean,
    mean,
    mean_absolute_error,
    percent_speedup,
    speedup,
    speedup_table,
)


def make_stats(cycles=100, instructions=200, issue_counts=(50, 50, 50, 50)):
    sm = SMStats(
        sm_id=0,
        instructions=instructions,
        issue_counts=list(issue_counts),
        rf_reads=300,
        bank_conflict_cycles=10,
        ctas_completed=1,
        issue_stall_no_cu=5,
        issue_stall_no_ready=2,
        steals=0,
    )
    return SimStats(
        kernel_name="k", config_name="c", cycles=cycles,
        instructions=instructions, sms=[sm],
    )


class TestSMStats:
    def test_cov_balanced(self):
        sm = make_stats().sms[0]
        assert sm.issue_cov() == 0.0

    def test_cov_imbalanced(self):
        s = make_stats(issue_counts=(100, 0, 0, 0)).sms[0]
        # values [100,0,0,0]: mean 25, std sqrt(3*625+5625)/2
        assert s.issue_cov() == pytest.approx(np.std([100, 0, 0, 0]) / 25.0)

    def test_cov_zero_issue(self):
        s = make_stats(issue_counts=(0, 0, 0, 0)).sms[0]
        assert s.issue_cov() == 0.0


class TestSimStats:
    def test_ipc(self):
        assert make_stats(cycles=100, instructions=200).ipc == 2.0

    def test_ipc_zero_cycles(self):
        assert make_stats(cycles=0).ipc == 0.0

    def test_rf_reads_per_cycle(self):
        s = make_stats(cycles=100)
        assert s.rf_reads_per_cycle() == 3.0

    def test_issue_cov_skips_idle_sms(self):
        s = make_stats()
        idle = SMStats(
            sm_id=1, instructions=0, issue_counts=[0, 0, 0, 0], rf_reads=0,
            bank_conflict_cycles=0, ctas_completed=0, issue_stall_no_cu=0,
            issue_stall_no_ready=0, steals=0,
        )
        s.sms.append(idle)
        assert s.issue_cov() == 0.0


class TestAnalysis:
    def test_speedup(self):
        base, fast = make_stats(cycles=200), make_stats(cycles=100)
        assert speedup(base, fast) == 2.0
        assert percent_speedup(base, fast) == pytest.approx(100.0)

    def test_speedup_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            speedup(make_stats(cycles=10), make_stats(cycles=0))

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0]) == pytest.approx(2.0)

    def test_geomean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_geomean_never_exceeds_max(self):
        vals = [1.1, 1.5, 0.9, 2.0]
        g = geomean(vals)
        assert min(vals) <= g <= max(vals)

    def test_mean(self):
        assert mean([1.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_cov(self):
        assert coefficient_of_variation([5, 5, 5, 5]) == 0.0
        assert coefficient_of_variation([0, 0, 0, 0]) == 0.0
        v = coefficient_of_variation([8, 8, 8, 80])
        assert v == pytest.approx(np.std([8, 8, 8, 80]) / 26.0)

    def test_mae(self):
        assert mean_absolute_error([100, 100], [116, 84]) == pytest.approx(16.0)
        with pytest.raises(ValueError):
            mean_absolute_error([1, 2], [1])
        with pytest.raises(ValueError):
            mean_absolute_error([0], [1])

    def test_speedup_table(self):
        base = {"a": 100, "b": 200}
        designs = {"x": {"a": 50, "b": 100}}
        rows = speedup_table(base, designs)
        assert rows == [("a", {"x": 2.0}), ("b", {"x": 2.0})]
