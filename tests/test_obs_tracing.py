"""Integration tests for tracing, stall attribution and run telemetry.

Three contracts from the observability layer's design:

* **conservation** — with attribution on, every sub-core's stall buckets
  sum to exactly ``cycles × issue_width`` (every scheduler slot of every
  cycle lands in exactly one bucket), and ``Σ issued + steals`` equals
  the SM's instruction count;
* **zero overhead when off** — an untraced run's serialized stats carry
  no observability fields and are byte-identical run to run;
* **determinism** — the exported Chrome trace is byte-identical across
  fresh interpreters with different ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.engine import (
    ExperimentEngine,
    SimPoint,
    point_key,
    trace_stem,
)
from repro.gpu import simulate
from repro.obs import Tracer, read_manifest
from repro.obs.events import validate_chrome_trace, validate_event
from repro.obs.stall import ISSUED, STALL_BUCKETS
from repro.trace import TraceBuilder, make_kernel

from .conftest import simple_kernel

SRC = str(Path(__file__).resolve().parent.parent / "src")

POINT = SimPoint("rod-nw", "baseline")


def barrier_memory_kernel(warps: int = 8):
    """Warps that load, synchronize, then compute — exercises memory
    stalls, barrier stalls and the event loop's fast-forward path."""
    traces = [
        TraceBuilder()
        .global_load(dst=8, addr_reg=0, base_address=4096 * w, num_lines=4)
        .barrier()
        .fma_chain(16)
        .build()
        for w in range(warps)
    ]
    return make_kernel("obs-barrier-mem", traces)


def assert_conserved(stats, config) -> None:
    expected = stats.cycles * config.issue_width
    for sm in stats.sms:
        assert sm.stall_cycles is not None
        issued = 0
        for buckets in sm.stall_cycles:
            assert set(buckets) == set(STALL_BUCKETS)
            assert all(v >= 0 for v in buckets.values())
            assert sum(buckets.values()) == expected
            issued += buckets[ISSUED]
        assert issued + sm.steals == sm.instructions
    assert stats.conservation_errors() == []


class TestStallConservation:
    def test_alu_kernel(self, tiny_volta):
        config = tiny_volta.replace(stall_attribution=True, sanitize=True)
        stats = simulate(simple_kernel(warps=12), config)
        assert stats.cycles > 0
        assert_conserved(stats, config)

    def test_memory_and_barrier_kernel(self, tiny_volta):
        config = tiny_volta.replace(stall_attribution=True, sanitize=True)
        stats = simulate(barrier_memory_kernel(), config)
        assert_conserved(stats, config)

    def test_multi_sm_with_tracer(self, volta):
        config = volta.replace(
            num_sms=2, stall_attribution=True, sanitize=True
        )
        tracer = Tracer(max_cycles=500)
        stats = simulate(simple_kernel(warps=16), config, tracer=tracer)
        assert_conserved(stats, config)
        assert len(tracer) > 0
        for event in tracer.events:
            assert validate_event(event) == []
            assert event["t"] < 500

    def test_conservation_survives_serialization(self, tiny_volta):
        from repro.metrics.stats import SimStats

        config = tiny_volta.replace(stall_attribution=True)
        stats = simulate(barrier_memory_kernel(), config)
        back = SimStats.from_payload(stats.to_payload())
        assert back.conservation_errors() == []
        assert back.sms[0].stall_cycles == stats.sms[0].stall_cycles


class TestTracingOffIsInert:
    def test_untraced_payload_has_no_obs_fields(self, tiny_volta):
        stats = simulate(simple_kernel(), tiny_volta)
        payload = stats.to_payload()
        for sm in payload["sms"]:
            assert "stall_cycles" not in sm
        assert all(sm.stall_cycles is None for sm in stats.sms)

    def test_untraced_runs_are_byte_identical(self, tiny_volta):
        a = simulate(simple_kernel(), tiny_volta)
        b = simulate(simple_kernel(), tiny_volta)
        dump = lambda s: json.dumps(s.to_payload(), sort_keys=True)  # noqa: E731
        assert dump(a) == dump(b)

    def test_traced_and_untraced_agree_on_timing(self, tiny_volta):
        plain = simulate(simple_kernel(), tiny_volta)
        traced = simulate(
            simple_kernel(),
            tiny_volta.replace(stall_attribution=True),
            tracer=Tracer(),
        )
        assert traced.cycles == plain.cycles
        assert traced.instructions == plain.instructions


class TestCacheKeySeparation:
    def test_trace_flag_keys_the_cache_apart(self):
        assert point_key(POINT) != point_key(POINT, trace=True)
        assert point_key(POINT, sanitize=True) != point_key(POINT, trace=True)
        assert point_key(POINT, trace=True) == point_key(POINT, trace=True)

    def test_trace_stem_is_filesystem_safe(self):
        stem = trace_stem(SimPoint("cg-lou", "rba", num_sms=4))
        assert stem == "cg-lou--rba--sms4"
        assert "/" not in stem and " " not in stem


class TestEngineTelemetry:
    def test_traced_run_writes_files_and_manifest(self, tmp_path):
        engine = ExperimentEngine(
            workers=1, use_disk_cache=False, trace_dir=tmp_path / "traces"
        )
        stats = engine.run_point(POINT)
        assert stats.sms[0].stall_cycles is not None

        stem = trace_stem(POINT)
        chrome = tmp_path / "traces" / f"{stem}.trace.json"
        events = tmp_path / "traces" / f"{stem}.events.jsonl"
        assert chrome.is_file() and events.is_file()
        assert validate_chrome_trace(json.loads(chrome.read_text())) == []

        records = read_manifest(tmp_path / "traces" / "manifest.jsonl")
        assert len(records) == 1
        assert records[0]["source"] == "sim"
        assert records[0]["trace"] == str(chrome)
        assert records[0]["key"] == point_key(POINT, trace=True)

    def test_cache_hits_are_recorded_with_matching_digests(self, tmp_path):
        engine = ExperimentEngine(
            workers=1, use_disk_cache=False, trace_dir=tmp_path / "traces"
        )
        engine.run_point(POINT)
        engine.run_point(POINT)
        records = read_manifest(tmp_path / "traces" / "manifest.jsonl")
        assert [r["source"] for r in records] == ["sim", "memory"]
        assert records[0]["digest"] == records[1]["digest"]
        assert engine.profile.hit_rate() == 0.5

    def test_untraced_engine_writes_nothing(self, tmp_path):
        engine = ExperimentEngine(workers=1, use_disk_cache=False)
        stats = engine.run_point(POINT)
        assert engine.manifest is None
        assert stats.sms[0].stall_cycles is None

    def test_manifest_without_tracing(self, tmp_path):
        engine = ExperimentEngine(
            workers=1,
            use_disk_cache=False,
            manifest_path=tmp_path / "audit.jsonl",
        )
        engine.run_point(POINT)
        records = read_manifest(tmp_path / "audit.jsonl")
        assert len(records) == 1
        assert records[0]["source"] == "sim"
        assert "trace" not in records[0]

    def test_all_cache_profile_summary(self, tmp_path):
        engine = ExperimentEngine(workers=1, use_disk_cache=False)
        engine.run_point(POINT)
        engine.profile = type(engine.profile)()  # reset counters
        engine.run_point(POINT)
        summary = engine.profile.summary()
        assert "hit rate 100.0%" in summary
        assert "no simulations ran" in summary

    def test_worker_skew_of_even_and_skewed_loads(self):
        from repro.experiments.engine import EngineProfile

        profile = EngineProfile()
        assert profile.worker_skew() == 1.0
        profile.note_sim("a", 1.0, worker=1)
        profile.note_sim("b", 1.0, worker=2)
        assert profile.worker_skew() == 1.0
        profile.note_sim("c", 2.0, worker=2)
        assert profile.worker_skew() == pytest.approx(1.5)
        assert "worker skew" in profile.summary()


_TRACE_SCRIPT = """\
import sys
from repro.experiments.engine import ExperimentEngine, SimPoint

engine = ExperimentEngine(workers=1, use_disk_cache=False, trace_dir=sys.argv[1])
engine.run_point(SimPoint("rod-nw", "baseline"))
"""


def _trace_in_fresh_process(hash_seed: str, out_dir: Path) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [sys.executable, "-c", _TRACE_SCRIPT, str(out_dir)],
        capture_output=True,
        env=env,
        check=True,
    )
    stem = trace_stem(SimPoint("rod-nw", "baseline"))
    return (out_dir / f"{stem}.trace.json").read_bytes()


@pytest.mark.slow
def test_chrome_trace_identical_across_hash_seeds(tmp_path):
    """Golden byte-stability: the exported trace document is a pure
    function of the simulation inputs, like the stats themselves."""
    out_a = _trace_in_fresh_process("0", tmp_path / "a")
    out_b = _trace_in_fresh_process("424242", tmp_path / "b")
    assert out_a, "subprocess produced no trace"
    assert out_a == out_b
