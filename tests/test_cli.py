"""Tests for the ``python -m repro`` experiment CLI."""

import pytest

from repro.__main__ import EXPERIMENTS, _parse_args, main


@pytest.fixture
def restore_engine():
    """Put the process-wide engine back after a CLI run reconfigures it.

    ``main()`` calls ``configure()``, and trace settings would otherwise
    leak into every later test of the session (different cache keys,
    stray trace files).
    """
    from repro.experiments import engine as engine_module

    saved = engine_module._engine
    yield
    engine_module._engine = saved


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "headline" in out

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 0
        assert "experiments:" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_fast_experiment(self, capsys):
        assert main(["fig13"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 13" in out

    def test_every_registered_name_is_callable(self):
        for fn in EXPERIMENTS.values():
            assert callable(fn)


class TestObservabilityFlags:
    def test_trace_dir_implies_trace(self):
        opts, names = _parse_args(["--trace-dir", "out"])
        assert opts["trace"] and opts["trace_dir"] == "out"
        assert names == []

    def test_bare_trace_gets_default_dir(self):
        opts, _ = _parse_args(["--trace"])
        assert opts["trace_dir"] == "repro-traces"

    def test_trace_cycles_must_be_positive_int(self, capsys):
        assert main(["--trace-cycles", "0"]) == 2
        assert main(["--trace-cycles", "many"]) == 2

    def test_profile_report_runs_one_point(
        self, tmp_path, capsys, restore_engine
    ):
        assert (
            main(
                [
                    "--profile-report",
                    "rod-nw:baseline",
                    "--workers",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "profile: rod-nw" in out
        assert "issue stalls" in out

    def test_profile_report_unknown_app(self, capsys, restore_engine):
        assert main(["--profile-report", "no-such-app", "--workers", "1"]) == 2
        assert "unknown app" in capsys.readouterr().err

    def test_trace_writes_files_and_stall_chart(
        self, tmp_path, capsys, restore_engine
    ):
        trace_dir = tmp_path / "traces"
        assert (
            main(
                [
                    "--trace",
                    "--trace-dir",
                    str(trace_dir),
                    "--trace-cycles",
                    "300",
                    "--profile-report",
                    "rod-nw:baseline",
                    "--workers",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "issue-slot attribution" in out
        assert "manifest.jsonl: 1 records" in out
        assert (trace_dir / "rod-nw--baseline--sms1.trace.json").is_file()
        assert (trace_dir / "rod-nw--baseline--sms1.events.jsonl").is_file()
        assert (trace_dir / "manifest.jsonl").is_file()
