"""Tests for the ``python -m repro`` experiment CLI."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "headline" in out

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 0
        assert "experiments:" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_fast_experiment(self, capsys):
        assert main(["fig13"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 13" in out

    def test_every_registered_name_is_callable(self):
        for fn in EXPERIMENTS.values():
            assert callable(fn)
