"""Tests for the ``python -m repro`` experiment CLI."""

import pytest

from repro.__main__ import EXPERIMENTS, _parse_args, main


@pytest.fixture
def restore_engine():
    """Put the process-wide engine back after a CLI run reconfigures it.

    ``main()`` calls ``configure()``, and trace settings would otherwise
    leak into every later test of the session (different cache keys,
    stray trace files).
    """
    from repro.experiments import engine as engine_module

    saved = engine_module._engine
    yield
    engine_module._engine = saved


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "headline" in out

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 0
        assert "experiments:" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_fast_experiment(self, capsys):
        assert main(["fig13"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 13" in out

    def test_every_registered_name_is_callable(self):
        for fn in EXPERIMENTS.values():
            assert callable(fn)


class TestObservabilityFlags:
    def test_trace_dir_implies_trace(self):
        opts, names = _parse_args(["--trace-dir", "out"])
        assert opts["trace"] and opts["trace_dir"] == "out"
        assert names == []

    def test_bare_trace_gets_default_dir(self):
        opts, _ = _parse_args(["--trace"])
        assert opts["trace_dir"] == "repro-traces"

    def test_trace_cycles_must_be_positive_int(self, capsys):
        assert main(["--trace-cycles", "0"]) == 2
        assert main(["--trace-cycles", "many"]) == 2

    def test_profile_report_runs_one_point(
        self, tmp_path, capsys, restore_engine
    ):
        assert (
            main(
                [
                    "--profile-report",
                    "rod-nw:baseline",
                    "--workers",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "profile: rod-nw" in out
        assert "issue stalls" in out

    def test_profile_report_unknown_app(self, capsys, restore_engine):
        assert main(["--profile-report", "no-such-app", "--workers", "1"]) == 2
        assert "unknown app" in capsys.readouterr().err

    def test_trace_writes_files_and_stall_chart(
        self, tmp_path, capsys, restore_engine
    ):
        trace_dir = tmp_path / "traces"
        assert (
            main(
                [
                    "--trace",
                    "--trace-dir",
                    str(trace_dir),
                    "--trace-cycles",
                    "300",
                    "--profile-report",
                    "rod-nw:baseline",
                    "--workers",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "issue-slot attribution" in out
        assert "manifest.jsonl: 1 records" in out
        assert (trace_dir / "rod-nw--baseline--sms1.trace.json").is_file()
        assert (trace_dir / "rod-nw--baseline--sms1.events.jsonl").is_file()
        assert (trace_dir / "manifest.jsonl").is_file()


class TestRobustnessFlags:
    def test_resume_defaults_a_journal_path(self):
        opts, _ = _parse_args(["--resume"])
        assert opts["resume"] is True
        assert opts["journal"] == "repro-journal.jsonl"

    def test_explicit_journal_path_is_kept(self):
        opts, _ = _parse_args(["--resume", "--journal", "mine.jsonl"])
        assert opts["journal"] == "mine.jsonl"

    def test_trace_runs_default_the_journal_beside_traces(self):
        # Under --trace the engine itself places the journal in the
        # trace dir; the CLI must not override that with its fallback.
        opts, _ = _parse_args(["--trace", "--resume"])
        assert opts["resume"] is True
        assert opts["journal"] is None

    def test_journal_written_and_resume_serves_from_cache(
        self, tmp_path, capsys, restore_engine
    ):
        from repro.experiments.engine import get_engine
        from repro.obs import load_journal

        journal = tmp_path / "journal.jsonl"
        args = [
            "--profile-report",
            "rod-nw:baseline",
            "--workers",
            "1",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--journal",
            str(journal),
        ]
        assert main(args) == 0
        assert len(load_journal(journal)) == 1
        assert main(args + ["--resume"]) == 0
        assert get_engine().profile.resumed == 1
        assert get_engine().profile.sims == 0
