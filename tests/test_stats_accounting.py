"""Regression tests for stats accounting across runs and CTA lifecycles.

Covers three historical bugs:

* ``GPU.run`` reported cumulative L1/L2/DRAM and per-SM counters, so a
  second ``run()`` on the same GPU included the first kernel's work;
* CTA release derived per-warp registers as ``tb.regs // tb.num_warps``
  instead of reusing the figure charged at admission, drifting (and
  stranding RF space) whenever the division was inexact;
* ``GPU.__init__`` built a thread-block scheduler that ``run()`` shadowed
  immediately, and ``run_concurrent`` attributed its stats to the first
  kernel's trace.
"""

from __future__ import annotations

import pytest

from repro import GPU, volta_v100
from repro.trace import CTATrace, KernelTrace

from .conftest import fma_warp, simple_kernel


def _counters(stats):
    return {
        "instructions": stats.instructions,
        "l1_hits": stats.l1_hits,
        "l1_misses": stats.l1_misses,
        "l2_hits": stats.l2_hits,
        "l2_misses": stats.l2_misses,
        "dram_accesses": stats.dram_accesses,
        "ctas": sum(sm.ctas_completed for sm in stats.sms),
        "rf_reads": sum(sm.rf_reads for sm in stats.sms),
        "issue_counts": [sm.issue_counts for sm in stats.sms],
        "finish_events": sum(len(sm.warp_finish_cycles) for sm in stats.sms),
    }


class TestSequentialRunsReportPerRunDeltas:
    def test_second_run_does_not_include_first(self):
        kernel = simple_kernel(warps=8, insts=32)
        gpu = GPU(volta_v100(), num_sms=1)
        first = gpu.run(kernel)
        second = gpu.run(kernel)

        fresh = GPU(volta_v100(), num_sms=1).run(kernel)
        assert _counters(first) == _counters(fresh)
        # Each run() models an independent launch (caches cold-start), so
        # the second run repeats the first exactly.
        assert _counters(second) == _counters(first)

    def test_cumulative_counters_split_across_runs(self):
        kernel = simple_kernel(warps=8, insts=32)
        gpu = GPU(volta_v100(), num_sms=1)
        first = gpu.run(kernel)
        second = gpu.run(kernel)
        # The per-run deltas must partition the GPU-lifetime totals.
        assert gpu.l2.stats.hits == first.l2_hits + second.l2_hits
        assert gpu.l2.stats.misses == first.l2_misses + second.l2_misses
        assert gpu.dram.stats.accesses == (
            first.dram_accesses + second.dram_accesses
        )
        l1 = gpu.sms[0].memory.l1.stats
        assert l1.hits == first.l1_hits + second.l1_hits
        assert l1.misses == first.l1_misses + second.l1_misses
        assert gpu.sms[0].total_instructions == (
            first.instructions + second.instructions
        )

    def test_timeline_not_replayed_across_runs(self):
        kernel = simple_kernel(warps=8, insts=32)
        gpu = GPU(volta_v100(), num_sms=1, collect_timeline=True)
        first = gpu.run(kernel)
        second = gpu.run(kernel)
        assert first.sms[0].rf_read_timeline
        # Timelines are reported relative to each run's own start: the
        # second run's timeline must be the first's all over again (the
        # runs are identical launches), not a continuation of it — a
        # replayed cumulative timeline would double its length instead.
        assert second.sms[0].rf_read_timeline == first.sms[0].rf_read_timeline
        assert second.cycles == first.cycles


class TestBackToBackRunsMatchFreshGPU:
    """A GPU instance is reusable: ``run()`` resets transient machine state
    (busy L1 ports, in-flight L1/L2 MSHR fills, warp-id counters, scheduler
    pointers), so a second launch produces byte-for-byte the payload a
    fresh GPU would.  Regression test for leftover memory-subsystem state
    (``MemorySubsystem._l1_port_free`` and MSHR maps surviving a drained
    kernel) skewing the second run's timing.
    """

    def test_second_run_matches_fresh_gpu_byte_for_byte(self):
        from repro.obs import stats_digest
        from repro.workloads import get_kernel

        # A registry app with real global-memory traffic, so the L1/L2
        # MSHR and port state actually gets exercised between runs.
        kernel = get_kernel("rod-nw")
        fresh = GPU(volta_v100(), num_sms=2).run(kernel).to_payload()
        gpu = GPU(volta_v100(), num_sms=2)
        gpu.run(kernel)
        second = gpu.run(kernel).to_payload()
        assert second == fresh
        assert stats_digest(second) == stats_digest(fresh)

    def test_second_run_unaffected_by_a_different_first_kernel(self):
        from repro.obs import stats_digest
        from repro.workloads import get_kernel

        fresh = GPU(volta_v100(), num_sms=1).run(get_kernel("tpcU-q3"))
        gpu = GPU(volta_v100(), num_sms=1)
        gpu.run(get_kernel("rod-nw"))  # leaves warm caches + drained MSHRs
        second = gpu.run(get_kernel("tpcU-q3"))
        assert stats_digest(second.to_payload()) == stats_digest(fresh.to_payload())


class TestRegisterAccounting:
    def test_non_divisible_regs_release_exactly_what_was_charged(self):
        # CTAs of unequal warp counts: the old release path divided the
        # first CTA's register total by *this* CTA's warp count, releasing
        # more than was charged and corrupting ``registers_used``.
        ctas = [
            CTATrace([fma_warp(16) for _ in range(3)]),
            CTATrace([fma_warp(16) for _ in range(2)]),
        ]
        kernel = KernelTrace("mixed-ctas", ctas, regs_per_thread=8)
        gpu = GPU(volta_v100(), num_sms=1)
        gpu.run(kernel)
        for sc in gpu.sms[0].subcores:
            assert sc.registers_used == 0

    def test_admission_charge_matches_threadblock_record(self):
        kernel = simple_kernel(warps=4, insts=8)
        gpu = GPU(volta_v100(), num_sms=1)
        sm = gpu.sms[0]
        assert sm.try_allocate_cta(kernel, kernel.ctas[0], 0, now=0)
        tb = sm.resident_ctas[0]
        assert tb.regs_per_warp == kernel.regs_per_warp()
        assert tb.regs == tb.regs_per_warp * tb.num_warps
        charged = sum(sc.registers_used for sc in sm.subcores)
        assert charged == tb.regs_per_warp * tb.num_warps


class TestSchedulerLifecycle:
    def test_gpu_has_no_dead_tb_scheduler_attribute(self):
        gpu = GPU(volta_v100(), num_sms=1)
        assert not hasattr(gpu, "tb_scheduler")

    def test_run_concurrent_names_all_kernels(self):
        a = simple_kernel(warps=4, insts=16, name="alpha")
        b = simple_kernel(warps=4, insts=16, name="beta")
        stats = GPU(volta_v100(), num_sms=1).run_concurrent([a, b])
        assert stats.kernel_name == "alpha+beta"
        solo_a = GPU(volta_v100(), num_sms=1).run(a)
        solo_b = GPU(volta_v100(), num_sms=1).run(b)
        assert stats.instructions == solo_a.instructions + solo_b.instructions
