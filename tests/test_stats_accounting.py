"""Regression tests for stats accounting across runs and CTA lifecycles.

Covers three historical bugs:

* ``GPU.run`` reported cumulative L1/L2/DRAM and per-SM counters, so a
  second ``run()`` on the same GPU included the first kernel's work;
* CTA release derived per-warp registers as ``tb.regs // tb.num_warps``
  instead of reusing the figure charged at admission, drifting (and
  stranding RF space) whenever the division was inexact;
* ``GPU.__init__`` built a thread-block scheduler that ``run()`` shadowed
  immediately, and ``run_concurrent`` attributed its stats to the first
  kernel's trace.
"""

from __future__ import annotations

import pytest

from repro import GPU, volta_v100
from repro.trace import CTATrace, KernelTrace

from .conftest import fma_warp, simple_kernel


def _counters(stats):
    return {
        "instructions": stats.instructions,
        "l1_hits": stats.l1_hits,
        "l1_misses": stats.l1_misses,
        "l2_hits": stats.l2_hits,
        "l2_misses": stats.l2_misses,
        "dram_accesses": stats.dram_accesses,
        "ctas": sum(sm.ctas_completed for sm in stats.sms),
        "rf_reads": sum(sm.rf_reads for sm in stats.sms),
        "issue_counts": [sm.issue_counts for sm in stats.sms],
        "finish_events": sum(len(sm.warp_finish_cycles) for sm in stats.sms),
    }


class TestSequentialRunsReportPerRunDeltas:
    def test_second_run_does_not_include_first(self):
        kernel = simple_kernel(warps=8, insts=32)
        gpu = GPU(volta_v100(), num_sms=1)
        first = gpu.run(kernel)
        second = gpu.run(kernel)

        fresh = GPU(volta_v100(), num_sms=1).run(kernel)
        assert _counters(first) == _counters(fresh)
        # Same kernel, same instruction/CTA population per run — only the
        # warm shared L2 may legitimately shift the hit/miss split.
        assert second.instructions == first.instructions
        s1, s2 = _counters(first), _counters(second)
        assert s2["ctas"] == s1["ctas"]
        assert s2["finish_events"] == s1["finish_events"]

    def test_cumulative_counters_split_across_runs(self):
        kernel = simple_kernel(warps=8, insts=32)
        gpu = GPU(volta_v100(), num_sms=1)
        first = gpu.run(kernel)
        second = gpu.run(kernel)
        # The per-run deltas must partition the GPU-lifetime totals.
        assert gpu.l2.stats.hits == first.l2_hits + second.l2_hits
        assert gpu.l2.stats.misses == first.l2_misses + second.l2_misses
        assert gpu.dram.stats.accesses == (
            first.dram_accesses + second.dram_accesses
        )
        l1 = gpu.sms[0].memory.l1.stats
        assert l1.hits == first.l1_hits + second.l1_hits
        assert l1.misses == first.l1_misses + second.l1_misses
        assert gpu.sms[0].total_instructions == (
            first.instructions + second.instructions
        )

    def test_timeline_not_replayed_across_runs(self):
        kernel = simple_kernel(warps=8, insts=32)
        gpu = GPU(volta_v100(), num_sms=1, collect_timeline=True)
        first = gpu.run(kernel)
        second = gpu.run(kernel)
        assert first.sms[0].rf_read_timeline
        # Per-run slices: the second run's timeline starts after the first's.
        first_cycles = {c for c, _ in first.sms[0].rf_read_timeline}
        second_cycles = {c for c, _ in second.sms[0].rf_read_timeline}
        assert not (first_cycles & second_cycles)


class TestRegisterAccounting:
    def test_non_divisible_regs_release_exactly_what_was_charged(self):
        # CTAs of unequal warp counts: the old release path divided the
        # first CTA's register total by *this* CTA's warp count, releasing
        # more than was charged and corrupting ``registers_used``.
        ctas = [
            CTATrace([fma_warp(16) for _ in range(3)]),
            CTATrace([fma_warp(16) for _ in range(2)]),
        ]
        kernel = KernelTrace("mixed-ctas", ctas, regs_per_thread=8)
        gpu = GPU(volta_v100(), num_sms=1)
        gpu.run(kernel)
        for sc in gpu.sms[0].subcores:
            assert sc.registers_used == 0

    def test_admission_charge_matches_threadblock_record(self):
        kernel = simple_kernel(warps=4, insts=8)
        gpu = GPU(volta_v100(), num_sms=1)
        sm = gpu.sms[0]
        assert sm.try_allocate_cta(kernel, kernel.ctas[0], 0, now=0)
        tb = sm.resident_ctas[0]
        assert tb.regs_per_warp == kernel.regs_per_warp()
        assert tb.regs == tb.regs_per_warp * tb.num_warps
        charged = sum(sc.registers_used for sc in sm.subcores)
        assert charged == tb.regs_per_warp * tb.num_warps


class TestSchedulerLifecycle:
    def test_gpu_has_no_dead_tb_scheduler_attribute(self):
        gpu = GPU(volta_v100(), num_sms=1)
        assert not hasattr(gpu, "tb_scheduler")

    def test_run_concurrent_names_all_kernels(self):
        a = simple_kernel(warps=4, insts=16, name="alpha")
        b = simple_kernel(warps=4, insts=16, name="beta")
        stats = GPU(volta_v100(), num_sms=1).run_concurrent([a, b])
        assert stats.kernel_name == "alpha+beta"
        solo_a = GPU(volta_v100(), num_sms=1).run(a)
        solo_b = GPU(volta_v100(), num_sms=1).run(b)
        assert stats.instructions == solo_a.instructions + solo_b.instructions
