"""Unit tests for the warp-scheduler policies."""

import pytest

from repro.config import SchedulerPolicy, volta_v100
from repro.core import (
    ArbitrationUnit,
    BankStealingScheduler,
    CollectorUnit,
    GTOScheduler,
    LRRScheduler,
    RBAScheduler,
    RegisterFile,
    ThreadBlock,
    Warp,
    make_scheduler,
)
from repro.isa import Instruction, Opcode, fadd, ffma
from repro.trace import CTATrace, WarpTrace


def make_warps(instr_lists):
    traces = [WarpTrace.from_instructions(instrs) for instrs in instr_lists]
    cta = ThreadBlock(0, CTATrace(traces), regs=4096, shared_mem=0)
    warps = []
    for i, tr in enumerate(traces):
        w = Warp(warp_id=i, cta=cta, trace=tr, subcore_id=0, age=i)
        cta.add_warp(w)
        warps.append(w)
    return warps


def scheduler_pair(cls, mapping="mod", score_latency=0):
    rf = RegisterFile(2, mapping)
    arb = ArbitrationUnit(2, score_latency=score_latency)
    return cls(arb, rf), arb, rf


class TestGTO:
    def test_prefers_last_issued(self):
        sched, _, _ = scheduler_pair(GTOScheduler)
        warps = make_warps([[fadd(0, 1, 2)]] * 3)
        sched.note_issue(warps[2])
        assert sched.select(warps, now=0) is warps[2]

    def test_falls_back_to_oldest(self):
        sched, _, _ = scheduler_pair(GTOScheduler)
        warps = make_warps([[fadd(0, 1, 2)]] * 3)
        sched.note_issue(warps[2])
        assert sched.select(warps[:2], now=0) is warps[0]

    def test_empty_candidates(self):
        sched, _, _ = scheduler_pair(GTOScheduler)
        assert sched.select([], now=0) is None

    def test_note_warp_removed_clears_greedy(self):
        sched, _, _ = scheduler_pair(GTOScheduler)
        warps = make_warps([[fadd(0, 1, 2)]] * 2)
        sched.note_issue(warps[1])
        sched.note_warp_removed(warps[1])
        assert sched.select(warps, now=0) is warps[0]


class TestLRR:
    def test_rotates(self):
        sched, _, _ = scheduler_pair(LRRScheduler)
        warps = make_warps([[fadd(0, 1, 2)]] * 3)
        assert sched.select(warps, now=0) is warps[0]
        sched.note_issue(warps[0])
        assert sched.select(warps, now=0) is warps[1]
        sched.note_issue(warps[2])
        assert sched.select(warps, now=0) is warps[0]  # wrap-around


class TestRBA:
    def test_picks_low_pressure_bank(self):
        sched, arb, rf = scheduler_pair(RBAScheduler)
        # Load bank 0 with pending requests.
        cu = CollectorUnit(0)
        warps_for_cu = make_warps([[ffma(4, 0, 2, 4)]])
        cu.allocate(warps_for_cu[0], ffma(4, 0, 2, 4), cycle=0)
        arb.request(cu, 0)
        arb.request(cu, 0)
        # warp A reads bank 0 (even regs); warp B reads bank 1 (odd regs).
        wa, wb = make_warps([[fadd(9, 0, 2)], [fadd(9, 1, 3)]])
        wb.age = 5  # older warp is A; GTO would pick A
        assert sched.select([wa, wb], now=0) is wb

    def test_tie_breaks_by_age(self):
        sched, _, _ = scheduler_pair(RBAScheduler)
        warps = make_warps([[fadd(9, 0, 1)], [fadd(9, 0, 1)]])
        assert sched.select(warps, now=0) is warps[0]

    def test_zero_source_instructions_score_zero(self):
        sched, arb, _ = scheduler_pair(RBAScheduler)
        cu = CollectorUnit(0)
        filler = make_warps([[ffma(4, 0, 2, 4)]])[0]
        cu.allocate(filler, ffma(4, 0, 2, 4), cycle=0)
        arb.request(cu, 0)
        arb.request(cu, 1)
        reader, barrier_warp = make_warps(
            [[fadd(9, 0, 1)], [Instruction(Opcode.BAR)]]
        )
        barrier_warp.age = 10
        assert sched.select([reader, barrier_warp], now=0) is barrier_warp

    def test_respects_stale_scores(self):
        sched, arb, rf = scheduler_pair(RBAScheduler, score_latency=100)
        # queues currently loaded on bank 0, but the visible snapshot is
        # empty, so RBA behaves like age order.
        cu = CollectorUnit(0)
        filler = make_warps([[ffma(4, 0, 2, 4)]])[0]
        arb.queue_lengths(0)  # take the t=0 snapshot first
        cu.allocate(filler, ffma(4, 0, 2, 4), cycle=0)
        arb.request(cu, 0)
        arb.request(cu, 0)
        wa, wb = make_warps([[fadd(9, 0, 2)], [fadd(9, 1, 3)]])
        assert sched.select([wa, wb], now=5) is wa  # stale: age order


class TestBankStealing:
    def test_steals_only_idle_bank_warps(self):
        sched, arb, rf = scheduler_pair(BankStealingScheduler)
        cu = CollectorUnit(0)
        filler = make_warps([[ffma(4, 0, 2, 4)]])[0]
        cu.allocate(filler, ffma(4, 0, 2, 4), cycle=0)
        arb.request(cu, 0)  # bank 0 busy, bank 1 idle
        even_warp, odd_warp = make_warps([[fadd(9, 0, 2)], [fadd(9, 1, 3)]])
        assert sched.steal_candidate([even_warp, odd_warp], now=0) is odd_warp

    def test_no_candidate_when_all_banks_busy(self):
        sched, arb, _ = scheduler_pair(BankStealingScheduler)
        cu = CollectorUnit(0)
        filler = make_warps([[ffma(4, 0, 2, 4)]])[0]
        cu.allocate(filler, ffma(4, 0, 2, 4), cycle=0)
        arb.request(cu, 0)
        arb.request(cu, 1)
        warps = make_warps([[fadd(9, 0, 2)]])
        assert sched.steal_candidate(warps, now=0) is None

    def test_flag(self):
        assert BankStealingScheduler.steals_banks
        assert not GTOScheduler.steals_banks


class TestFactory:
    def test_make_scheduler_dispatch(self):
        rf = RegisterFile(2)
        arb = ArbitrationUnit(2)
        for policy, cls in [
            (SchedulerPolicy.GTO, GTOScheduler),
            (SchedulerPolicy.LRR, LRRScheduler),
            (SchedulerPolicy.RBA, RBAScheduler),
            (SchedulerPolicy.BANK_STEALING, BankStealingScheduler),
        ]:
            cfg = volta_v100().replace(scheduler=policy)
            assert isinstance(make_scheduler(cfg, arb, rf), cls)


class TestTwoLevel:
    def test_stays_in_active_group(self):
        from repro.core import TwoLevelScheduler

        sched, _, _ = scheduler_pair(GTOScheduler)  # reuse arb/rf plumbing
        tl = TwoLevelScheduler(sched.arbitration, sched.register_file, group_size=2)
        warps = make_warps([[fadd(9, 0, 1)]] * 4)  # ages 0..3 -> groups 0,0,1,1
        assert tl.select(warps, now=0) is warps[0]
        tl.note_issue(warps[0])
        assert tl.select(warps, now=0) is warps[1]

    def test_switches_group_when_active_stalled(self):
        from repro.core import TwoLevelScheduler

        sched, _, _ = scheduler_pair(GTOScheduler)
        tl = TwoLevelScheduler(sched.arbitration, sched.register_file, group_size=2)
        warps = make_warps([[fadd(9, 0, 1)]] * 4)
        # only group-1 warps are ready
        assert tl.select(warps[2:], now=0) is warps[2]
        assert tl.active_group == 1

    def test_group_size_validation(self):
        from repro.core import TwoLevelScheduler

        sched, arb, rf = scheduler_pair(GTOScheduler)
        import pytest as _pytest

        with _pytest.raises(ValueError):
            TwoLevelScheduler(arb, rf, group_size=0)

    def test_factory(self):
        from repro.config import SchedulerPolicy
        from repro.core import TwoLevelScheduler

        rf = RegisterFile(2)
        arb = ArbitrationUnit(2)
        cfg = volta_v100().replace(scheduler=SchedulerPolicy.TWO_LEVEL)
        assert isinstance(make_scheduler(cfg, arb, rf), TwoLevelScheduler)
