"""Tests for the analytical area/power model (Fig. 13)."""

import pytest

from repro.config import rba as rba_preset
from repro.config import volta_v100, with_cus
from repro.power import Cost, DesignPoint, config_cost, crossbar, flops, normalized_costs, sram


class TestComponents:
    def test_cost_addition_and_scaling(self):
        c = Cost(1.0, 2.0) + Cost(3.0, 4.0)
        assert c.area == 4.0 and c.power == 6.0
        s = c.scaled(2.0)
        assert s.area == 8.0 and s.power == 12.0

    def test_sram_linear_in_bits(self):
        assert sram(200).area == 2 * sram(100).area

    def test_crossbar_quadratic_in_ports(self):
        small = crossbar(2, 6, 32)
        big = crossbar(4, 12, 32)
        assert big.area == pytest.approx(4 * small.area)

    def test_activity_scales_power_not_area(self):
        lo, hi = flops(100, activity=0.1), flops(100, activity=1.0)
        assert lo.area == hi.area
        assert lo.power < hi.power


class TestDesignModel:
    def test_more_cus_cost_more(self):
        costs = [DesignPoint(f"{n}cu", collector_units=n).cost() for n in (2, 4, 8)]
        assert costs[0].area < costs[1].area < costs[2].area
        assert costs[0].power < costs[1].power < costs[2].power

    def test_rba_overhead_is_tiny(self):
        base = DesignPoint("b", collector_units=2).cost()
        rba = DesignPoint("r", collector_units=2, rba=True).cost()
        assert 1.0 < rba.area / base.area < 1.01
        assert 1.0 < rba.power / base.power < 1.01

    def test_fig13_paper_anchors(self):
        costs = normalized_costs()
        assert costs["2cu-baseline"]["area"] == 1.0
        # paper: 4 CUs -> +27% area, +60% power (we accept a small window)
        assert 1.20 <= costs["4cu"]["area"] <= 1.35
        assert 1.45 <= costs["4cu"]["power"] <= 1.75
        # paper: RBA ~1% in both
        assert costs["2cu+rba"]["area"] <= 1.01
        assert costs["2cu+rba"]["power"] <= 1.01

    def test_config_cost_reads_config(self):
        base = config_cost(volta_v100())
        more = config_cost(with_cus(4))
        assert more.area > base.area
        rba_cost = config_cost(rba_preset())
        assert rba_cost.area > base.area
        assert rba_cost.area / base.area < 1.01

    def test_bank_scaling_costs(self):
        two = DesignPoint("2b", collector_units=2, rf_banks=2).cost()
        four = DesignPoint("4b", collector_units=2, rf_banks=4).cost()
        assert four.area > two.area
