"""Run-level metrics, heartbeat and manifest-schema tests (repro.obs).

Covers the metrics registry's instruments and both export round-trips
(Prometheus text and canonical JSON), the validators' rejection of
malformed documents, the heartbeat's throttled atomic writes and
staleness detection under a fake clock, and the versioned run-manifest
records (current / legacy / unknown-version classification).
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    Heartbeat,
    MetricsRegistry,
    RunManifest,
    parse_prometheus_text,
    read_status,
    record_stats_metrics,
    validate_manifest,
    validate_manifest_record,
    validate_metrics_json,
    validate_prometheus_text,
    validate_status,
)
from repro.obs.heartbeat import STATUS_SCHEMA_VERSION


def make_registry() -> MetricsRegistry:
    r = MetricsRegistry()
    c = r.counter("repro_points_total", "Points by source.", ("source",))
    c.labels(source="sim").inc(3)
    c.labels(source="memory").inc()
    r.gauge("repro_workers", "Active workers.").set(4)
    h = r.histogram(
        "repro_phase_seconds", "Phase wall time.", ("phase",),
        buckets=(0.1, 1.0, 10.0),
    )
    h.labels(phase="simulate").observe(0.5)
    h.labels(phase="simulate").observe(20.0)
    h.labels(phase="plan").observe(0.01)
    return r


class TestRegistry:
    def test_counter_accumulates_per_label_set(self):
        r = make_registry()
        c = r.counter("repro_points_total", "Points by source.", ("source",))
        assert c.labels(source="sim").value == 3
        assert c.labels(source="memory").value == 1

    def test_counter_rejects_negative(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.counter("c_total", "help").inc(-1)

    def test_reregistration_returns_same_family(self):
        r = MetricsRegistry()
        a = r.counter("x_total", "help", ("l",))
        b = r.counter("x_total", "help", ("l",))
        assert a is b

    def test_conflicting_reregistration_rejected(self):
        r = MetricsRegistry()
        r.counter("x_total", "help", ("l",))
        with pytest.raises(ValueError):
            r.gauge("x_total", "help", ("l",))
        with pytest.raises(ValueError):
            r.counter("x_total", "help", ("other",))

    def test_invalid_names_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.counter("0bad", "help")
        with pytest.raises(ValueError):
            r.counter("ok_total", "help", ("le",))

    def test_wrong_labels_rejected(self):
        r = MetricsRegistry()
        c = r.counter("x_total", "help", ("a", "b"))
        with pytest.raises(ValueError):
            c.labels(a="1")

    def test_histogram_buckets_cumulative_in_export(self):
        r = make_registry()
        text = r.to_prometheus()
        # 0.5 and 20.0 observed for phase=simulate: le=1 covers one
        # observation, +Inf both; sum carries exact totals.
        assert 'repro_phase_seconds_bucket{phase="simulate",le="1"} 1' in text
        assert 'repro_phase_seconds_bucket{phase="simulate",le="+Inf"} 2' in text
        assert 'repro_phase_seconds_sum{phase="simulate"} 20.5' in text

    def test_histogram_requires_increasing_bounds(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.histogram("h_seconds", "help", buckets=(1.0, 1.0))


class TestExports:
    def test_prometheus_round_trip_is_clean(self):
        text = make_registry().to_prometheus()
        assert validate_prometheus_text(text) == []
        families, problems = parse_prometheus_text(text)
        assert problems == []
        assert families["repro_workers"]["samples"]["repro_workers"] == 4.0

    def test_prometheus_validator_catches_decreasing_buckets(self):
        text = (
            "# HELP h_seconds x\n"
            "# TYPE h_seconds histogram\n"
            'h_seconds_bucket{le="1"} 5\n'
            'h_seconds_bucket{le="2"} 3\n'
            'h_seconds_bucket{le="+Inf"} 3\n'
            "h_seconds_sum 1\n"
            "h_seconds_count 3\n"
        )
        problems = validate_prometheus_text(text)
        assert any("decrease" in p for p in problems)

    def test_prometheus_validator_catches_missing_type(self):
        problems = validate_prometheus_text("loose_metric 1\n")
        assert any("TYPE" in p for p in problems)

    def test_json_round_trip_reconstructs_equal_registry(self):
        r = make_registry()
        doc = r.to_json()
        assert validate_metrics_json(doc) == []
        clone = MetricsRegistry.from_json(doc)
        assert clone.to_json() == doc
        assert clone.to_prometheus() == r.to_prometheus()

    def test_json_survives_serialization(self):
        doc = make_registry().to_json()
        assert json.loads(json.dumps(doc)) == doc

    def test_json_validator_rejects_unknown_schema(self):
        doc = make_registry().to_json()
        doc["schema"] = 99
        assert any("schema" in p for p in validate_metrics_json(doc))

    def test_json_validator_rejects_label_mismatch(self):
        doc = make_registry().to_json()
        for entry in doc["metrics"]:
            if entry["name"] == "repro_points_total":
                entry["samples"][0]["labels"] = {"wrong": "x"}
        assert any("labels" in p for p in validate_metrics_json(doc))

    def test_export_is_deterministic(self):
        assert make_registry().to_prometheus() == make_registry().to_prometheus()
        assert make_registry().to_json() == make_registry().to_json()


class _FakeSM:
    def __init__(self, stall_cycles):
        self.stall_cycles = stall_cycles


class _FakeStats:
    cycles = 100
    instructions = 250
    sms = [
        _FakeSM([{"issued": 30, "idle": 70}, {"issued": 10, "idle": 90}]),
        _FakeSM(None),
    ]


class TestStatsMetrics:
    def test_record_stats_metrics_aggregates_buckets(self):
        r = MetricsRegistry()
        record_stats_metrics(r, _FakeStats())
        doc = r.to_json()
        by_name = {entry["name"]: entry for entry in doc["metrics"]}
        assert by_name["repro_sim_cycles_total"]["samples"][0]["value"] == 100
        stalls = {
            sample["labels"]["bucket"]: sample["value"]
            for sample in by_name["repro_stall_slots_total"]["samples"]
        }
        assert stalls == {"issued": 40, "idle": 160}


class _Clock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class TestHeartbeat:
    def test_lifecycle_and_eta(self, tmp_path):
        clock = _Clock()
        hb = Heartbeat(tmp_path / "status.json", interval=5.0, clock=clock)
        hb.begin(10, in_flight=10)
        clock.now += 10.0
        hb.advance(done=5)
        doc = read_status(tmp_path / "status.json")
        assert doc["done"] == 5 and doc["in_flight"] == 5
        assert doc["points_per_sec"] == pytest.approx(0.5)
        assert doc["eta_seconds"] == pytest.approx(10.0)
        hb.finish()
        doc = read_status(tmp_path / "status.json")
        assert doc["state"] == "done" and doc["in_flight"] == 0

    def test_writes_are_throttled_but_forced_on_transitions(self, tmp_path):
        clock = _Clock()
        hb = Heartbeat(tmp_path / "s.json", interval=100.0, clock=clock)
        hb.begin(4, in_flight=4)
        writes = hb.writes
        hb.advance(done=1)  # within interval: skipped
        hb.advance(done=1)
        assert hb.writes == writes
        clock.now += 101.0
        hb.advance(done=1)
        assert hb.writes == writes + 1
        hb.finish()  # forced
        assert hb.writes == writes + 2

    def test_stale_worker_detection(self, tmp_path):
        clock = _Clock()
        hb = Heartbeat(tmp_path / "s.json", clock=clock)
        hb.worker_started("chunk-0", deadline=clock.now + 5.0)
        hb.worker_started("chunk-1", deadline=None)
        assert hb.stale_workers() == []
        clock.now += 6.0
        assert hb.stale_workers() == ["chunk-0"]
        assert hb.workers["chunk-0"]["stale"] is True
        hb.worker_progress("chunk-0")
        assert hb.workers["chunk-0"]["stale"] is False

    def test_validate_status_rejects_bad_documents(self, tmp_path):
        clock = _Clock()
        hb = Heartbeat(tmp_path / "s.json", clock=clock)
        hb.begin(1, in_flight=1)
        doc = json.loads((tmp_path / "s.json").read_text())
        assert validate_status(doc) == []
        assert doc["schema"] == STATUS_SCHEMA_VERSION
        bad = dict(doc, schema=99)
        assert validate_status(bad)
        bad = dict(doc, done=-1)
        assert validate_status(bad)
        bad = dict(doc, state="wedged")
        assert validate_status(bad)


class TestManifestSchema:
    def test_new_records_are_stamped_and_validate_ok(self, tmp_path):
        m = RunManifest(tmp_path / "m.jsonl")
        m.record("p", "key", "sim", "digest", seconds=1.5, worker=7)
        record = json.loads((tmp_path / "m.jsonl").read_text())
        assert record["v"] == MANIFEST_SCHEMA_VERSION
        status, problems = validate_manifest_record(record)
        assert (status, problems) == ("ok", [])

    def test_legacy_records_flagged_not_rejected(self):
        status, problems = validate_manifest_record(
            {"point": "p", "key": "k", "source": "sim", "digest": "d"}
        )
        assert (status, problems) == ("legacy", [])

    def test_unknown_version_rejected(self):
        status, problems = validate_manifest_record(
            {"v": 99, "point": "p", "key": "k", "source": "sim", "digest": "d"}
        )
        assert status == "error"
        assert "unknown manifest schema version" in problems[0]

    def test_warning_records(self, tmp_path):
        m = RunManifest(tmp_path / "m.jsonl")
        m.warn("chunk_timeout", "chunk 0 exceeded budget", point="chunk:app")
        record = json.loads((tmp_path / "m.jsonl").read_text())
        assert record["source"] == "warning"
        status, problems = validate_manifest_record(record)
        assert (status, problems) == ("ok", [])
        with pytest.raises(ValueError):
            m.warn("nonsense", "detail")

    def test_validate_manifest_counts_and_problems(self, tmp_path):
        path = tmp_path / "m.jsonl"
        m = RunManifest(path)
        m.record("p", "k", "sim", "d")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"point": "q", "key": "k", "source": "sim", "digest": "d"}\n')
            fh.write('{"v": 99, "source": "sim"}\n')
            fh.write("not json\n")
        counts, problems = validate_manifest(path)
        assert counts == {"ok": 1, "legacy": 1, "error": 2}
        assert len(problems) == 2
