"""Unit tests for GPUConfig and the named presets (Table II)."""

import dataclasses

import pytest

from repro.config import (
    AssignmentPolicy,
    GPUConfig,
    MemoryConfig,
    SchedulerPolicy,
    ampere_a100,
    bank_stealing,
    fully_connected,
    kepler,
    rba,
    shuffle,
    shuffle_rba,
    srr,
    tpch_config,
    volta_v100,
    with_cus,
)


class TestGPUConfigDefaults:
    def test_baseline_matches_table_ii(self):
        cfg = volta_v100()
        assert cfg.num_sms == 80
        assert cfg.subcores_per_sm == 4
        assert cfg.scheduler == SchedulerPolicy.GTO
        assert cfg.assignment == AssignmentPolicy.ROUND_ROBIN
        assert cfg.max_warps_per_sm == 64
        assert cfg.rf_banks_per_subcore == 2
        assert cfg.collector_units_per_subcore == 2
        assert cfg.memory.shared_mem_banks == 32
        assert cfg.memory.l2_ways == 24
        assert cfg.memory.l2_size_bytes == 6 * 1024 * 1024

    def test_derived_quantities(self):
        cfg = volta_v100()
        assert cfg.max_warps_per_subcore == 16
        assert cfg.total_rf_banks == 8
        assert cfg.total_collector_units == 8
        assert not cfg.is_fully_connected

    def test_config_is_frozen(self):
        cfg = volta_v100()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.num_sms = 4

    def test_config_is_hashable(self):
        assert hash(volta_v100()) == hash(volta_v100())

    def test_replace_returns_new_config(self):
        cfg = volta_v100()
        other = cfg.replace(num_sms=4)
        assert other.num_sms == 4
        assert cfg.num_sms == 80

    def test_describe_mentions_key_fields(self):
        text = volta_v100().describe()
        assert "Sub-Cores per SM" in text
        assert "gto" in text


class TestGPUConfigValidation:
    def test_rejects_zero_subcores(self):
        with pytest.raises(ValueError):
            GPUConfig(subcores_per_sm=0)

    def test_rejects_zero_banks(self):
        with pytest.raises(ValueError):
            GPUConfig(rf_banks_per_subcore=0)

    def test_rejects_zero_cus(self):
        with pytest.raises(ValueError):
            GPUConfig(collector_units_per_subcore=0)

    def test_rejects_uneven_warp_split(self):
        with pytest.raises(ValueError):
            GPUConfig(subcores_per_sm=3)  # 64 % 3 != 0

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError):
            GPUConfig(scheduler="magic")

    def test_rejects_unknown_assignment(self):
        with pytest.raises(ValueError):
            GPUConfig(assignment="magic")

    def test_rejects_negative_score_latency(self):
        with pytest.raises(ValueError):
            GPUConfig(rba_score_latency=-1)

    def test_rejects_occupancy_limit_above_scratchpad(self):
        """The occupancy limit cannot exceed the modelled scratchpad
        (simcheck RPR302 fix: shared_mem_size_bytes was never read)."""
        with pytest.raises(ValueError, match="scratchpad"):
            GPUConfig(
                shared_mem_per_sm=128 * 1024,
                memory=MemoryConfig(shared_mem_size_bytes=96 * 1024),
            )

    def test_occupancy_limit_at_scratchpad_size_is_valid(self):
        cfg = GPUConfig(
            shared_mem_per_sm=96 * 1024,
            memory=MemoryConfig(shared_mem_size_bytes=96 * 1024),
        )
        assert cfg.shared_mem_per_sm == cfg.memory.shared_mem_size_bytes


class TestPresets:
    def test_kepler_is_monolithic(self):
        cfg = kepler()
        assert cfg.is_fully_connected
        assert cfg.issue_width == 4
        assert cfg.rf_banks_per_subcore == 8

    def test_ampere_partitioned_like_volta(self):
        cfg = ampere_a100()
        assert cfg.subcores_per_sm == 4
        assert cfg.num_sms == 108

    def test_fully_connected_preserves_aggregate_capacity(self):
        base = volta_v100()
        fc = fully_connected(base)
        assert fc.subcores_per_sm == 1
        assert fc.issue_width == base.issue_width * 4
        assert fc.rf_banks_per_subcore == base.total_rf_banks
        assert fc.collector_units_per_subcore == base.total_collector_units
        assert fc.fp32_lanes == base.fp32_lanes * 4
        assert fc.max_warps_per_sm == base.max_warps_per_sm

    def test_fully_connected_total_banks_unchanged(self):
        assert fully_connected().total_rf_banks == volta_v100().total_rf_banks

    def test_scheduler_presets(self):
        assert rba().scheduler == SchedulerPolicy.RBA
        assert bank_stealing().scheduler == SchedulerPolicy.BANK_STEALING
        assert srr().assignment == AssignmentPolicy.SRR
        assert shuffle().assignment == AssignmentPolicy.SHUFFLE

    def test_shuffle_rba_combines_both(self):
        cfg = shuffle_rba()
        assert cfg.scheduler == SchedulerPolicy.RBA
        assert cfg.assignment == AssignmentPolicy.SHUFFLE

    def test_tpch_config_limits_sms(self):
        assert tpch_config().num_sms == 20

    def test_with_cus(self):
        assert with_cus(8).collector_units_per_subcore == 8
        assert "8cu" in with_cus(8).name

    def test_preset_overrides(self):
        assert volta_v100(num_sms=2).num_sms == 2
        assert rba(rba_score_latency=5).rba_score_latency == 5

    def test_presets_have_distinct_names(self):
        names = {
            volta_v100().name,
            kepler().name,
            ampere_a100().name,
            fully_connected().name,
            rba().name,
            srr().name,
            shuffle().name,
            shuffle_rba().name,
            bank_stealing().name,
        }
        assert len(names) == 9


class TestMemoryConfig:
    def test_defaults(self):
        mem = MemoryConfig()
        assert mem.l1_size_bytes == 128 * 1024
        assert mem.l1_line_bytes == 128
        assert mem.dram_latency > mem.l2_hit_latency > mem.l1_hit_latency
