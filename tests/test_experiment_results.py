"""Pure-logic tests for experiment result objects (no simulation)."""

import numpy as np
import pytest

from repro.experiments.fig01_partitioning import Fig01Result
from repro.experiments.fig03_fma_imbalance import Fig03Result
from repro.experiments.fig08_imbalance_scaling import Fig08Result
from repro.experiments.fig09_all_apps import Fig09Result
from repro.experiments.fig11_fc_rba import Fig11Result
from repro.experiments.fig12_cu_scaling import Fig12Result
from repro.experiments.fig15_tpch_compressed import TpchResult
from repro.experiments.fig17_issue_cov import Fig17Result
from repro.experiments.headline import HeadlineResult
from repro.experiments.cu_validation import (
    CUValidationResult,
    silicon_reference_cycles,
)
from repro.experiments.rba_latency import RBALatencyResult


class TestFig01Result:
    def test_statistics(self):
        res = Fig01Result(
            rows=[
                ("a", {"fully_connected": 1.00}),
                ("b", {"fully_connected": 1.20}),
                ("c", {"fully_connected": 1.40}),
            ]
        )
        assert res.average == pytest.approx(1.20)
        assert res.max_speedup == pytest.approx(1.40)
        assert res.sensitive_fraction(threshold=1.05) == pytest.approx(2 / 3)


class TestFig03Result:
    def test_normalization(self):
        res = Fig03Result(
            cycles={"volta": {"baseline": 100, "balanced": 110, "unbalanced": 390}}
        )
        norm = res.normalized()
        assert norm["volta"]["unbalanced"] == pytest.approx(3.9)
        assert res.unbalanced_slowdown("volta") == pytest.approx(3.9)


class TestFig08Result:
    def test_speedup_over_rr(self):
        res = Fig08Result(
            imbalances=[1, 4],
            cycles={"baseline": [100, 400], "srr": [100, 160]},
        )
        sp = res.speedup_over_rr()
        assert sp["srr"] == [1.0, 2.5]
        assert sp["baseline"] == [1.0, 1.0]


class TestFig09Result:
    ROWS = [
        ("a", {"shuffle_rba": 1.10, "fully_connected": 1.15}),
        ("b", {"shuffle_rba": 1.20, "fully_connected": 1.05}),
    ]

    def test_gap_and_winners(self):
        res = Fig09Result(rows=self.ROWS)
        assert res.averages()["shuffle_rba"] == pytest.approx(1.15)
        assert res.combined_vs_fc_gap() == pytest.approx(-5.0)
        assert res.apps_where_design_beats_fc() == ["b"]


class TestFig11Result:
    def test_population_filter(self):
        rows = [
            ("rba-wins", {"rba": 1.3, "fully_connected": 1.1, "fc_rba": 1.25}),
            ("fc-wins", {"rba": 1.0, "fully_connected": 1.2, "fc_rba": 1.3}),
        ]
        res = Fig11Result(rows=rows)
        assert [r[0] for r in res.population()] == ["rba-wins"]
        g = res.geomeans()
        assert g["fully_connected"] == pytest.approx(1.1)

    def test_empty_population_falls_back(self):
        rows = [("a", {"rba": 1.0, "fully_connected": 1.2, "fc_rba": 1.2})]
        res = Fig11Result(rows=rows)
        assert res.geomeans()["fc_rba"] == pytest.approx(1.2)


class TestFig12Result:
    def test_diminishing_returns(self):
        rows = [
            (
                "cg-lou",
                {"cu4": 1.04, "cu8": 1.07, "cu16": 1.09,
                 "fully_connected": 1.05, "rba": 1.20},
            )
        ]
        res = Fig12Result(rows=rows)
        assert res.diminishing_returns() == pytest.approx(2.0)
        gaps = res.cugraph_rba_vs_fc()
        assert gaps == [("cg-lou", pytest.approx(15.0))]


class TestTpchResult:
    def test_srr_wins(self):
        rows = [
            ("q1", {"srr": 1.3, "shuffle": 1.2, "rba": 1.0,
                    "shuffle_rba": 1.25, "fully_connected": 1.2}),
            ("q2", {"srr": 1.1, "shuffle": 1.15, "rba": 1.0,
                    "shuffle_rba": 1.12, "fully_connected": 1.1}),
        ]
        res = TpchResult(rows=rows, suite="tpch-compressed")
        assert res.srr_wins() == 1
        assert res.averages()["srr"] == pytest.approx(1.2)


class TestFig17Result:
    def test_worst_baseline(self):
        rows = [
            ("q1", {"baseline": 0.6, "srr": 0.0, "shuffle": 0.3}),
            ("q8", {"baseline": 1.0, "srr": 0.1, "shuffle": 0.4}),
        ]
        res = Fig17Result(rows=rows)
        assert res.worst_baseline() == ("q8", 1.0)
        assert res.averages()["baseline"] == pytest.approx(0.8)


class TestHeadlineResult:
    def test_captured_fraction(self):
        rows = [("a", {"shuffle_rba": 1.10, "srr_rba": 1.08, "fully_connected": 1.20})]
        sens = [("a", {"shuffle_rba": 1.2, "srr_rba": 1.25, "fully_connected": 1.3})]
        res = HeadlineResult(rows, sens)
        assert res.combined_average == pytest.approx(1.10)
        assert res.captured_fraction == pytest.approx(0.5)
        assert res.sensitive_average == pytest.approx(1.25)

    def test_nan_when_fc_gains_nothing(self):
        rows = [("a", {"shuffle_rba": 1.1, "srr_rba": 1.0, "fully_connected": 1.0})]
        res = HeadlineResult(rows, rows)
        assert np.isnan(res.captured_fraction)


class TestCUValidation:
    def test_reference_model_monotone_in_reads(self):
        light = silicon_reference_cycles("ub-1op")
        heavy = silicon_reference_cycles("ub-3op-conflict")
        assert heavy > light

    def test_mae_selects_best(self):
        res = CUValidationResult(
            names=["u1"],
            reference=[100.0],
            simulated={1: [150], 2: [105], 3: [90]},
        )
        assert res.best_cu_count() == 2
        assert res.mae()[1] == pytest.approx(50.0)


class TestRBALatencyResult:
    def test_degradation_and_worst(self):
        res = RBALatencyResult(
            apps=["a", "b"],
            speedups={
                0: {"a": 1.20, "b": 1.10},
                20: {"a": 1.15, "b": 1.10},
            },
        )
        assert res.average_speedup(0) == pytest.approx(1.15)
        assert res.average_degradation() == pytest.approx(2.5)
        assert res.worst_app() == ("a", pytest.approx(5.0))
