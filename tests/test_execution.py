"""Tests for the execution-unit pipeline model."""

import pytest

from repro.config import fully_connected, volta_v100
from repro.core import ExecutionUnits, Pipeline
from repro.isa import FuncUnit, Instruction, Opcode, fadd, ffma, iadd


class TestPipeline:
    def test_narrow_lanes_stretch_interval(self):
        p = Pipeline(FuncUnit.FP32, lanes=16)
        assert p.lane_interval == 2

    def test_full_width_single_cycle(self):
        p = Pipeline(FuncUnit.FP32, lanes=32)
        assert p.lane_interval == 1

    def test_zero_lanes_modelled_as_slow(self):
        p = Pipeline(FuncUnit.TENSOR, lanes=0)
        assert p.lane_interval == 64

    def test_issue_returns_completion(self):
        p = Pipeline(FuncUnit.FP32, lanes=16)
        done = p.issue(fadd(0, 1, 2), now=10)
        # interval 2 + FADD latency 4
        assert done == 16

    def test_port_busy_after_issue(self):
        p = Pipeline(FuncUnit.FP32, lanes=16)
        assert p.can_accept(0)
        p.issue(fadd(0, 1, 2), now=0)
        assert not p.can_accept(1)
        assert p.can_accept(2)

    def test_pooled_lanes_expose_multiple_ports(self):
        p = Pipeline(FuncUnit.FP32, lanes=64)
        p.issue(fadd(0, 1, 2), now=0)
        assert p.can_accept(0)  # second port still free
        p.issue(fadd(0, 1, 2), now=0)
        assert not p.can_accept(0)

    def test_stats(self):
        p = Pipeline(FuncUnit.FP32, lanes=16)
        p.issue(fadd(0, 1, 2), now=0)
        assert p.stats.issued == 1
        assert p.stats.busy_cycles == 2


class TestExecutionUnits:
    def test_routes_by_unit(self):
        ex = ExecutionUnits(volta_v100())
        fp_done = ex.issue(fadd(0, 1, 2), now=0)
        int_done = ex.issue(iadd(0, 1, 2), now=0)  # separate port: no conflict
        assert fp_done == int_done == 6

    def test_fp_and_int_ports_independent(self):
        ex = ExecutionUnits(volta_v100())
        ex.issue(fadd(0, 1, 2), now=0)
        assert not ex.can_accept(fadd(0, 1, 2), now=0)
        assert ex.can_accept(iadd(0, 1, 2), now=0)

    def test_sfu_is_slow(self):
        ex = ExecutionUnits(volta_v100())
        mufu = Instruction(Opcode.MUFU, dst_reg=0, src_regs=(1,))
        done = ex.issue(mufu, now=0)
        # 4 SFU lanes -> interval 8, latency 16
        assert done == 24

    def test_fc_tensor_throughput_scales(self):
        part = ExecutionUnits(volta_v100())
        fc = ExecutionUnits(fully_connected())
        hmma = Instruction(Opcode.HMMA, dst_reg=0, src_regs=(1, 2, 3))
        part.issue(hmma, now=0)
        assert not part.can_accept(hmma, now=1)  # 8 lanes -> interval 4
        fc.issue(hmma, now=0)
        assert fc.can_accept(hmma, now=1)  # 32 lanes -> interval 1

    def test_next_free_cycle(self):
        ex = ExecutionUnits(volta_v100())
        assert ex.next_free_cycle() == 0
        ex.issue(fadd(0, 1, 2), now=0)
        assert ex.next_free_cycle() == 0  # other units idle
