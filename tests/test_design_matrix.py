"""Smoke matrix: every named design point simulates a small kernel.

Catches design-point configs that validate but cannot actually run (bad
interactions between knobs), which single-design tests would miss.
"""

import pytest

from repro import simulate
from repro.experiments import design_names, get_design
from repro.workloads import fma_microbenchmark, scaled_imbalance_microbenchmark


@pytest.fixture(scope="module")
def kernel():
    return scaled_imbalance_microbenchmark(4, base_fmas=24)


@pytest.mark.parametrize("design", design_names())
def test_design_simulates(design, kernel):
    stats = simulate(kernel, get_design(design), num_sms=1)
    assert stats.cycles > 0
    assert stats.instructions == kernel.dynamic_instructions + kernel.total_warps
    assert sum(sm.ctas_completed for sm in stats.sms) == kernel.num_ctas


def test_design_names_are_stable():
    # The experiment harnesses and EXPERIMENTS.md reference these by name.
    required = {
        "baseline", "rba", "srr", "shuffle", "shuffle_rba", "srr_rba",
        "fully_connected", "fc_rba", "bank_stealing", "two_level",
        "cu1", "cu2", "cu4", "cu8", "cu16",
        "rba_4banks", "baseline_4banks",
        "shuffle_4entry", "shuffle_16entry",
        "rba_lat0", "rba_lat20",
    }
    assert required <= set(design_names())


def test_all_designs_agree_on_work(kernel):
    instr = None
    for design in design_names():
        stats = simulate(kernel, get_design(design), num_sms=1)
        if instr is None:
            instr = stats.instructions
        assert stats.instructions == instr, design
