"""Tests for the compiled-trace disk cache and its invalidation contract.

The content address of a compiled kernel covers the profile payload,
``PROFILE_VERSION``, and the bank layout (mapping name + bank count):
changing any of them must miss the cache, and a disk-loaded artifact must
simulate byte-identically to a freshly synthesized one.
"""

from __future__ import annotations

import pytest

from repro.config import volta_v100
from repro.gpu import simulate
from repro.obs import stats_digest
from repro.workloads import (
    compiled_code_key,
    get_compiled_kernel,
    get_kernel,
)
from repro.workloads import registry

APP = "rod-nw"
LAYOUT = ("warp_swizzle", 2)


@pytest.fixture(autouse=True)
def _fresh_memo():
    """Isolate each test from compiled kernels memoized by earlier tests."""
    registry._COMPILED_MEMO.clear()
    yield
    registry._COMPILED_MEMO.clear()


class TestKeyInvalidation:
    def test_bank_mapping_changes_key(self):
        base = compiled_code_key(APP, *LAYOUT)
        assert compiled_code_key(APP, "mod", 2) != base
        assert compiled_code_key(APP, "warp_swizzle", 4) != base

    def test_profile_version_changes_key(self, monkeypatch):
        base = compiled_code_key(APP, *LAYOUT)
        monkeypatch.setattr(registry, "PROFILE_VERSION", "test-bump")
        assert compiled_code_key(APP, *LAYOUT) != base

    def test_app_changes_key(self):
        assert compiled_code_key(APP, *LAYOUT) != compiled_code_key(
            "tpcU-q3", *LAYOUT
        )


class TestResolutionOrder:
    def test_compile_then_memory_then_disk(self, tmp_path):
        k1, src1 = get_compiled_kernel(APP, *LAYOUT, cache_dir=tmp_path)
        assert src1 == "compile"
        k2, src2 = get_compiled_kernel(APP, *LAYOUT, cache_dir=tmp_path)
        assert src2 == "memory"
        assert k2 is k1
        registry._COMPILED_MEMO.clear()  # a fresh process: memo gone
        k3, src3 = get_compiled_kernel(APP, *LAYOUT, cache_dir=tmp_path)
        assert src3 == "disk"
        assert k3.name == k1.name

    def test_no_disk_mode_always_compiles(self, tmp_path):
        _, src1 = get_compiled_kernel(APP, *LAYOUT, use_disk=False)
        assert src1 == "compile"
        registry._COMPILED_MEMO.clear()
        _, src2 = get_compiled_kernel(APP, *LAYOUT, use_disk=False)
        assert src2 == "compile"
        assert list(tmp_path.iterdir()) == []


class TestDiskInvalidation:
    def test_layout_change_misses_disk(self, tmp_path):
        get_compiled_kernel(APP, *LAYOUT, cache_dir=tmp_path)
        registry._COMPILED_MEMO.clear()
        _, src = get_compiled_kernel(APP, "warp_swizzle", 4, cache_dir=tmp_path)
        assert src == "compile"
        registry._COMPILED_MEMO.clear()
        _, src = get_compiled_kernel(APP, "mod", 2, cache_dir=tmp_path)
        assert src == "compile"

    def test_profile_version_bump_misses_disk(self, tmp_path, monkeypatch):
        get_compiled_kernel(APP, *LAYOUT, cache_dir=tmp_path)
        registry._COMPILED_MEMO.clear()
        monkeypatch.setattr(registry, "PROFILE_VERSION", "test-bump")
        _, src = get_compiled_kernel(APP, *LAYOUT, cache_dir=tmp_path)
        assert src == "compile"


class TestDiskLoadedEquivalence:
    def test_disk_loaded_kernel_simulates_byte_identically(self, tmp_path):
        config = volta_v100()
        fresh = simulate(get_kernel(APP), config).to_payload()
        get_compiled_kernel(
            APP, config.bank_mapping, config.rf_banks_per_subcore,
            cache_dir=tmp_path,
        )
        registry._COMPILED_MEMO.clear()
        loaded, src = get_compiled_kernel(
            APP, config.bank_mapping, config.rf_banks_per_subcore,
            cache_dir=tmp_path,
        )
        assert src == "disk"
        assert stats_digest(simulate(loaded, config).to_payload()) == stats_digest(
            fresh
        )


class TestCorruptionQuarantine:
    """Corrupted entries are quarantined — moved aside, never served —
    and degraded stores go memory-only with a single note."""

    @pytest.fixture(autouse=True)
    def _fresh_state(self):
        from repro.chaos import clear_plan
        from repro.trace import code_cache

        clear_plan()
        code_cache.reset_degradation()
        yield
        clear_plan()
        code_cache.reset_degradation()

    def _entry(self, tmp_path):
        get_compiled_kernel(APP, *LAYOUT, cache_dir=tmp_path)
        entries = list(tmp_path.glob("*.code.pkl"))
        assert len(entries) == 1
        return entries[0]

    def test_truncated_pickle_is_quarantined_and_recompiled(self, tmp_path):
        from repro.trace import code_cache

        entry = self._entry(tmp_path)
        data = entry.read_bytes()
        entry.write_bytes(data[: len(data) // 2])
        registry._COMPILED_MEMO.clear()
        _, src = get_compiled_kernel(APP, *LAYOUT, cache_dir=tmp_path)
        assert src == "compile"
        quarantined = tmp_path / "quarantine" / entry.name
        assert quarantined.read_bytes() == data[: len(data) // 2]
        notes = code_cache.drain_notes()
        assert [kind for kind, _ in notes] == ["cache_quarantine"]
        assert "unreadable pickle" in notes[0][1]
        # The recompile re-stored a valid entry: next fresh process hits disk.
        registry._COMPILED_MEMO.clear()
        _, src2 = get_compiled_kernel(APP, *LAYOUT, cache_dir=tmp_path)
        assert src2 == "disk"

    def test_wrong_generation_envelope_is_quarantined(self, tmp_path):
        import pickle

        from repro.trace import code_cache

        entry = self._entry(tmp_path)
        entry.write_bytes(
            pickle.dumps(("repro-code", code_cache.CODE_VERSION + 1, None))
        )
        registry._COMPILED_MEMO.clear()
        _, src = get_compiled_kernel(APP, *LAYOUT, cache_dir=tmp_path)
        assert src == "compile"
        assert (tmp_path / "quarantine" / entry.name).exists()
        notes = code_cache.drain_notes()
        assert notes and "wrong cache generation" in notes[0][1]

    def test_quarantine_spares_a_concurrent_replacement(self, tmp_path):
        import os

        from repro.trace import code_cache

        entry = tmp_path / "x.code.pkl"
        entry.write_bytes(b"corrupt")
        fh = open(entry, "rb")
        try:
            replacement = tmp_path / "fresh.tmp"
            replacement.write_bytes(b"valid replacement")
            os.replace(replacement, entry)
            code_cache._quarantine(entry, fh, "test")
        finally:
            fh.close()
        # The replacement written while the corrupt file was open survives.
        assert entry.read_bytes() == b"valid replacement"
        assert not (tmp_path / "quarantine").exists()
        assert code_cache.drain_notes() == []

    def test_store_io_errors_degrade_to_memory_once(self, tmp_path, monkeypatch):
        from repro.chaos import clear_plan, install_plan, single_fault_plan
        from repro.trace import code_cache

        monkeypatch.setattr(code_cache, "STORE_ERROR_THRESHOLD", 1)
        install_plan(single_fault_plan("io_error", "code_store", times=0))
        code_cache.store_compiled(tmp_path, "k1", {"a": 1})
        code_cache.store_compiled(tmp_path, "k2", {"a": 2})
        notes = code_cache.drain_notes()
        assert [kind for kind, _ in notes] == ["cache_degraded"]
        assert code_cache._STORE_STATE["disabled"]
        assert list(tmp_path.iterdir()) == []
        # reset_degradation re-arms the store path.
        clear_plan()
        code_cache.reset_degradation()
        code_cache.store_compiled(tmp_path, "k1", {"a": 1})
        assert code_cache.load_compiled(tmp_path, "k1") == {"a": 1}
