"""Bit-determinism of simulation across fresh interpreter processes.

The engine's disk cache (and every golden test) relies on simulation
being a pure function of its inputs.  The classic way this breaks in
Python is iterating a hash-ordered set in a scheduling decision — the
candidate order then depends on ``PYTHONHASHSEED`` / object addresses,
and any tie in a scheduler key silently picks different warps in
different processes.  These tests run the same simulation in two fresh
interpreters with *different* hash seeds and require byte-identical
serialized stats.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")

_SCRIPT = """\
import sys
from repro.experiments.engine import ExperimentEngine, SimPoint
from repro.experiments.export import dump_json

engine = ExperimentEngine(workers=1, use_disk_cache=False)
for spec in sys.argv[1:]:
    app, design = spec.split(":")
    stats = engine.run_point(SimPoint(app, design))
    sys.stdout.write(dump_json(stats, indent=0))
    sys.stdout.write("\\n")
"""


def _run_fresh_process(hash_seed: str, specs) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT, *specs],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return proc.stdout


@pytest.mark.slow
def test_identical_stats_across_hash_seeds():
    specs = ["rod-nw:baseline", "cg-lou:rba", "tpcU-q8:shuffle"]
    out_a = _run_fresh_process("0", specs)
    out_b = _run_fresh_process("424242", specs)
    assert out_a, "subprocess produced no output"
    assert out_a == out_b


@pytest.mark.slow
def test_bank_stealing_identical_across_hash_seeds():
    """Regression for the simlint RPR001 fix in BankStealingScheduler.

    ``steal_candidate`` used to probe bank idleness through ``set(banks)``;
    the candidate scan must stay hash-order-free so the stolen warp is the
    same in every process.
    """
    specs = ["cg-lou:bank_stealing", "pb-sgemm:bank_stealing"]
    out_a = _run_fresh_process("1", specs)
    out_b = _run_fresh_process("31337", specs)
    assert out_a, "subprocess produced no output"
    assert out_a == out_b


def test_bank_stealing_repeat_run_identical():
    """Two fresh in-process simulations (distinct object ids) must agree."""
    from repro.experiments.designs import get_design
    from repro.gpu import simulate
    from repro.workloads import get_kernel

    cfg = get_design("bank_stealing")
    runs = [
        simulate(get_kernel("cg-lou"), cfg, num_sms=1).to_payload()
        for _ in range(2)
    ]
    assert runs[0] == runs[1]


def test_registry_listings_are_sorted():
    """Regression for the suppressed sorted-on-set sites in the registry:
    suites() and app_names() must return stable, totally ordered lists."""
    from repro.workloads import app_names, suites

    names = suites()
    assert names == sorted(names)
    assert len(names) == len(set(names))
    for suite in names:
        apps = app_names(suite)
        assert apps == sorted(apps)


def test_allocator_register_order_is_sorted():
    """Regression for the suppressed sorted-on-set site in the allocator."""
    from repro.regalloc.allocator import ConflictAwareAllocator
    from repro.trace import TraceBuilder

    trace = TraceBuilder().fma_chain(16, regs=12).build()
    alloc = ConflictAwareAllocator(num_banks=4)
    regs = alloc._registers(trace)
    assert regs == sorted(regs)
    assert len(regs) == len(set(regs))


def test_ready_pool_iterates_in_insertion_order():
    """The sub-core ready pool must never be a hash-ordered set."""
    from repro import volta_v100
    from repro.core import StreamingMultiprocessor
    from repro.memory import MemorySubsystem, build_dram, build_l2

    cfg = volta_v100().replace(num_sms=1)
    sm = StreamingMultiprocessor(
        0,
        cfg,
        MemorySubsystem(cfg, l2=build_l2(cfg.memory), dram=build_dram(cfg.memory)),
    )
    for sc in sm.subcores:
        assert isinstance(sc.ready, dict)
