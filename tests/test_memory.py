"""Tests for the memory hierarchy: cache, MSHRs, DRAM, shared memory,
coalescer and the composed subsystem."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import volta_v100
from repro.isa import Instruction, MemRef, Opcode
from repro.memory import (
    DRAM,
    Cache,
    Coalescer,
    MemorySubsystem,
    SharedMemory,
    build_dram,
    build_l2,
)


def small_cache(**kw):
    defaults = dict(
        size_bytes=4 * 128 * 2,  # 2 sets x 4 ways x 128B lines
        line_bytes=128,
        ways=4,
        hit_latency=10,
        mshrs=8,
    )
    defaults.update(kw)
    return Cache(**defaults)


class TestCache:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=100, line_bytes=128, ways=4, hit_latency=1, mshrs=4)

    def test_miss_then_hit(self):
        c = small_cache()
        hit, inflight = c.probe(0, now=0)
        assert not hit and inflight is None
        c.allocate_miss(0, fill_cycle=50)
        # still in flight at t=10
        hit, inflight = c.probe(0, now=10)
        assert not hit and inflight == 50
        # after the fill completes the line is resident
        hit, inflight = c.probe(0, now=50)
        assert hit

    def test_mshr_merge_reporting(self):
        c = small_cache()
        c.allocate_miss(7, fill_cycle=100)
        hit, inflight = c.probe(7, now=1)
        assert inflight == 100
        c.record_merge()
        assert c.stats.mshr_merges == 1

    def test_lru_eviction(self):
        c = small_cache()
        # Fill one set (same set index = line % 2): lines 0,2,4,6 map to set 0.
        for line in (0, 2, 4, 6):
            c.install(line)
        c.probe(0, now=0)        # touch 0 -> MRU
        c.install(8)             # evicts LRU (2)
        assert c.contains(0)
        assert not c.contains(2)
        assert c.stats.evictions == 1

    def test_install_idempotent(self):
        c = small_cache()
        c.install(3)
        c.install(3)
        assert c.contains(3)
        assert c.stats.evictions == 0

    def test_mshrs_free_accounting(self):
        c = small_cache(mshrs=2)
        assert c.mshrs_free(0) == 2
        c.allocate_miss(1, 10)
        c.allocate_miss(3, 20)
        assert c.mshrs_free(5) == 0
        assert c.mshrs_free(10) == 1
        assert c.mshrs_free(20) == 2

    def test_flush(self):
        c = small_cache()
        c.install(1)
        c.allocate_miss(3, 10)
        c.flush()
        assert not c.contains(1)
        hit, inflight = c.probe(3, now=0)
        assert not hit and inflight is None

    def test_hit_rate(self):
        c = small_cache()
        c.record_hit()
        c.allocate_miss(1, 10)
        assert c.stats.accesses == 2
        assert c.stats.hit_rate == 0.5


class TestDRAM:
    def test_latency_plus_service(self):
        d = DRAM(latency=100, bytes_per_cycle=64, line_bytes=128)
        assert d.access(0) == 102  # 2 service + 100 latency

    def test_bandwidth_serialization(self):
        d = DRAM(latency=100, bytes_per_cycle=64, line_bytes=128)
        first = d.access(0)
        second = d.access(0)
        assert second == first + 2  # channel busy back-to-back

    def test_idle_channel_resets(self):
        d = DRAM(latency=10, bytes_per_cycle=128, line_bytes=128)
        d.access(0)
        assert d.access(1000) == 1011

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAM(latency=-1, bytes_per_cycle=64, line_bytes=128)
        with pytest.raises(ValueError):
            DRAM(latency=1, bytes_per_cycle=0, line_bytes=128)


class TestSharedMemory:
    def test_conflict_free_latency(self):
        s = SharedMemory(num_banks=32, latency=24)
        assert s.access(10) == 34

    def test_conflict_serialization(self):
        s = SharedMemory(num_banks=32, latency=24)
        assert s.access(0, conflict_degree=4) == 27
        assert s.stats.conflict_cycles == 3

    def test_degree_clamped_to_banks(self):
        s = SharedMemory(num_banks=2, latency=0)
        assert s.access(0, conflict_degree=32) == 1

    def test_degree_validation(self):
        s = SharedMemory(num_banks=32)
        with pytest.raises(ValueError):
            s.access(0, conflict_degree=0)


class TestCoalescer:
    def test_expansion(self):
        co = Coalescer(128)
        reqs = co.expand(MemRef(base_address=256, num_lines=3))
        assert [r.line_address for r in reqs] == [2, 3, 4]

    def test_store_flag_propagates(self):
        co = Coalescer(128)
        reqs = co.expand(MemRef(0, num_lines=2, is_store=True))
        assert all(r.is_store for r in reqs)

    def test_line_bytes_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            Coalescer(100)


class TestMemorySubsystem:
    def make(self):
        return MemorySubsystem(volta_v100())

    def test_cold_miss_goes_to_dram(self):
        ms = self.make()
        r = ms.access_global(MemRef(0, num_lines=1), now=0)
        assert r.l1_misses == 1 and r.l2_misses == 1
        assert r.completion_cycle > ms.config.memory.dram_latency

    def test_rereference_hits_l1(self):
        ms = self.make()
        first = ms.access_global(MemRef(0, num_lines=1), now=0)
        r = ms.access_global(MemRef(0, num_lines=1), now=first.completion_cycle + 1)
        assert r.l1_hits == 1 and r.l1_misses == 0
        assert r.completion_cycle <= first.completion_cycle + 1 + 2 * ms.l1.hit_latency

    def test_inflight_merge_is_faster_than_new_miss(self):
        ms = self.make()
        first = ms.access_global(MemRef(0, num_lines=1), now=0)
        merged = ms.access_global(MemRef(0, num_lines=1), now=1)
        assert merged.completion_cycle <= first.completion_cycle + ms.l1.hit_latency
        assert ms.l1.stats.mshr_merges == 1

    def test_multi_line_serializes_on_l1_port(self):
        ms = self.make()
        r1 = ms.access_global(MemRef(0, num_lines=1), now=0)
        ms2 = self.make()
        r8 = ms2.access_global(MemRef(0, num_lines=8), now=0)
        assert r8.completion_cycle > r1.completion_cycle

    def test_l2_shared_between_sms(self):
        cfg = volta_v100()
        l2, dram = build_l2(cfg.memory), build_dram(cfg.memory)
        a = MemorySubsystem(cfg, l2=l2, dram=dram)
        b = MemorySubsystem(cfg, l2=l2, dram=dram)
        ra = a.access_global(MemRef(0, num_lines=1), now=0)
        # SM b misses its own L1 but hits the shared L2 once the line landed
        rb = b.access_global(MemRef(0, num_lines=1), now=ra.completion_cycle + 1)
        assert rb.l2_hits == 1

    def test_shared_access_uses_conflict_degree(self):
        ms = self.make()
        base = ms.access_shared(0, conflict_degree=1)
        worse = ms.access_shared(0, conflict_degree=8)
        assert worse > base

    def test_access_dispatches_by_opcode(self):
        ms = self.make()
        ld = Instruction(Opcode.LDG, dst_reg=1, src_regs=(0,), mem=MemRef(0))
        t = ms.access(ld, now=0)
        assert t > 0
        lds = Instruction(Opcode.LDS, dst_reg=1, src_regs=(0,))
        assert ms.access(lds, now=0) == ms.shared.latency

    def test_access_rejects_non_memory(self):
        ms = self.make()
        with pytest.raises(ValueError):
            ms.access(Instruction(Opcode.FADD, dst_reg=0, src_regs=(1,)), now=0)


@given(
    lines=st.integers(min_value=1, max_value=16),
    base=st.integers(min_value=0, max_value=1 << 20),
)
@settings(max_examples=40, deadline=None)
def test_property_completion_monotonic_with_issue_time(lines, base):
    ms = MemorySubsystem(volta_v100())
    early = ms.access_global(MemRef(base * 128, num_lines=lines), now=0)
    ms2 = MemorySubsystem(volta_v100())
    late = ms2.access_global(MemRef(base * 128, num_lines=lines), now=500)
    assert late.completion_cycle >= early.completion_cycle
    assert early.completion_cycle >= lines - 1


class TestMultiChannelDRAM:
    def test_channels_independent(self):
        d = DRAM(latency=100, bytes_per_cycle=64, line_bytes=128, num_channels=2)
        a = d.access(0, line_address=0)
        b = d.access(0, line_address=1)  # other channel: no serialization
        assert a == b == 102

    def test_same_channel_serializes(self):
        d = DRAM(latency=100, bytes_per_cycle=64, line_bytes=128, num_channels=2)
        a = d.access(0, line_address=0)
        b = d.access(0, line_address=2)  # same channel (2 % 2 == 0)
        assert b == a + 2

    def test_utilization(self):
        d = DRAM(latency=0, bytes_per_cycle=128, line_bytes=128, num_channels=2)
        d.access(0, 0)
        d.access(0, 1)
        assert d.utilization(10) == pytest.approx(0.1)
        assert d.utilization(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAM(latency=0, bytes_per_cycle=1, line_bytes=128, num_channels=0)

    def test_more_channels_speed_up_streams(self):
        from repro import simulate, volta_v100
        from repro.trace import TraceBuilder, make_kernel

        def stream_kernel():
            warps = []
            for w in range(8):
                tb = TraceBuilder()
                for i in range(16):
                    # rotate destinations so the loads are independent
                    tb.global_load(1 + (i % 8), 0, (w << 22) + i * 128 * 3,
                                   num_lines=4)
                warps.append(tb.build())
            return make_kernel("stream", warps)

        import dataclasses

        # Narrow the per-channel service rate so a single channel is the
        # bottleneck; four channels then recover the lost bandwidth.
        base = volta_v100()
        narrow = dataclasses.replace(base.memory, dram_bytes_per_cycle=8)
        one = base.replace(memory=narrow)
        four = base.replace(
            memory=dataclasses.replace(narrow, dram_channels=4)
        )
        slow = simulate(stream_kernel(), one, num_sms=1).cycles
        fast = simulate(stream_kernel(), four, num_sms=1).cycles
        assert fast < slow
