"""Unit tests for the ISA layer."""

import pytest

from repro.isa import (
    MAX_SRC_OPERANDS,
    FuncUnit,
    Instruction,
    MemRef,
    Opcode,
    bar,
    exit_,
    fadd,
    ffma,
    iadd,
    ldg,
    stg,
)


class TestOpcodes:
    def test_unit_classes(self):
        assert Opcode.FFMA.unit is FuncUnit.FP32
        assert Opcode.IMAD.unit is FuncUnit.INT
        assert Opcode.MUFU.unit is FuncUnit.SFU
        assert Opcode.HMMA.unit is FuncUnit.TENSOR
        assert Opcode.LDG.unit is FuncUnit.LDST

    def test_memory_flags(self):
        assert Opcode.LDG.is_memory and Opcode.LDG.is_global_memory
        assert Opcode.LDS.is_memory and Opcode.LDS.is_shared_memory
        assert not Opcode.FFMA.is_memory

    def test_control_flags(self):
        assert Opcode.BAR.is_barrier
        assert Opcode.EXIT.is_exit
        assert not Opcode.BAR.is_exit

    def test_latencies_positive(self):
        for op in Opcode:
            assert op.latency >= 0
            assert op.initiation_interval >= 1

    def test_arithmetic_latency_is_short(self):
        # Volta dependent-issue latency for core FP is 4 cycles.
        assert Opcode.FFMA.latency == 4
        assert Opcode.FADD.latency == 4


class TestInstruction:
    def test_ffma_constructor(self):
        inst = ffma(0, 1, 2, 3)
        assert inst.dst_reg == 0
        assert inst.src_regs == (1, 2, 3)
        assert inst.num_src_operands == 3
        assert inst.reads_register_file
        assert inst.writes_register_file

    def test_registers_includes_dst(self):
        assert ffma(9, 1, 2, 3).registers() == (1, 2, 3, 9)
        assert bar().registers() == ()

    def test_too_many_operands_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.FFMA, dst_reg=0, src_regs=(1, 2, 3, 4))
        assert MAX_SRC_OPERANDS == 3

    def test_negative_register_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.FADD, dst_reg=-1, src_regs=(0,))
        with pytest.raises(ValueError):
            Instruction(Opcode.FADD, dst_reg=0, src_regs=(-2,))

    def test_global_load_requires_memref(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LDG, dst_reg=0, src_regs=(1,))

    def test_memref_only_on_memory_ops(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.FADD, dst_reg=0, src_regs=(1,), mem=MemRef(0))

    def test_ldg_constructor(self):
        inst = ldg(dst=5, addr_reg=1, base_address=4096, num_lines=4)
        assert inst.mem.num_lines == 4
        assert not inst.mem.is_store
        assert inst.reads_register_file

    def test_stg_has_no_destination(self):
        inst = stg(data_reg=2, addr_reg=1, base_address=0)
        assert inst.dst_reg is None
        assert inst.mem.is_store
        assert not inst.writes_register_file

    def test_barrier_does_not_touch_register_file(self):
        assert not bar().reads_register_file
        assert not exit_().reads_register_file

    def test_instructions_are_frozen_and_hashable(self):
        a, b = fadd(0, 1, 2), fadd(0, 1, 2)
        assert a == b and hash(a) == hash(b)

    def test_str_rendering(self):
        assert "FFMA" in str(ffma(0, 1, 2, 3))
        assert "IADD" in str(iadd(0, 1, 2))


class TestMemRef:
    def test_num_lines_bounds(self):
        with pytest.raises(ValueError):
            MemRef(0, num_lines=0)
        with pytest.raises(ValueError):
            MemRef(0, num_lines=33)
        assert MemRef(0, num_lines=32).num_lines == 32

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemRef(-128)
