"""Tests for simcheck v2: project model, call graph, passes, CLI.

Most tests build a miniature package tree under ``tmp_path / "repro"`` —
the subpackage names (``core``, ``gpu``, ...) matter because the passes
scope themselves by module prefix, and the root directory name becomes
the package name.  The fixture helper pre-seeds the version-constant
stubs the RPR301 contract check watches and writes a fresh manifest, so
a tree is drift-clean unless a test deliberately perturbs it.
"""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path

import repro
from repro.analysis import lint_source
from repro.analysis.__main__ import main
from repro.analysis.callgraph import CallGraph
from repro.analysis.passes import run_project_passes
from repro.analysis.passes.drift import write_manifest
from repro.analysis.project import (
    TypeRef,
    build_project,
    reset_closure,
    scan_method,
)
from repro.analysis.sarif import sarif_report

#: Minimal files satisfying every RPR301 contract (version constant +
#: watched sources); the helper writes a manifest over the final tree, so
#: fixture trees start drift-clean.
CONTRACT_STUBS = {
    "trace/code_cache.py": "CODE_VERSION = 1\n",
    "trace/compiled.py": "F_EXIT = 2\n",
    "workloads/profiles.py": "PROFILE_VERSION = 1\n",
    "workloads/synth.py": "SYNTH = 1\n",
    "experiments/engine.py": "CACHE_SCHEMA = 1\n",
    "metrics/stats.py": "PAYLOAD = 1\n",
    "obs/events.py": "EVENT_SCHEMA_VERSION = 1\n",
    "obs/manifest.py": "MANIFEST_SCHEMA_VERSION = 1\n",
    "obs/metrics.py": "METRICS_SCHEMA_VERSION = 1\n",
    "obs/heartbeat.py": "STATUS_SCHEMA_VERSION = 1\n",
    "obs/journal.py": "JOURNAL_SCHEMA_VERSION = 1\n",
}


def make_tree(tmp_path: Path, files=None) -> Path:
    root = tmp_path / "repro"
    for rel, src in {**CONTRACT_STUBS, **(files or {})}.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src), encoding="utf-8")
    (root / "analysis").mkdir(exist_ok=True)
    write_manifest(root)
    return root


def findings_for(tmp_path: Path, files) -> list:
    _, findings = run_project_passes(make_tree(tmp_path, files))
    return findings


def rules_of(findings) -> list:
    return sorted(f.rule_id for f in findings)


def method_scan(source: str, cls: str, meth: str):
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == cls:
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == meth:
                    return scan_method(item)
    raise AssertionError(f"{cls}.{meth} not found")


# -- project model -----------------------------------------------------------


class TestAnnotations:
    def test_comment_annotations_are_indexed(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "core/a.py": """\
                class C:
                    def __init__(self):
                        self.total = 0  # simcheck: persistent -- cumulative
                """
            },
        )
        project = build_project(root)
        ann = project.modules["repro.core.a"].annotations
        assert ann == {3: ("persistent", "cumulative")}

    def test_docstring_examples_do_not_register(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "core/a.py": '''\
                """Docs showing the grammar:

                    # simcheck: hot-ok -- example only
                """

                TAG = "# simcheck: persistent"
                X = 1  # simcheck: cold
                '''
            },
        )
        project = build_project(root)
        ann = project.modules["repro.core.a"].annotations
        assert list(ann) == [7]
        assert ann[7].tag == "cold"

    def test_reason_is_optional(self, tmp_path):
        root = make_tree(tmp_path, {"core/a.py": "X = 1  # simcheck: cold\n"})
        project = build_project(root)
        (ann,) = project.modules["repro.core.a"].annotations.values()
        assert ann == ("cold", None)


class TestAttrUseScanner:
    SOURCE = """\
    class C:
        def update(self):
            self.count += 1
            self.name = "x"
            q = self.queue
            q.append(1)
            self.slots[0] = None
            for part in self.parts:
                part.begin_run()
            self.done.clear()
            self._refresh()
            super().update()
    """

    def test_augment_is_not_a_rebind(self):
        scan = method_scan(self.SOURCE, "C", "update")
        assert scan.augments == {"count"}
        assert "count" not in scan.rebinds

    def test_rebinds_mutations_clears(self):
        scan = method_scan(self.SOURCE, "C", "update")
        assert scan.rebinds == {"name"}
        assert "queue" in scan.mutations  # through the local alias
        assert "slots" in scan.clears  # subscript re-init counts as reset
        assert "done" in scan.clears

    def test_loop_cascade_and_call_tracking(self):
        scan = method_scan(self.SOURCE, "C", "update")
        assert scan.cascaded == {"parts"}
        assert scan.self_calls == {"_refresh"}
        assert scan.super_calls == {"update"}


class TestTypeInference:
    FILES = {
        "core/parts.py": """\
        from typing import Dict, List, Optional


        class Part:
            def __init__(self):
                self.v = 0


        class Box:
            def __init__(self, spare: "Optional[Part]"):
                self.one = Part()
                self.many: List[Part] = [Part()]
                self.table: Dict[int, Part] = {}
                self.spare = spare
        """
    }

    def test_attribute_types(self, tmp_path):
        project = build_project(make_tree(tmp_path, self.FILES))
        attrs = project.classes["Box"].attrs
        assert attrs["one"].type == TypeRef(None, "Part")
        assert attrs["many"].type == TypeRef("list", "Part")
        assert attrs["table"].type == TypeRef("dict", "Part")
        assert attrs["spare"].type == TypeRef(None, "Part")

    def test_ownership(self, tmp_path):
        project = build_project(make_tree(tmp_path, self.FILES))
        attrs = project.classes["Box"].attrs
        assert attrs["one"].owned
        # Received from a parameter: the caller owns (and resets) it.
        assert not attrs["spare"].owned


class TestResetClosure:
    def test_follows_self_calls_and_super(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "core/a.py": """\
                class Base:
                    def __init__(self):
                        self.a = 0

                    def begin_run(self):
                        self.a = 0


                class Child(Base):
                    def __init__(self):
                        super().__init__()
                        self.b = 0
                        self.c = 0

                    def begin_run(self):
                        super().begin_run()
                        self.b = 0
                        self._deep()

                    def _deep(self):
                        self.c = 0
                """
            },
        )
        project = build_project(root)
        names, merged = reset_closure(project, "Child")
        assert names == {"begin_run", "_deep"}
        assert merged.rebinds == {"a", "b", "c"}

    def test_flattened_attrs_subclass_wins(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "core/a.py": """\
                class Base:
                    def __init__(self):
                        self.x = []


                class Child(Base):
                    def __init__(self):
                        super().__init__()
                        self.x = 0
                """
            },
        )
        project = build_project(root)
        assert not project.flattened_attrs("Child")["x"].mutable_container
        assert project.flattened_attrs("Base")["x"].mutable_container


# -- call graph --------------------------------------------------------------


CALLGRAPH_FILES = {
    "core/engine.py": """\
    class Engine:
        def spin(self):
            return 1


    class Other:
        def spin(self):
            return 2


    class Helper:
        def emit(self):
            return 3


    class Holder:
        def __init__(self):
            self.engine = Engine()
            self.tracer = None
            self.helper = Helper()

        def go(self):
            return self.engine.spin()

        def use(self, x):
            return x.spin()

        def run(self):
            if self.tracer:
                self.helper.emit()
            return self.go()
    """
}


class TestCallGraph:
    def test_typed_receiver_resolves_exactly(self, tmp_path):
        project = build_project(make_tree(tmp_path, CALLGRAPH_FILES))
        graph = CallGraph(project)
        sites = graph.callees("repro.core.engine.Holder.go")
        assert [s.callee for s in sites] == ["repro.core.engine.Engine.spin"]
        assert not sites[0].via_fallback

    def test_untyped_receiver_falls_back_to_cha(self, tmp_path):
        project = build_project(make_tree(tmp_path, CALLGRAPH_FILES))
        graph = CallGraph(project)
        sites = graph.callees("repro.core.engine.Holder.use")
        assert sorted(s.callee for s in sites) == [
            "repro.core.engine.Engine.spin",
            "repro.core.engine.Other.spin",
        ]
        assert all(s.via_fallback for s in sites)

    def test_cold_guard_marks_and_skips(self, tmp_path):
        project = build_project(make_tree(tmp_path, CALLGRAPH_FILES))
        graph = CallGraph(project)
        sites = graph.callees("repro.core.engine.Holder.run")
        cold = {s.callee: s.cold for s in sites}
        assert cold["repro.core.engine.Helper.emit"] is True
        assert cold["repro.core.engine.Holder.go"] is False

        hot = graph.reachable(["repro.core.engine.Holder.run"])
        assert "repro.core.engine.Helper.emit" not in hot
        assert "repro.core.engine.Engine.spin" in hot
        everything = graph.reachable(
            ["repro.core.engine.Holder.run"], skip_cold=False
        )
        assert "repro.core.engine.Helper.emit" in everything

    def test_cold_tag_stops_traversal(self, tmp_path):
        root = make_tree(
            tmp_path,
            {
                "core/a.py": """\
                class C:
                    def top(self):
                        return self.frosty()

                    def frosty(self):  # simcheck: cold
                        return self.below()

                    def below(self):
                        return 1
                """
            },
        )
        graph = CallGraph(build_project(root))
        hot = graph.reachable(["repro.core.a.C.top"])
        assert "repro.core.a.C.frosty" not in hot
        assert "repro.core.a.C.below" not in hot


# -- reset-completeness pass (RPR2xx) ----------------------------------------


class TestResetPass:
    def test_rpr201_mutated_container_not_reset(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "core/buf.py": """\
                class Buf:
                    def __init__(self):
                        self.items = []

                    def push(self, v):
                        self.items.append(v)

                    def begin_run(self):
                        return None
                """
            },
        )
        assert rules_of(findings) == ["RPR201"]
        assert "Buf.items" in findings[0].message

    def test_rpr201_clear_in_reset_silences(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "core/buf.py": """\
                class Buf:
                    def __init__(self):
                        self.items = []

                    def push(self, v):
                        self.items.append(v)

                    def begin_run(self):
                        self.items.clear()
                """
            },
        )
        assert findings == []

    def test_rpr202_augmented_counter_not_reset(self, tmp_path):
        """The PR 8 true positive: ``launch_many`` forgot ``_cta_counter``."""
        findings = findings_for(
            tmp_path,
            {
                "core/sched.py": """\
                class Sched:
                    def __init__(self):
                        self.cursor = 0
                        self.counter = 0

                    def fill(self):
                        self.counter += 1

                    def launch(self):  # simcheck: reset-hook
                        self.cursor = 0
                """
            },
        )
        assert rules_of(findings) == ["RPR202"]
        assert "Sched.counter" in findings[0].message

    def test_rpr202_augment_inside_reset_hook_is_not_a_reset(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "core/sched.py": """\
                class Sched:
                    def __init__(self):
                        self.counter = 0

                    def fill(self):
                        self.counter += 1

                    def begin_run(self):
                        self.counter += 0
                """
            },
        )
        assert rules_of(findings) == ["RPR202"]

    def test_rpr202_rebind_in_tagged_hook_silences(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "core/sched.py": """\
                class Sched:
                    def __init__(self):
                        self.counter = 0

                    def fill(self):
                        self.counter += 1

                    def launch(self):  # simcheck: reset-hook
                        self.counter = 0
                """
            },
        )
        assert findings == []

    def test_persistent_annotation_declares_and_is_not_stale(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "core/stats.py": """\
                class Counters:
                    def __init__(self):
                        self.total = 0  # simcheck: persistent -- cumulative statistic

                    def bump(self):
                        self.total += 1

                    def begin_run(self):
                        return None
                """
            },
        )
        assert findings == []

    def test_rpr203_owned_component_never_cascaded(self, tmp_path):
        files = {
            "core/owner.py": """\
            class Part:
                def __init__(self):
                    self.v = 0

                def begin_run(self):
                    self.v = 0


            class Owner:
                def __init__(self):
                    self.part = Part()

                def begin_run(self):
                    return None
            """
        }
        findings = findings_for(tmp_path, files)
        assert rules_of(findings) == ["RPR203"]
        assert "Owner.part" in findings[0].message

    def test_rpr203_cascade_silences(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "core/owner.py": """\
                class Part:
                    def __init__(self):
                        self.v = 0

                    def begin_run(self):
                        self.v = 0


                class Owner:
                    def __init__(self):
                        self.part = Part()

                    def begin_run(self):
                        self.part.begin_run()
                """
            },
        )
        assert findings == []

    def test_borrowed_component_is_the_callers_problem(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "core/owner.py": """\
                class Part:
                    def __init__(self):
                        self.v = 0

                    def begin_run(self):
                        self.v = 0


                class Owner:
                    def __init__(self, part: Part):
                        self.part = part

                    def begin_run(self):
                        return None
                """
            },
        )
        assert findings == []

    def test_classes_without_reset_hooks_are_skipped(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "core/plain.py": """\
                class Plain:
                    def __init__(self):
                        self.items = []

                    def push(self, v):
                        self.items.append(v)
                """
            },
        )
        assert findings == []


# -- hot-path pass (RPR1xx) ---------------------------------------------------


def gpu_module(body: str) -> dict:
    return {
        "gpu/gpu.py": "class GPU:\n" + textwrap.indent(textwrap.dedent(body), "    ")
    }


class TestHotPathPass:
    def test_rpr101_display_in_hot_root(self, tmp_path):
        findings = findings_for(
            tmp_path,
            gpu_module(
                """\
                def _advance(self):
                    xs = [1, 2]
                    return xs
                """
            ),
        )
        assert rules_of(findings) == ["RPR101"]
        assert "list display" in findings[0].message

    def test_rpr101_lambda_in_keyword_argument(self, tmp_path):
        """Regression: ``x.sort(key=lambda ...)`` hides the lambda in an
        ``ast.keyword`` child, which a plain expr walk never visits."""
        findings = findings_for(
            tmp_path,
            gpu_module(
                """\
                def _advance(self, items):
                    items.sort(key=lambda t: t[0])
                    return items
                """
            ),
        )
        assert rules_of(findings) == ["RPR101"]
        assert "lambda" in findings[0].message

    def test_rpr101_reaches_typed_callees(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "gpu/gpu.py": """\
                class Core:
                    def step(self):
                        return {1: 2}


                class GPU:
                    def __init__(self):
                        self.core = Core()

                    def _advance(self):
                        return self.core.step()
                """
            },
        )
        assert rules_of(findings) == ["RPR101"]
        assert "Core.step" in findings[0].message

    def test_rpr102_try_inside_loop(self, tmp_path):
        findings = findings_for(
            tmp_path,
            gpu_module(
                """\
                def _advance(self):
                    total = 0
                    while total < 4:
                        try:
                            total = total + 1
                        except ValueError:
                            total = 9
                    return total
                """
            ),
        )
        assert rules_of(findings) == ["RPR102"]

    def test_rpr103_repeated_attribute_chain(self, tmp_path):
        findings = findings_for(
            tmp_path,
            gpu_module(
                """\
                def _advance(self):
                    if self.mem.l2.hits > 0:
                        return self.mem.l2.hits
                    return self.mem.l2.hits + 1
                """
            ),
        )
        assert rules_of(findings) == ["RPR103"]
        assert "self.mem.l2.hits" in findings[0].message

    def test_hot_ok_line_annotation_accepts(self, tmp_path):
        findings = findings_for(
            tmp_path,
            gpu_module(
                """\
                def _advance(self):
                    xs = [1, 2]  # simcheck: hot-ok -- inherent to the model
                    return xs
                """
            ),
        )
        assert findings == []  # accepted, and the annotation is not stale

    def test_hot_ok_def_annotation_accepts_whole_function(self, tmp_path):
        findings = findings_for(
            tmp_path,
            gpu_module(
                """\
                def _advance(self):  # simcheck: hot-ok -- setup-rate only
                    xs = [1, 2]
                    ys = {3}
                    return xs, ys
                """
            ),
        )
        assert findings == []

    def test_cold_guard_skips_observability_blocks(self, tmp_path):
        findings = findings_for(
            tmp_path,
            gpu_module(
                """\
                def _advance(self):
                    if self.tracer:
                        xs = [1]
                        return xs
                    return None
                """
            ),
        )
        assert findings == []

    def test_non_hot_functions_are_not_flagged(self, tmp_path):
        findings = findings_for(
            tmp_path,
            gpu_module(
                """\
                def summarize(self):
                    return [1, 2, 3]
                """
            ),
        )
        assert findings == []

    def test_rpr104_unknown_tag(self, tmp_path):
        findings = findings_for(tmp_path, {"core/a.py": "X = 1  # simcheck: hotok\n"})
        assert rules_of(findings) == ["RPR104"]
        assert "unknown simcheck tag 'hotok'" in findings[0].message

    def test_rpr104_stale_hot_ok(self, tmp_path):
        findings = findings_for(
            tmp_path,
            gpu_module(
                """\
                def _advance(self):
                    return 1  # simcheck: hot-ok -- nothing to accept here
                """
            ),
        )
        assert rules_of(findings) == ["RPR104"]
        assert "stale" in findings[0].message


# -- drift pass (RPR3xx) ------------------------------------------------------


class TestDriftPass:
    def test_fresh_manifest_is_clean(self, tmp_path):
        assert findings_for(tmp_path, {}) == []

    def test_watched_source_change_without_refresh(self, tmp_path):
        root = make_tree(tmp_path, {})
        (root / "metrics/stats.py").write_text("PAYLOAD = 99\n")
        _, findings = run_project_passes(root)
        assert rules_of(findings) == ["RPR301"]
        assert "result-cache" in findings[0].message

    def test_comment_only_change_does_not_drift(self, tmp_path):
        root = make_tree(tmp_path, {})
        (root / "metrics/stats.py").write_text("PAYLOAD = 1  # a remark\n")
        _, findings = run_project_passes(root)
        assert findings == []

    def test_version_bump_without_refresh(self, tmp_path):
        root = make_tree(tmp_path, {})
        (root / "experiments/engine.py").write_text("CACHE_SCHEMA = 2\n")
        _, findings = run_project_passes(root)
        assert rules_of(findings) == ["RPR301"]
        assert "manifest records" in findings[0].message

    def test_update_contracts_acknowledges(self, tmp_path):
        root = make_tree(tmp_path, {})
        (root / "experiments/engine.py").write_text("CACHE_SCHEMA = 2\n")
        write_manifest(root)
        _, findings = run_project_passes(root)
        assert findings == []

    def test_missing_version_constant(self, tmp_path):
        root = make_tree(tmp_path, {})
        (root / "obs/events.py").write_text("SOMETHING_ELSE = 1\n")
        _, findings = run_project_passes(root)
        assert rules_of(findings) == ["RPR301"]
        assert "EVENT_SCHEMA_VERSION not found" in findings[0].message

    def test_rpr302_unread_config_field(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "config/gpu_config.py": """\
                class GPUConfig:
                    num_sms: int
                    unused_knob: int

                    def check(self):
                        return self.num_sms
                """
            },
        )
        assert rules_of(findings) == ["RPR302"]
        assert "GPUConfig.unused_knob" in findings[0].message

    def test_rpr303_payload_and_conservation_lockstep(self, tmp_path):
        findings = findings_for(
            tmp_path,
            {
                "metrics/stats.py": """\
                class SMStats:
                    cycles: int
                    instructions: int

                    def conservation_errors(self):
                        out = []
                        for name in ("cycles", "bogus"):
                            out.append(name)
                        return out

                    def to_payload(self):
                        return {"cycles": self.cycles}
                """
            },
        )
        assert rules_of(findings) == ["RPR303", "RPR303"]
        messages = " | ".join(f.message for f in findings)
        assert "'bogus'" in messages
        assert "omits field(s) instructions" in messages


# -- SARIF --------------------------------------------------------------------


class TestSarif:
    def test_report_shape(self):
        findings = lint_source("xs = sorted({1, 2})\n", path="src/x.py")
        report = sarif_report(findings)
        assert report["version"] == "2.1.0"
        (run,) = report["runs"]
        assert run["tool"]["driver"]["name"] == "simcheck"
        (result,) = run["results"]
        assert result["ruleId"] == "RPR002"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/x.py"
        assert location["region"]["startLine"] == 1
        assert "suppressions" not in result
        assert json.dumps(report)  # JSON-serializable throughout

    def test_suppressed_findings_carry_suppressions(self):
        findings = lint_source(
            "xs = sorted({1, 2})  # simlint: ignore[RPR002]\n", path="x.py"
        )
        (result,) = sarif_report(findings)["runs"][0]["results"]
        assert result["suppressions"] == [{"kind": "inSource"}]

    def test_rule_descriptors_are_deduplicated(self):
        findings = lint_source("a = sorted({1})\nb = sorted({2})\n")
        rules = sarif_report(findings)["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["RPR002"]


# -- CLI ----------------------------------------------------------------------


CLEAN_FILES = {
    "core/clean.py": """\
    class Clean:
        def __init__(self):
            self.items = []

        def push(self, v):
            self.items.append(v)

        def begin_run(self):
            self.items.clear()
    """
}

DIRTY_FILES = {
    "core/dirty.py": """\
    class Dirty:
        def __init__(self):
            self.counter = 0

        def bump(self):
            self.counter += 1

        def begin_run(self):
            return None
    """
}


class TestCheckAllCLI:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = make_tree(tmp_path, CLEAN_FILES)
        assert main(["--check-all", str(root)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one_with_github_annotations(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY_FILES)
        assert main(["--check-all", str(root), "--github"]) == 1
        out = capsys.readouterr().out
        assert "RPR202" in out
        assert "::error file=" in out

    def test_sarif_export(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY_FILES)
        sarif = tmp_path / "out.sarif"
        assert main(["--check-all", str(root), "--sarif", str(sarif)]) == 1
        capsys.readouterr()
        payload = json.loads(sarif.read_text())
        assert [r["ruleId"] for r in payload["runs"][0]["results"]] == ["RPR202"]

    def test_baseline_roundtrip(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY_FILES)
        baseline = tmp_path / "baseline.json"
        assert main(["--check-all", str(root), "--write-baseline", str(baseline)]) == 0
        payload = json.loads(baseline.read_text())
        assert payload["schema"] == 1
        assert len(payload["entries"]) == 1
        assert payload["entries"][0].startswith("RPR202:")

        # Baselined findings no longer fail the run...
        assert main(["--check-all", str(root), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # ...but --strict ignores the baseline.
        assert (
            main(["--check-all", str(root), "--baseline", str(baseline), "--strict"])
            == 1
        )

    def test_strict_summary_label(self, tmp_path, capsys):
        root = make_tree(tmp_path, CLEAN_FILES)
        assert main(["--check-all", str(root), "--strict"]) == 0
        assert "simcheck (strict):" in capsys.readouterr().out

    def test_invalid_baseline_exits_two(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY_FILES)
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": 99}))
        assert main(["--check-all", str(root), "--baseline", str(bad)]) == 2

    def test_usage_errors_exit_two(self, tmp_path, capsys):
        assert main(["--check-all", "a", "b"]) == 2
        assert main(["--check-all", str(tmp_path / "missing")]) == 2
        assert main(["--check-all", "--sarif"]) == 2
        assert main(["--no-such-flag"]) == 2
        capsys.readouterr()

    def test_list_rules_covers_pass_families(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPR001", "RPR101", "RPR201", "RPR301"):
            assert rule_id in out


class TestRealPackage:
    def test_shipped_package_is_simcheck_clean(self):
        """The CI gate, in-process: zero unsuppressed findings over the
        real package, including under the annotation-hygiene rules."""
        root = Path(repro.__file__).resolve().parent
        _, findings = run_project_passes(root)
        assert [f.format() for f in findings if not f.suppressed] == []
