"""Tests for collector units, the arbitration unit, and the register file."""

import pytest

from repro.core import ArbitrationUnit, CollectorUnit, RegisterFile, ThreadBlock, Warp
from repro.isa import fadd, ffma
from repro.trace import CTATrace, WarpTrace


def dummy_warp():
    tr = WarpTrace.from_instructions([fadd(0, 1, 2)])
    cta = ThreadBlock(0, CTATrace([tr]), regs=1024, shared_mem=0)
    w = Warp(0, cta, tr, subcore_id=0, age=0)
    cta.add_warp(w)
    return w


class TestCollectorUnit:
    def test_lifecycle(self):
        cu = CollectorUnit(0)
        assert cu.free and not cu.ready
        cu.allocate(dummy_warp(), ffma(0, 1, 2, 3), cycle=5)
        assert not cu.free and not cu.ready
        assert cu.pending_operands == 3
        for _ in range(3):
            cu.operand_granted()
        assert cu.ready
        cu.release()
        assert cu.free

    def test_double_allocation_rejected(self):
        cu = CollectorUnit(0)
        cu.allocate(dummy_warp(), fadd(0, 1, 2), cycle=0)
        with pytest.raises(RuntimeError):
            cu.allocate(dummy_warp(), fadd(0, 1, 2), cycle=0)

    def test_extra_grant_rejected(self):
        cu = CollectorUnit(0)
        cu.allocate(dummy_warp(), fadd(0, 1, 2), cycle=0)
        cu.operand_granted()
        cu.operand_granted()
        with pytest.raises(RuntimeError):
            cu.operand_granted()

    def test_zero_operand_instruction_is_immediately_ready(self):
        cu = CollectorUnit(0)
        from repro.isa import Instruction, Opcode

        cu.allocate(dummy_warp(), Instruction(Opcode.NOP), cycle=0)
        assert cu.ready


class TestArbitrationUnit:
    def make_cu_with_requests(self, arb, banks):
        cu = CollectorUnit(0)
        cu.allocate(dummy_warp(), ffma(0, 1, 2, 3), cycle=0)
        cu.pending_operands = len(banks)
        for b in banks:
            arb.request(cu, b)
        return cu

    def test_one_grant_per_bank_per_cycle(self):
        arb = ArbitrationUnit(num_banks=2)
        cu = self.make_cu_with_requests(arb, [0, 0, 1])
        assert arb.grant_cycle(0) == 2  # one from each bank
        assert cu.pending_operands == 1
        assert arb.grant_cycle(1) == 1
        assert cu.ready is False or cu.pending_operands == 0

    def test_conflict_cycles_counted(self):
        arb = ArbitrationUnit(num_banks=2)
        self.make_cu_with_requests(arb, [0, 0])
        arb.grant_cycle(0)
        assert arb.conflict_cycles == 1
        arb.grant_cycle(1)
        assert arb.conflict_cycles == 1

    def test_fifo_order_within_bank(self):
        arb = ArbitrationUnit(num_banks=1)
        cu_a = self.make_cu_with_requests(arb, [0])
        cu_b = self.make_cu_with_requests(arb, [0])
        arb.grant_cycle(0)
        assert cu_a.pending_operands == 0
        assert cu_b.pending_operands == 1

    def test_multiple_read_ports(self):
        arb = ArbitrationUnit(num_banks=1, read_ports=2)
        self.make_cu_with_requests(arb, [0, 0])
        assert arb.grant_cycle(0) == 2

    def test_scores_sum_queue_lengths(self):
        arb = ArbitrationUnit(num_banks=2)
        self.make_cu_with_requests(arb, [0, 0, 1])
        # paper example: two operands in bank0, one in bank1
        assert arb.queue_lengths(0) == [2, 1]
        assert arb.score((0, 0, 1), now=0) == 5
        assert arb.score((1,), now=0) == 1

    def test_stale_scores_with_latency(self):
        arb = ArbitrationUnit(num_banks=2, score_latency=10)
        assert arb.queue_lengths(0) == [0, 0]
        self.make_cu_with_requests(arb, [0, 0, 0])
        arb.grant_cycle(0)  # end-of-cycle 0 state: [2, 0]
        # The scheduler sees the state from 10 cycles earlier.
        assert arb.queue_lengths(5) == [0, 0]    # t=-5: before any request
        assert arb.queue_lengths(10) == [2, 0]   # t=0 state becomes visible
        arb.grant_cycle(1)  # end-of-cycle 1 state: [1, 0]
        assert arb.queue_lengths(10) == [2, 0]
        assert arb.queue_lengths(11) == [1, 0]

    def test_delayed_scores_track_changes(self):
        arb = ArbitrationUnit(num_banks=2, score_latency=2)
        self.make_cu_with_requests(arb, [0, 0, 1])
        arb.grant_cycle(0)   # end of cycle 0: [1, 0]
        arb.grant_cycle(1)   # end of cycle 1: [0, 0]
        assert arb.queue_lengths(2) == [1, 0]
        assert arb.queue_lengths(3) == [0, 0]

    def test_bank_idle(self):
        arb = ArbitrationUnit(num_banks=2)
        self.make_cu_with_requests(arb, [0])
        assert not arb.bank_idle(0)
        assert arb.bank_idle(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ArbitrationUnit(0)
        with pytest.raises(ValueError):
            ArbitrationUnit(2, read_ports=0)


class TestRegisterFile:
    def test_bank_mapping_dispatch(self):
        rf = RegisterFile(2, "mod")
        assert rf.bank_of(4, warp_id=1) == 0
        rf2 = RegisterFile(2, "warp_swizzle")
        assert rf2.bank_of(4, warp_id=1) == 1

    def test_src_banks_preserves_duplicates(self):
        rf = RegisterFile(2, "mod")
        banks = rf.src_banks(ffma(9, 2, 2, 3), warp_id=0)
        assert banks == (0, 0, 1)

    def test_counters(self):
        rf = RegisterFile(2)
        rf.note_reads(3)
        rf.note_write()
        assert rf.reads == 3 and rf.writes == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RegisterFile(0)
