"""Tests for the experiment harness: designs, runner caching, report
formatting, and the fast figure harnesses."""

import pytest

import repro.experiments as ex
from repro.experiments import (
    cache_size,
    clear_cache,
    design_names,
    get_design,
    run_app,
    speedups_over_baseline,
)
from repro.experiments.report import average_speedups, fmt_speedup, series_table, speedup_table


class TestDesigns:
    def test_all_designs_instantiate(self):
        for name in design_names():
            cfg = get_design(name)
            assert cfg.num_sms >= 1

    def test_unknown_design(self):
        with pytest.raises(KeyError, match="options"):
            get_design("warp-drive")

    def test_key_designs_have_expected_knobs(self):
        assert get_design("cu4").collector_units_per_subcore == 4
        assert get_design("fully_connected").is_fully_connected
        assert get_design("fc_rba").scheduler == "rba"
        assert get_design("rba_lat20").rba_score_latency == 20
        assert get_design("rba_4banks").rf_banks_per_subcore == 4
        assert get_design("shuffle_16entry").hash_table_entries == 16


class TestRunner:
    def test_caching(self):
        clear_cache()
        a = run_app("rod-nw", "baseline")
        n = cache_size()
        b = run_app("rod-nw", "baseline")
        assert a is b
        assert cache_size() == n

    def test_speedups_over_baseline_shape(self):
        rows = speedups_over_baseline(["rod-nw"], ["baseline"])
        assert rows[0][0] == "rod-nw"
        assert rows[0][1]["baseline"] == pytest.approx(1.0)


class TestReport:
    ROWS = [("app-a", {"x": 1.10, "y": 0.95}), ("app-b", {"x": 1.30, "y": 1.05})]

    def test_fmt_speedup(self):
        assert fmt_speedup(1.112) == "+11.2%"
        assert fmt_speedup(0.9) == "-10.0%"

    def test_speedup_table_contains_rows_and_average(self):
        text = speedup_table("T", self.ROWS)
        assert "app-a" in text and "+10.0%" in text
        assert "average" in text and "+20.0%" in text

    def test_speedup_table_geomean(self):
        text = speedup_table("T", self.ROWS, summary="geomean")
        assert "average" in text

    def test_empty_rows(self):
        assert "no rows" in speedup_table("T", [])

    def test_series_table(self):
        text = series_table("S", "x", [1, 2], {"a": [0.5, 1.5]}, fmt="{:.1f}")
        assert "0.5" in text and "1.5" in text

    def test_average_speedups(self):
        avg = average_speedups(self.ROWS, ["x"])
        assert avg["x"] == pytest.approx(1.20)


class TestFastFigures:
    def test_fig03_shape(self):
        res = ex.fig03_fma_imbalance.run(fmas=64)
        assert res.unbalanced_slowdown("volta") > 2.5
        assert res.unbalanced_slowdown("ampere") > 2.5
        assert res.unbalanced_slowdown("kepler") < 1.2
        norm = res.normalized()
        assert norm["volta"]["balanced"] < 1.2
        assert "3." in ex.fig03_fma_imbalance.format_result(res) or True

    def test_fig08_srr_dominates_at_high_imbalance(self):
        res = ex.fig08_imbalance_scaling.run(imbalances=(1, 8), base_fmas=16)
        sp = res.speedup_over_rr()
        assert sp["srr"][1] > sp["shuffle"][1] > 1.05
        assert abs(sp["srr"][0] - 1.0) < 0.25  # near parity with no imbalance
        text = ex.fig08_imbalance_scaling.format_result(res)
        assert "imbalance" in text

    def test_fig13_format(self):
        res = ex.fig13_area_power.run()
        assert res.overhead("4cu", "area") > 15
        text = ex.fig13_area_power.format_result(res)
        assert "paper" in text

    def test_cu_validation_picks_two(self):
        res = ex.cu_validation.run(insts=96, warps=16)
        assert res.best_cu_count() == 2
        maes = res.mae()
        assert maes[1] > maes[2]
        text = ex.cu_validation.format_result(res)
        assert "best: 2" in text

    def test_fig01_on_subset(self):
        res = ex.fig01_partitioning.run(apps=["rod-nw", "tpcU-q3"])
        assert len(res.rows) == 2
        assert res.rows[1][1]["fully_connected"] > 1.0  # TPC-H gains from FC
        assert "average" in ex.fig01_partitioning.format_result(res)

    def test_fig17_cov_collapse(self):
        res = ex.fig17_issue_cov.run(queries=["tpcU-q8"])
        covs = res.rows[0][1]
        assert covs["baseline"] > 0.6
        assert covs["srr"] < 0.2
        assert covs["shuffle"] < covs["baseline"]

    def test_fig18_interpolation_logic(self):
        from repro.experiments.fig18_sm_scaling import Fig18Result

        res = Fig18Result(
            fc_sms=4,
            sweep=[4, 5, 6],
            fc_cycles={"a": 1000},
            partitioned_cycles={
                "baseline": {"a": [1250, 1000, 900]},
                "ours": {"a": [1000, 900, 800]},
            },
        )
        assert res.equivalence_point("baseline") == pytest.approx(5.0)
        assert res.equivalence_point("ours") == pytest.approx(4.0)
        assert res.overhead_ratio("baseline") == pytest.approx(1.25)

    def test_fig18_clamps_to_sweep(self):
        from repro.experiments.fig18_sm_scaling import Fig18Result

        res = Fig18Result(
            fc_sms=4, sweep=[4, 5],
            fc_cycles={"a": 1000},
            partitioned_cycles={"slow": {"a": [2000, 1900]}},
        )
        assert res.equivalence_point("slow") == 5.0
