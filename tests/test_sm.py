"""Tests for SM-level behaviour: CTA admission, resource lifecycle,
sub-core integration."""

import pytest

from repro.config import volta_v100
from repro.core import StreamingMultiprocessor
from repro.memory import MemorySubsystem
from repro.trace import CTATrace, KernelTrace, TraceBuilder, WarpTrace, make_kernel
from repro.workloads import fma_microbenchmark

from tests.conftest import fma_warp, independent_warp


def make_sm(config=None, collect_timeline=False):
    cfg = config if config is not None else volta_v100()
    return StreamingMultiprocessor(
        0, cfg, MemorySubsystem(cfg), collect_timeline=collect_timeline
    )


def run_sm_to_completion(sm, max_cycles=200_000):
    now = 0
    while sm.resident_ctas:
        sm.step(now)
        nxt = sm.next_event(now)
        if nxt is None:
            if sm.resident_ctas:
                raise AssertionError("SM deadlocked")
            break
        now = max(now + 1, nxt)
        assert now < max_cycles, "runaway simulation"
    return now


def kernel_of(warps, num_ctas=1, regs_per_thread=None, shared=0):
    return make_kernel(
        "k", warps, num_ctas=num_ctas, regs_per_thread=regs_per_thread,
        shared_mem_per_cta=shared,
    )


class TestCTAAdmission:
    def test_allocates_and_assigns_round_robin(self):
        sm = make_sm()
        k = kernel_of([fma_warp(4) for _ in range(8)])
        assert sm.try_allocate_cta(k, k.ctas[0], cta_id=0, now=0)
        occ = sm.occupancy()
        assert occ == {0: 2, 1: 2, 2: 2, 3: 2}

    def test_rejects_when_warp_slots_exhausted(self):
        sm = make_sm()
        k = kernel_of([fma_warp(4) for _ in range(32)], regs_per_thread=8)
        assert sm.try_allocate_cta(k, k.ctas[0], 0, 0)
        assert sm.try_allocate_cta(k, k.ctas[0], 1, 0)
        # 64 warp slots used; a third CTA cannot fit
        assert not sm.try_allocate_cta(k, k.ctas[0], 2, 0)

    def test_rejects_on_shared_memory(self):
        sm = make_sm()
        k = kernel_of([fma_warp(4)], shared=96 * 1024)
        assert sm.try_allocate_cta(k, k.ctas[0], 0, 0)
        assert not sm.try_allocate_cta(k, k.ctas[0], 1, 0)

    def test_rejects_on_registers(self):
        sm = make_sm()
        # 255 regs/thread x 32 warps x 32 threads ≈ 261k of 262k regs
        k = kernel_of([fma_warp(4) for _ in range(32)], regs_per_thread=255)
        assert sm.try_allocate_cta(k, k.ctas[0], 0, 0)
        assert not sm.try_allocate_cta(k, k.ctas[0], 1, 0)

    def test_rejects_on_max_ctas(self):
        cfg = volta_v100().replace(max_ctas_per_sm=1)
        sm = make_sm(cfg)
        k = kernel_of([fma_warp(4)])
        assert sm.try_allocate_cta(k, k.ctas[0], 0, 0)
        assert not sm.try_allocate_cta(k, k.ctas[0], 1, 0)

    def test_failed_admission_does_not_advance_assignment(self):
        cfg = volta_v100().replace(max_ctas_per_sm=1)
        sm = make_sm(cfg)
        k = kernel_of([fma_warp(4) for _ in range(3)])
        sm.try_allocate_cta(k, k.ctas[0], 0, 0)
        before = sm.assignment.warps_allocated
        sm.try_allocate_cta(k, k.ctas[0], 1, 0)
        assert sm.assignment.warps_allocated == before

    def test_can_ever_fit(self):
        sm = make_sm()
        small = kernel_of([fma_warp(4)])
        assert sm.can_ever_fit(small, small.ctas[0])
        huge = kernel_of([fma_warp(4)], shared=1 << 30)
        assert not sm.can_ever_fit(huge, huge.ctas[0])


class TestResourceLifecycle:
    def test_resources_released_only_at_cta_completion(self):
        sm = make_sm()
        k = kernel_of([fma_warp(8) for _ in range(8)], shared=1024)
        sm.try_allocate_cta(k, k.ctas[0], 0, 0)
        assert sm.shared_mem_used == 1024
        run_sm_to_completion(sm)
        assert sm.shared_mem_used == 0
        assert sm.ctas_completed == 1
        assert sm.resources_freed
        assert all(len(sc.warps) == 0 for sc in sm.subcores)
        assert all(sc.registers_used == 0 for sc in sm.subcores)

    def test_warp_finish_cycles_recorded(self):
        sm = make_sm()
        k = kernel_of([fma_warp(8) for _ in range(4)])
        sm.try_allocate_cta(k, k.ctas[0], 0, 0)
        run_sm_to_completion(sm)
        assert len(sm.warp_finish_cycles) == 4
        assert len(sm.cta_latencies) == 1

    def test_issue_counts_by_subcore(self):
        sm = make_sm()
        k = kernel_of([fma_warp(16) for _ in range(4)])
        sm.try_allocate_cta(k, k.ctas[0], 0, 0)
        run_sm_to_completion(sm)
        counts = sm.issue_counts()
        assert len(counts) == 4
        # one warp per sub-core, 16 FMAs + EXIT each
        assert all(c == 17 for c in counts)
        assert sm.total_instructions == 68


class TestExecutionBehaviour:
    def test_barrier_synchronizes_whole_cta(self):
        sm = make_sm()
        # one long warp, three short; all barrier at the end
        warps = [
            TraceBuilder().fma_chain(64).barrier().build(),
            TraceBuilder().barrier().build(),
            TraceBuilder().barrier().build(),
            TraceBuilder().barrier().build(),
        ]
        k = kernel_of(warps)
        sm.try_allocate_cta(k, k.ctas[0], 0, 0)
        run_sm_to_completion(sm)
        finishes = sorted(sm.warp_finish_cycles)
        # Nobody exits much earlier than the long warp: the spread is only
        # the long warp's writeback drain, not the 64-FMA chain (~400 cycles).
        assert finishes[-1] - finishes[0] <= 16

    def test_timeline_collection(self):
        sm = make_sm(collect_timeline=True)
        k = kernel_of([independent_warp(16) for _ in range(4)])
        sm.try_allocate_cta(k, k.ctas[0], 0, 0)
        run_sm_to_completion(sm)
        assert sm.rf_read_timeline
        total_grants = sum(g for _, g in sm.rf_read_timeline)
        assert total_grants == sm.total_rf_reads()
        # 16 instructions x 2 sources x 4 warps
        assert total_grants == 128

    def test_next_event_idle_sm(self):
        sm = make_sm()
        assert sm.next_event(0) is None

    def test_bank_conflict_cycles_counted(self):
        cfg = volta_v100().replace(bank_mapping="mod")
        sm = make_sm(cfg)
        # every instruction reads two even registers -> same bank
        from repro.isa import Instruction, Opcode

        body = [
            Instruction(Opcode.FADD, dst_reg=9 + (i % 4), src_regs=(0, 2))
            for i in range(16)
        ]
        k = kernel_of([WarpTrace.from_instructions(body)])
        sm.try_allocate_cta(k, k.ctas[0], 0, 0)
        run_sm_to_completion(sm)
        assert sm.total_bank_conflict_cycles() > 0


class TestFullyConnectedSM:
    def test_single_domain_holds_all_warps(self):
        from repro.config import fully_connected

        cfg = fully_connected()
        sm = make_sm(cfg)
        k = kernel_of([fma_warp(4) for _ in range(8)])
        assert sm.try_allocate_cta(k, k.ctas[0], 0, 0)
        assert sm.occupancy() == {0: 8}

    def test_unbalanced_fma_has_no_penalty(self):
        from repro.config import fully_connected

        base_k = fma_microbenchmark("baseline", fmas=64)
        unb_k = fma_microbenchmark("unbalanced", fmas=64)
        cfg = fully_connected()
        t_base = run_one(cfg, base_k)
        t_unb = run_one(cfg, unb_k)
        assert t_unb / t_base < 1.2


def run_one(cfg, kernel):
    sm = make_sm(cfg)
    sm.try_allocate_cta(kernel, kernel.ctas[0], 0, 0)
    return run_sm_to_completion(sm)
