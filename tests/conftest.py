"""Shared fixtures and kernel helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import volta_v100
from repro.experiments.engine import configure
from repro.isa import Instruction, Opcode
from repro.trace import TraceBuilder, WarpTrace, make_kernel


@pytest.fixture(autouse=True, scope="session")
def _hermetic_engine_cache(tmp_path_factory):
    """Point the process-wide experiment engine at a throwaway cache dir.

    Keeps the suite from reading or writing the user's persistent result
    cache (results from another simulator version must never leak into
    test assertions).  Session-scoped: tests still share the in-memory
    cache, which the figure tests rely on for speed.
    """
    configure(cache_dir=tmp_path_factory.mktemp("sim-cache"))
    yield


@pytest.fixture
def volta():
    return volta_v100()


@pytest.fixture
def tiny_volta():
    """A Volta-like config shrunk for fast single-SM tests."""
    return volta_v100().replace(num_sms=1)


def fma_warp(n: int = 32, regs: int = 8) -> WarpTrace:
    return TraceBuilder().fma_chain(n, regs=regs).build()


def simple_kernel(warps: int = 8, insts: int = 32, name: str = "test-kernel"):
    return make_kernel(name, [fma_warp(insts) for _ in range(warps)])


def independent_warp(n: int = 32) -> WarpTrace:
    """A warp of independent 2-source adds (no RAW hazards)."""
    body = [
        Instruction(Opcode.FADD, dst_reg=8 + (i % 8), src_regs=(i % 4, 4 + (i % 4)))
        for i in range(n)
    ]
    return WarpTrace.from_instructions(body)
