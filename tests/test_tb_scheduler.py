"""Edge-case tests for the thread-block scheduler (single and multi-kernel)."""

import pytest

from repro import GPU, volta_v100
from repro.gpu import ThreadBlockScheduler
from repro.trace import TraceBuilder, make_kernel


def kernel(name, warps=8, insts=16, regs=16, num_ctas=2, shared=0):
    traces = [TraceBuilder().fma_chain(insts).build() for _ in range(warps)]
    return make_kernel(name, traces, num_ctas=num_ctas, regs_per_thread=regs,
                       shared_mem_per_cta=shared)


def scheduler(num_sms=1):
    gpu = GPU(volta_v100(), num_sms=num_sms)
    return ThreadBlockScheduler(gpu.sms), gpu


class TestLaunchValidation:
    def test_launch_many_rejects_empty(self):
        sched, _ = scheduler()
        with pytest.raises(ValueError):
            sched.launch_many([])

    def test_launch_many_rejects_while_in_flight(self):
        sched, _ = scheduler()
        sched.launch_many([kernel("a")])
        with pytest.raises(RuntimeError):
            sched.launch_many([kernel("b")])

    def test_impossible_kernel_rejected_upfront(self):
        sched, _ = scheduler()
        too_big = kernel("big", shared=1 << 30)
        with pytest.raises(ValueError, match="never fit"):
            sched.launch_many([kernel("ok"), too_big])

    def test_relaunch_after_completion_allowed(self):
        sched, gpu = scheduler()
        sched.launch(kernel("a", num_ctas=1))
        sched.fill(0)
        assert sched.done
        sched.launch(kernel("b", num_ctas=1))  # no error
        assert sched.pending_ctas == 1


class TestInterleaving:
    def test_fill_interleaves_kernels(self):
        sched, gpu = scheduler()
        a = kernel("a", warps=8, num_ctas=4)
        b = kernel("b", warps=8, num_ctas=4)
        sched.launch_many([a, b])
        placed = sched.fill(0)
        # 64 warp slots / 8 warps per CTA = 8 CTAs resident
        assert placed == 8
        assert sched.done

    def test_partial_fill_leaves_pending(self):
        sched, gpu = scheduler()
        a = kernel("a", warps=32, num_ctas=3)
        sched.launch_many([a])
        assert sched.fill(0) == 2      # 64 slots / 32
        assert sched.pending_ctas == 1
        assert not sched.done

    def test_fat_kernel_does_not_block_thin_one(self):
        # The fat kernel's CTA cannot fit next to the first one; the thin
        # kernel's CTAs must still be placed (no head-of-line blocking
        # across kernels).
        sched, gpu = scheduler()
        fat = kernel("fat", warps=8, regs=250, num_ctas=2)
        thin = kernel("thin", warps=8, regs=16, num_ctas=2)
        sched.launch_many([fat, thin])
        placed = sched.fill(0)
        names = []
        for sm in gpu.sms:
            names.extend(tb.trace for tb in sm.resident_ctas)
        assert placed >= 3  # at least one fat + both thin

    def test_round_robin_across_sms(self):
        sched, gpu = scheduler(num_sms=2)
        a = kernel("a", warps=8, num_ctas=4)
        sched.launch_many([a])
        sched.fill(0)
        counts = [len(sm.resident_ctas) for sm in gpu.sms]
        assert counts == [2, 2]


class TestCounters:
    def test_pending_ctas_across_kernels(self):
        sched, _ = scheduler()
        sched.launch_many([kernel("a", num_ctas=3), kernel("b", num_ctas=5)])
        assert sched.pending_ctas == 8

    def test_done_empty_scheduler(self):
        sched, _ = scheduler()
        assert sched.done
        assert sched.fill(0) == 0


class TestRelaunchCtaIds:
    def test_relaunch_restarts_cta_numbering(self):
        """CTA ids restart at 0 on every launch (simcheck RPR202 fix).

        The counter leaking across launches numbered a relaunched kernel's
        CTAs from where the previous kernel stopped — visible in per-CTA
        latency stats and traces of back-to-back runs on a reused GPU.
        """
        sched, gpu = scheduler()
        sched.launch(kernel("a", warps=8, num_ctas=2))
        sched.fill(0)
        first_ids = [tb.cta_id for sm in gpu.sms for tb in sm.resident_ctas]
        assert first_ids == [0, 1]

        sched.launch(kernel("b", warps=8, num_ctas=2))
        sched.fill(1)
        later_ids = [tb.cta_id for sm in gpu.sms for tb in sm.resident_ctas]
        assert later_ids[2:] == [0, 1]
