"""Tests for JSON export of stats and experiment results."""

import json

import pytest

from repro import simulate, volta_v100
from repro.experiments import dump_json, load_json, result_to_dict, stats_to_dict
from repro.experiments.fig01_partitioning import Fig01Result
from repro.workloads import fma_microbenchmark


@pytest.fixture(scope="module")
def stats():
    return simulate(fma_microbenchmark("baseline", fmas=16), volta_v100(), num_sms=1)


class TestStatsExport:
    def test_roundtrips_through_json(self, stats):
        payload = json.loads(dump_json(stats))
        assert payload["cycles"] == stats.cycles
        assert payload["derived"]["ipc"] == pytest.approx(stats.ipc)
        assert len(payload["sms"]) == 1

    def test_timeline_dropped_by_default(self, stats):
        payload = stats_to_dict(stats)
        assert "rf_read_timeline" not in payload["sms"][0]

    def test_timeline_kept_when_requested(self):
        s = simulate(
            fma_microbenchmark("baseline", fmas=8), volta_v100(), num_sms=1,
            collect_timeline=True,
        )
        payload = stats_to_dict(s, include_timeline=True)
        assert "rf_read_timeline" in payload["sms"][0]

    def test_file_io(self, stats, tmp_path):
        path = tmp_path / "stats.json"
        dump_json(stats, path)
        loaded = load_json(path)
        assert loaded["instructions"] == stats.instructions


class TestResultExport:
    def test_figure_result_serializes(self):
        res = Fig01Result(rows=[("a", {"fully_connected": 1.2})])
        payload = json.loads(dump_json(res))
        assert payload["rows"][0][0] == "a"

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            result_to_dict(object())

    def test_plain_containers_pass_through(self):
        assert json.loads(dump_json({"x": [1, 2.5, None, True]})) == {
            "x": [1, 2.5, None, True]
        }

    def test_unserializable_type_raises(self):
        with pytest.raises(TypeError):
            dump_json({"bad": object()})
