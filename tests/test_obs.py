"""Unit tests for the observability layer (repro.obs) and its renderers."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    RunManifest,
    Tracer,
    chrome_trace,
    dumps_chrome_trace,
    read_manifest,
    stats_digest,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.chrome_trace import cu_tid, iter_jsonl, subcore_tid, warp_tid
from repro.obs.events import (
    EVENT_FIELDS,
    EVENT_KINDS,
    validate_chrome_trace,
    validate_event,
)
from repro.obs.stall import (
    BANK_CONFLICT,
    ISSUED,
    SCOREBOARD,
    STALL_BUCKETS,
    empty_buckets,
    merge_buckets,
)


def _emit_one_of_each(tracer: Tracer) -> None:
    tracer.warp_issue(0, 0, 1, 5, "FFMA", 3, "gto", True)
    tracer.warp_stall(1, 0, 1, SCOREBOARD, slots=2, dur=4)
    tracer.warp_barrier(2, 0, 1, 5)
    tracer.warp_exit(3, 0, 1, 5)
    tracer.warp_migrate(4, 0, 2, 5, 1)
    tracer.cta_launch(5, 0, 7, 8)
    tracer.cta_retire(6, 0, 7, 100)
    tracer.cu_span(7, 0, 1, 0, 5, "LDG", 3)
    tracer.bank_conflict(8, 0, 1, 2)
    tracer.mem_access(9, 0, "global", 200, l1_hits=3, l1_misses=1)


class TestTracer:
    def test_every_helper_emits_a_schema_valid_event(self):
        tracer = Tracer()
        _emit_one_of_each(tracer)
        assert len(tracer) == 10
        for event in tracer.events:
            assert validate_event(event) == []
        assert {e["e"] for e in tracer.events} == set(EVENT_KINDS)

    def test_max_cycles_caps_the_event_stream(self):
        tracer = Tracer(max_cycles=5)
        _emit_one_of_each(tracer)
        assert all(e["t"] < 5 for e in tracer.events)
        assert len(tracer) == 5
        assert tracer.dropped == 5

    def test_max_cycles_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(max_cycles=0)

    def test_durations_are_clamped_positive(self):
        tracer = Tracer()
        tracer.cta_retire(0, 0, 0, 0)
        tracer.mem_access(0, 0, "shared", 0)
        assert all(e["dur"] >= 1 for e in tracer.events)


class TestEventSchema:
    def test_unknown_kind_rejected(self):
        assert validate_event({"e": "nope", "t": 0})

    def test_missing_field_reported(self):
        errors = validate_event({"e": "issue", "t": 0, "sm": 0})
        missing = {f for f in EVENT_FIELDS["issue"] if f not in ("sm",)}
        assert len(errors) == len(missing)

    def test_negative_cycle_rejected(self):
        event = {"e": "barrier", "t": -1, "sm": 0, "sc": 0, "w": 0}
        assert validate_event(event)


class TestChromeTrace:
    def test_export_passes_its_own_validator(self):
        tracer = Tracer()
        _emit_one_of_each(tracer)
        assert validate_chrome_trace(chrome_trace(tracer)) == []

    def test_track_id_scheme(self):
        assert subcore_tid(0) == 10
        assert cu_tid(0, 0) == 11
        assert warp_tid(3) == 1003
        # Collector-unit tids never collide with the next sub-core's track.
        assert cu_tid(0, 8) < subcore_tid(1)

    def test_events_land_on_their_tracks(self):
        tracer = Tracer()
        _emit_one_of_each(tracer)
        doc = chrome_trace(tracer)
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] != "M"}
        assert by_name["FFMA"]["tid"] == warp_tid(5)
        assert by_name[f"stall:{SCOREBOARD}"]["tid"] == subcore_tid(1)
        assert by_name["LDG"]["tid"] == cu_tid(1, 0)
        assert by_name["mem:global"]["tid"] == 1
        assert by_name["CTA 7 launch"]["tid"] == 1

    def test_every_track_gets_metadata(self):
        tracer = Tracer()
        _emit_one_of_each(tracer)
        doc = chrome_trace(tracer)
        named = {
            (e["pid"], e["tid"])
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        used = {(e["pid"], e["tid"]) for e in doc["traceEvents"] if e["ph"] != "M"}
        assert used <= named

    def test_serialization_is_byte_stable(self):
        a, b = Tracer(), Tracer()
        _emit_one_of_each(a)
        _emit_one_of_each(b)
        assert dumps_chrome_trace(a) == dumps_chrome_trace(b)

    def test_file_round_trip(self, tmp_path):
        tracer = Tracer()
        _emit_one_of_each(tracer)
        path = tmp_path / "t.trace.json"
        write_chrome_trace(tracer, path)
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []

    def test_jsonl_round_trips_raw_events(self, tmp_path):
        tracer = Tracer()
        _emit_one_of_each(tracer)
        path = tmp_path / "t.events.jsonl"
        write_events_jsonl(tracer, path)
        back = [json.loads(line) for line in path.read_text().splitlines()]
        assert back == tracer.events
        assert list(iter_jsonl(tracer)) == [
            json.dumps(e, sort_keys=True, separators=(",", ":"))
            for e in tracer.events
        ]


class TestStallBuckets:
    def test_empty_buckets_cover_the_taxonomy_in_order(self):
        assert tuple(empty_buckets()) == STALL_BUCKETS
        assert all(v == 0 for v in empty_buckets().values())

    def test_merge_sums_per_subcore_dicts(self):
        a = empty_buckets()
        a[ISSUED] = 3
        b = empty_buckets()
        b[ISSUED] = 1
        b[BANK_CONFLICT] = 2
        merged = merge_buckets([a, b])
        assert merged[ISSUED] == 4
        assert merged[BANK_CONFLICT] == 2
        assert sum(merged.values()) == 6


class TestManifest:
    def test_record_and_read_round_trip(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        manifest = RunManifest(path)
        manifest.record("a × b", "k" * 64, "sim", "d" * 16, seconds=1.5,
                        worker=123, trace="a.trace.json")
        manifest.record("a × b", "k" * 64, "memory", "d" * 16)
        assert manifest.records_written == 2
        records = read_manifest(path)
        assert [r["source"] for r in records] == ["sim", "memory"]
        assert records[0]["seconds"] == 1.5
        assert records[0]["trace"] == "a.trace.json"
        assert "seconds" not in records[1]

    def test_unknown_source_rejected(self, tmp_path):
        manifest = RunManifest(tmp_path / "m.jsonl")
        with pytest.raises(ValueError):
            manifest.record("p", "k", "telepathy", "d")

    def test_stats_digest_is_stable_and_content_addressed(self):
        a = {"cycles": 10, "sms": [1, 2]}
        assert stats_digest(a) == stats_digest({"sms": [1, 2], "cycles": 10})
        assert stats_digest(a) != stats_digest({"cycles": 11, "sms": [1, 2]})
        assert len(stats_digest(a)) == 16


class TestStackedCharts:
    def test_segments_always_fill_the_exact_width(self):
        from repro.viz import stacked_bar_chart

        rows = {
            "sc0": {"a": 1, "b": 1, "c": 1},
            "sc1": {"a": 997, "b": 2, "c": 1},
            "sc2": {"a": 1, "b": 0, "c": 0},
        }
        out = stacked_bar_chart("t", rows, width=50)
        bars = [line for line in out.splitlines() if "|" in line]
        assert len(bars) == 3
        for line in bars:
            assert len(line.split("|")[1]) == 50

    def test_zero_total_row_renders_empty(self):
        from repro.viz import stacked_bar_chart

        out = stacked_bar_chart("t", {"sc0": {"a": 0}}, width=10)
        assert "(empty)" in out

    def test_stall_chart_names_nonzero_buckets(self):
        from repro.viz import stall_chart

        buckets = empty_buckets()
        buckets[ISSUED] = 30
        buckets[SCOREBOARD] = 70
        out = stall_chart([buckets, dict(buckets)])
        assert "issued" in out and "scoreboard" in out
        assert "sc0" in out and "sc1" in out


class TestObsCLI:
    def test_validate_accepts_good_trace(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        tracer = Tracer()
        _emit_one_of_each(tracer)
        path = tmp_path / "good.trace.json"
        write_chrome_trace(tracer, path)
        assert main(["--validate", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_rejects_bad_trace(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        path = tmp_path / "bad.trace.json"
        path.write_text(json.dumps({"traceEvents": [{"ph": "Q"}]}))
        assert main(["--validate", str(path)]) == 1

    def test_summarize_counts_event_kinds(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        tracer = Tracer()
        _emit_one_of_each(tracer)
        path = tmp_path / "e.events.jsonl"
        write_events_jsonl(tracer, path)
        assert main(["--summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "10 events" in out

    def test_usage_error_without_mode(self, capsys):
        from repro.obs.__main__ import main

        assert main(["something.json"]) == 2


class TestLinterStrictMode:
    SOURCE = (
        "order = sorted({3, 1, 2})  # simlint: ignore[RPR002] — distinct ints\n"
    )

    def test_suppression_honoured_by_default(self):
        from repro.analysis.linter import lint_source

        findings = lint_source(self.SOURCE, path="x.py")
        assert findings and all(f.suppressed for f in findings)

    def test_strict_ignores_suppressions(self):
        from repro.analysis.linter import lint_source

        findings = lint_source(self.SOURCE, path="x.py", strict=True)
        assert findings and not any(f.suppressed for f in findings)

    def test_strict_report_fails_and_says_so(self, tmp_path):
        from repro.analysis.linter import lint_paths

        f = tmp_path / "mod.py"
        f.write_text(self.SOURCE)
        relaxed = lint_paths([str(f)])
        strict = lint_paths([str(f)], strict=True)
        assert relaxed.ok and not strict.ok
        assert "strict" in strict.summary()

    def test_obs_package_is_suppression_free(self):
        import os

        import repro.obs
        from repro.analysis.linter import lint_paths

        obs_dir = os.path.dirname(os.path.abspath(repro.obs.__file__))
        report = lint_paths([obs_dir], strict=True)
        assert report.ok, report.summary()

    def test_cli_strict_flag(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        f = tmp_path / "mod.py"
        f.write_text(self.SOURCE)
        assert main(["--lint", str(f)]) == 0
        assert main(["--lint", "--strict", str(f)]) == 1
