"""Smoke tests: every example script runs and produces its key output.

The examples are the quickstart surface of the library; they must keep
working.  Each is imported and driven through its ``main()`` with stdout
captured (cheaper and better-reported than subprocesses).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / name)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "slowdown from sub-core imbalance" in out
        assert "SRR" in out

    def test_register_pressure(self, capsys):
        out = run_example("register_pressure.py", capsys)
        assert "RBA" in out
        assert "fully-connected SM" in out

    def test_warp_specialization(self, capsys):
        out = run_example("warp_specialization.py", capsys)
        assert "issue CoV" in out
        assert "TPC-H query 8" in out

    def test_custom_design_sweep(self, capsys):
        out = run_example("custom_design_sweep.py", capsys)
        assert "IPC surface" in out
        assert "srr-as-table" in out

    def test_trace_files(self, capsys):
        out = run_example("trace_files.py", capsys)
        assert "round-trip" in out
        assert "profile:" in out
