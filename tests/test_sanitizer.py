"""The runtime invariant sanitizer: clean runs, fault injection, stats checks.

Fault-injection tests corrupt one model counter and assert that the
sanitizer raises an :class:`InvariantViolation` carrying the right
structured payload (invariant name, cycle, SM, sub-core, counter) — that
payload is the debugging contract the sanitizer exists for.
"""

import json
from types import SimpleNamespace

import pytest

from repro.analysis import InvariantViolation, Sanitizer
from repro.analysis.smoke import run_smoke_grid
from repro.config import volta_v100
from repro.gpu import GPU, simulate
from repro.isa import Instruction, Opcode

from .conftest import simple_kernel


@pytest.fixture
def sanitized_config():
    return volta_v100().replace(num_sms=1, sanitize=True)


def _clean_run(config):
    gpu = GPU(config=config)
    stats = gpu.run(simple_kernel())
    return gpu, stats


# -- clean behaviour ---------------------------------------------------------

def test_clean_run_passes_and_checks_fire(sanitized_config):
    gpu, stats = _clean_run(sanitized_config)
    assert stats.instructions > 0
    sm = gpu.sms[0]
    assert sm.sanitizer is not None
    assert sm.sanitizer.checks_run > 0


def test_sanitizer_absent_when_disabled():
    gpu = GPU(config=volta_v100().replace(num_sms=1))
    assert all(sm.sanitizer is None for sm in gpu.sms)


def test_sanitized_stats_byte_identical_to_plain(sanitized_config):
    kernel = simple_kernel()
    sanitized = simulate(kernel, sanitized_config)
    plain = simulate(kernel, sanitized_config.replace(sanitize=False))
    assert json.dumps(sanitized.to_payload(), sort_keys=True) == json.dumps(
        plain.to_payload(), sort_keys=True
    )


# -- fault injection: per-cycle checks during a run --------------------------

def test_register_leak_raises_rf_conservation(sanitized_config):
    gpu = GPU(config=sanitized_config)
    gpu.sms[0].subcores[0].registers_used += 8
    with pytest.raises(InvariantViolation) as exc_info:
        gpu.run(simple_kernel())
    exc = exc_info.value
    assert exc.invariant == "rf-conservation"
    assert exc.counter == "registers_used"
    assert exc.sm_id == 0
    assert exc.cycle is not None
    assert exc.actual == exc.expected + 8


def test_instruction_counter_skew_raises_issue_accounting(sanitized_config):
    gpu = GPU(config=sanitized_config)
    gpu.sms[0].total_instructions += 7
    with pytest.raises(InvariantViolation) as exc_info:
        gpu.run(simple_kernel())
    exc = exc_info.value
    assert exc.invariant == "issue-accounting"
    assert exc.counter == "total_instructions"
    assert exc.sm_id == 0


def test_free_cu_with_pending_operands_raises(sanitized_config):
    # Injected after the run: a mid-run injection would be overwritten the
    # moment the scheduler legitimately allocates this CU.
    gpu, _ = _clean_run(sanitized_config)
    sm = gpu.sms[0]
    sm.subcores[1].collector_units[0].pending_operands = 3
    with pytest.raises(InvariantViolation) as exc_info:
        sm.sanitizer.check_sm(sm, now=gpu.now)
    exc = exc_info.value
    assert exc.invariant == "cu-occupancy"
    assert exc.counter == "pending_operands"
    assert exc.subcore_id == 1
    assert exc.actual == 3


def test_arbitration_pending_skew_raises(sanitized_config):
    # Injected after the run: GPU.run now resets transient arbitration
    # state at launch (begin_run), so a pre-run injection would be wiped
    # before the first sanitized cycle.
    gpu, _ = _clean_run(sanitized_config)
    sm = gpu.sms[0]
    sm.subcores[2].arbitration.pending += 1
    with pytest.raises(InvariantViolation) as exc_info:
        sm.sanitizer.check_sm(sm, now=gpu.now)
    exc = exc_info.value
    assert exc.invariant == "arbitration-accounting"
    assert exc.subcore_id == 2


def test_stale_scheduler_pointer_raises(sanitized_config):
    gpu, _ = _clean_run(sanitized_config)
    sm = gpu.sms[0]
    ghost = SimpleNamespace(warp_id=999)
    sm.subcores[3].scheduler.last_issued = ghost
    with pytest.raises(InvariantViolation) as exc_info:
        sm.sanitizer.check_sm(sm, now=1234)
    exc = exc_info.value
    assert exc.invariant == "scheduler-state"
    assert exc.cycle == 1234
    assert exc.subcore_id == 3
    assert exc.actual == 999


def _wedge_all_warps(sm):
    """Put every resident warp into a state no future event can wake.

    Each warp gets a phantom pending writeback that is never scheduled on
    the SM's writeback heap — the exact shape of a scoreboard deadlock
    (e.g. a lost memory completion event).
    """
    from repro.core.warp import WarpState

    for sc in sm.subcores:
        for w in sc.warps:
            w.pending_writes.add(99)
            w.set_state(WarpState.BLOCKED)


def test_wedged_sm_raises_liveness(sanitized_config):
    # Resident CTAs must always imply a next event: construct the hung
    # state (all warps blocked, writeback heap empty) and assert both the
    # next_event symptom and the sanitizer diagnosis.
    gpu = GPU(config=sanitized_config)
    sm = gpu.sms[0]
    k = simple_kernel()
    assert sm.try_allocate_cta(k, k.ctas[0], cta_id=0, now=0)
    _wedge_all_warps(sm)
    assert not sm._wb_heap
    assert sm.next_event(0) is None  # the idle-hang edge itself
    with pytest.raises(InvariantViolation) as exc_info:
        sm.sanitizer.check_sm(sm, now=7)
    exc = exc_info.value
    assert exc.invariant == "liveness"
    assert exc.counter == "next_event"
    assert exc.cycle == 7
    assert exc.sm_id == 0


def test_live_sm_passes_liveness(sanitized_config):
    # The same freshly-filled SM *with* runnable warps must not trip it.
    gpu = GPU(config=sanitized_config)
    sm = gpu.sms[0]
    k = simple_kernel()
    assert sm.try_allocate_cta(k, k.ctas[0], cta_id=0, now=0)
    assert sm.next_event(0) is not None
    sm.sanitizer.check_sm(sm, now=0)  # must not raise


# -- fault injection: end-of-kernel drain checks -----------------------------

def test_lost_warp_raises_warp_conservation_at_end(sanitized_config):
    gpu, _ = _clean_run(sanitized_config)
    sm = gpu.sms[0]
    sm._warp_id_counter += 1
    with pytest.raises(InvariantViolation) as exc_info:
        sm.sanitizer.end_of_kernel(sm, now=gpu.now)
    exc = exc_info.value
    assert exc.invariant == "warp-conservation"
    assert exc.counter == "warps"
    assert exc.expected == exc.actual + 1


def test_undrained_collector_unit_raises_at_end(sanitized_config):
    gpu, _ = _clean_run(sanitized_config)
    sm = gpu.sms[0]
    cu = sm.subcores[0].collector_units[0]
    cu.warp = SimpleNamespace(warp_id=0)
    cu.instruction = Instruction(Opcode.FADD, dst_reg=4, src_regs=(0, 1))
    with pytest.raises(InvariantViolation) as exc_info:
        sm.sanitizer.end_of_kernel(sm, now=gpu.now)
    exc = exc_info.value
    assert exc.invariant == "drain-collector-units"
    assert exc.subcore_id == 0
    assert exc.actual == 1


# -- fault injection: collected-stats conservation ---------------------------

def test_stats_instruction_mismatch_raises(sanitized_config):
    gpu, stats = _clean_run(sanitized_config)
    stats.instructions += 1
    with pytest.raises(InvariantViolation) as exc_info:
        gpu.sms[0].sanitizer.check_run_stats(stats)
    exc = exc_info.value
    assert exc.invariant == "stats-conservation"
    assert "instruction total" in str(exc)


def test_stats_negative_delta_raises(sanitized_config):
    gpu, stats = _clean_run(sanitized_config)
    stats.sms[0].rf_reads = -1
    with pytest.raises(InvariantViolation) as exc_info:
        Sanitizer(sanitized_config).check_run_stats(stats)
    assert "rf_reads" in str(exc_info.value)


def test_violation_message_names_location():
    exc = InvariantViolation(
        "rf-conservation",
        "charges do not match",
        cycle=42,
        sm_id=3,
        subcore_id=1,
        counter="registers_used",
        expected=256,
        actual=264,
    )
    text = str(exc)
    assert "[rf-conservation]" in text
    assert "cycle 42" in text
    assert "SM 3" in text
    assert "sub-core 1" in text
    assert "counter=registers_used" in text
    assert "expected=256" in text and "actual=264" in text


# -- the smoke grid (the CI gate, exercised through the library API) ---------

def test_smoke_single_point_is_clean_and_identical():
    report = run_smoke_grid(apps=["cg-lou"], designs=["baseline"])
    assert report.ok
    (point,) = report.points
    assert point.bytes_identical
    assert point.checks_run > 0


@pytest.mark.slow
def test_smoke_full_grid_is_clean_and_identical():
    """The acceptance grid: >= 3 workloads x 3 designs, zero violations."""
    report = run_smoke_grid()
    assert len(report.points) == 9
    assert report.ok
    assert all(p.bytes_identical and p.checks_run > 0 for p in report.points)
