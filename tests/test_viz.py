"""Tests for the ASCII chart renderer."""

import pytest

from repro.viz import bar_chart, hbar, histogram, sparkline, speedup_chart, timeline


class TestHBar:
    def test_full_bar(self):
        assert hbar(10, 10, width=4) == "████"

    def test_half_bar(self):
        assert hbar(5, 10, width=4) == "██"

    def test_zero(self):
        assert hbar(0, 10, width=4) == ""

    def test_clamps_overflow(self):
        assert hbar(20, 10, width=4) == "████"

    def test_zero_max(self):
        assert hbar(1, 0) == ""


class TestBarChart:
    def test_labels_and_values_present(self):
        text = bar_chart("T", {"alpha": 2.0, "beta": 1.0})
        assert "alpha" in text and "2.00" in text

    def test_empty(self):
        assert "no data" in bar_chart("T", {})

    def test_baseline_negative_renders_dashes(self):
        text = bar_chart("T", {"worse": 0.9, "better": 1.2}, baseline=1.0)
        assert "-" in text.splitlines()[2]


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_levels(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7], vmax=8)
        assert line == "".join(sorted(line))

    def test_empty(self):
        assert sparkline([]) == ""

    def test_all_zero(self):
        assert set(sparkline([0, 0, 0])) == {"▁"}


class TestTimeline:
    def test_buckets_long_series(self):
        text = timeline("tl", list(range(1000)), buckets=10)
        lines = text.splitlines()
        assert lines[0] == "tl"
        assert "mean" in lines[1]

    def test_empty(self):
        assert "(empty)" in timeline("tl", [])


class TestHistogram:
    def test_counts_sum(self):
        text = histogram("h", [1, 1, 2, 5, 5, 5], bins=5)
        counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()[2:]]
        assert sum(counts) == 6

    def test_empty(self):
        assert "(empty)" in histogram("h", [])

    def test_degenerate_range(self):
        text = histogram("h", [3.0, 3.0, 3.0], bins=4)
        assert "3" in text


class TestSpeedupChart:
    def test_renders(self):
        text = speedup_chart("S", {"rba": 1.12, "steal": 1.002})
        assert "rba" in text and "1.120x" in text
