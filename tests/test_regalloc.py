"""Tests for bank mappings and the conflict-aware register allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Instruction, Opcode, ffma
from repro.regalloc import (
    MAPPINGS,
    ConflictAwareAllocator,
    get_mapping,
    mod_mapping,
    scrambled_mapping,
    warp_swizzle_mapping,
)
from repro.trace import WarpTrace


class TestBankMappings:
    def test_mod_mapping(self):
        assert mod_mapping(0, 0, 2) == 0
        assert mod_mapping(5, 0, 2) == 1
        assert mod_mapping(5, 0, 4) == 1

    def test_warp_swizzle_shifts_by_warp(self):
        assert warp_swizzle_mapping(0, 0, 2) == 0
        assert warp_swizzle_mapping(0, 1, 2) == 1
        assert warp_swizzle_mapping(3, 1, 4) == 0

    def test_get_mapping_unknown(self):
        with pytest.raises(KeyError, match="options"):
            get_mapping("nope")

    def test_registry_contents(self):
        assert set(MAPPINGS) == {"mod", "warp_swizzle", "scrambled"}

    @given(
        reg=st.integers(min_value=0, max_value=255),
        warp=st.integers(min_value=0, max_value=63),
        banks=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_mappings_in_range(self, reg, warp, banks):
        for mapper in MAPPINGS.values():
            assert 0 <= mapper(reg, warp, banks) < banks

    def test_scrambled_is_deterministic(self):
        assert scrambled_mapping(7, 3, 4) == scrambled_mapping(7, 3, 4)


def _trace(instrs):
    return WarpTrace.from_instructions(instrs)


class TestConflictAwareAllocator:
    def test_rejects_bad_banks(self):
        with pytest.raises(ValueError):
            ConflictAwareAllocator(0)

    def test_fixes_trivial_conflict(self):
        # Both sources even -> same bank under mod; allocator should split.
        tr = _trace([Instruction(Opcode.FADD, dst_reg=1, src_regs=(0, 2))])
        alloc = ConflictAwareAllocator(2, "mod")
        assert alloc.conflict_cost(tr) == 1
        assert alloc.conflict_cost(alloc.allocate(tr)) == 0

    def test_three_operand_floor(self):
        # 3 operands over 2 banks always leave >= 1 same-bank pair.
        tr = _trace([ffma(3, 0, 2, 4)])
        alloc = ConflictAwareAllocator(2, "mod")
        assert alloc.conflict_cost(alloc.allocate(tr)) == 1

    def test_never_increases_cost(self):
        tr = _trace(
            [
                Instruction(Opcode.FADD, dst_reg=6, src_regs=(0, 2)),
                Instruction(Opcode.FADD, dst_reg=7, src_regs=(2, 4)),
                ffma(8, 0, 2, 4),
            ]
        )
        alloc = ConflictAwareAllocator(2, "mod")
        assert alloc.conflict_cost(alloc.allocate(tr)) <= alloc.conflict_cost(tr)

    def test_renaming_is_bijective(self):
        tr = _trace([ffma(3, 0, 1, 2), ffma(4, 1, 2, 3)])
        alloc = ConflictAwareAllocator(2, "mod")
        rename = alloc.build_renaming(tr)
        assert len(set(rename.values())) == len(rename)
        assert set(rename) == {0, 1, 2, 3, 4}

    def test_preserves_structure(self):
        tr = _trace([ffma(3, 0, 1, 2), Instruction(Opcode.BAR)])
        out = ConflictAwareAllocator(2, "mod").allocate(tr)
        assert len(out) == len(tr)
        assert [i.opcode for i in out.instructions] == [i.opcode for i in tr.instructions]
        # dataflow preserved: src j of inst i maps consistently
        rename = ConflictAwareAllocator(2, "mod").build_renaming(tr)
        assert out.instructions[0].src_regs == tuple(
            rename[r] for r in tr.instructions[0].src_regs
        )

    def test_empty_trace_unchanged(self):
        tr = WarpTrace.from_instructions([])
        out = ConflictAwareAllocator(2).allocate(tr)
        assert len(out) == 1

    @given(
        seed=st.integers(min_value=0, max_value=1000),
        banks=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_cost_never_worse_and_bijective(self, seed, banks):
        import numpy as np

        rng = np.random.default_rng(seed)
        instrs = []
        for _ in range(20):
            k = int(rng.integers(1, 4))
            srcs = tuple(int(x) for x in rng.integers(0, 12, size=k))
            instrs.append(
                Instruction(Opcode.FFMA if k == 3 else Opcode.FADD,
                            dst_reg=int(rng.integers(0, 12)), src_regs=srcs)
            )
        tr = _trace(instrs)
        alloc = ConflictAwareAllocator(banks, "mod")
        out = alloc.allocate(tr)
        assert alloc.conflict_cost(out) <= alloc.conflict_cost(tr)
        rename = alloc.build_renaming(tr)
        assert len(set(rename.values())) == len(rename)
