"""Tests for the parallel, disk-cached experiment engine.

Covers the cache layer (key stability across processes, invalidation on
config changes, corrupted-file recovery), the parallel path (byte-identical
to serial), robustness (timeout → in-parent retry, pool-unavailable →
serial fallback), and the warm-cache contract (a re-run of a full figure
experiment performs zero simulations).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import repro.experiments.engine as eng
from repro.experiments import fig01_partitioning
from repro.experiments.engine import (
    ExperimentEngine,
    SimPoint,
    point_key,
)
from repro.experiments.export import dump_json
from repro.workloads import app_names

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Small cross-suite sample; REPRO_FULL=1 widens to the whole registry.
SAMPLE_APPS = ["rod-nw", "ply-atax", "tpcU-q3", "db-rnn-inf"]

POINT = SimPoint("rod-nw", "baseline")


def serial_engine(tmp_path=None, **kw) -> ExperimentEngine:
    if tmp_path is None:
        kw.setdefault("use_disk_cache", False)
        return ExperimentEngine(workers=1, **kw)
    return ExperimentEngine(workers=1, cache_dir=tmp_path, **kw)


class TestCacheKey:
    def test_stable_across_fresh_processes(self):
        script = (
            "from repro.experiments.engine import SimPoint, point_key;"
            "print(point_key(SimPoint('rod-nw', 'baseline')))"
        )
        keys = set()
        for seed in ("0", "31337"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            ).stdout.strip()
            keys.add(out)
        assert keys == {point_key(POINT)}

    def test_changes_when_config_field_changes(self, monkeypatch):
        from repro.config import volta_v100
        from repro.experiments import designs

        base_key = point_key(SimPoint("rod-nw", "baseline"))
        monkeypatch.setitem(
            designs.DESIGNS,
            "baseline",
            lambda: volta_v100().replace(rf_banks_per_subcore=4),
        )
        assert point_key(SimPoint("rod-nw", "baseline")) != base_key

    def test_distinguishes_point_fields(self):
        keys = {
            point_key(SimPoint("rod-nw", "baseline")),
            point_key(SimPoint("rod-nw", "rba")),
            point_key(SimPoint("rod-nw", "baseline", num_sms=2)),
            point_key(SimPoint("rod-nw", "baseline", collect_timeline=True)),
            point_key(SimPoint("rod-kmeans", "baseline")),
        }
        assert len(keys) == 5

    def test_aliased_designs_share_a_key(self, monkeypatch):
        # The key hashes the *resolved* config, not the design string: two
        # names mapping to identical configs must share cache entries.
        from repro.config import volta_v100
        from repro.experiments import designs

        monkeypatch.setitem(designs.DESIGNS, "baseline_alias", volta_v100)
        assert point_key(SimPoint("rod-nw", "baseline_alias")) == point_key(
            SimPoint("rod-nw", "baseline")
        )


class TestDiskCache:
    def test_roundtrip_and_hit_counters(self, tmp_path):
        e1 = serial_engine(tmp_path)
        first = e1.run_point(POINT)
        assert e1.profile.sims == 1
        again = e1.run_point(POINT)
        assert again is first  # memory hit
        assert e1.profile.mem_hits == 1

        e2 = serial_engine(tmp_path)  # fresh engine, same disk
        cached = e2.run_point(POINT)
        assert e2.profile.sims == 0
        assert e2.profile.disk_hits == 1
        assert cached == first
        assert dump_json(cached) == dump_json(first)

    def test_timeline_survives_roundtrip(self, tmp_path):
        point = SimPoint("rod-nw", "baseline", collect_timeline=True)
        fresh = serial_engine(tmp_path).run_point(point)
        cached = serial_engine(tmp_path).run_point(point)
        assert cached == fresh
        tl = cached.sms[0].rf_read_timeline
        assert tl and all(isinstance(entry, tuple) for entry in tl)

    def test_corrupted_cache_file_recovers(self, tmp_path):
        e1 = serial_engine(tmp_path)
        fresh = e1.run_point(POINT)
        path = e1.cache_path(point_key(POINT))
        assert path.exists()
        path.write_text("{ this is not json")

        e2 = serial_engine(tmp_path)
        recovered = e2.run_point(POINT)
        assert recovered == fresh
        assert e2.profile.disk_errors == 1
        assert e2.profile.sims == 1
        # The entry was rewritten and is valid again.
        assert json.loads(path.read_text())["stats"]["cycles"] == fresh.cycles

    def test_wrong_schema_is_ignored(self, tmp_path):
        e1 = serial_engine(tmp_path)
        fresh = e1.run_point(POINT)
        path = e1.cache_path(point_key(POINT))
        doc = json.loads(path.read_text())
        doc["schema"] = -1
        path.write_text(json.dumps(doc))
        e2 = serial_engine(tmp_path)
        assert e2.run_point(POINT) == fresh
        assert e2.profile.sims == 1

    def test_unwritable_cache_dir_degrades_gracefully(self, tmp_path):
        blocked = tmp_path / "not-a-dir"
        blocked.write_text("a file where the cache dir should be")
        e = ExperimentEngine(workers=1, cache_dir=blocked / "sub")
        stats = e.run_point(POINT)
        assert stats.cycles > 0
        assert e.profile.disk_errors >= 1


class TestRunMany:
    def test_dedup(self, tmp_path):
        e = serial_engine(tmp_path)
        out = e.run_many([POINT, POINT, SimPoint("rod-nw", "rba"), POINT])
        assert set(out) == {POINT, SimPoint("rod-nw", "rba")}
        assert e.profile.sims == 2

    def test_parallel_matches_serial_byte_identical(self, tmp_path):
        apps = app_names() if os.environ.get("REPRO_FULL") == "1" else SAMPLE_APPS
        designs = ["baseline", "rba", "shuffle"]
        points = [SimPoint(a, d) for a in apps for d in designs]

        serial = serial_engine()  # no disk, no pool
        parallel = ExperimentEngine(workers=2, cache_dir=tmp_path / "par")
        got_serial = {p: serial.run_point(p) for p in points}
        got_parallel = parallel.run_many(points)
        assert parallel.profile.sims == len(points)

        for p in points:
            assert got_parallel[p] == got_serial[p], p
            assert dump_json(got_parallel[p]) == dump_json(got_serial[p]), p

    def test_timeout_retries_in_parent(self, tmp_path):
        e = ExperimentEngine(workers=2, cache_dir=tmp_path, timeout=1e-6)
        points = [POINT, SimPoint("rod-nw", "rba")]
        out = e.run_many(points)
        assert e.profile.retries >= 1
        reference = serial_engine().run_point(POINT)
        assert out[POINT] == reference

    def test_pool_unavailable_falls_back_to_serial(self, tmp_path, monkeypatch):
        e = ExperimentEngine(workers=4, cache_dir=tmp_path)

        def broken_pool(n):
            raise OSError("no processes for you")

        monkeypatch.setattr(e, "_make_pool", broken_pool)
        out = e.run_many([POINT, SimPoint("rod-nw", "rba")])
        assert len(out) == 2
        assert e.profile.sims == 2


class TestSanitizedEngine:
    def test_sanitize_changes_cache_key(self):
        assert point_key(POINT, sanitize=True) != point_key(POINT)

    def test_sanitized_results_equal_plain(self, tmp_path):
        plain = serial_engine(tmp_path).run_point(POINT)
        sanitized = serial_engine(tmp_path, sanitize=True).run_point(POINT)
        assert sanitized == plain
        assert dump_json(sanitized) == dump_json(plain)

    def test_configure_threads_sanitize_flag(self, tmp_path):
        old = eng._engine
        try:
            e = eng.configure(cache_dir=tmp_path, workers=1, sanitize=True)
            assert e.sanitize
            # Unspecified on the next call: the flag must persist.
            e2 = eng.configure(workers=1)
            assert e2.sanitize
            e3 = eng.configure(sanitize=False)
            assert not e3.sanitize
        finally:
            eng._engine = old


class TestWarmCacheFigure:
    def test_figure_rerun_performs_zero_simulations(self, tmp_path):
        old = eng._engine
        try:
            eng.configure(cache_dir=tmp_path, workers=1)
            apps = ["rod-nw", "tpcU-q3"]
            first = fig01_partitioning.run(apps=apps)
            expected_points = len(apps) * (
                1 + len(fig01_partitioning.DESIGNS)
            )
            assert eng.get_engine().profile.sims == expected_points

            eng.configure(cache_dir=tmp_path, workers=1)  # fresh memory
            second = fig01_partitioning.run(apps=apps)
            prof = eng.get_engine().profile
            assert prof.sims == 0
            assert prof.disk_hits == expected_points
            assert first.rows == second.rows
        finally:
            eng._engine = old
