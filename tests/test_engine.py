"""Tests for the parallel, disk-cached experiment engine.

Covers the cache layer (key stability across processes, invalidation on
config changes, corrupted-file recovery), the parallel path (byte-identical
to serial), robustness (timeout → in-parent retry, pool-unavailable →
serial fallback), and the warm-cache contract (a re-run of a full figure
experiment performs zero simulations).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.experiments.engine as eng
from repro.experiments import fig01_partitioning
from repro.experiments.engine import (
    ExperimentEngine,
    SimPoint,
    point_key,
)
from repro.experiments.export import dump_json
from repro.obs import read_manifest, stats_digest
from repro.workloads import app_names

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Small cross-suite sample; REPRO_FULL=1 widens to the whole registry.
SAMPLE_APPS = ["rod-nw", "ply-atax", "tpcU-q3", "db-rnn-inf"]

POINT = SimPoint("rod-nw", "baseline")


def serial_engine(tmp_path=None, **kw) -> ExperimentEngine:
    if tmp_path is None:
        kw.setdefault("use_disk_cache", False)
        return ExperimentEngine(workers=1, **kw)
    return ExperimentEngine(workers=1, cache_dir=tmp_path, **kw)


class TestCacheKey:
    def test_stable_across_fresh_processes(self):
        script = (
            "from repro.experiments.engine import SimPoint, point_key;"
            "print(point_key(SimPoint('rod-nw', 'baseline')))"
        )
        keys = set()
        for seed in ("0", "31337"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            ).stdout.strip()
            keys.add(out)
        assert keys == {point_key(POINT)}

    def test_changes_when_config_field_changes(self, monkeypatch):
        from repro.config import volta_v100
        from repro.experiments import designs

        base_key = point_key(SimPoint("rod-nw", "baseline"))
        monkeypatch.setitem(
            designs.DESIGNS,
            "baseline",
            lambda: volta_v100().replace(rf_banks_per_subcore=4),
        )
        assert point_key(SimPoint("rod-nw", "baseline")) != base_key

    def test_distinguishes_point_fields(self):
        keys = {
            point_key(SimPoint("rod-nw", "baseline")),
            point_key(SimPoint("rod-nw", "rba")),
            point_key(SimPoint("rod-nw", "baseline", num_sms=2)),
            point_key(SimPoint("rod-nw", "baseline", collect_timeline=True)),
            point_key(SimPoint("rod-kmeans", "baseline")),
        }
        assert len(keys) == 5

    def test_aliased_designs_share_a_key(self, monkeypatch):
        # The key hashes the *resolved* config, not the design string: two
        # names mapping to identical configs must share cache entries.
        from repro.config import volta_v100
        from repro.experiments import designs

        monkeypatch.setitem(designs.DESIGNS, "baseline_alias", volta_v100)
        assert point_key(SimPoint("rod-nw", "baseline_alias")) == point_key(
            SimPoint("rod-nw", "baseline")
        )


class TestDiskCache:
    def test_roundtrip_and_hit_counters(self, tmp_path):
        e1 = serial_engine(tmp_path)
        first = e1.run_point(POINT)
        assert e1.profile.sims == 1
        again = e1.run_point(POINT)
        assert again is first  # memory hit
        assert e1.profile.mem_hits == 1

        e2 = serial_engine(tmp_path)  # fresh engine, same disk
        cached = e2.run_point(POINT)
        assert e2.profile.sims == 0
        assert e2.profile.disk_hits == 1
        assert cached == first
        assert dump_json(cached) == dump_json(first)

    def test_timeline_survives_roundtrip(self, tmp_path):
        point = SimPoint("rod-nw", "baseline", collect_timeline=True)
        fresh = serial_engine(tmp_path).run_point(point)
        cached = serial_engine(tmp_path).run_point(point)
        assert cached == fresh
        tl = cached.sms[0].rf_read_timeline
        assert tl and all(isinstance(entry, tuple) for entry in tl)

    def test_corrupted_cache_file_recovers(self, tmp_path):
        e1 = serial_engine(tmp_path)
        fresh = e1.run_point(POINT)
        path = e1.cache_path(point_key(POINT))
        assert path.exists()
        path.write_text("{ this is not json")

        e2 = serial_engine(tmp_path)
        recovered = e2.run_point(POINT)
        assert recovered == fresh
        assert e2.profile.disk_errors == 1
        assert e2.profile.sims == 1
        assert e2.profile.quarantines == 1
        # Exactly the bad file was quarantined (preserved, not destroyed).
        assert (tmp_path / "quarantine" / path.name).read_text() == (
            "{ this is not json"
        )
        # The entry was rewritten and is valid again.
        assert json.loads(path.read_text())["stats"]["cycles"] == fresh.cycles

    def test_wrong_schema_is_quarantined(self, tmp_path):
        # CACHE_SCHEMA is part of the point key, so an entry at this key's
        # path stamped with another generation is inconsistent — it must
        # be quarantined and recomputed, not served and not left behind.
        e1 = serial_engine(tmp_path)
        fresh = e1.run_point(POINT)
        path = e1.cache_path(point_key(POINT))
        doc = json.loads(path.read_text())
        doc["schema"] = -1
        path.write_text(json.dumps(doc))
        e2 = serial_engine(tmp_path)
        assert e2.run_point(POINT) == fresh
        assert e2.profile.sims == 1
        assert e2.profile.quarantines == 1
        quarantined = tmp_path / "quarantine" / path.name
        assert json.loads(quarantined.read_text())["schema"] == -1
        # The cache path holds a fresh, current-generation entry again.
        assert json.loads(path.read_text())["schema"] == eng.CACHE_SCHEMA

    def test_unwritable_cache_dir_degrades_gracefully(self, tmp_path):
        blocked = tmp_path / "not-a-dir"
        blocked.write_text("a file where the cache dir should be")
        e = ExperimentEngine(workers=1, cache_dir=blocked / "sub")
        stats = e.run_point(POINT)
        assert stats.cycles > 0
        assert e.profile.disk_errors >= 1


class TestRunMany:
    def test_dedup(self, tmp_path):
        e = serial_engine(tmp_path)
        out = e.run_many([POINT, POINT, SimPoint("rod-nw", "rba"), POINT])
        assert set(out) == {POINT, SimPoint("rod-nw", "rba")}
        assert e.profile.sims == 2

    def test_parallel_matches_serial_byte_identical(self, tmp_path):
        apps = app_names() if os.environ.get("REPRO_FULL") == "1" else SAMPLE_APPS
        designs = ["baseline", "rba", "shuffle"]
        points = [SimPoint(a, d) for a in apps for d in designs]

        serial = serial_engine()  # no disk, no pool
        parallel = ExperimentEngine(workers=2, cache_dir=tmp_path / "par")
        got_serial = {p: serial.run_point(p) for p in points}
        got_parallel = parallel.run_many(points)
        assert parallel.profile.sims == len(points)

        for p in points:
            assert got_parallel[p] == got_serial[p], p
            assert dump_json(got_parallel[p]) == dump_json(got_serial[p]), p

    def test_timeout_retries_in_parent(self, tmp_path):
        e = ExperimentEngine(workers=2, cache_dir=tmp_path, timeout=1e-6)
        points = [POINT, SimPoint("rod-nw", "rba")]
        out = e.run_many(points)
        assert e.profile.retries >= 1
        reference = serial_engine().run_point(POINT)
        assert out[POINT] == reference

    def test_pool_unavailable_falls_back_to_serial(self, tmp_path, monkeypatch):
        e = ExperimentEngine(workers=4, cache_dir=tmp_path)

        def broken_pool(n):
            raise OSError("no processes for you")

        monkeypatch.setattr(e, "_make_pool", broken_pool)
        out = e.run_many([POINT, SimPoint("rod-nw", "rba")])
        assert len(out) == 2
        assert e.profile.sims == 2


class TestSanitizedEngine:
    def test_sanitize_changes_cache_key(self):
        assert point_key(POINT, sanitize=True) != point_key(POINT)

    def test_sanitized_results_equal_plain(self, tmp_path):
        plain = serial_engine(tmp_path).run_point(POINT)
        sanitized = serial_engine(tmp_path, sanitize=True).run_point(POINT)
        assert sanitized == plain
        assert dump_json(sanitized) == dump_json(plain)

    def test_configure_threads_sanitize_flag(self, tmp_path):
        old = eng._engine
        try:
            e = eng.configure(cache_dir=tmp_path, workers=1, sanitize=True)
            assert e.sanitize
            # Unspecified on the next call: the flag must persist.
            e2 = eng.configure(workers=1)
            assert e2.sanitize
            e3 = eng.configure(sanitize=False)
            assert not e3.sanitize
        finally:
            eng._engine = old


def _tmp_leftovers(cache_dir: Path) -> list:
    return [p for p in cache_dir.iterdir() if p.name.endswith(".tmp")]


class TestStoreDiskRobustness:
    def test_failed_replace_leaves_no_tmp_files(self, tmp_path, monkeypatch):
        e = serial_engine(tmp_path)

        def failing_replace(src, dst):
            raise OSError("simulated rename failure")

        monkeypatch.setattr(eng.os, "replace", failing_replace)
        stats = e.run_point(POINT)  # the run itself must not fail
        assert stats.cycles > 0
        assert e.profile.disk_errors == 1
        assert _tmp_leftovers(tmp_path) == []

    def test_failed_serialize_leaves_no_tmp_files(self, tmp_path, monkeypatch):
        e = serial_engine(tmp_path)
        stats = e._simulate_serial(POINT)

        def failing_dump(*args, **kwargs):
            raise OSError("no space left on device")

        monkeypatch.setattr(eng.json, "dump", failing_dump)
        e._store_disk(point_key(POINT), POINT, stats)
        assert e.profile.disk_errors == 1
        assert _tmp_leftovers(tmp_path) == []

    def test_readonly_cache_dir_leaves_no_tmp_files(self, tmp_path):
        if hasattr(os, "geteuid") and os.geteuid() == 0:
            pytest.skip("root bypasses directory write permissions")
        cache = tmp_path / "cache"
        cache.mkdir()
        os.chmod(cache, 0o500)
        try:
            e = ExperimentEngine(workers=1, cache_dir=cache)
            stats = e.run_point(POINT)
            assert stats.cycles > 0
            assert e.profile.disk_errors >= 1
            assert _tmp_leftovers(cache) == []
        finally:
            os.chmod(cache, 0o700)


class TestCorruptEntryRace:
    def test_quarantine_exact_moves_the_file_it_read(self, tmp_path):
        path = tmp_path / "entry.json"
        quarantine = tmp_path / "quarantine"
        path.write_text("{ corrupted")
        with open(path, "r", encoding="utf-8") as fh:
            assert ExperimentEngine._quarantine_exact(path, fh, quarantine)
        assert not path.exists()
        # The bad entry is preserved for post-mortems, not destroyed.
        assert (quarantine / "entry.json").read_text() == "{ corrupted"

    def test_quarantine_exact_spares_a_replacement(self, tmp_path):
        path = tmp_path / "entry.json"
        quarantine = tmp_path / "quarantine"
        path.write_text("{ corrupted")
        with open(path, "r", encoding="utf-8") as fh:
            incoming = tmp_path / "incoming.json"
            incoming.write_text('{"fresh": true}')
            os.replace(incoming, path)  # a parallel _store_disk lands
            assert not ExperimentEngine._quarantine_exact(path, fh, quarantine)
        assert path.read_text() == '{"fresh": true}'
        assert not quarantine.exists()

    def test_quarantine_exact_falls_back_to_unlink(self, tmp_path):
        if hasattr(os, "geteuid") and os.geteuid() == 0:
            pytest.skip("root bypasses directory write permissions")
        readonly = tmp_path / "cache"
        readonly.mkdir()
        path = readonly / "entry.json"
        path.write_text("{ corrupted")
        # The parent dir allows unlink but the quarantine dir cannot be
        # created once the directory is read-only — so this exercises the
        # mkdir-failure path via a quarantine dir under a sealed parent.
        sealed = tmp_path / "sealed"
        sealed.mkdir()
        os.chmod(sealed, 0o500)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                assert ExperimentEngine._quarantine_exact(
                    path, fh, sealed / "quarantine"
                )
            assert not path.exists()
        finally:
            os.chmod(sealed, 0o700)

    def test_corrupt_cleanup_never_discards_a_parallel_store(
        self, tmp_path, monkeypatch
    ):
        """The _load_disk / _store_disk race on a shared cache directory.

        Engine A opens a corrupted entry; while A holds it open, engine B
        (another process) atomically replaces the path with a fresh valid
        result.  A's corrupted-entry cleanup must remove only the file it
        read — B's result has to survive.
        """
        e1 = serial_engine(tmp_path)
        fresh = e1.run_point(POINT)
        key = point_key(POINT)
        path = e1.cache_path(key)
        good = path.read_text()
        path.write_text("{ corrupted")

        real_load = json.load

        def racing_load(fh, *args, **kwargs):
            incoming = tmp_path / "incoming.json"
            incoming.write_text(good)
            os.replace(incoming, path)  # engine B's store lands mid-read
            return real_load(fh, *args, **kwargs)  # raises: fh is corrupt

        monkeypatch.setattr(eng.json, "load", racing_load)
        e2 = serial_engine(tmp_path)
        assert e2._load_disk(key) is None
        assert e2.profile.disk_errors == 1
        monkeypatch.setattr(eng.json, "load", real_load)

        # The replacement survived the cleanup: a fresh engine disk-hits.
        e3 = serial_engine(tmp_path)
        assert e3.run_point(POINT) == fresh
        assert e3.profile.disk_hits == 1
        assert e3.profile.sims == 0


def _stress_worker(args):
    """One process of the shared-cache stress test (module-level: pickled)."""
    cache_dir, fields = args
    engine = ExperimentEngine(workers=1, cache_dir=cache_dir)
    points = [SimPoint(*f) for f in fields]
    out = engine.run_many(points)
    return (
        engine.profile.disk_errors,
        {p.label(): stats_digest(s.to_payload()) for p, s in out.items()},
    )


@pytest.mark.slow
class TestSharedCacheStress:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="stress harness needs the fork start method",
    )
    def test_concurrent_engines_no_false_errors_no_lost_results(self, tmp_path):
        """N engines race on one cache dir: same digests, zero disk errors.

        Every process starts cold and simulates the same points, so their
        stores all race on the same keys; atomic replace plus the exact-
        unlink guard must yield no disk_errors and a valid entry per key.
        """
        fields = [
            ("rod-nw", "baseline", 1, False),
            ("tpcU-q3", "baseline", 1, False),
            ("rod-nw", "rba", 1, False),
        ]
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            results = pool.map(_stress_worker, [(tmp_path, fields)] * 4)

        digests = [d for _, d in results]
        assert all(d == digests[0] for d in digests), "lost or diverged result"
        assert [errs for errs, _ in results] == [0, 0, 0, 0]
        assert _tmp_leftovers(tmp_path) == []
        for f in fields:
            entry = json.loads(
                (tmp_path / f"{point_key(SimPoint(*f))}.json").read_text()
            )
            assert entry["schema"] == eng.CACHE_SCHEMA


#: Parent pid for the crash-injection test: the patched worker entry only
#: raises in pool children (set by the test; module-level so fork inherits).
_CRASH_PARENT_PID = -1
_real_simulate_point = eng._simulate_point


def _crashing_simulate_point(point_fields, **kwargs):
    if os.getpid() != _CRASH_PARENT_PID and point_fields[0] == "rod-nw":
        raise RuntimeError("simulated worker crash")
    return _real_simulate_point(point_fields, **kwargs)


class TestWorkerCrashRetry:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="crash injection relies on fork inheriting the patch",
    )
    def test_crashing_point_is_retried_and_recorded(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            sys.modules[__name__], "_CRASH_PARENT_PID", os.getpid()
        )
        monkeypatch.setattr(eng, "_simulate_point", _crashing_simulate_point)
        manifest = tmp_path / "manifest.jsonl"
        e = ExperimentEngine(
            workers=2,
            cache_dir=tmp_path / "cache",
            progress=True,
            manifest_path=manifest,
        )
        other = SimPoint("tpcU-q3", "baseline")
        out = e.run_many([POINT, other])

        # The crashing point was retried once, serially, in the parent.
        assert e.profile.retries == 1
        reference = serial_engine().run_point(POINT)
        assert out[POINT] == reference
        assert dump_json(out[POINT]) == dump_json(reference)
        assert out[other].cycles > 0

        # The manifest records how each point was actually resolved.
        sources = {r["point"]: r["source"] for r in read_manifest(manifest)}
        assert sources[POINT.label()] == "retry"
        assert sources[other.label()] == "sim"

        # The progress line survived the crash and covered every point.
        err = capsys.readouterr().err
        assert "2/2 points" in err
        assert "retries" in err


class TestWarmCacheFigure:
    def test_figure_rerun_performs_zero_simulations(self, tmp_path):
        old = eng._engine
        try:
            eng.configure(cache_dir=tmp_path, workers=1)
            apps = ["rod-nw", "tpcU-q3"]
            first = fig01_partitioning.run(apps=apps)
            expected_points = len(apps) * (
                1 + len(fig01_partitioning.DESIGNS)
            )
            assert eng.get_engine().profile.sims == expected_points

            eng.configure(cache_dir=tmp_path, workers=1)  # fresh memory
            second = fig01_partitioning.run(apps=apps)
            prof = eng.get_engine().profile
            assert prof.sims == 0
            assert prof.disk_hits == expected_points
            assert first.rows == second.rows
        finally:
            eng._engine = old


class TestAppAffinityChunks:
    """The pool fans out app-affinity chunks: every point of one app lands
    on one worker, so each trace is compiled once and reused across designs.
    """

    def test_all_points_of_one_app_share_a_chunk(self, tmp_path):
        e = ExperimentEngine(workers=3, cache_dir=tmp_path)
        points = [
            SimPoint("rod-nw", "baseline"),
            SimPoint("rod-nw", "rba"),
            SimPoint("rod-nw", "fully_connected"),
            SimPoint("tpcU-q3", "baseline"),
            SimPoint("tpcU-q3", "rba"),
            SimPoint("ply-atax", "baseline"),
        ]
        chunks = e._plan_chunks([(p, "key") for p in points])
        assert 1 <= len(chunks) <= 3
        owners = {}
        for i, chunk in enumerate(chunks):
            for p in chunk:
                owners.setdefault(p.app, set()).add(i)
        assert all(len(bins) == 1 for bins in owners.values())
        assert sorted(p for c in chunks for p in c) == sorted(points)

    def test_chunk_planning_balances_by_manifest_seconds(self, tmp_path):
        manifest = tmp_path / "manifest.jsonl"
        e = ExperimentEngine(
            workers=2, cache_dir=tmp_path, manifest_path=manifest
        )
        heavy = SimPoint("rod-nw", "baseline")
        light1 = SimPoint("tpcU-q3", "baseline")
        light2 = SimPoint("ply-atax", "baseline")
        assert e.manifest is not None
        for p, secs in [(heavy, 10.0), (light1, 1.0), (light2, 1.0)]:
            e.manifest.record(p.label(), "key", "sim", "digest", seconds=secs)
        chunks = e._plan_chunks(
            [(p, "key") for p in (heavy, light1, light2)]
        )
        # LPT over past seconds: the heavy app gets a bin of its own, the
        # two light apps share the other.
        apps = sorted(sorted({p.app for p in c}) for c in chunks)
        assert apps == [["ply-atax", "tpcU-q3"], ["rod-nw"]]

    def test_one_trace_compile_per_app_across_designs(self, tmp_path):
        from repro.workloads import registry

        registry._COMPILED_MEMO.clear()  # forks must not inherit warm code
        manifest = tmp_path / "manifest.jsonl"
        e = ExperimentEngine(
            workers=2, cache_dir=tmp_path / "cache", manifest_path=manifest
        )
        points = [
            SimPoint("rod-nw", "baseline"),
            SimPoint("rod-nw", "rba"),
            SimPoint("tpcU-q3", "baseline"),
            SimPoint("tpcU-q3", "rba"),
        ]
        out = e.run_many(points)
        assert len(out) == 4
        compiles = [
            r for r in read_manifest(manifest) if r["source"] == "compile"
        ]
        counts = {}
        for r in compiles:
            counts[r["point"]] = counts.get(r["point"], 0) + 1
        # baseline and rba share the bank layout, so each app's trace is
        # compiled exactly once — by the one worker owning its chunk.
        assert counts == {"trace:rod-nw": 1, "trace:tpcU-q3": 1}

#: Parent pid for the chunk-crash test (same fork-inheritance trick).
_CHUNK_CRASH_PARENT_PID = -1


def _chunk_crashing_simulate_point(point_fields, **kwargs):
    if (
        os.getpid() != _CHUNK_CRASH_PARENT_PID
        and point_fields[0] == "rod-nw"
        and point_fields[1] == "rba"
    ):
        raise RuntimeError("simulated crash mid-chunk")
    return _real_simulate_point(point_fields, **kwargs)


class TestChunkFailureRetry:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="crash injection relies on fork inheriting the patch",
    )
    def test_failed_chunk_is_retried_point_by_point(
        self, tmp_path, monkeypatch
    ):
        """A crash on ONE point of a multi-point app-affinity chunk fails
        the whole chunk future; every point of that chunk — including the
        ones simulated before the crash — must be re-run serially in the
        parent, while other chunks are unaffected."""
        monkeypatch.setattr(
            sys.modules[__name__], "_CHUNK_CRASH_PARENT_PID", os.getpid()
        )
        monkeypatch.setattr(eng, "_simulate_point", _chunk_crashing_simulate_point)
        manifest = tmp_path / "manifest.jsonl"
        e = ExperimentEngine(
            workers=2, cache_dir=tmp_path / "cache", manifest_path=manifest
        )
        # All rod-nw points share one chunk (app affinity); the crash hits
        # the second of the three, after "baseline" already computed.
        chunk_points = [
            SimPoint("rod-nw", "baseline"),
            SimPoint("rod-nw", "rba"),
            SimPoint("rod-nw", "shuffle"),
        ]
        other = SimPoint("tpcU-q3", "baseline")
        out = e.run_many(chunk_points + [other])

        assert e.profile.retries == len(chunk_points)
        sources = {r["point"]: r["source"] for r in read_manifest(manifest)}
        for p in chunk_points:
            assert sources[p.label()] == "retry"
            reference = serial_engine().run_point(p)
            assert out[p] == reference
            assert dump_json(out[p]) == dump_json(reference)
        assert sources[other.label()] == "sim"
        assert out[other].cycles > 0


class TestProgressAndProfile:
    def test_progress_line_shape(self, capsys):
        e = serial_engine(progress=True)
        e.profile.mem_hits = 1
        e.profile.note_sim("p", 0.5, worker=1)
        e._progress_line(2, 4)
        e._progress_end()
        err = capsys.readouterr().err
        assert err == "\r[engine] 2/4 points (hits 1, sims 1, retries 0)\n"

    def test_progress_off_is_silent(self, capsys):
        e = serial_engine(progress=False)
        e._progress_line(1, 2)
        e._progress_end()
        assert capsys.readouterr().err == ""

    def test_profile_summary_content(self):
        prof = eng.EngineProfile(mem_hits=2, disk_hits=1, misses=2)
        prof.note_sim("slow × point", 4.0, worker=100)
        prof.note_sim("fast × point", 1.0, worker=200)
        prof.retries = 1
        text = prof.summary()
        assert "cache hit rate 60.0% (3/5 lookups)" in text
        assert "worker skew   1.60x max/mean over 2 workers" in text
        assert "sim wall time 5.00s" in text
        # Slowest-first ranking.
        assert text.index("slow × point") < text.index("fast × point")

    def test_profile_summary_all_cached(self):
        prof = eng.EngineProfile(mem_hits=3)
        assert "every point was served from cache" in prof.summary()
        assert "slowest points" not in prof.summary()


class TestEngineObservability:
    def test_metrics_off_is_byte_identical(self, tmp_path):
        from repro.obs import MetricsRegistry, stats_digest

        plain = serial_engine(tmp_path / "plain").run_point(POINT)
        registry = MetricsRegistry()
        metered_engine = ExperimentEngine(
            workers=1,
            cache_dir=tmp_path / "metered",
            metrics=registry,
            status_path=tmp_path / "status.json",
        )
        metered = metered_engine.run_many([POINT])[POINT]
        assert metered == plain
        assert dump_json(metered) == dump_json(plain)
        assert stats_digest(metered.to_payload()) == stats_digest(
            plain.to_payload()
        )
        # The instrumented run actually recorded something.
        assert "repro_engine_points_total" in registry.to_prometheus()
        assert registry.to_prometheus() == registry.to_prometheus()

    def test_heartbeat_written_during_pooled_run(self, tmp_path):
        from repro.obs import read_status

        status = tmp_path / "status.json"
        e = ExperimentEngine(
            workers=2, cache_dir=tmp_path / "cache", status_path=status
        )
        points = [POINT, SimPoint("tpcU-q3", "baseline")]
        e.run_many(points)
        doc = read_status(status)
        assert doc["state"] == "done"
        assert doc["done"] == len(points)
        assert doc["failed"] == 0 and doc["in_flight"] == 0

    def test_chunk_timeout_leaves_manifest_warning(self, tmp_path):
        manifest = tmp_path / "manifest.jsonl"
        e = ExperimentEngine(
            workers=2,
            cache_dir=tmp_path / "cache",
            timeout=1e-6,
            manifest_path=manifest,
        )
        points = [POINT, SimPoint("rod-nw", "rba")]
        out = e.run_many(points)
        warnings = [
            r for r in read_manifest(manifest) if r["source"] == "warning"
        ]
        assert warnings and warnings[0]["kind"] == "chunk_timeout"
        assert "budget" in warnings[0]["detail"]
        # Despite the timeout, the retry path still produced real results.
        assert out[POINT] == serial_engine().run_point(POINT)


class TestChaosIntegration:
    """Injected faults must degrade gracefully and never change results."""

    @pytest.fixture(autouse=True)
    def _no_plan(self):
        from repro.chaos import clear_plan

        clear_plan()
        yield
        clear_plan()

    def _warnings(self, manifest, kind):
        return [
            r
            for r in read_manifest(manifest)
            if r["source"] == "warning" and r["kind"] == kind
        ]

    def test_store_io_errors_degrade_to_memory_once(self, tmp_path):
        from repro.chaos import install_plan, single_fault_plan

        manifest = tmp_path / "m.jsonl"
        e = serial_engine(tmp_path / "cache", manifest_path=manifest)
        e.store_error_threshold = 1
        install_plan(single_fault_plan("io_error", "result_store", times=0))
        first = e.run_point(POINT)
        e.run_point(SimPoint("rod-nw", "rba"))
        assert e._store_degraded
        # Only the first store hit the disk; the second short-circuited,
        # so exactly one error and one structured warning.
        assert e.profile.disk_errors == 1
        assert len(self._warnings(manifest, "cache_degraded")) == 1
        assert not list((tmp_path / "cache").glob("*.json"))
        # Results are unaffected: memory-only, but correct.
        assert first == serial_engine().run_point(POINT)

    def test_chaos_corrupted_read_quarantines_and_recovers(self, tmp_path):
        from repro.chaos import install_plan, single_fault_plan

        fresh = serial_engine(tmp_path).run_point(POINT)
        install_plan(single_fault_plan("corrupt", "result_read", times=1))
        manifest = tmp_path / "m.jsonl"
        e2 = serial_engine(tmp_path, manifest_path=manifest)
        again = e2.run_point(POINT)
        assert e2.profile.sims == 1
        assert e2.profile.quarantines == 1
        assert stats_digest(again.to_payload()) == stats_digest(
            fresh.to_payload()
        )
        assert list((tmp_path / "quarantine").iterdir())
        assert len(self._warnings(manifest, "cache_quarantine")) == 1

    def test_circuit_breaker_opens_and_run_still_completes(self, tmp_path):
        from repro.chaos import install_plan, single_fault_plan

        manifest = tmp_path / "m.jsonl"
        e = ExperimentEngine(
            workers=2, cache_dir=tmp_path / "cache", manifest_path=manifest
        )
        e.circuit_threshold = 1
        # Every worker-side simulation crashes; the in-parent retries
        # (outside the rule's scope) heal each point.
        install_plan(
            single_fault_plan("crash", "sim", scope="worker", times=0)
        )
        points = [POINT, SimPoint("rod-nw", "rba")]
        out = e.run_many(points)
        assert len(out) == 2
        assert e._circuit_open
        assert e.profile.retries == 2
        assert len(self._warnings(manifest, "circuit_open")) == 1
        assert self._warnings(manifest, "chunk_crash")
        assert out[POINT] == serial_engine().run_point(POINT)


class TestJournalResume:
    def test_settled_points_are_journaled(self, tmp_path):
        from repro.obs import load_journal

        journal = tmp_path / "journal.jsonl"
        e = serial_engine(tmp_path / "cache", journal_path=journal)
        stats = e.run_point(POINT)
        assert load_journal(journal) == {
            e._point_key(POINT): stats_digest(stats.to_payload())
        }

    def test_resume_serves_journaled_points_from_disk(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        cache = tmp_path / "cache"
        serial_engine(cache, journal_path=journal).run_point(POINT)
        e2 = serial_engine(cache, journal_path=journal, resume=True)
        e2.run_point(POINT)
        assert e2.profile.sims == 0
        assert e2.profile.disk_hits == 1
        assert e2.profile.resumed == 1
        assert "resumed" in e2.profile.summary()

    def test_run_many_resimulates_only_missing_points(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        cache = tmp_path / "cache"
        points = [POINT, SimPoint("rod-nw", "rba")]
        serial_engine(cache, journal_path=journal).run_point(points[0])
        e2 = serial_engine(cache, journal_path=journal, resume=True)
        out = e2.run_many(points)
        assert len(out) == 2
        assert e2.profile.sims == 1
        assert e2.profile.resumed == 1

    def test_journal_mismatch_resimulates_and_warns(self, tmp_path):
        from repro.obs import load_journal

        journal = tmp_path / "journal.jsonl"
        cache = tmp_path / "cache"
        manifest = tmp_path / "m.jsonl"
        e1 = serial_engine(cache, journal_path=journal)
        e1.run_point(POINT)
        key = e1._point_key(POINT)
        # The cache changed underneath the journal: forge the checkpoint.
        journal.write_text(
            json.dumps(
                {"v": 1, "key": key, "digest": "forged", "point": POINT.label()}
            )
            + "\n",
            encoding="utf-8",
        )
        e2 = serial_engine(
            cache, journal_path=journal, resume=True, manifest_path=manifest
        )
        e2.run_point(POINT)
        assert e2.profile.sims == 1
        assert e2.profile.resumed == 0
        warnings = [
            r
            for r in read_manifest(manifest)
            if r["source"] == "warning" and r["kind"] == "journal_mismatch"
        ]
        assert len(warnings) == 1
        # The re-simulated point re-journaled its true digest (last wins).
        assert load_journal(journal)[key] != "forged"


class TestInterruptShutdown:
    def test_keyboard_interrupt_flushes_telemetry(self, tmp_path, monkeypatch):
        manifest = tmp_path / "m.jsonl"
        status = tmp_path / "status.json"
        e = ExperimentEngine(
            workers=1,
            cache_dir=tmp_path / "cache",
            manifest_path=manifest,
            status_path=status,
        )

        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(eng, "_simulate_point", boom)
        with pytest.raises(KeyboardInterrupt):
            e.run_many([POINT])
        doc = json.loads(status.read_text(encoding="utf-8"))
        assert doc["state"] == "interrupted"
        warnings = [
            r for r in read_manifest(manifest) if r["source"] == "warning"
        ]
        assert any(r["kind"] == "interrupted" for r in warnings)
        assert any("--resume" in r["detail"] for r in warnings)

    def test_sigterm_converts_to_keyboard_interrupt_and_restores(self):
        import signal

        e = serial_engine()
        token = e._install_sigterm()
        assert token is not None
        try:
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGTERM)
        finally:
            e._restore_sigterm(token)
        assert signal.getsignal(signal.SIGTERM) == token[0]
