"""Tests for static trace characterization."""

import pytest

from repro.isa import Instruction, Opcode
from repro.trace import WarpTrace, make_kernel
from repro.workloads import (
    characterization_table,
    characterize,
    fma_microbenchmark,
    get_kernel,
    scaled_imbalance_microbenchmark,
)


def kernel_from(bodies, name="k"):
    return make_kernel(name, [WarpTrace.from_instructions(b) for b in bodies])


class TestCharacterize:
    def test_unit_mix_sums_to_one(self):
        c = characterize(get_kernel("cg-lou"))
        assert sum(c.unit_mix.values()) == pytest.approx(1.0)

    def test_mean_operands_exact(self):
        bodies = [[
            Instruction(Opcode.FADD, dst_reg=8, src_regs=(0,)),
            Instruction(Opcode.FFMA, dst_reg=9, src_regs=(0, 1, 2)),
        ]]
        c = characterize(kernel_from(bodies))
        assert c.mean_operands == pytest.approx(2.0)

    def test_memory_fraction(self):
        from repro.isa import ldg

        bodies = [[ldg(1, 0, 0), Instruction(Opcode.FADD, dst_reg=8, src_regs=(0, 1))]]
        c = characterize(kernel_from(bodies))
        assert c.memory_fraction == pytest.approx(0.5)

    def test_divergence_of_uniform_kernel(self):
        c = characterize(fma_microbenchmark("baseline", fmas=16))
        assert c.interwarp_divergence == pytest.approx(1.0)
        assert c.warp_length_cov == pytest.approx(0.0)

    def test_divergence_of_imbalanced_kernel(self):
        c = characterize(scaled_imbalance_microbenchmark(8, base_fmas=16))
        assert c.interwarp_divergence > 2.0

    def test_bank_coherence_extremes(self):
        # all-even sources -> fully coherent under mod/warp-swizzle
        coherent = [[Instruction(Opcode.FADD, dst_reg=9, src_regs=(0, 2))]]
        c = characterize(kernel_from(coherent), mapping="mod")
        assert c.bank_coherence == pytest.approx(1.0)
        spread = [[Instruction(Opcode.FADD, dst_reg=9, src_regs=(0, 1))]]
        c2 = characterize(kernel_from(spread), mapping="mod")
        assert c2.bank_coherence == pytest.approx(0.0)

    def test_exit_not_counted(self):
        c = characterize(kernel_from([[Instruction(Opcode.NOP)]]))
        assert c.dynamic_instructions == 1


class TestTriage:
    def test_imbalance_detected(self):
        c = characterize(get_kernel("tpcU-q8"))
        assert c.dominant_effect() == "issue-imbalance"

    def test_read_operand_detected(self):
        c = characterize(get_kernel("cg-lou"))
        assert c.dominant_effect() == "read-operand-limited"

    def test_memory_bound_detected(self):
        c = characterize(get_kernel("pb-stencil"))
        assert c.dominant_effect() == "memory-bound"

    def test_insensitive_fma(self):
        c = characterize(fma_microbenchmark("baseline", fmas=16))
        assert c.dominant_effect() == "insensitive"


class TestTable:
    def test_renders_all_rows(self):
        ks = {"a": get_kernel("rod-nw"), "b": fma_microbenchmark("baseline", fmas=8)}
        text = characterization_table(ks)
        assert "rod-nw" in text and "fma-baseline" in text
        assert "effect" in text
