"""Golden-value regression tests.

The simulator is deterministic, so exact cycle counts for fixed scenarios
are stable; these tests pin them.  If a change to the timing model is
*intentional*, update the constants here — the diff then documents the
performance impact of the change.  If a change trips these without
touching the timing model, it introduced nondeterminism or an accidental
behavioural change.
"""

import pytest

from repro import (
    fully_connected,
    kepler,
    rba,
    simulate,
    srr,
    volta_v100,
)
from repro.trace import TraceBuilder, make_kernel
from repro.workloads import fma_microbenchmark, get_kernel


def cycles(kernel, cfg):
    return simulate(kernel, cfg, num_sms=1).cycles


class TestGoldenMicrobench:
    def test_fma_baseline_volta(self):
        assert cycles(fma_microbenchmark("baseline", fmas=128), volta_v100()) == 609

    def test_fma_unbalanced_volta(self):
        assert cycles(fma_microbenchmark("unbalanced", fmas=128), volta_v100()) == 2145

    def test_fma_unbalanced_kepler(self):
        assert cycles(fma_microbenchmark("unbalanced", fmas=128), kepler()) == 607

    def test_fma_unbalanced_srr(self):
        assert cycles(fma_microbenchmark("unbalanced", fmas=128), srr()) == 612


class TestGoldenApps:
    def test_cg_lou_baseline(self):
        assert cycles(get_kernel("cg-lou"), volta_v100()) == 13147

    def test_cg_lou_rba(self):
        assert cycles(get_kernel("cg-lou"), rba()) == 10906

    def test_rod_nw_baseline(self):
        assert cycles(get_kernel("rod-nw"), volta_v100()) == 16156

    def test_pb_stencil_fully_connected(self):
        k = get_kernel("pb-stencil")
        assert cycles(k, fully_connected()) == cycles(k, fully_connected())


class TestGoldenPipeline:
    def test_single_fadd_latency(self):
        # issue t0, grants t0 (2 banks), dispatch t1, interval 2 + latency 4
        # -> writeback t7; EXIT waits for the scoreboard and issues t7;
        # run ends after cycle 7 -> 8 cycles total.
        k = make_kernel("one", [TraceBuilder().emit(
            __import__("repro.isa", fromlist=["fadd"]).fadd(8, 0, 1)
        ).build()])
        assert cycles(k, volta_v100()) == 8

    def test_single_ldg_latency(self):
        tb = TraceBuilder().global_load(dst=1, addr_reg=0, base_address=0)
        k = make_kernel("ld", [tb.build()])
        mem = volta_v100().memory
        got = cycles(k, volta_v100())
        # cold miss: L1 + L2 + DRAM latencies plus pipeline overheads
        floor = mem.l1_hit_latency + mem.l2_hit_latency + mem.dram_latency
        assert floor < got < floor + 50

    def test_instruction_count_exact(self):
        stats = simulate(
            fma_microbenchmark("baseline", fmas=64), volta_v100(), num_sms=1
        )
        # 8 warps x (64 FMA + BAR + EXIT)
        assert stats.instructions == 8 * 66
