"""Tests for the ``repro.bench`` performance harness.

Covers the pinned suite definitions, the timing/calibration harness, the
report schema validator, the baseline regression comparison, and the CLI
(including both gate outcomes and ``--validate`` mode).  Bench points are
run with ``repeats=1`` and the CLI with the quick suite so the test cost
stays a few seconds.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.bench import (
    FULL_SUITE,
    QUICK_SUITE,
    REPORT_SCHEMA,
    SUITE_VERSION,
    BenchPoint,
    calibrate,
    compare_reports,
    get_suite,
    run_point,
    validate_report,
)
from repro.bench.__main__ import main


def synthetic_report(norm: float = 1.0, name: str = "pt-a") -> dict:
    """A minimal, schema-valid report for compare/validate tests."""
    return {
        "schema": REPORT_SCHEMA,
        "suite": "quick",
        "suite_version": SUITE_VERSION,
        "sim_version": "0.0-test",
        "python": "3.12.0",
        "platform": "test",
        "repeats": 1,
        "calibration_ops_per_sec": 1e6,
        "points": [
            {
                "name": name,
                "app": "cg-lou",
                "design": "baseline",
                "cycles": 1000,
                "instructions": 500,
                "wall_seconds": 0.5,
                "cycles_per_sec": 2000.0,
                "insts_per_sec": 1000.0,
                "normalized_cycles_per_sec": norm,
                "stall_shares": None,
            }
        ],
        "totals": {
            "wall_seconds": 0.5,
            "cycles": 1000,
            "instructions": 500,
            "cycles_per_sec": 2000.0,
            "insts_per_sec": 1000.0,
            "normalized_cycles_per_sec": norm,
        },
    }


class TestSuite:
    def test_quick_is_a_prefix_of_full(self):
        assert QUICK_SUITE == FULL_SUITE[: len(QUICK_SUITE)]

    def test_point_names_unique(self):
        names = [p.name for p in FULL_SUITE]
        assert len(names) == len(set(names))

    def test_get_suite(self):
        assert get_suite("quick") == QUICK_SUITE
        assert get_suite("full") == FULL_SUITE
        with pytest.raises(KeyError, match="unknown suite"):
            get_suite("nope")

    def test_micro_point_builds_fma_kernel(self):
        point = BenchPoint("m", "fma:unbalanced:64")
        kernel = point.build_kernel()
        assert kernel.num_ctas >= 1

    def test_registry_point_builds_kernel_and_config(self):
        point = BenchPoint("c", "cg-lou", design="rba")
        assert point.build_kernel().num_ctas >= 1
        assert str(point.resolve_config().scheduler) == "rba"
        assert "rba" in point.label()


class TestHarness:
    def test_calibrate_positive_and_scales(self):
        score = calibrate(iters=200_000)
        assert score > 0

    def test_run_point_entry_shape(self):
        point = BenchPoint("micro", "fma:balanced:64")
        entry = run_point(point, repeats=1, stages=False, calibration=1e6)
        assert entry["name"] == "micro"
        assert entry["cycles"] > 0
        assert entry["instructions"] > 0
        assert entry["wall_seconds"] > 0
        assert entry["cycles_per_sec"] == pytest.approx(
            entry["cycles"] / entry["wall_seconds"]
        )
        assert entry["normalized_cycles_per_sec"] == pytest.approx(
            entry["cycles_per_sec"] / 1e6
        )
        assert entry["stall_shares"] is None

    def test_run_point_stall_shares_sum_to_one(self):
        point = BenchPoint("micro", "fma:unbalanced:64")
        entry = run_point(point, repeats=1, stages=True, calibration=None)
        shares = entry["stall_shares"]
        assert shares
        assert math.isclose(sum(shares.values()), 1.0, rel_tol=1e-9)
        assert all(v >= 0 for v in shares.values())

    def test_repeats_take_the_minimum(self, monkeypatch):
        # Inject decreasing fake clocks: the reported wall time must be
        # the fastest repeat, not the mean of noisy ones.
        import repro.bench.harness as harness

        times = iter([0.0, 10.0, 10.0, 10.5])  # repeat walls: 10.0, 0.5
        monkeypatch.setattr(harness.time, "perf_counter", lambda: next(times))
        entry = run_point(
            BenchPoint("micro", "fma:balanced:8"), repeats=2, stages=False
        )
        assert entry["wall_seconds"] == pytest.approx(0.5)


class TestSchema:
    def test_valid_report_passes(self):
        assert validate_report(synthetic_report()) == []

    def test_non_object_rejected(self):
        assert validate_report([1, 2]) == ["report must be a JSON object"]

    def test_missing_field_reported(self):
        doc = synthetic_report()
        del doc["calibration_ops_per_sec"]
        assert any("calibration_ops_per_sec" in p for p in validate_report(doc))

    def test_schema_mismatch_reported(self):
        doc = synthetic_report()
        doc["schema"] = REPORT_SCHEMA + 1
        assert any("schema" in p for p in validate_report(doc))

    def test_empty_points_rejected(self):
        doc = synthetic_report()
        doc["points"] = []
        assert any("non-empty" in p for p in validate_report(doc))

    def test_nonpositive_cycles_rejected(self):
        doc = synthetic_report()
        doc["points"][0]["cycles"] = 0
        assert any("cycles must be positive" in p for p in validate_report(doc))

    def test_bad_stall_shares_rejected(self):
        doc = synthetic_report()
        doc["points"][0]["stall_shares"] = {"scoreboard": 0.5, "idle": 0.2}
        assert any("stall_shares" in p for p in validate_report(doc))

    def test_comparison_block_validated(self):
        doc = synthetic_report()
        doc["baseline_comparison"] = {"ratio": 1.0}  # missing fields
        assert any("baseline_comparison" in p for p in validate_report(doc))


class TestCompare:
    def test_ratio_and_ok(self):
        cmp = compare_reports(
            synthetic_report(1.0), synthetic_report(1.5), max_regression=0.2
        )
        assert cmp.ratio == pytest.approx(1.5)
        assert not cmp.regressed
        assert "OK" in cmp.summary()

    def test_regression_detected(self):
        cmp = compare_reports(
            synthetic_report(1.0), synthetic_report(0.7), max_regression=0.2
        )
        assert cmp.regressed
        assert "REGRESSED" in cmp.summary()

    def test_within_tolerance_not_regressed(self):
        cmp = compare_reports(
            synthetic_report(1.0), synthetic_report(0.85), max_regression=0.2
        )
        assert not cmp.regressed

    def test_suite_mismatch_is_a_problem(self):
        base = synthetic_report()
        cand = synthetic_report()
        cand["suite_version"] = SUITE_VERSION + 1
        cmp = compare_reports(base, cand)
        assert cmp.problems
        assert cmp.regressed  # incomparable counts as failed, never silent

    def test_missing_point_is_a_problem(self):
        base = synthetic_report(name="pt-a")
        cand = synthetic_report(name="pt-b")
        cmp = compare_reports(base, cand)
        assert any("missing point" in p for p in cmp.problems)

    def test_per_point_ratios(self):
        cmp = compare_reports(synthetic_report(1.0), synthetic_report(2.0))
        assert cmp.per_point[0]["ratio"] == pytest.approx(2.0)


class TestCLI:
    def test_unknown_option_exits_2(self, capsys):
        assert main(["--bogus"]) == 2
        assert "unknown option" in capsys.readouterr().err

    def test_bad_max_regression_exits_2(self):
        assert main(["--max-regression", "nope"]) == 2
        assert main(["--max-regression", "1.5"]) == 2

    def test_validate_mode(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(synthetic_report()))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": REPORT_SCHEMA}))
        assert main(["--validate", str(good)]) == 0
        assert "OK" in capsys.readouterr().out
        assert main(["--validate", str(good), str(bad)]) == 1

    def test_validate_unreadable_file_exits_1(self, tmp_path, capsys):
        missing = tmp_path / "absent.json"
        assert main(["--validate", str(missing)]) == 1
        assert "unreadable" in capsys.readouterr().err

    def test_quick_run_writes_valid_report_and_gates(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert (
            main(
                [
                    "--quick",
                    "--repeats",
                    "1",
                    "--no-stages",
                    "--output",
                    str(out),
                ]
            )
            == 0
        )
        report = json.loads(out.read_text())
        assert validate_report(report) == []
        assert {e["name"] for e in report["points"]} == {
            p.name for p in QUICK_SUITE
        }
        capsys.readouterr()

        # Gate against itself: ratio ≈ 1 (modulo run noise), exit 0, and
        # the written report embeds the comparison record.
        gated = tmp_path / "gated.json"
        assert (
            main(
                [
                    "--quick",
                    "--repeats",
                    "1",
                    "--no-stages",
                    "--output",
                    str(gated),
                    "--baseline",
                    str(out),
                    "--max-regression",
                    "0.9",
                ]
            )
            == 0
        )
        doc = json.loads(gated.read_text())
        comparison = doc["baseline_comparison"]
        assert comparison["baseline_path"] == str(out)
        assert not comparison["regressed"]
        assert validate_report(doc) == []

        # An impossible baseline must trip the gate: exit 1.
        inflated = json.loads(out.read_text())
        inflated["totals"]["normalized_cycles_per_sec"] *= 1e6
        for entry in inflated["points"]:
            entry["normalized_cycles_per_sec"] *= 1e6
        fast = tmp_path / "impossible.json"
        fast.write_text(json.dumps(inflated))
        capsys.readouterr()
        assert (
            main(
                [
                    "--quick",
                    "--repeats",
                    "1",
                    "--no-stages",
                    "--output",
                    str(tmp_path / "regressed.json"),
                    "--baseline",
                    str(fast),
                ]
            )
            == 1
        )
        assert "REGRESSED" in capsys.readouterr().out

    def test_invalid_baseline_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad-baseline.json"
        bad.write_text(json.dumps({"schema": REPORT_SCHEMA}))
        # Parsed before any suite runs, so this path is fast.
        assert main(["--quick", "--baseline", str(bad)]) == 2

    def test_update_baseline_regenerates_validated_stamped_files(
        self, tmp_path, monkeypatch, capsys
    ):
        import repro
        import repro.bench.__main__ as bench_main

        # Regenerate only the quick baseline here; the full suite takes
        # minutes and exercises the identical code path.
        monkeypatch.setattr(
            bench_main,
            "BASELINE_FILES",
            {"quick": "BENCH_baseline_quick.json"},
        )
        monkeypatch.chdir(tmp_path)
        assert main(["--update-baseline", "--repeats", "1", "--no-stages"]) == 0
        report = json.loads((tmp_path / "BENCH_baseline_quick.json").read_text())
        assert validate_report(report) == []
        assert report["suite"] == "quick"
        assert report["sim_version"] == repro.__version__
        assert "baseline written to" in capsys.readouterr().out

    def test_update_baseline_rejects_output_and_baseline_flags(self, tmp_path):
        assert main(["--update-baseline", "--output", "x.json"]) == 2
        assert main(["--update-baseline", "--baseline", "x.json"]) == 2

    def test_regenerated_baseline_gates_cleanly_against_itself(
        self, tmp_path, monkeypatch, capsys
    ):
        """The --update-baseline artifact must be directly usable as the
        --baseline gate: a re-run on the same machine passes it."""
        import repro.bench.__main__ as bench_main

        monkeypatch.setattr(
            bench_main, "BASELINE_FILES", {"quick": "BENCH_baseline_quick.json"}
        )
        monkeypatch.chdir(tmp_path)
        assert main(["--update-baseline", "--repeats", "1", "--no-stages"]) == 0
        assert (
            main(
                [
                    "--quick",
                    "--repeats",
                    "1",
                    "--no-stages",
                    "--output",
                    str(tmp_path / "rerun.json"),
                    "--baseline",
                    "BENCH_baseline_quick.json",
                ]
            )
            == 0
        )
        assert "REGRESSED" not in capsys.readouterr().out
