"""Regenerate every figure at full scale and dump the report to stdout.

Run:  python scripts/generate_experiments.py > experiments_full.txt

One process so the runner cache is shared across figures (the Fig. 1
baseline runs are the Fig. 9/10 denominators).  Takes tens of minutes on
one core.
"""

import time

import repro.experiments as ex


def section(title, fn):
    t0 = time.time()
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}", flush=True)
    try:
        fn()
    except Exception as err:  # keep going; report the failure
        print(f"!! FAILED: {err!r}")
    print(f"[{time.time() - t0:.0f}s]", flush=True)


def main():
    t0 = time.time()
    section("Fig. 3 (FMA microbenchmark, 3 architectures)",
            lambda: print(ex.fig03_fma_imbalance.format_result(
                ex.fig03_fma_imbalance.run(fmas=1024))))
    section("Fig. 8 (imbalance scaling)",
            lambda: print(ex.fig08_imbalance_scaling.format_result(
                ex.fig08_imbalance_scaling.run(base_fmas=128))))
    section("Sec. V (CU validation)",
            lambda: print(ex.cu_validation.format_result(
                ex.cu_validation.run(insts=256))))
    section("Fig. 13 (area/power)",
            lambda: print(ex.fig13_area_power.format_result(ex.fig13_area_power.run())))
    section("Fig. 1 (fully-connected speedup, all 112 apps)",
            lambda: print(ex.fig01_partitioning.format_result(ex.fig01_partitioning.run())))
    section("Fig. 9 (Shuffle+RBA vs FC, all 112 apps)",
            lambda: print(ex.fig09_all_apps.format_result(ex.fig09_all_apps.run())))
    section("Headline (abstract numbers)",
            lambda: print(ex.headline.format_result(ex.headline.run())))
    section("Fig. 10 (sensitive apps)",
            lambda: print(ex.fig10_sensitive.format_result(ex.fig10_sensitive.run())))
    section("Fig. 11 (RBA on the fully-connected SM)",
            lambda: print(ex.fig11_fc_rba.format_result(ex.fig11_fc_rba.run())))
    section("Fig. 12 (CU scaling)",
            lambda: print(ex.fig12_cu_scaling.format_result(ex.fig12_cu_scaling.run())))
    section("Fig. 14 (RF utilization)",
            lambda: print(ex.fig14_rf_utilization.format_result(ex.fig14_rf_utilization.run())))
    section("Fig. 15 (compressed TPC-H, 22 queries)",
            lambda: print(ex.fig15_tpch_compressed.format_result(ex.fig15_tpch_compressed.run())))
    section("Fig. 16 (uncompressed TPC-H, 22 queries)",
            lambda: print(ex.fig16_tpch_uncompressed.format_result(ex.fig16_tpch_uncompressed.run())))
    section("Fig. 17 (issue CoV, 22 queries)",
            lambda: print(ex.fig17_issue_cov.format_result(ex.fig17_issue_cov.run())))
    section("Fig. 18 (SM scaling)",
            lambda: print(ex.fig18_sm_scaling.format_result(ex.fig18_sm_scaling.run())))
    section("Sec. VI-B4 (RBA score latency)",
            lambda: print(ex.rba_latency.format_result(ex.rba_latency.run())))
    section("Sec. VI-B5 (RBA bank scaling)",
            lambda: print(ex.rba_banks.format_result(ex.rba_banks.run())))
    section("Sec. IV-B3 (hash table size)",
            lambda: print(ex.hash_table_size.format_result(ex.hash_table_size.run())))
    section("Ablation (bank mapping)",
            lambda: print(ex.ablation_bank_mapping.format_result(ex.ablation_bank_mapping.run())))
    section("Ablation (baseline scheduler)",
            lambda: print(ex.ablation_baseline_scheduler.format_result(
                ex.ablation_baseline_scheduler.run())))
    section("Extension (sub-core granularity)",
            lambda: print(ex.subcore_granularity.format_result(ex.subcore_granularity.run())))
    section("Extension (work stealing)",
            lambda: print(ex.work_stealing_study.format_result(ex.work_stealing_study.run())))
    print(f"\nTOTAL: {time.time() - t0:.0f}s, cache={ex.cache_size()} entries")


if __name__ == "__main__":
    main()
