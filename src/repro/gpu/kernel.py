"""Kernel launch descriptor."""

from __future__ import annotations

from dataclasses import dataclass

from ..trace import KernelTrace


@dataclass(frozen=True)
class KernelLaunch:
    """A kernel trace queued for execution.

    ``max_sms`` optionally restricts the launch to the first N SMs —
    the knob the paper uses to run TPC-H on 20 of the V100's 80 SMs.
    """

    trace: KernelTrace
    max_sms: int = 0  # 0 = all SMs

    @property
    def name(self) -> str:
        return self.trace.name
