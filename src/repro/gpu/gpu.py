"""The top-level GPU: SM array, shared L2/DRAM, and the cycle loop.

``GPU.run(kernel)`` simulates a kernel to completion and returns a
:class:`~repro.metrics.SimStats`.  The loop steps every non-idle SM in
lockstep but fast-forwards over stretches where no SM can make progress
(all sub-cores quiescent, waiting only on scheduled writeback events) —
this is what keeps long memory stalls cheap in a Python simulator.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from ..config import GPUConfig, volta_v100
from ..core import StreamingMultiprocessor
from ..memory import MemorySubsystem, build_dram, build_l2
from ..metrics import SimStats, SMStats
from ..obs.stall import IDLE, empty_buckets
from ..trace import KernelTrace
from .kernel import KernelLaunch
from .tb_scheduler import ThreadBlockScheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Tracer


class DeadlockError(RuntimeError):
    """Raised when resident work can make no further progress."""


class GPU:
    """A simulated GPU built from a :class:`~repro.config.GPUConfig`."""

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        num_sms: Optional[int] = None,
        collect_timeline: bool = False,
        tracer: Optional["Tracer"] = None,
    ):
        self.config = config if config is not None else volta_v100()
        if num_sms is not None:
            self.config = self.config.replace(num_sms=num_sms)
        if self.config.num_sms < 1:
            raise ValueError("num_sms must be >= 1")

        self.tracer = tracer
        self.l2 = build_l2(self.config.memory)
        self.dram = build_dram(self.config.memory)
        self.sms: List[StreamingMultiprocessor] = [
            StreamingMultiprocessor(
                sm_id=i,
                config=self.config,
                memory=MemorySubsystem(self.config, l2=self.l2, dram=self.dram),
                collect_timeline=collect_timeline,
                tracer=tracer,
            )
            for i in range(self.config.num_sms)
        ]
        self.now = 0

    # -- execution ---------------------------------------------------------

    def run(
        self,
        kernel: KernelTrace | KernelLaunch,
        max_cycles: int = 50_000_000,
    ) -> SimStats:
        """Simulate ``kernel`` to completion."""
        launch = kernel if isinstance(kernel, KernelLaunch) else KernelLaunch(kernel)
        sms = self.sms
        if launch.max_sms:
            sms = sms[: launch.max_sms]
        scheduler = ThreadBlockScheduler(sms)
        scheduler.launch(launch.trace)
        return self._run(scheduler, sms, launch.name, max_cycles)

    def run_concurrent(
        self,
        kernels: List[KernelTrace],
        max_cycles: int = 50_000_000,
    ) -> SimStats:
        """Simulate several kernels executing concurrently.

        The thread-block scheduler interleaves the kernels' CTA queues, so
        CTAs with different register/shared-memory footprints co-reside on
        the same SMs — the concurrent-kernel scenario behind the paper's
        fourth partitioning effect.
        """
        if not kernels:
            raise ValueError("need at least one kernel")
        scheduler = ThreadBlockScheduler(self.sms)
        scheduler.launch_many(kernels)
        name = "+".join(k.name for k in kernels)
        return self._run(scheduler, self.sms, name, max_cycles)

    def _run(  # simcheck: reset-hook
        self,
        scheduler: ThreadBlockScheduler,
        sms: List[StreamingMultiprocessor],
        name: str,
        max_cycles: int,
    ) -> SimStats:
        base = self._snapshot_counters(sms)
        start = self.now
        now = self.now
        # Each run() models an independent kernel launch: reset every piece
        # of transient machine state (in-flight MSHR fills, busy ports,
        # warp-id counters, scheduler pointers) so a second launch on this
        # GPU behaves byte-for-byte like a fresh one.  Statistics counters
        # stay cumulative; _snapshot_counters/_collect_stats report deltas.
        self.l2.begin_run()
        self.dram.begin_run()
        for sm in self.sms:
            sm.begin_run()
        if self.config.stall_attribution:
            for sm in sms:
                sm.begin_attribution_window(start)
        scheduler.fill(now)
        active = [sm for sm in sms if not sm.idle]
        if not active and not scheduler.done:
            raise DeadlockError(
                f"kernel {name!r}: {scheduler.pending_ctas} CTAs "
                "pending but no SM can accept them"
            )

        while active or not scheduler.done:
            if now - start > max_cycles:
                raise DeadlockError(
                    f"kernel {name!r} exceeded {max_cycles} cycles"
                )
            for sm in active:
                sm.step(now)

            # SM residency only changes when a CTA retires (resources_freed)
            # or is placed by fill(), so the active list needs rebuilding
            # only on those events rather than every iteration.
            freed = False
            for sm in active:
                if sm.resources_freed:
                    sm.resources_freed = False
                    freed = True
            if freed:
                if not scheduler.done:
                    scheduler.fill(now)
                active = [sm for sm in sms if not sm.idle]
                if not active:
                    if scheduler.done:
                        break
                    raise DeadlockError(
                        f"kernel {name!r}: {scheduler.pending_ctas} CTAs "
                        "pending but no SM can accept them"
                    )

            now = self._advance(active, now, name)

        self.now = now + 1
        if self.config.sanitize:
            for sm in sms:
                if sm.sanitizer is not None:
                    sm.sanitizer.end_of_kernel(sm, now)
        return self._collect_stats(sms, self.now - start, name, base, start)

    def _advance(self, active: List[StreamingMultiprocessor], now: int, name: str) -> int:
        """Next cycle to simulate: ``now + 1`` or a fast-forward jump.

        A jump skips the window ``[now + 1, horizon - 1]``.  When every
        active SM is dormant (all sub-cores quiescent) the window matches
        the original writeback-only fast-forward and skipped cycles carry
        no per-cycle accounting — gap attribution happens at the next step.
        When some active SM is merely waiting on execution ports, the
        window consists of cycles the simulator used to step with nothing
        to do, so each active SM reproduces those counters in closed form
        (account_skipped_steps) and the jump stays byte-identical in stats.
        """
        horizon = None
        for sm in active:
            nxt = sm.next_event(now)
            if nxt is None:
                raise DeadlockError(
                    f"kernel {name!r}: SM {sm.sm_id} has resident CTAs but no "
                    "pending events (barrier or scoreboard deadlock)"
                )
            if horizon is None or nxt < horizon:
                horizon = nxt
                if horizon == now + 1:
                    return horizon
        assert horizon is not None
        if horizon <= now + 1:
            return now + 1
        # Plain loop, not any(genexp): this runs on every fast-forward
        # decision and a generator expression allocates per evaluation.
        busy = False
        for sm in active:
            if not sm.dormant():
                busy = True
                break
        if busy:
            gap = horizon - now - 1
            for sm in active:
                sm.account_skipped_steps(now + 1, gap)
        return horizon

    # -- results -----------------------------------------------------------

    def _snapshot_counters(self, sms: List[StreamingMultiprocessor]) -> dict:
        """Counter values at run start, so stats report per-run deltas.

        Every counter in the simulator is cumulative over the GPU's
        lifetime (machine *state* resets per launch via ``begin_run``, but
        statistics never do); without the snapshot a second run would
        re-report the first kernel's work as its own.
        """
        return {
            "sms": [
                {
                    "instructions": sm.total_instructions,
                    "issue_counts": sm.issue_counts(),
                    "rf_reads": sm.total_rf_reads(),
                    "bank_conflict_cycles": sm.total_bank_conflict_cycles(),
                    "ctas_completed": sm.ctas_completed,
                    "issue_stall_no_cu": sum(sc.issue_stall_no_cu for sc in sm.subcores),
                    "issue_stall_no_ready": sum(
                        sc.issue_stall_no_ready for sc in sm.subcores
                    ),
                    "steals": sum(sc.steals for sc in sm.subcores),
                    "migrations": sm.migrations,
                    "l1_hits": sm.memory.l1.stats.hits,
                    "l1_misses": sm.memory.l1.stats.misses,
                    "timeline_len": len(sm.rf_read_timeline or ()),
                    "finish_len": len(sm.warp_finish_cycles),
                    "latency_len": len(sm.cta_latencies),
                    "stall_cycles": (
                        [dict(sc.stall_cycles) for sc in sm.subcores]
                        if sm.stall_attribution
                        else None
                    ),
                    "attr_cycles": sm._attr_cycles,
                }
                for sm in sms
            ],
            "l2_hits": self.l2.stats.hits,
            "l2_misses": self.l2.stats.misses,
            "dram_accesses": self.dram.stats.accesses,
        }

    def _collect_stats(
        self,
        sms: List[StreamingMultiprocessor],
        cycles: int,
        name: str,
        base: dict,
        start: int = 0,
    ) -> SimStats:
        sm_stats = []
        for sm, b in zip(sms, base["sms"]):
            stall_cycles = None
            if b["stall_cycles"] is not None:
                # Per-run bucket deltas, then fold the cycles this SM was
                # never stepped nor fast-forwarded over (idle between its
                # last CTA retiring and the end of the run) into ``idle`` —
                # so every issue slot of every one of ``cycles`` cycles
                # lands in exactly one bucket.
                run_attr = sm._attr_cycles - b["attr_cycles"]
                idle_slots = (cycles - run_attr) * self.config.issue_width
                stall_cycles = []
                for sc, b0 in zip(sm.subcores, b["stall_cycles"]):
                    assert sc.stall_cycles is not None
                    delta = {
                        k: v - b0[k] for k, v in sc.stall_cycles.items()
                    }
                    delta[IDLE] += idle_slots
                    stall_cycles.append(delta)
            sm_stats.append(
                SMStats(
                    sm_id=sm.sm_id,
                    instructions=sm.total_instructions - b["instructions"],
                    issue_counts=[
                        n - b0
                        for n, b0 in zip(sm.issue_counts(), b["issue_counts"])
                    ],
                    rf_reads=sm.total_rf_reads() - b["rf_reads"],
                    bank_conflict_cycles=(
                        sm.total_bank_conflict_cycles() - b["bank_conflict_cycles"]
                    ),
                    ctas_completed=sm.ctas_completed - b["ctas_completed"],
                    issue_stall_no_cu=(
                        sum(sc.issue_stall_no_cu for sc in sm.subcores)
                        - b["issue_stall_no_cu"]
                    ),
                    issue_stall_no_ready=(
                        sum(sc.issue_stall_no_ready for sc in sm.subcores)
                        - b["issue_stall_no_ready"]
                    ),
                    steals=sum(sc.steals for sc in sm.subcores) - b["steals"],
                    migrations=sm.migrations - b["migrations"],
                    # Timelines are recorded in absolute GPU cycles; report
                    # them relative to the run's start so a second run on a
                    # warm GPU yields the same payload a fresh GPU would
                    # (for a fresh run start == 0 and this is the identity).
                    rf_read_timeline=(
                        [(t - start, g) for t, g in sm.rf_read_timeline[b["timeline_len"]:]]
                        if sm.rf_read_timeline is not None
                        else None
                    ),
                    warp_finish_cycles=[
                        t - start for t in sm.warp_finish_cycles[b["finish_len"]:]
                    ],
                    cta_latencies=sm.cta_latencies[b["latency_len"]:],
                    stall_cycles=stall_cycles,
                )
            )
        l1_hits = sum(
            sm.memory.l1.stats.hits - b["l1_hits"]
            for sm, b in zip(sms, base["sms"])
        )
        l1_misses = sum(
            sm.memory.l1.stats.misses - b["l1_misses"]
            for sm, b in zip(sms, base["sms"])
        )
        stats = SimStats(
            kernel_name=name,
            config_name=self.config.name,
            cycles=cycles,
            instructions=sum(s.instructions for s in sm_stats),
            sms=sm_stats,
            l1_hits=l1_hits,
            l1_misses=l1_misses,
            l2_hits=self.l2.stats.hits - base["l2_hits"],
            l2_misses=self.l2.stats.misses - base["l2_misses"],
            dram_accesses=self.dram.stats.accesses - base["dram_accesses"],
        )
        if self.config.sanitize:
            for sm in sms:
                if sm.sanitizer is not None:
                    sm.sanitizer.check_run_stats(stats)
                    break
        return stats


def simulate(
    kernel: KernelTrace,
    config: Optional[GPUConfig] = None,
    num_sms: Optional[int] = None,
    collect_timeline: bool = False,
    tracer: Optional["Tracer"] = None,
) -> SimStats:
    """One-shot convenience wrapper: build a GPU, run ``kernel``, return stats."""
    gpu = GPU(
        config=config,
        num_sms=num_sms,
        collect_timeline=collect_timeline,
        tracer=tracer,
    )
    return gpu.run(kernel)
