"""Top-level GPU model: SM array, thread-block scheduler, cycle loop."""

from .gpu import GPU, DeadlockError, simulate
from .kernel import KernelLaunch
from .tb_scheduler import ThreadBlockScheduler

__all__ = ["GPU", "DeadlockError", "simulate", "KernelLaunch", "ThreadBlockScheduler"]
