"""The thread-block (CTA) scheduler.

Dispatches CTAs to SMs in round-robin order, subject to each SM's
occupancy checks (warp slots per sub-core, registers, shared memory, CTA
count).  Supports concurrent kernels: with several kernels launched, the
scheduler interleaves their CTA queues round-robin, modelling concurrent
kernel execution on one device — the scenario behind the paper's fourth
partitioning effect (diverse register-capacity demands across sub-cores).

CTAs of each kernel are issued in grid order; when no pending CTA fits
anywhere the scheduler waits for an SM to free resources (Table I: thread
block scheduling happens at kernel launch and on CTA completion).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TYPE_CHECKING

from ..trace import KernelTrace

if TYPE_CHECKING:  # pragma: no cover
    from ..core.sm import StreamingMultiprocessor


class _KernelQueue:
    """Dispatch cursor over one kernel's CTAs."""

    __slots__ = ("kernel", "next_cta")

    def __init__(self, kernel: KernelTrace):
        self.kernel = kernel
        self.next_cta = 0

    @property
    def pending(self) -> int:
        return self.kernel.num_ctas - self.next_cta

    @property
    def head(self):
        return self.kernel.ctas[self.next_cta]


class ThreadBlockScheduler:
    """Greedy round-robin CTA dispatcher over a fixed SM set."""

    def __init__(self, sms: List["StreamingMultiprocessor"]):
        if not sms:
            raise ValueError("need at least one SM")
        self.sms = sms
        self._queues: List[_KernelQueue] = []
        self._rr_cursor = 0
        self._kernel_cursor = 0
        self._cta_counter = 0

    # -- launching -----------------------------------------------------------

    def launch(self, kernel: KernelTrace) -> None:
        """Launch a single kernel (errors if work is already in flight)."""
        if self._queues and not self.done:
            raise RuntimeError("a kernel is already in flight")
        self.launch_many([kernel])

    def launch_many(self, kernels: Sequence[KernelTrace]) -> None:  # simcheck: reset-hook
        """Launch several kernels for concurrent execution.

        A launch is the scheduler's reset point: every dispatch cursor —
        including the CTA id counter — restarts so a relaunch on a reused
        GPU numbers CTAs exactly as a fresh one would (CTA ids reach
        traces and per-CTA latency stats).
        """
        if not kernels:
            raise ValueError("need at least one kernel")
        if self._queues and not self.done:
            raise RuntimeError("kernels are already in flight")
        for kernel in kernels:
            for cta in kernel.ctas:
                if not self.sms[0].can_ever_fit(kernel, cta):
                    raise ValueError(
                        f"kernel {kernel.name!r} has a CTA that can never fit on an SM"
                    )
        self._queues = [_KernelQueue(k) for k in kernels]
        self._rr_cursor = 0
        self._kernel_cursor = 0
        self._cta_counter = 0

    # -- state ----------------------------------------------------------------

    @property
    def done(self) -> bool:
        """All CTAs of all kernels dispatched (not necessarily completed)."""
        return all(q.pending == 0 for q in self._queues)

    @property
    def pending_ctas(self) -> int:
        return sum(q.pending for q in self._queues)

    # -- dispatch ---------------------------------------------------------------

    def fill(self, now: int) -> int:
        """Place as many pending CTAs as currently fit; returns placements."""
        if not self._queues:
            return 0
        placed = 0
        num_sms = len(self.sms)
        num_kernels = len(self._queues)
        # Keep trying until a full sweep over (kernel, SM) pairs places
        # nothing.
        progress = True
        while progress:
            progress = False
            for _ in range(num_kernels):
                queue = self._queues[self._kernel_cursor % num_kernels]
                self._kernel_cursor += 1
                if queue.pending == 0:
                    continue
                for _ in range(num_sms):
                    sm = self.sms[self._rr_cursor % num_sms]
                    self._rr_cursor += 1
                    if sm.try_allocate_cta(
                        queue.kernel, queue.head, self._cta_counter, now
                    ):
                        queue.next_cta += 1
                        self._cta_counter += 1
                        placed += 1
                        progress = True
                        break
        return placed
