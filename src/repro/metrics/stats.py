"""Simulation statistics assembled after a kernel run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass
class SMStats:
    """Per-SM counters snapshotted at the end of a run."""

    sm_id: int
    instructions: int
    issue_counts: List[int]
    rf_reads: int
    bank_conflict_cycles: int
    ctas_completed: int
    issue_stall_no_cu: int
    issue_stall_no_ready: int
    steals: int
    migrations: int = 0
    rf_read_timeline: Optional[List[Tuple[int, int]]] = None
    warp_finish_cycles: List[int] = field(default_factory=list)
    cta_latencies: List[int] = field(default_factory=list)
    #: Per-sub-core stall-attribution buckets (``repro.obs.stall``), one
    #: dict per sub-core in sub-core order; ``None`` unless the run had
    #: ``GPUConfig.stall_attribution`` set.  Conservation contract: each
    #: dict's values sum to ``cycles * issue_width``.
    stall_cycles: Optional[List[Dict[str, int]]] = None

    def issue_cov(self) -> float:
        """Coefficient of variation of per-sub-core issued instructions.

        The Fig. 17 balance metric: ``sigma / mu`` over the four schedulers'
        issue totals; 0 means perfectly balanced.
        """
        counts = np.asarray(self.issue_counts, dtype=float)
        mu = counts.mean()
        if mu == 0:
            return 0.0
        return float(counts.std() / mu)

    # -- conservation cross-checks -------------------------------------------

    def conservation_errors(self) -> List[str]:
        """Violated counter invariants of this per-run SM delta.

        Used by the runtime sanitizer (:mod:`repro.analysis`): every
        per-run delta must be non-negative (a negative delta means a
        counter was reset or double-snapshotted mid-run) and the SM
        instruction total must equal the sum of its sub-core schedulers'
        issue counts.
        """
        errors: List[str] = []
        for counter in (
            "instructions",
            "rf_reads",
            "bank_conflict_cycles",
            "ctas_completed",
            "issue_stall_no_cu",
            "issue_stall_no_ready",
            "steals",
            "migrations",
        ):
            value = getattr(self, counter)
            if value < 0:
                errors.append(
                    f"SM {self.sm_id}: negative per-run delta "
                    f"{counter}={value}"
                )
        if any(n < 0 for n in self.issue_counts):
            errors.append(
                f"SM {self.sm_id}: negative per-sub-core issue count in "
                f"{self.issue_counts}"
            )
        if self.instructions != sum(self.issue_counts):
            errors.append(
                f"SM {self.sm_id}: instructions ({self.instructions}) != "
                f"sum of sub-core issue counts ({sum(self.issue_counts)})"
            )
        errors.extend(self._stall_attribution_errors())
        return errors

    def _stall_attribution_errors(self) -> List[str]:
        """Internal consistency of the stall-attribution buckets.

        The cycle-count conservation check (bucket sums equal
        ``cycles * issue_width``) needs the run's cycle count and lives in
        ``repro.analysis.invariants``; here we check what the SM delta can
        see on its own: no negative buckets, one bucket dict per sub-core
        scheduler, identical sums across sub-cores (every scheduler
        accounts the same cycles), and scheduler-pass issues — the
        ``issued`` buckets plus steal-pass issues — matching the
        instruction total.
        """
        if self.stall_cycles is None:
            return []
        errors: List[str] = []
        if len(self.stall_cycles) != len(self.issue_counts):
            errors.append(
                f"SM {self.sm_id}: {len(self.stall_cycles)} stall-bucket "
                f"dicts for {len(self.issue_counts)} sub-cores"
            )
        for sc_id, buckets in enumerate(self.stall_cycles):
            negative = {k: v for k, v in buckets.items() if v < 0}
            if negative:
                errors.append(
                    f"SM {self.sm_id} sub-core {sc_id}: negative stall "
                    f"buckets {negative}"
                )
        sums = [sum(b.values()) for b in self.stall_cycles]
        if len(set(sums)) > 1:
            errors.append(
                f"SM {self.sm_id}: stall-bucket sums differ across "
                f"sub-cores: {sums}"
            )
        issued = sum(b.get("issued", 0) for b in self.stall_cycles)
        if issued + self.steals != self.instructions:
            errors.append(
                f"SM {self.sm_id}: issued stall-bucket total ({issued}) + "
                f"steals ({self.steals}) != instructions "
                f"({self.instructions})"
            )
        return errors

    # -- cache serialization ------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-safe dict that :meth:`from_payload` restores losslessly."""
        payload = {
            "sm_id": self.sm_id,
            "instructions": self.instructions,
            "issue_counts": list(self.issue_counts),
            "rf_reads": self.rf_reads,
            "bank_conflict_cycles": self.bank_conflict_cycles,
            "ctas_completed": self.ctas_completed,
            "issue_stall_no_cu": self.issue_stall_no_cu,
            "issue_stall_no_ready": self.issue_stall_no_ready,
            "steals": self.steals,
            "migrations": self.migrations,
            "rf_read_timeline": (
                [list(entry) for entry in self.rf_read_timeline]
                if self.rf_read_timeline is not None
                else None
            ),
            "warp_finish_cycles": list(self.warp_finish_cycles),
            "cta_latencies": list(self.cta_latencies),
        }
        if self.stall_cycles is not None:
            # Only present when stall attribution ran, so untraced payloads
            # stay byte-identical to pre-observability behaviour.
            payload["stall_cycles"] = [dict(b) for b in self.stall_cycles]
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "SMStats":
        timeline = payload["rf_read_timeline"]
        return cls(
            sm_id=payload["sm_id"],
            instructions=payload["instructions"],
            issue_counts=list(payload["issue_counts"]),
            rf_reads=payload["rf_reads"],
            bank_conflict_cycles=payload["bank_conflict_cycles"],
            ctas_completed=payload["ctas_completed"],
            issue_stall_no_cu=payload["issue_stall_no_cu"],
            issue_stall_no_ready=payload["issue_stall_no_ready"],
            steals=payload["steals"],
            migrations=payload["migrations"],
            rf_read_timeline=(
                [tuple(entry) for entry in timeline]
                if timeline is not None
                else None
            ),
            warp_finish_cycles=list(payload["warp_finish_cycles"]),
            cta_latencies=list(payload["cta_latencies"]),
            stall_cycles=(
                [dict(b) for b in payload["stall_cycles"]]
                if payload.get("stall_cycles") is not None
                else None
            ),
        )


@dataclass
class SimStats:
    """Whole-run results of :meth:`repro.gpu.GPU.run`."""

    kernel_name: str
    config_name: str
    cycles: int
    instructions: int
    sms: List[SMStats]

    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    dram_accesses: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def issue_cov(self) -> float:
        """Mean per-SM issue CoV over SMs that issued anything."""
        covs = [sm.issue_cov() for sm in self.sms if sm.instructions]
        return float(np.mean(covs)) if covs else 0.0

    def total_rf_reads(self) -> int:
        return sum(sm.rf_reads for sm in self.sms)

    def rf_reads_per_cycle(self) -> float:
        """Average warp-operand reads per cycle per SM.

        Multiply by 32 to get the paper's Fig. 14 unit (4-byte reads per
        cycle, max 256 for 8 banks x 32 lanes).
        """
        if not self.cycles or not self.sms:
            return 0.0
        return self.total_rf_reads() / self.cycles / len(self.sms)

    def bank_conflict_cycles(self) -> int:
        return sum(sm.bank_conflict_cycles for sm in self.sms)

    def summary(self) -> str:
        return (
            f"{self.kernel_name} on {self.config_name}: {self.cycles} cycles, "
            f"{self.instructions} instructions, IPC {self.ipc:.2f}, "
            f"issue CoV {self.issue_cov():.3f}"
        )

    # -- conservation cross-checks -------------------------------------------

    def conservation_errors(self) -> List[str]:
        """Violated counter invariants of this whole-run result.

        GPU totals must be the sums of their per-SM parts, and every
        memory-hierarchy delta must be non-negative.  Aggregated by the
        runtime sanitizer into :class:`repro.analysis.InvariantViolation`.
        """
        errors: List[str] = []
        if self.cycles < 0:
            errors.append(f"negative cycle count {self.cycles}")
        per_sm = sum(sm.instructions for sm in self.sms)
        if self.instructions != per_sm:
            errors.append(
                f"GPU instruction total ({self.instructions}) != sum over "
                f"SMs ({per_sm})"
            )
        for counter in ("l1_hits", "l1_misses", "l2_hits", "l2_misses", "dram_accesses"):
            value = getattr(self, counter)
            if value < 0:
                errors.append(f"negative per-run delta {counter}={value}")
        for sm in self.sms:
            errors.extend(sm.conservation_errors())
        return errors

    # -- cache serialization ------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-safe dict that :meth:`from_payload` restores losslessly.

        This is the on-disk format of the experiment engine's result cache
        (:mod:`repro.experiments.engine`); round-tripping must preserve
        equality — including timelines — or cached and freshly simulated
        results would diverge.
        """
        return {
            "kernel_name": self.kernel_name,
            "config_name": self.config_name,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "sms": [sm.to_payload() for sm in self.sms],
            "l1_hits": self.l1_hits,
            "l1_misses": self.l1_misses,
            "l2_hits": self.l2_hits,
            "l2_misses": self.l2_misses,
            "dram_accesses": self.dram_accesses,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SimStats":
        return cls(
            kernel_name=payload["kernel_name"],
            config_name=payload["config_name"],
            cycles=payload["cycles"],
            instructions=payload["instructions"],
            sms=[SMStats.from_payload(sm) for sm in payload["sms"]],
            l1_hits=payload["l1_hits"],
            l1_misses=payload["l1_misses"],
            l2_hits=payload["l2_hits"],
            l2_misses=payload["l2_misses"],
            dram_accesses=payload["dram_accesses"],
        )
