"""Run statistics and cross-design analysis helpers."""

from .analysis import (
    coefficient_of_variation,
    geomean,
    mean,
    mean_absolute_error,
    percent_speedup,
    speedup,
    speedup_table,
)
from .bounds import IPCBounds, bound_report, ipc_bounds
from .profile_report import compare_report, profile_report, stall_totals
from .stats import SimStats, SMStats

__all__ = [
    "coefficient_of_variation",
    "geomean",
    "mean",
    "mean_absolute_error",
    "percent_speedup",
    "speedup",
    "speedup_table",
    "SimStats",
    "SMStats",
    "compare_report",
    "profile_report",
    "stall_totals",
    "IPCBounds",
    "bound_report",
    "ipc_bounds",
]
