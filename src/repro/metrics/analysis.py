"""Analysis helpers for comparing design points."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .stats import SimStats


def speedup(baseline: SimStats, design: SimStats) -> float:
    """Cycle-count speedup of ``design`` over ``baseline`` (1.0 = parity)."""
    if design.cycles == 0:
        raise ValueError("design run has zero cycles")
    return baseline.cycles / design.cycles


def percent_speedup(baseline: SimStats, design: SimStats) -> float:
    """Speedup expressed the way the paper quotes it (+11.2 -> 11.2)."""
    return (speedup(baseline, design) - 1.0) * 100.0


def geomean(values: Iterable[float]) -> float:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("geomean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def mean(values: Iterable[float]) -> float:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("mean of empty sequence")
    return float(arr.mean())


def coefficient_of_variation(values: Sequence[float]) -> float:
    """``sigma / mu`` — the Fig. 17 imbalance metric."""
    arr = np.asarray(values, dtype=float)
    mu = arr.mean()
    if mu == 0:
        return 0.0
    return float(arr.std() / mu)


def mean_absolute_error(reference: Sequence[float], measured: Sequence[float]) -> float:
    """Relative MAE (in percent) of ``measured`` against ``reference``.

    Used by the Sec. V collector-unit validation: per-benchmark
    ``|measured - reference| / reference`` averaged, x100.
    """
    ref = np.asarray(reference, dtype=float)
    got = np.asarray(measured, dtype=float)
    if ref.shape != got.shape:
        raise ValueError("reference and measured must be the same length")
    if np.any(ref == 0):
        raise ValueError("reference values must be non-zero")
    return float(np.abs((got - ref) / ref).mean() * 100.0)


def speedup_table(
    baseline_cycles: Dict[str, int], design_cycles: Dict[str, Dict[str, int]]
) -> List[Tuple[str, Dict[str, float]]]:
    """Per-app speedups of several designs over a shared baseline.

    ``design_cycles`` maps design name -> app name -> cycles.  Returns rows
    of ``(app, {design: speedup})`` in the apps' iteration order.
    """
    rows: List[Tuple[str, Dict[str, float]]] = []
    for app, base in baseline_cycles.items():
        rows.append(
            (
                app,
                {
                    design: base / cycles[app]
                    for design, cycles in design_cycles.items()
                    if app in cycles
                },
            )
        )
    return rows
