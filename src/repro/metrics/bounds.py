"""Analytical performance bounds (a roofline for the SM pipeline).

Given a kernel's static characteristics and a configuration, compute the
IPC ceiling each pipeline resource imposes on one SM:

* **issue** — total warp-instruction issue slots per cycle;
* **read bandwidth** — register-file bank grants per cycle versus the
  kernel's mean source operands per instruction (the paper's read-operand
  stage);
* **execution ports** — per-functional-unit initiation bandwidth versus
  the kernel's unit mix;
* **memory bandwidth** — DRAM line throughput versus the kernel's miss
  traffic (bounded above by assuming every global access misses).

The binding constraint is the minimum.  Simulated IPC can never exceed the
bound (modulo the idealizations stated per term); the *gap* between bound
and simulation is what scheduling quality — GTO vs RBA, RR vs SRR —
explains.  Tests assert the invariant ``simulated <= bound`` across
designs and use the bound to sanity-check the workload generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import GPUConfig
from ..trace import KernelTrace
from ..workloads.characterize import TraceCharacteristics, characterize

#: Warp lanes per execution port model (matches core.execution.Pipeline).
_UNIT_LANES = {
    "fp32": lambda cfg: cfg.fp32_lanes,
    "int": lambda cfg: cfg.int_lanes,
    "sfu": lambda cfg: cfg.sfu_lanes,
    "tensor": lambda cfg: cfg.tensor_units * 8,
    "ldst": lambda cfg: cfg.ldst_units,
    "branch": lambda cfg: 32,
    "sync": lambda cfg: 32,
}


@dataclass(frozen=True)
class IPCBounds:
    """Per-resource IPC ceilings for one SM."""

    issue: float
    read_bandwidth: float
    execution: float
    memory_bandwidth: float

    @property
    def binding(self) -> str:
        """Name of the tightest constraint."""
        terms = {
            "issue": self.issue,
            "read_bandwidth": self.read_bandwidth,
            "execution": self.execution,
            "memory_bandwidth": self.memory_bandwidth,
        }
        return min(terms, key=terms.get)

    @property
    def ipc(self) -> float:
        """The overall IPC ceiling."""
        return min(self.issue, self.read_bandwidth, self.execution,
                   self.memory_bandwidth)

    def as_dict(self) -> Dict[str, float]:
        return {
            "issue": self.issue,
            "read_bandwidth": self.read_bandwidth,
            "execution": self.execution,
            "memory_bandwidth": self.memory_bandwidth,
        }


def ipc_bounds(
    kernel: KernelTrace | TraceCharacteristics, config: GPUConfig
) -> IPCBounds:
    """Compute the per-SM IPC ceilings of ``kernel`` under ``config``."""
    c = kernel if isinstance(kernel, TraceCharacteristics) else characterize(kernel)
    n = config.subcores_per_sm

    issue_bound = float(config.issue_width * n)

    # Read bandwidth: every bank grants bank_read_ports operands per cycle.
    reads_per_instr = max(c.reads_per_instruction, 1e-9)
    total_read_bw = config.total_rf_banks * config.bank_read_ports
    read_bound = total_read_bw / reads_per_instr

    # Execution: each unit class accepts lanes/32 warp instructions per
    # cycle per sub-core; the kernel's mix must fit every class.
    exec_bound = float("inf")
    for unit, frac in c.unit_mix.items():
        if frac <= 0:
            continue
        lanes = _UNIT_LANES[unit](config)
        per_subcore = lanes / 32.0 if lanes > 0 else 1.0 / 64.0
        exec_bound = min(exec_bound, per_subcore * n / frac)

    # Memory: pessimistic (all global accesses miss to DRAM).  Each access
    # moves `coalesced` lines; a line occupies a channel for
    # line_bytes/bytes_per_cycle cycles.
    mem = config.memory
    if c.memory_fraction > 0:
        service = max(1.0, mem.l2_line_bytes / mem.dram_bytes_per_cycle)
        lines_per_cycle = mem.dram_channels / service
        # mean lines per memory instruction is not in the characteristics;
        # assume 1 (hit-side) as the optimistic floor — still an upper
        # bound on IPC because misses only slow things further... so use
        # the optimistic value to keep the bound valid.
        mem_bound = lines_per_cycle / c.memory_fraction
    else:
        mem_bound = float("inf")

    return IPCBounds(
        issue=issue_bound,
        read_bandwidth=read_bound,
        execution=exec_bound,
        memory_bandwidth=mem_bound,
    )


def bound_report(kernel: KernelTrace, config: GPUConfig) -> str:
    """One-kernel roofline summary."""
    b = ipc_bounds(kernel, config)
    rows = "\n".join(
        f"  {name:<16} {value:8.2f} IPC" if value != float("inf")
        else f"  {name:<16}      unbounded"
        for name, value in b.as_dict().items()
    )
    return (
        f"IPC bounds for {kernel.name} on {config.name}:\n{rows}\n"
        f"  binding constraint: {b.binding} ({b.ipc:.2f} IPC)"
    )
