"""Human-readable run profiles.

``profile_report`` turns a :class:`SimStats` into the kind of breakdown a
hardware profiler prints: throughput, issue-stall attribution, operand-
collector behaviour, memory-system behaviour, and per-sub-core balance —
the quantities this paper's analysis sections reason about.
"""

from __future__ import annotations

from typing import Dict, List

from .stats import SimStats, SMStats


def _pct(part: float, whole: float) -> str:
    return f"{part / whole:6.1%}" if whole else "   n/a"


def stall_totals(stats: SimStats) -> Dict[str, int]:
    """Issue slots per stall-attribution bucket, summed over every
    sub-core of every SM.

    The run must have been simulated with ``stall_attribution`` on;
    otherwise the result is empty.  This is the aggregate both
    :func:`repro.obs.metrics.record_stats_metrics` and the dashboard's
    stacked bars are built from — one definition, reused.
    """
    totals: Dict[str, int] = {}
    for sm in stats.sms:
        for buckets in sm.stall_cycles or ():
            for bucket, slots in buckets.items():
                totals[bucket] = totals.get(bucket, 0) + slots
    return totals


def profile_sm(sm: SMStats, cycles: int) -> List[str]:
    """Per-SM section of the report."""
    lines = [f"SM {sm.sm_id}:"]
    if cycles:
        lines.append(
            f"  instructions {sm.instructions}, IPC "
            f"{sm.instructions / cycles:.2f}"
        )
    else:
        lines.append(f"  instructions {sm.instructions} (no cycles)")
    lines.append(
        "  per-sub-core issue "
        + " / ".join(str(c) for c in sm.issue_counts)
        + f"  (CoV {sm.issue_cov():.2f})"
    )
    scheduler_slots = cycles * max(1, len(sm.issue_counts))
    lines.append(
        f"  issue stalls: no-ready-warp {_pct(sm.issue_stall_no_ready, scheduler_slots)}"
        f", no-free-collector-unit {_pct(sm.issue_stall_no_cu, scheduler_slots)}"
    )
    if cycles:
        lines.append(
            f"  register file: {sm.rf_reads} operand reads"
            f" ({sm.rf_reads / cycles:.2f}/cycle)"
            f", bank-conflict cycles {sm.bank_conflict_cycles}"
        )
    else:
        lines.append("  register file: idle")
    if sm.stall_cycles is not None and sm.stall_cycles:
        from ..viz import stall_chart

        slots = sum(sm.stall_cycles[0].values())
        chart = stall_chart(
            sm.stall_cycles,
            title=f"issue-slot attribution ({slots} slots per sub-core)",
        )
        lines.extend("  " + line for line in chart.splitlines())
    extras = []
    if sm.steals:
        extras.append(f"bank-steals {sm.steals}")
    if sm.migrations:
        extras.append(f"warp migrations {sm.migrations}")
    if extras:
        lines.append("  " + ", ".join(extras))
    if sm.cta_latencies:
        lat = sm.cta_latencies
        lines.append(
            f"  CTAs {sm.ctas_completed}: latency min {min(lat)}, "
            f"mean {sum(lat) / len(lat):.0f}, max {max(lat)}"
        )
    if sm.warp_finish_cycles and len(sm.warp_finish_cycles) > 1:
        wf = sorted(sm.warp_finish_cycles)
        spread = wf[-1] - wf[0]
        lines.append(
            f"  warp finish spread {spread} cycles "
            f"({_pct(spread, cycles).strip()} of runtime) — inter-warp divergence"
        )
    return lines


def profile_report(stats: SimStats, show_idle_sms: bool = False) -> str:
    """Full textual profile of one simulation run."""
    lines = [
        f"profile: {stats.kernel_name} on {stats.config_name}",
        "=" * 60,
        f"cycles {stats.cycles}, instructions {stats.instructions}, "
        f"IPC {stats.ipc:.2f}",
    ]
    mem_accesses = stats.l1_hits + stats.l1_misses
    if mem_accesses:
        lines.append(
            f"memory: L1 {_pct(stats.l1_hits, mem_accesses).strip()} hit "
            f"({stats.l1_hits}/{mem_accesses}); "
            f"L2 {_pct(stats.l2_hits, stats.l2_hits + stats.l2_misses).strip()} hit; "
            f"DRAM accesses {stats.dram_accesses}"
        )
    else:
        lines.append("memory: no global accesses")
    for sm in stats.sms:
        if sm.instructions == 0 and not show_idle_sms:
            continue
        lines.append("")
        lines.extend(profile_sm(sm, stats.cycles))
    return "\n".join(lines)


def compare_report(baseline: SimStats, design: SimStats) -> str:
    """Side-by-side deltas between two runs of the same kernel."""
    if baseline.kernel_name != design.kernel_name:
        raise ValueError("compare_report expects runs of the same kernel")
    speedup = baseline.cycles / design.cycles if design.cycles else float("inf")
    rows = [
        ("cycles", baseline.cycles, design.cycles),
        ("IPC", round(baseline.ipc, 2), round(design.ipc, 2)),
        ("RF reads/cycle", round(baseline.rf_reads_per_cycle(), 2),
         round(design.rf_reads_per_cycle(), 2)),
        ("bank-conflict cycles", baseline.bank_conflict_cycles(),
         design.bank_conflict_cycles()),
        ("issue CoV", round(baseline.issue_cov(), 3), round(design.issue_cov(), 3)),
    ]
    width = max(len(r[0]) for r in rows)
    lines = [
        f"compare: {baseline.kernel_name} — "
        f"{baseline.config_name} vs {design.config_name}",
        f"speedup: {(speedup - 1) * 100:+.1f}%",
    ]
    lines.append(f"{'metric':<{width}} {'baseline':>14} {'design':>14}")
    for name, a, b in rows:
        lines.append(f"{name:<{width}} {a!s:>14} {b!s:>14}")
    return "\n".join(lines)
