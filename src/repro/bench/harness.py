"""The benchmark harness: timed runs, calibration, report assembly.

Timing protocol, per point:

* the kernel trace is synthesized *before* the timed region (trace
  generation is numpy-bound and not what we track);
* :func:`repro.gpu.simulate` is timed end-to-end (GPU construction plus
  the cycle loop) ``repeats`` times; the **minimum** wall time is
  reported, which is the standard way to reject scheduler noise;
* throughput is reported as simulated ``cycles / second`` and
  ``instructions / second``.

Machine normalization: absolute cycles/sec is not comparable across
hosts, so every report embeds a *calibration score* — the throughput of a
fixed pure-Python workload measured in the same process — and each
point's ``normalized_cycles_per_sec`` (cycles/sec divided by the score).
The regression gate compares normalized values, which cancels most
host-speed variation (see docs/performance.md).

The optional per-stage breakdown re-runs each point with the
observability layer's stall attribution enabled
(``GPUConfig.stall_attribution``) and reports each bucket's share of
issue slots — the existing ``repro.obs`` taxonomy, untimed, so the timed
figures always describe the plain production configuration.
"""

from __future__ import annotations

import platform
import sys
import time
from typing import Dict, List, Optional, Sequence

from .. import __version__ as _SIM_VERSION
from ..obs.stall import STALL_BUCKETS
from .suite import SUITE_VERSION, BenchPoint, get_suite

#: Bump when the report layout changes (validated by repro.bench.schema).
REPORT_SCHEMA = 1

#: Iterations of the calibration loop (fixed: the score must measure the
#: host, not the parameter).
_CALIBRATION_ITERS = 2_000_000


def calibrate(iters: int = _CALIBRATION_ITERS) -> float:
    """Host-speed score: iterations/sec of a fixed arithmetic loop.

    The loop shape (integer multiply-add over a rolling accumulator) is
    deliberately boring — close to the interpreter-bound arithmetic the
    simulator's hot path executes — and has no allocation, so the score
    tracks CPython dispatch speed rather than allocator behaviour.
    """
    t0 = time.perf_counter()
    acc = 0
    for i in range(iters):
        acc = (acc * 3 + i) & 0xFFFFFFFF
    dt = time.perf_counter() - t0
    # Fold acc into the return comparison so the loop cannot be elided.
    return iters / dt if acc >= 0 else 0.0


def _stall_shares(point: BenchPoint) -> Dict[str, float]:
    """Per-bucket issue-slot shares for one point (untimed observability run)."""
    from ..gpu import simulate

    cfg = point.resolve_config().replace(stall_attribution=True)
    stats = simulate(point.build_kernel(), cfg, num_sms=point.num_sms)
    totals = {bucket: 0 for bucket in STALL_BUCKETS}
    for sm in stats.sms:
        for buckets in sm.stall_cycles or ():
            for bucket, slots in buckets.items():
                totals[bucket] += slots
    grand = sum(totals.values())
    if not grand:
        return {bucket: 0.0 for bucket in STALL_BUCKETS}
    return {bucket: totals[bucket] / grand for bucket in STALL_BUCKETS}


def run_point(
    point: BenchPoint,
    repeats: int = 2,
    stages: bool = False,
    calibration: Optional[float] = None,
) -> dict:
    """Benchmark one point; returns its report entry."""
    from ..gpu import simulate

    kernel = point.build_kernel()
    config = point.resolve_config()
    best = None
    stats = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        stats = simulate(kernel, config, num_sms=point.num_sms)
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    assert stats is not None and best is not None
    cycles_per_sec = stats.cycles / best if best > 0 else 0.0
    entry = {
        "name": point.name,
        "app": point.app,
        "design": point.design,
        "num_sms": point.num_sms,
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "wall_seconds": best,
        "cycles_per_sec": cycles_per_sec,
        "insts_per_sec": stats.instructions / best if best > 0 else 0.0,
        "normalized_cycles_per_sec": (
            cycles_per_sec / calibration if calibration else None
        ),
        "stall_shares": _stall_shares(point) if stages else None,
    }
    return entry


def run_suite(
    suite: str = "full",
    repeats: int = 2,
    stages: Optional[bool] = None,
    progress: bool = False,
    metrics=None,
) -> dict:
    """Run a named suite and assemble the machine-readable report.

    ``metrics`` optionally takes a
    :class:`~repro.obs.metrics.MetricsRegistry`; per-point wall time,
    simulated cycles and normalized throughput land in it as labeled
    series (same zero-overhead-when-off discipline as the engine: the
    default ``None`` touches nothing).
    """
    points: Sequence[BenchPoint] = get_suite(suite)
    if stages is None:
        stages = suite == "full"
    calibration = calibrate()
    entries: List[dict] = []
    for point in points:
        if progress:
            print(f"[bench] {point.name}: {point.label()}", file=sys.stderr)
        entry = run_point(
            point, repeats=repeats, stages=stages, calibration=calibration
        )
        entries.append(entry)
        if metrics is not None:
            metrics.histogram(
                "repro_bench_point_seconds",
                "Best-of-repeats wall time per benchmark point.",
                ("point",),
            ).labels(point=point.name).observe(entry["wall_seconds"])
            metrics.counter(
                "repro_bench_cycles_total",
                "Simulated cycles per benchmark point.",
                ("point",),
            ).labels(point=point.name).inc(entry["cycles"])
    if metrics is not None:
        metrics.gauge(
            "repro_bench_calibration_ops_per_sec",
            "Host-speed calibration score of the last suite run.",
        ).set(calibration)
    total_wall = sum(e["wall_seconds"] for e in entries)
    total_cycles = sum(e["cycles"] for e in entries)
    total_insts = sum(e["instructions"] for e in entries)
    agg_cps = total_cycles / total_wall if total_wall > 0 else 0.0
    if metrics is not None:
        metrics.gauge(
            "repro_bench_normalized_cycles_per_sec",
            "Suite-level normalized throughput (the regression-gate figure).",
        ).set(agg_cps / calibration if calibration else 0.0)
    return {
        "schema": REPORT_SCHEMA,
        "suite": suite,
        "suite_version": SUITE_VERSION,
        "sim_version": _SIM_VERSION,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "calibration_ops_per_sec": calibration,
        "points": entries,
        "totals": {
            "wall_seconds": total_wall,
            "cycles": total_cycles,
            "instructions": total_insts,
            "cycles_per_sec": agg_cps,
            "insts_per_sec": total_insts / total_wall if total_wall > 0 else 0.0,
            "normalized_cycles_per_sec": (
                agg_cps / calibration if calibration else 0.0
            ),
        },
    }


def summary(report: dict) -> str:
    """Human-readable table for one report."""
    lines = [
        f"bench suite {report['suite']!r} (v{report['suite_version']}), "
        f"sim {report['sim_version']}, python {report['python']}",
        f"calibration {report['calibration_ops_per_sec']:,.0f} ops/s",
        f"{'point':<22} {'cycles':>9} {'wall s':>8} {'cycles/s':>12} {'norm':>10}",
    ]
    for e in report["points"]:
        norm = e["normalized_cycles_per_sec"]
        lines.append(
            f"{e['name']:<22} {e['cycles']:>9} {e['wall_seconds']:>8.3f} "
            f"{e['cycles_per_sec']:>12,.0f} "
            f"{norm if norm is not None else 0.0:>10.6f}"
        )
    t = report["totals"]
    lines.append(
        f"{'TOTAL':<22} {t['cycles']:>9} {t['wall_seconds']:>8.3f} "
        f"{t['cycles_per_sec']:>12,.0f} {t['normalized_cycles_per_sec']:>10.6f}"
    )
    return "\n".join(lines)
