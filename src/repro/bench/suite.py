"""The pinned benchmark point set.

Benchmark points are *performance* probes, not correctness probes: each
one pins a (workload, design) pair that stresses a different part of the
simulator's hot path, so a regression in any per-cycle stage (issue,
arbitration, collector dispatch, memory, fast-forward) moves at least one
point.  The set is deliberately small and stable — ``BENCH_*.json`` files
recorded at different commits are only comparable when the points match.

``QUICK_SUITE`` is the CI subset (a couple of seconds of simulation);
``FULL_SUITE`` adds the design axes (RBA scoring, the fully-connected SM,
TPC-H's imbalanced shape) for local trajectory tracking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Bump when the point set changes; reports with different suite versions
#: must not be compared by the regression gate.
SUITE_VERSION = 1


@dataclass(frozen=True)
class BenchPoint:
    """One benchmark point: a workload under a named design.

    ``app`` is either a workload-registry name (``cg-lou``) or a
    microbenchmark spec ``fma:<layout>:<count>`` resolved through
    :func:`repro.workloads.fma_microbenchmark`.
    """

    name: str
    app: str
    design: str = "baseline"
    num_sms: Optional[int] = None

    def build_kernel(self):
        """Synthesize the point's kernel trace (outside the timed region)."""
        if self.app.startswith("fma:"):
            from ..workloads import fma_microbenchmark

            _, layout, count = self.app.split(":")
            return fma_microbenchmark(layout, fmas=int(count))
        from ..workloads import get_kernel

        return get_kernel(self.app)

    def resolve_config(self):
        """The point's resolved design config."""
        from ..experiments.designs import get_design

        return get_design(self.design)

    def label(self) -> str:
        sms = f" num_sms={self.num_sms}" if self.num_sms is not None else ""
        return f"{self.app} × {self.design}{sms}"


#: CI subset: one micro point (pure issue/collector pressure), one
#: register-bank-bound macro point, one shared-memory + barrier point.
QUICK_SUITE: Tuple[BenchPoint, ...] = (
    BenchPoint("micro-fma-unbalanced", "fma:unbalanced:512"),
    BenchPoint("cg-lou-baseline", "cg-lou"),
    BenchPoint("pb-sgemm-baseline", "pb-sgemm"),
)

#: Local trajectory set: the quick points plus the design axes.
FULL_SUITE: Tuple[BenchPoint, ...] = QUICK_SUITE + (
    BenchPoint("cg-lou-rba", "cg-lou", design="rba"),
    BenchPoint("pb-sgemm-fc", "pb-sgemm", design="fully_connected"),
    BenchPoint("tpcU-q8-baseline", "tpcU-q8"),
    BenchPoint("rod-nw-srr", "rod-nw", design="srr"),
)

SUITES = {"quick": QUICK_SUITE, "full": FULL_SUITE}


def get_suite(name: str) -> Tuple[BenchPoint, ...]:
    try:
        return SUITES[name]
    except KeyError:
        raise KeyError(f"unknown suite {name!r}; options: {sorted(SUITES)}")
