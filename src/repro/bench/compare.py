"""Regression comparison between two bench reports.

The gate metric is ``totals.normalized_cycles_per_sec`` — throughput
normalized by the in-process calibration score — so a committed baseline
recorded on one machine remains meaningful on another (CI runners
included).  A candidate *regresses* when its normalized throughput falls
more than ``max_regression`` below the baseline's.

Reports are only comparable when their suite name and
``suite_version`` match; comparing disjoint point sets would let a suite
edit masquerade as a speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Comparison:
    """Outcome of comparing a candidate report against a baseline."""

    baseline_norm: float
    candidate_norm: float
    max_regression: float
    problems: List[str] = field(default_factory=list)
    per_point: List[dict] = field(default_factory=list)

    @property
    def ratio(self) -> float:
        """candidate / baseline normalized throughput (>1 = faster)."""
        if self.baseline_norm <= 0:
            return 0.0
        return self.candidate_norm / self.baseline_norm

    @property
    def regressed(self) -> bool:
        return bool(self.problems) or self.ratio < (1.0 - self.max_regression)

    def summary(self) -> str:
        lines = []
        if self.problems:
            lines.extend(f"comparison problem: {p}" for p in self.problems)
        lines.append(
            f"normalized cycles/sec: baseline {self.baseline_norm:.6f} → "
            f"candidate {self.candidate_norm:.6f} ({self.ratio:.2f}x)"
        )
        for row in self.per_point:
            lines.append(
                f"  {row['name']:<22} {row['ratio']:>6.2f}x "
                f"({row['baseline']:.6f} → {row['candidate']:.6f})"
            )
        verdict = (
            f"REGRESSED (>{self.max_regression:.0%} below baseline)"
            if self.regressed
            else "OK"
        )
        lines.append(f"bench-compare: {verdict}")
        return "\n".join(lines)


def _point_norms(report: dict) -> dict:
    norms = {}
    for entry in report.get("points", ()):
        norm = entry.get("normalized_cycles_per_sec")
        if isinstance(norm, (int, float)) and norm:
            norms[entry["name"]] = float(norm)
    return norms


def compare_reports(
    baseline: dict,
    candidate: dict,
    max_regression: float = 0.20,
) -> Comparison:
    """Compare a candidate report against a baseline report."""
    problems: List[str] = []
    for key in ("suite", "suite_version"):
        if baseline.get(key) != candidate.get(key):
            problems.append(
                f"{key} mismatch: baseline {baseline.get(key)!r} vs "
                f"candidate {candidate.get(key)!r}"
            )

    def _norm(report: dict) -> float:
        totals = report.get("totals") or {}
        value = totals.get("normalized_cycles_per_sec")
        return float(value) if isinstance(value, (int, float)) else 0.0

    base_points = _point_norms(baseline)
    cand_points = _point_norms(candidate)
    per_point = []
    for name, base_norm in base_points.items():
        cand_norm: Optional[float] = cand_points.get(name)
        if cand_norm is None:
            problems.append(f"candidate is missing point {name!r}")
            continue
        per_point.append(
            {
                "name": name,
                "baseline": base_norm,
                "candidate": cand_norm,
                "ratio": cand_norm / base_norm if base_norm > 0 else 0.0,
            }
        )
    return Comparison(
        baseline_norm=_norm(baseline),
        candidate_norm=_norm(candidate),
        max_regression=max_regression,
        problems=problems,
        per_point=per_point,
    )
