"""Validation of ``BENCH_*.json`` reports.

The bench report is the repo's performance trajectory record — CI and the
regression gate both consume it — so its shape is validated explicitly
rather than trusted.  Validation is dependency-free (no jsonschema):
:func:`validate_report` walks the document and returns a list of
human-readable problems, empty when the report is well-formed.
"""

from __future__ import annotations

from typing import Any, List

from .harness import REPORT_SCHEMA

_REPORT_FIELDS = {
    "schema": int,
    "suite": str,
    "suite_version": int,
    "sim_version": str,
    "python": str,
    "platform": str,
    "repeats": int,
    "calibration_ops_per_sec": float,
    "points": list,
    "totals": dict,
}

_POINT_FIELDS = {
    "name": str,
    "app": str,
    "design": str,
    "cycles": int,
    "instructions": int,
    "wall_seconds": float,
    "cycles_per_sec": float,
    "insts_per_sec": float,
}

_COMPARISON_FIELDS = {
    "baseline_path": str,
    "baseline_normalized_cycles_per_sec": float,
    "candidate_normalized_cycles_per_sec": float,
    "ratio": float,
    "max_regression": float,
    "regressed": bool,
}

_TOTAL_FIELDS = {
    "wall_seconds": float,
    "cycles": int,
    "instructions": int,
    "cycles_per_sec": float,
    "insts_per_sec": float,
    "normalized_cycles_per_sec": float,
}


def _check_fields(doc: dict, fields: dict, where: str, problems: List[str]) -> None:
    for key, typ in fields.items():
        if key not in doc:
            problems.append(f"{where}: missing field {key!r}")
        elif typ is float:
            if not isinstance(doc[key], (int, float)) or isinstance(doc[key], bool):
                problems.append(f"{where}: {key!r} must be a number")
        elif not isinstance(doc[key], typ) or isinstance(doc[key], bool) and typ is int:
            problems.append(f"{where}: {key!r} must be {typ.__name__}")


def validate_report(doc: Any) -> List[str]:
    """All structural problems with a bench report (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["report must be a JSON object"]
    _check_fields(doc, _REPORT_FIELDS, "report", problems)
    if doc.get("schema") != REPORT_SCHEMA:
        problems.append(
            f"report: schema {doc.get('schema')!r} != supported {REPORT_SCHEMA}"
        )
    points = doc.get("points")
    if isinstance(points, list):
        if not points:
            problems.append("report: points must be non-empty")
        for i, entry in enumerate(points):
            where = f"points[{i}]"
            if not isinstance(entry, dict):
                problems.append(f"{where}: must be an object")
                continue
            _check_fields(entry, _POINT_FIELDS, where, problems)
            if isinstance(entry.get("cycles"), int) and entry["cycles"] <= 0:
                problems.append(f"{where}: cycles must be positive")
            if (
                isinstance(entry.get("wall_seconds"), (int, float))
                and entry["wall_seconds"] <= 0
            ):
                problems.append(f"{where}: wall_seconds must be positive")
            shares = entry.get("stall_shares")
            if shares is not None:
                if not isinstance(shares, dict):
                    problems.append(f"{where}: stall_shares must be an object")
                else:
                    total = sum(shares.values())
                    if shares and abs(total - 1.0) > 1e-6 and total != 0.0:
                        problems.append(
                            f"{where}: stall_shares sum to {total}, expected 1"
                        )
    totals = doc.get("totals")
    if isinstance(totals, dict):
        _check_fields(totals, _TOTAL_FIELDS, "totals", problems)
    comparison = doc.get("baseline_comparison")
    if comparison is not None:
        if not isinstance(comparison, dict):
            problems.append("baseline_comparison: must be an object")
        else:
            _check_fields(
                comparison, _COMPARISON_FIELDS, "baseline_comparison", problems
            )
    return problems
