"""Performance trajectory across committed ``BENCH_*.json`` reports.

The repo commits one benchmark report per perf-relevant PR
(``BENCH_pr6.json``, ``BENCH_pr7.json``, ...) next to the pinned
baselines.  This module turns that pile of files into a trajectory:
reports are schema-validated, grouped per suite (quick and full runs are
never compared to each other), ordered, and each step annotated with its
throughput ratio against the previous report of the same suite — the
same ``totals.normalized_cycles_per_sec`` figure the regression gate
uses, so the table and the gate can never disagree about direction.

``python -m repro.bench --history`` prints the table;
``python -m repro.obs --dashboard`` embeds the same rows.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from .schema import validate_report


def _order_key(name: str) -> tuple:
    """Sort key putting baselines first, then prN ascending, then names.

    ``BENCH_baseline*.json`` anchors a suite's trajectory;
    ``BENCH_pr<N>.json`` sorts numerically so pr10 follows pr9.
    """
    stem = Path(name).stem
    tag = stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem
    if tag.startswith("baseline"):
        return (0, 0, tag)
    if tag.startswith("pr"):
        digits = "".join(ch for ch in tag[2:] if ch.isdigit())
        if digits:
            return (1, int(digits), tag)
    return (2, 0, tag)


def load_history(
    paths: Sequence[Union[str, Path]],
) -> tuple:
    """Validated history rows grouped per suite; returns ``(rows, problems)``.

    Each row: ``{"name", "path", "suite", "sim_version",
    "normalized_cycles_per_sec", "points", "ratio"}`` where ``ratio`` is
    throughput vs the previous report of the same suite (>1 = faster) or
    ``None`` for the first.  Unreadable or schema-invalid files become
    problems, never silent drops.
    """
    rows: List[Dict[str, Any]] = []
    problems: List[str] = []
    for raw in sorted(paths, key=lambda p: _order_key(str(p))):
        path = Path(raw)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            problems.append(f"{path}: unreadable: {exc}")
            continue
        report_problems = validate_report(doc)
        if report_problems:
            problems.append(f"{path}: invalid report: {report_problems[0]}")
            continue
        rows.append(
            {
                "name": path.name,
                "path": str(path),
                "suite": doc["suite"],
                "sim_version": doc["sim_version"],
                "normalized_cycles_per_sec": doc["totals"][
                    "normalized_cycles_per_sec"
                ],
                "points": len(doc["points"]),
                "ratio": None,
            }
        )
    previous: Dict[str, float] = {}
    for row in rows:
        norm = row["normalized_cycles_per_sec"]
        last = previous.get(row["suite"])
        if last is not None and last > 0:
            row["ratio"] = norm / last
        previous[row["suite"]] = norm
    return rows, problems


def history_table(rows: Sequence[Dict[str, Any]]) -> str:
    """The trajectory as fixed-width text, one section per suite."""
    if not rows:
        return "no benchmark reports found"
    lines: List[str] = []
    suites: List[str] = []
    for row in rows:
        if row["suite"] not in suites:
            suites.append(row["suite"])
    for suite in suites:
        suite_rows = [row for row in rows if row["suite"] == suite]
        if lines:
            lines.append("")
        lines.append(f"suite: {suite}")
        lines.append(
            f"  {'report':<28} {'sim':>7} {'points':>6} "
            f"{'norm cyc/s':>12} {'vs prev':>8}"
        )
        for row in suite_rows:
            ratio = row["ratio"]
            vs = f"{ratio:7.2f}x" if ratio is not None else "       -"
            lines.append(
                f"  {row['name']:<28} {row['sim_version']:>7} "
                f"{row['points']:>6} {row['normalized_cycles_per_sec']:>12.5g} "
                f"{vs}"
            )
    return "\n".join(lines)


def default_history_paths(root: Optional[Union[str, Path]] = None) -> List[Path]:
    """Every ``BENCH_*.json`` under ``root`` (default: current directory)."""
    base = Path(root) if root is not None else Path(".")
    return sorted(base.glob("BENCH_*.json"))
