"""``repro.bench``: the simulator's performance-trajectory harness.

Runs a pinned micro/macro point set (:mod:`repro.bench.suite`), times
each point, and emits a machine-readable ``BENCH_*.json`` report with
wall time, simulated cycles/sec, a calibration-normalized throughput
figure, and an optional per-stage (stall-bucket) breakdown from the
``repro.obs`` hooks.  ``python -m repro.bench --help`` for the CLI;
docs/performance.md for how to read the reports.

The committed ``BENCH_baseline.json`` at the repo root is the reference
the CI ``bench-smoke`` job gates against; ``BENCH_pr<N>.json`` files
record the trajectory across PRs.
"""

from .compare import Comparison, compare_reports
from .harness import REPORT_SCHEMA, calibrate, run_point, run_suite, summary
from .schema import validate_report
from .suite import (
    FULL_SUITE,
    QUICK_SUITE,
    SUITE_VERSION,
    SUITES,
    BenchPoint,
    get_suite,
)

__all__ = [
    "BenchPoint",
    "Comparison",
    "FULL_SUITE",
    "QUICK_SUITE",
    "REPORT_SCHEMA",
    "SUITES",
    "SUITE_VERSION",
    "calibrate",
    "compare_reports",
    "get_suite",
    "run_point",
    "run_suite",
    "summary",
    "validate_report",
]
