"""Command-line entry point for the benchmark harness.

Usage::

    python -m repro.bench                       # full suite → BENCH.json
    python -m repro.bench --quick               # CI subset
    python -m repro.bench --output BENCH_pr6.json
    python -m repro.bench --baseline BENCH_baseline.json
                                                # + regression gate (exit 1
                                                #   on >20% normalized slowdown)
    python -m repro.bench --max-regression 0.1  # tighten the gate
    python -m repro.bench --repeats 3           # timing repeats per point
    python -m repro.bench --no-stages           # skip the stall breakdown
    python -m repro.bench --validate FILE...    # schema-check reports only
    python -m repro.bench --history [FILE...]   # perf trajectory across
                                                #   BENCH_*.json (default:
                                                #   all in the cwd), ratio
                                                #   vs previous per suite
    python -m repro.bench --update-baseline     # regenerate BENCH_baseline.json
                                                #   + BENCH_baseline_quick.json
                                                #   (schema-validated, version-
                                                #   stamped — never hand-edit)
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional

from .compare import compare_reports
from .harness import run_suite, summary
from .history import default_history_paths, history_table, load_history
from .schema import validate_report


class _CLIError(ValueError):
    pass


def _parse(args: List[str]) -> dict:
    opts = {
        "suite": "full",
        "output": None,
        "baseline": None,
        "max_regression": 0.20,
        "repeats": 2,
        "stages": None,
        "validate": [],
        "history": None,
        "update_baseline": False,
        "help": False,
    }
    i = 0
    while i < len(args):
        arg = args[i]
        if arg in ("-h", "--help"):
            opts["help"] = True
        elif arg == "--quick":
            opts["suite"] = "quick"
        elif arg == "--full":
            opts["suite"] = "full"
        elif arg == "--no-stages":
            opts["stages"] = False
        elif arg == "--stages":
            opts["stages"] = True
        elif arg == "--update-baseline":
            opts["update_baseline"] = True
        elif arg == "--validate":
            opts["validate"] = args[i + 1 :]
            if not opts["validate"]:
                raise _CLIError("--validate requires at least one file")
            break
        elif arg == "--history":
            opts["history"] = args[i + 1 :]
            break
        elif arg in ("--output", "--baseline", "--max-regression", "--repeats"):
            if i + 1 >= len(args):
                raise _CLIError(f"{arg} requires a value")
            i += 1
            value = args[i]
            if arg == "--output":
                opts["output"] = value
            elif arg == "--baseline":
                opts["baseline"] = value
            elif arg == "--max-regression":
                try:
                    opts["max_regression"] = float(value)
                except ValueError:
                    raise _CLIError(f"--max-regression expects a number, got {value!r}")
                if not 0 <= opts["max_regression"] < 1:
                    raise _CLIError("--max-regression must be in [0, 1)")
            else:
                try:
                    opts["repeats"] = int(value)
                except ValueError:
                    raise _CLIError(f"--repeats expects an integer, got {value!r}")
                if opts["repeats"] < 1:
                    raise _CLIError("--repeats must be >= 1")
        else:
            raise _CLIError(f"unknown option: {arg}")
        i += 1
    return opts


def _validate_files(paths: List[str]) -> int:
    status = 0
    for raw in paths:
        path = Path(raw)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            status = 1
            continue
        problems = validate_report(doc)
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            print(f"{path}: OK ({len(doc['points'])} points)")
    return status


#: Committed baseline reports, regenerated only via ``--update-baseline``
#: so they always pass the schema validator and carry the repro version
#: they were measured with.
BASELINE_FILES = {
    "full": "BENCH_baseline.json",
    "quick": "BENCH_baseline_quick.json",
}


def _update_baselines(repeats: int, stages: Optional[bool]) -> int:
    for suite, name in BASELINE_FILES.items():
        report = run_suite(
            suite=suite,
            repeats=repeats,
            stages=stages,
            progress=sys.stderr.isatty(),
        )
        problems = validate_report(report)
        if problems:  # pragma: no cover - a harness bug, not an input error
            for problem in problems:
                print(f"internal: {name} invalid: {problem}", file=sys.stderr)
            return 1
        out = Path(name)
        out.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(summary(report))
        print(f"baseline written to {out} (sim {report['sim_version']})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    try:
        opts = _parse(args)
    except _CLIError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if opts["help"]:
        print(__doc__)
        return 0
    if opts["validate"]:
        return _validate_files(opts["validate"])
    if opts["history"] is not None:
        paths = opts["history"] or [str(p) for p in default_history_paths()]
        rows, history_problems = load_history(paths)
        for problem in history_problems:
            print(problem, file=sys.stderr)
        print(history_table(rows))
        return 1 if history_problems else 0
    if opts["update_baseline"]:
        if opts["output"] is not None or opts["baseline"] is not None:
            print(
                "--update-baseline regenerates the committed baseline files; "
                "it does not combine with --output or --baseline",
                file=sys.stderr,
            )
            return 2
        return _update_baselines(opts["repeats"], opts["stages"])

    # Read and validate the baseline before spending minutes on the
    # suite: a typo'd path should fail in milliseconds.
    baseline = None
    if opts["baseline"] is not None:
        try:
            baseline = json.loads(Path(opts["baseline"]).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"baseline {opts['baseline']}: unreadable: {exc}", file=sys.stderr)
            return 2
        base_problems = validate_report(baseline)
        if base_problems:
            for problem in base_problems:
                print(f"baseline {opts['baseline']}: {problem}", file=sys.stderr)
            return 2

    report = run_suite(
        suite=opts["suite"],
        repeats=opts["repeats"],
        stages=opts["stages"],
        progress=sys.stderr.isatty(),
    )
    problems = validate_report(report)
    if problems:  # pragma: no cover - a harness bug, not an input error
        for problem in problems:
            print(f"internal: generated report invalid: {problem}", file=sys.stderr)
        return 1

    cmp = None
    if baseline is not None:
        cmp = compare_reports(
            baseline, report, max_regression=opts["max_regression"]
        )
        # The written report records what it was measured against, so a
        # committed BENCH_pr<N>.json carries its own speedup evidence.
        report["baseline_comparison"] = {
            "baseline_path": opts["baseline"],
            "baseline_normalized_cycles_per_sec": cmp.baseline_norm,
            "candidate_normalized_cycles_per_sec": cmp.candidate_norm,
            "ratio": cmp.ratio,
            "max_regression": opts["max_regression"],
            "regressed": cmp.regressed,
        }

    out = Path(opts["output"] or "BENCH.json")
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(summary(report))
    print(f"report written to {out}")

    if cmp is not None:
        print(cmp.summary())
        if cmp.regressed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
