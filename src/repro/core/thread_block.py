"""Thread-block (CTA) runtime state.

The CTA is the resource-management granularity: registers, shared memory
and warp slots are claimed when the thread-block scheduler places a CTA on
an SM and released only when *every* warp of the CTA has exited.  A warp
that finishes early therefore keeps occupying its sub-core slot — the
mechanism behind the sub-core imbalance pathology (Sec. III-B).

Barriers are CTA-wide: a warp issuing ``BAR`` waits until every other warp
of the CTA has either arrived at the barrier or already exited (CUDA
semantics for exited warps).
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..trace import CTATrace
from .warp import Warp, WarpState


class ThreadBlock:
    """One CTA resident on an SM."""

    def __init__(
        self,
        cta_id: int,
        trace: CTATrace,
        regs: int,
        shared_mem: int,
        shared_conflict_degree: int = 1,
        regs_per_warp: Optional[int] = None,
    ):
        self.cta_id = cta_id
        self.trace = trace
        #: Register-file space (in registers) and shared memory (bytes)
        #: this CTA holds until completion.
        self.regs = regs
        #: Registers charged per warp at admission.  Release and migration
        #: must use this exact figure: deriving it from ``regs`` (e.g.
        #: ``regs // num_warps``) drifts whenever the division is inexact
        #: and permanently strands register-file space.
        self.regs_per_warp = (
            regs_per_warp
            if regs_per_warp is not None
            else regs // max(1, trace.num_warps)
        )
        self.shared_mem = shared_mem
        #: LDS/STS bank-serialization degree of the owning kernel.
        self.shared_conflict_degree = shared_conflict_degree
        self.warps: List[Warp] = []
        self._at_barrier: Set[int] = set()
        self.start_cycle: Optional[int] = None
        self.finish_cycle: Optional[int] = None

    # -- population (done by the SM during allocation) -----------------------

    def add_warp(self, warp: Warp) -> None:
        self.warps.append(warp)

    @property
    def num_warps(self) -> int:
        return len(self.warps)

    # -- completion -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        return all(w.done for w in self.warps)

    # -- barrier protocol -------------------------------------------------------

    def arrive_at_barrier(self, warp: Warp) -> List[Warp]:
        """Record ``warp`` at the barrier; return warps released (possibly all).

        Returns an empty list while the barrier is still waiting.  Exited
        warps count as arrived.
        """
        warp.set_state(WarpState.AT_BARRIER)
        self._at_barrier.add(warp.warp_id)
        return self._try_release()

    def note_warp_exit(self, warp: Warp) -> List[Warp]:
        """A warp exited; this may release a barrier the others wait at."""
        return self._try_release()

    def _try_release(self) -> List[Warp]:  # simcheck: hot-ok -- runs per barrier arrival/exit event, not per cycle
        blocked = [w for w in self.warps if w.state is WarpState.AT_BARRIER]
        arrived_or_done = sum(
            1 for w in self.warps if w.warp_id in self._at_barrier or w.done
        )
        if arrived_or_done < len(self.warps) or not blocked:
            return []
        self._at_barrier.clear()
        for w in blocked:
            w.set_state(WarpState.READY)
            w.refresh_state()
        return blocked
