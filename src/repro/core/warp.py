"""Dynamic warp state.

A :class:`Warp` wraps a :class:`~repro.trace.WarpTrace` with the execution
state the sub-core needs: the trace cursor, the scoreboard of pending
register writes, and the scheduling state (running / blocked on a hazard /
waiting at a barrier / finished).  ``age`` is the warp's dispatch order on
its scheduler — the GTO tie-break key.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Set, Tuple, TYPE_CHECKING

from ..isa import Instruction

if TYPE_CHECKING:  # pragma: no cover
    from ..regalloc import BankMapper
    from ..trace import WarpTrace
    from .thread_block import ThreadBlock


class WarpState(enum.Enum):
    READY = "ready"            # next instruction can be considered for issue
    BLOCKED = "blocked"        # scoreboard hazard on the next instruction
    AT_BARRIER = "at_barrier"  # issued BAR, waiting for the CTA
    MIGRATING = "migrating"    # register state in transit between sub-cores
    FINISHED = "finished"      # issued EXIT

#: States in which a warp still has instructions to run (it will become
#: issuable again without outside help beyond scheduled events).
RUNNABLE_STATES = frozenset({WarpState.READY, WarpState.BLOCKED, WarpState.MIGRATING})


class Warp:
    """One warp resident on a sub-core."""

    __slots__ = (
        "warp_id",
        "cta",
        "trace",
        "subcore_id",
        "age",
        "pc",
        "state",
        "pending_writes",
        "issued_instructions",
        "finish_cycle",
        "ready_pool",
        "next_instruction",
        "_insts",
        "_bank_mapper",
        "_num_banks",
        "_bank_pc",
        "_bank_cache",
    )

    def __init__(
        self,
        warp_id: int,
        cta: "ThreadBlock",
        trace: "WarpTrace",
        subcore_id: int,
        age: int,
    ):
        self.warp_id = warp_id
        self.cta = cta
        self.trace = trace
        self.subcore_id = subcore_id
        self.age = age
        self.pc = 0
        self.state = WarpState.READY
        #: Destination registers with an outstanding writeback.
        self.pending_writes: Set[int] = set()
        self.issued_instructions = 0
        self.finish_cycle: Optional[int] = None
        #: The owning sub-core's ready pool (kept in sync by set_state).
        #: An insertion-ordered dict-as-set — see SubCore.ready.
        self.ready_pool: Optional[Dict["Warp", None]] = None
        #: The instruction at the trace cursor, maintained by note_issue so
        #: the issue path never re-indexes the trace.  After EXIT issues the
        #: cursor runs off the trace and this keeps pointing at EXIT — a
        #: FINISHED warp's next_instruction is never consulted.
        self._insts = trace.instructions
        self.next_instruction: Instruction = self._insts[0]
        # Source-bank layout memo for the instruction at ``pc`` (the bank
        # view is attached by SubCore.add_warp; identical across sub-cores
        # of a config, so the memo survives migration).
        self._bank_mapper: Optional["BankMapper"] = None
        self._num_banks = 0
        self._bank_pc = -1
        self._bank_cache: Tuple[int, ...] = ()

    # -- trace cursor ------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state is WarpState.FINISHED

    # -- hazards -----------------------------------------------------------

    def has_hazard(self, inst: Instruction) -> bool:
        """RAW or WAW hazard between ``inst`` and outstanding writes.

        EXIT additionally waits for the whole scoreboard to drain — a warp
        cannot retire (and release its CTA's resources) with writebacks,
        e.g. outstanding loads, still in flight.
        """
        pending = self.pending_writes
        if not pending:
            return False
        if inst.info.is_exit:
            return True
        if inst.dst_reg is not None and inst.dst_reg in pending:
            return True
        for r in inst.src_regs:
            if r in pending:
                return True
        return False

    def set_state(self, state: WarpState) -> None:
        """Transition state, keeping the sub-core's ready pool in sync."""
        self.state = state
        pool = self.ready_pool
        if pool is not None:
            if state is WarpState.READY:
                pool[self] = None
            else:
                pool.pop(self, None)

    def refresh_state(self) -> None:
        """Recompute READY/BLOCKED from the scoreboard (after a writeback)."""
        state = self.state
        if state is not WarpState.READY and state is not WarpState.BLOCKED:
            return
        hazard = self.has_hazard(self.next_instruction)
        self.set_state(WarpState.BLOCKED if hazard else WarpState.READY)

    # -- lifecycle hooks called by the sub-core ------------------------------

    def note_issue(self, inst: Instruction) -> None:
        """Advance past ``inst`` and mark its destination pending."""
        self.issued_instructions += 1
        if inst.dst_reg is not None:
            self.pending_writes.add(inst.dst_reg)
        self.pc += 1
        if self.pc < len(self._insts):
            self.next_instruction = self._insts[self.pc]
            self.refresh_state()

    # -- bank-layout memo (attached by the owning sub-core) -----------------

    def set_bank_view(self, mapper: "BankMapper", num_banks: int) -> None:
        """Attach the register-file bank view used by src_banks_cached."""
        if mapper is not self._bank_mapper or num_banks != self._num_banks:
            self._bank_mapper = mapper
            self._num_banks = num_banks
            self._bank_pc = -1

    def src_banks_cached(self) -> Tuple[int, ...]:
        """Banks of next_instruction's source operands (duplicates kept).

        Equivalent to ``RegisterFile.src_banks(next_instruction, warp_id)``
        but computed once per trace-cursor position instead of every
        scheduler evaluation and collector-unit allocation of every cycle.
        """
        if self._bank_pc != self.pc:
            mapper = self._bank_mapper
            assert mapper is not None, "bank view not attached"
            nb = self._num_banks
            wid = self.warp_id
            self._bank_cache = tuple(
                mapper(r, wid, nb) for r in self.next_instruction.src_regs
            )
            self._bank_pc = self.pc
        return self._bank_cache

    def complete_write(self, reg: int) -> None:
        self.pending_writes.discard(reg)
        self.refresh_state()

    def finish(self, cycle: int) -> None:
        self.set_state(WarpState.FINISHED)
        self.finish_cycle = cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Warp(id={self.warp_id}, sc={self.subcore_id}, pc={self.pc}/"
            f"{len(self.trace)}, {self.state.value})"
        )
