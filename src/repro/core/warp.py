"""Dynamic warp state.

A :class:`Warp` wraps a :class:`~repro.trace.WarpTrace` with the execution
state the sub-core needs: the trace cursor, the scoreboard of pending
register writes, and the scheduling state (running / blocked on a hazard /
waiting at a barrier / finished).  ``age`` is the warp's dispatch order on
its scheduler — the GTO tie-break key.

The scoreboard is an integer bitmask (bit *r* set ⇔ register *r* has an
outstanding writeback), and hazard checks are a single AND against the
per-instruction hazard masks of the warp's compiled code
(:class:`~repro.trace.compiled.CompiledWarp`, attached at construction).
:attr:`Warp.pending_writes` remains the set-like façade of the scoreboard
for tests and debugging.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, Optional, Tuple, TYPE_CHECKING

from ..isa import Instruction
from ..trace.compiled import compile_warp_trace

if TYPE_CHECKING:  # pragma: no cover
    from ..regalloc import BankMapper
    from ..trace import WarpTrace
    from .thread_block import ThreadBlock


class WarpState(enum.Enum):
    READY = "ready"            # next instruction can be considered for issue
    BLOCKED = "blocked"        # scoreboard hazard on the next instruction
    AT_BARRIER = "at_barrier"  # issued BAR, waiting for the CTA
    MIGRATING = "migrating"    # register state in transit between sub-cores
    FINISHED = "finished"      # issued EXIT

#: States in which a warp still has instructions to run (it will become
#: issuable again without outside help beyond scheduled events).
RUNNABLE_STATES = frozenset({WarpState.READY, WarpState.BLOCKED, WarpState.MIGRATING})


class _ScoreboardView:
    """Set-like view over a warp's scoreboard bitmask.

    Mutations write through to the bitmask with plain-``set`` semantics
    (no state refresh — callers transition the warp explicitly, as the
    deadlock tests do), so code that seeds hazards via
    ``warp.pending_writes.add(r)`` keeps working against the integer
    scoreboard.
    """

    __slots__ = ("_warp",)

    def __init__(self, warp: "Warp"):
        self._warp = warp

    def __contains__(self, reg: object) -> bool:
        return isinstance(reg, int) and bool((self._warp._pending >> reg) & 1)

    def __bool__(self) -> bool:
        return self._warp._pending != 0

    def __len__(self) -> int:
        return bin(self._warp._pending).count("1")

    def __iter__(self) -> Iterator[int]:
        pending = self._warp._pending
        reg = 0
        while pending:
            if pending & 1:
                yield reg
            pending >>= 1
            reg += 1

    def add(self, reg: int) -> None:
        self._warp._pending |= 1 << reg

    def discard(self, reg: int) -> None:
        self._warp._pending &= ~(1 << reg)

    def clear(self) -> None:
        self._warp._pending = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{{{', '.join(str(r) for r in self)}}}"


class Warp:
    """One warp resident on a sub-core."""

    __slots__ = (
        "warp_id",
        "cta",
        "trace",
        "code",
        "subcore_id",
        "age",
        "pc",
        "state",
        "_pending",
        "issued_instructions",
        "finish_cycle",
        "ready_pool",
        "next_instruction",
        "_row",
    )

    def __init__(
        self,
        warp_id: int,
        cta: "ThreadBlock",
        trace: "WarpTrace",
        subcore_id: int,
        age: int,
    ):
        self.warp_id = warp_id
        self.cta = cta
        self.trace = trace
        #: The trace's compiled form (shared across warps on the same trace).
        self.code = compile_warp_trace(trace)
        self.subcore_id = subcore_id
        self.age = age
        self.pc = 0
        self.state = WarpState.READY
        #: Scoreboard bitmask: bit r set ⇔ register r has an outstanding
        #: writeback.
        self._pending = 0
        self.issued_instructions = 0
        self.finish_cycle: Optional[int] = None
        #: The owning sub-core's ready pool (kept in sync by set_state).
        #: An insertion-ordered dict-as-set — see SubCore.ready.
        self.ready_pool: Optional[Dict["Warp", None]] = None
        #: The instruction at the trace cursor, maintained by note_issue so
        #: the issue path never re-indexes the trace.  After EXIT issues the
        #: cursor runs off the trace and this keeps pointing at EXIT — a
        #: FINISHED warp's next_instruction is never consulted.
        self.next_instruction: Instruction = self.code.insts[0]
        #: Pre-resolved source-bank row: ``_row[pc]`` is the bank tuple of
        #: the instruction at ``pc`` (attached by SubCore.add_warp;
        #: identical across sub-cores of a config, so it survives
        #: migration).
        self._row: Optional[Tuple[Tuple[int, ...], ...]] = None

    # -- trace cursor ------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state is WarpState.FINISHED

    # -- hazards -----------------------------------------------------------

    @property
    def pending_writes(self) -> _ScoreboardView:
        """Set-like view of the scoreboard (mutations write through)."""
        return _ScoreboardView(self)

    def has_hazard(self, inst: Instruction) -> bool:
        """RAW or WAW hazard between ``inst`` and outstanding writes.

        EXIT additionally waits for the whole scoreboard to drain — a warp
        cannot retire (and release its CTA's resources) with writebacks,
        e.g. outstanding loads, still in flight.
        """
        pending = self._pending
        if not pending:
            return False
        if inst.info.is_exit:
            return True
        dst = inst.dst_reg
        if dst is not None and (pending >> dst) & 1:
            return True
        for r in inst.src_regs:
            if (pending >> r) & 1:
                return True
        return False

    def set_state(self, state: WarpState) -> None:
        """Transition state, keeping the sub-core's ready pool in sync."""
        self.state = state
        pool = self.ready_pool
        if pool is not None:
            if state is WarpState.READY:
                pool[self] = None
            else:
                pool.pop(self, None)

    def refresh_state(self) -> None:
        """Recompute READY/BLOCKED from the scoreboard (after a writeback)."""
        state = self.state
        if state is not WarpState.READY and state is not WarpState.BLOCKED:
            return
        pending = self._pending
        if not pending:
            # Empty scoreboard: no mask can match (EXIT's all-ones included).
            self.set_state(WarpState.READY)
            return
        code = self.code
        pc = self.pc
        # Past-the-end cursor (EXIT issued, finish() not applied yet): the
        # trailing EXIT's all-ones mask is the right conservative answer.
        mask = code.hazard_masks[pc] if pc < code.length else -1
        self.set_state(WarpState.BLOCKED if pending & mask else WarpState.READY)

    # -- lifecycle hooks called by the sub-core ------------------------------

    def note_issue(self, inst: Instruction) -> None:
        """Advance past ``inst`` and mark its destination pending."""
        self.issued_instructions += 1
        code = self.code
        pc = self.pc
        self._pending |= code.dst_bits[pc]
        self.pc = pc = pc + 1
        if pc < code.length:
            self.next_instruction = code.insts[pc]
            if self._pending & code.hazard_masks[pc]:
                self.set_state(WarpState.BLOCKED)
            elif self.state is WarpState.BLOCKED:
                self.set_state(WarpState.READY)

    # -- bank-layout view (attached by the owning sub-core) ------------------

    def set_bank_view(self, mapper: "BankMapper", num_banks: int) -> None:
        """Attach the pre-resolved source-bank row used by src_banks_cached."""
        self._row = self.code.bank_table(mapper, num_banks).row_for(self.warp_id)

    def src_banks_cached(self) -> Tuple[int, ...]:
        """Banks of next_instruction's source operands (duplicates kept).

        Equivalent to ``RegisterFile.src_banks(next_instruction, warp_id)``
        but pre-resolved at trace-compile time (``CompiledWarp.bank_table``)
        instead of recomputed per scheduler evaluation and collector-unit
        allocation.
        """
        row = self._row
        assert row is not None, "bank view not attached"
        return row[self.pc]

    def complete_write(self, reg: int) -> None:
        # refresh_state with the scoreboard update folded in: this runs once
        # per writeback (the busiest warp wake-up path), so the state
        # recompute and ready-pool sync are inlined rather than delegated.
        pending = self._pending & ~(1 << reg)
        self._pending = pending
        state = self.state
        if state is not WarpState.READY and state is not WarpState.BLOCKED:
            return
        if pending:
            code = self.code
            pc = self.pc
            mask = code.hazard_masks[pc] if pc < code.length else -1
            ready = not pending & mask
        else:
            ready = True
        pool = self.ready_pool
        if ready:
            self.state = WarpState.READY
            if pool is not None:
                pool[self] = None
        else:
            self.state = WarpState.BLOCKED
            if pool is not None:
                pool.pop(self, None)

    def finish(self, cycle: int) -> None:
        self.set_state(WarpState.FINISHED)
        self.finish_cycle = cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Warp(id={self.warp_id}, sc={self.subcore_id}, pc={self.pc}/"
            f"{len(self.trace)}, {self.state.value})"
        )
