"""Execution-unit pipelines of a scheduler domain.

Each functional-unit class (FP32 / INT / SFU / TENSOR / LDST) is a pipeline
with an issue port that stays busy for the instruction's *initiation
interval* — the larger of the opcode's own interval and the lane-width
factor ``ceil(32 / lanes)`` (16 FP32 lanes per Volta sub-core mean an FP32
warp instruction occupies the port for 2 cycles).

Dispatch returns the writeback cycle.  Global memory instructions get their
completion time from the memory subsystem instead of a fixed latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..config import GPUConfig
from ..isa import FuncUnit, Instruction


@dataclass
class PipelineStats:
    issued: int = 0
    busy_cycles: int = 0


class Pipeline:
    """One functional-unit class of a scheduler domain.

    A domain with ``lanes < 32`` has a single issue port whose initiation
    interval is stretched by ``ceil(32 / lanes)`` (16 FP32 lanes -> 2
    cycles per warp instruction).  A monolithic domain pooling several
    sub-cores' lanes (``lanes >= 64``) exposes ``lanes // 32`` independent
    ports, so a fully-connected SM can start multiple FP32 warps per cycle
    the way its four physical sub-units would.
    """

    __slots__ = ("unit", "lane_interval", "port_free", "single", "stats")

    def __init__(self, unit: FuncUnit, lanes: int):
        self.unit = unit
        # A unit with 0 lanes (e.g. no tensor cores) is modelled as very
        # slow rather than absent.
        self.lane_interval = (32 + lanes - 1) // lanes if lanes > 0 else 64
        ports = max(1, lanes // 32)
        self.port_free = [0] * ports
        #: Precomputed single-port flag: the issue/dispatch hot path asks
        #: "is the port free" once per candidate per cycle, and every
        #: partitioned design has exactly one port per pipeline.
        self.single = ports == 1
        self.stats = PipelineStats()

    def begin_run(self) -> None:
        """Reset issue-port availability at the start of a kernel run.

        A port booked past the end of the previous kernel (intervals run
        up to 64 cycles) must not delay the first instructions of the
        next one; cumulative ``stats`` are left untouched.
        """
        ports = self.port_free
        for i in range(len(ports)):
            ports[i] = 0

    def can_accept(self, now: int) -> bool:
        ports = self.port_free
        free = ports[0] if self.single else min(ports)
        return free <= now

    def issue(self, inst: Instruction, now: int) -> int:
        """Occupy the freest port; return the execution-complete cycle."""
        info = inst.info
        interval = max(info.initiation_interval, self.lane_interval)
        ports = self.port_free
        if self.single:
            ports[0] = now + interval
        else:
            idx = min(range(len(ports)), key=ports.__getitem__)
            ports[idx] = now + interval
        self.stats.issued += 1
        self.stats.busy_cycles += interval
        return now + interval + info.latency


class ExecutionUnits:
    """The pipeline set of one scheduler domain (sub-core or monolithic SM)."""

    def __init__(self, config: GPUConfig, scale: int = 1):
        lanes = {
            FuncUnit.FP32: config.fp32_lanes * scale,
            FuncUnit.INT: config.int_lanes * scale,
            FuncUnit.SFU: config.sfu_lanes * scale,
            FuncUnit.TENSOR: config.tensor_units * 8 * scale,  # 8 lanes per unit
            FuncUnit.LDST: config.ldst_units * scale,
            FuncUnit.BRANCH: 32,
            FuncUnit.SYNC: 32,
        }
        self.pipelines: Dict[FuncUnit, Pipeline] = {
            unit: Pipeline(unit, n) for unit, n in lanes.items()
        }

    def begin_run(self) -> None:
        for pipe in self.pipelines.values():
            pipe.begin_run()

    def pipeline_for(self, inst: Instruction) -> Pipeline:
        return self.pipelines[inst.info.unit]

    def can_accept(self, inst: Instruction, now: int) -> bool:
        return self.pipeline_for(inst).can_accept(now)

    def issue(self, inst: Instruction, now: int) -> int:
        return self.pipeline_for(inst).issue(inst, now)

    def next_free_cycle(self) -> int:
        """Earliest cycle any busy port frees (for fast-forward)."""
        return min(min(p.port_free) for p in self.pipelines.values())
