"""The Streaming Multiprocessor.

An SM hosts up to ``max_ctas_per_sm`` resident thread blocks whose warps
are statically assigned to sub-cores by the configured assignment policy.
The SM drives its sub-cores' per-cycle phases, owns the writeback event
heap (which doubles as the fast-forward horizon during memory stalls), and
enforces the CTA-granularity resource lifecycle: register-file space, warp
slots and shared memory are claimed when a CTA is admitted and released
only when its last warp exits.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..analysis.invariants import Sanitizer
from ..config import GPUConfig
from ..isa import Instruction
from ..memory import MemorySubsystem
from ..trace import CTATrace, KernelTrace
from .subcore import SubCore
from .subcore_assignment import SubcoreAssignment, make_assignment
from .thread_block import ThreadBlock
from .warp import RUNNABLE_STATES, Warp, WarpState

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Tracer


class StreamingMultiprocessor:
    """One SM: sub-cores + shared memory path + CTA residency."""

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        memory: MemorySubsystem,
        assignment: Optional[SubcoreAssignment] = None,
        collect_timeline: bool = False,
        tracer: Optional["Tracer"] = None,
    ):
        self.sm_id = sm_id
        self.config = config
        self.memory = memory
        self.assignment = assignment if assignment is not None else make_assignment(config)
        if self.assignment.num_subcores != config.subcores_per_sm:
            raise ValueError("assignment policy sized for a different sub-core count")
        self.subcores = [SubCore(i, config, self) for i in range(config.subcores_per_sm)]

        self.resident_ctas: List[ThreadBlock] = []  # simcheck: persistent -- drains via _release_cta at retirement; a run only ends empty
        self.shared_mem_used = 0  # simcheck: persistent -- tracks CTA residency; returns to 0 as CTAs retire
        self.shared_conflict_degree = 1

        # Entries are (cycle, seq, warp, reg); ``reg is None`` marks a
        # migration-arrival event rather than a register writeback.
        self._wb_heap: List[Tuple[int, int, Warp, Optional[int]]] = []  # simcheck: persistent -- empty whenever no kernel is in flight (see begin_run)
        self._seq = itertools.count()
        self._warp_id_counter = 0

        #: Per-cycle invariant checks (GPUConfig.sanitize); read-only, so
        #: sanitized runs stay byte-identical to unsanitized ones.
        self.sanitizer: Optional[Sanitizer] = (
            Sanitizer(config) if config.sanitize else None
        )

        # -- observability (repro.obs) ----------------------------------------
        self.tracer = tracer
        if tracer is not None:
            self.memory.attach_tracer(tracer, sm_id)
            for sc in self.subcores:
                sc.tracer = tracer
                sc.arbitration.attach_tracer(tracer, sm_id, sc.subcore_id)
        #: Stall attribution accounts every scheduler issue slot of every
        #: *accounted* cycle.  ``_attr_cycles`` counts cycles this SM has
        #: attributed (stepped cycles + fast-forward gaps); the per-run
        #: remainder up to ``SimStats.cycles`` is SM-idle time, added as
        #: ``idle`` at stats collection.
        self.stall_attribution = config.stall_attribution
        #: Cached config flag: read once per stepped cycle.
        self._work_stealing = config.work_stealing
        self._attr_cycles = 0  # simcheck: persistent -- cumulative attributed-cycle count; snapshot/delta reported
        self._last_stepped: Optional[int] = None

        # statistics
        self.total_instructions = 0  # simcheck: persistent -- cumulative statistic; snapshot/delta reported
        self.ctas_completed = 0  # simcheck: persistent -- cumulative statistic; snapshot/delta reported
        self.migrations = 0  # simcheck: persistent -- cumulative statistic; snapshot/delta reported
        self.resources_freed = False  # simcheck: persistent -- edge-triggered flag consumed by the GPU cycle loop
        self.rf_read_timeline: Optional[List[Tuple[int, int]]] = (  # simcheck: persistent -- cumulative timeline; snapshot/delta reported
            [] if collect_timeline else None
        )
        self.warp_finish_cycles: List[int] = []  # simcheck: persistent -- cumulative record; snapshot/delta reported
        self.cta_latencies: List[int] = []  # simcheck: persistent -- cumulative record; snapshot/delta reported

    def begin_run(self) -> None:
        """Reset per-launch transient state so back-to-back ``GPU.run``
        calls behave exactly like fresh GPUs (statistics stay cumulative).

        Covers warp-id numbering (bank swizzles key on warp ids), the
        assignment policy's rotation counter, sub-core transients, and the
        SM's L1-side memory state.  The writeback heap is empty whenever no
        kernel is in flight (EXIT waits for scoreboard drain; migrations
        resolve before retirement), so it needs no clearing.
        """
        self._warp_id_counter = 0
        self.assignment.reset()
        self.memory.begin_run()
        for sc in self.subcores:
            sc.begin_run()

    # -- CTA admission --------------------------------------------------------

    def can_ever_fit(self, kernel: KernelTrace, cta: CTATrace) -> bool:
        """Whether an empty SM could host this CTA at all (sanity check)."""
        if cta.num_warps > self.config.max_warps_per_sm:
            return False
        if kernel.shared_mem_per_cta > self.config.shared_mem_per_sm:
            return False
        return kernel.regs_per_cta() <= self.config.registers_per_sm

    def try_allocate_cta(
        self, kernel: KernelTrace, cta: CTATrace, cta_id: int, now: int
    ) -> bool:
        """Admit one CTA if every resource check passes; assigns its warps."""
        cfg = self.config
        if len(self.resident_ctas) >= cfg.max_ctas_per_sm:
            return False
        if self.shared_mem_used + kernel.shared_mem_per_cta > cfg.shared_mem_per_sm:
            return False
        plan = self.assignment.plan(cta.num_warps)
        regs_per_warp = kernel.regs_per_warp()
        demand = Counter(plan)
        for sc_id, count in demand.items():
            sc = self.subcores[sc_id]
            if sc.free_slots < count:
                return False
            if sc.free_registers() < count * regs_per_warp:
                return False

        self.assignment.commit(cta.num_warps)
        tb = ThreadBlock(
            cta_id,
            cta,
            regs=regs_per_warp * cta.num_warps,
            shared_mem=kernel.shared_mem_per_cta,
            shared_conflict_degree=kernel.shared_conflict_degree,
            regs_per_warp=regs_per_warp,
        )
        tb.start_cycle = now
        self.shared_mem_used += kernel.shared_mem_per_cta
        base_warp_id = self._warp_id_counter
        self._warp_id_counter += cta.num_warps
        for i, sc_id in enumerate(plan):
            warp = Warp(
                warp_id=base_warp_id + i,
                cta=tb,
                trace=cta.warps[i],
                subcore_id=sc_id,
                age=0,  # assigned by the sub-core
            )
            self.subcores[sc_id].add_warp(warp, regs_per_warp)
            tb.add_warp(warp)
        self.resident_ctas.append(tb)
        if self.tracer is not None:
            self.tracer.cta_launch(now, self.sm_id, cta_id, cta.num_warps)
        return True

    def _release_cta(self, tb: ThreadBlock, now: int) -> None:
        regs_per_warp = tb.regs_per_warp
        for warp in tb.warps:
            self.subcores[warp.subcore_id].remove_warp(warp, regs_per_warp)
        self.shared_mem_used -= tb.shared_mem
        self.resident_ctas.remove(tb)
        tb.finish_cycle = now
        if tb.start_cycle is not None:
            self.cta_latencies.append(now - tb.start_cycle)
        self.ctas_completed += 1
        self.resources_freed = True
        if self.tracer is not None:
            latency = now - tb.start_cycle if tb.start_cycle is not None else 0
            self.tracer.cta_retire(now, self.sm_id, tb.cta_id, latency)

    # -- callbacks from sub-cores ------------------------------------------------

    def note_issue(self, subcore_id: int) -> None:
        self.total_instructions += 1

    def warp_at_barrier(self, warp: Warp) -> None:
        warp.cta.arrive_at_barrier(warp)

    def warp_exited(self, warp: Warp, now: int) -> None:
        warp.finish(now)
        self.warp_finish_cycles.append(now)
        warp.cta.note_warp_exit(warp)
        if warp.cta.finished:
            self._release_cta(warp.cta, now)

    def memory_access(self, inst: Instruction, now: int, warp: Optional[Warp] = None) -> int:
        degree = (
            warp.cta.shared_conflict_degree if warp is not None
            else self.shared_conflict_degree
        )
        return self.memory.access(inst, now, degree)

    def schedule_writeback(self, cycle: int, warp: Warp, reg: int) -> None:
        heapq.heappush(self._wb_heap, (cycle, next(self._seq), warp, reg))

    # -- simulation --------------------------------------------------------------

    def begin_attribution_window(self, start: int) -> None:  # simcheck: reset-hook
        """Reset the fast-forward gap reference at the start of a run.

        Without the reset, the idle span between two ``GPU.run()`` calls
        would be attributed to the second run as a fast-forward gap.
        """
        self._last_stepped = start - 1

    def step(self, now: int) -> None:
        """Advance the SM one cycle."""
        if self.stall_attribution:
            # Attribute fast-forwarded cycles BEFORE draining writebacks:
            # during the gap the warps were in exactly the state they are
            # in now (blocked / at barrier / migrating), which is what the
            # taxonomy should record for those cycles.
            last = self._last_stepped
            if last is not None and now - last > 1:
                gap = now - last - 1
                for sc in self.subcores:
                    sc.attribute_gap(last + 1, gap)
                self._attr_cycles += gap
            self._attr_cycles += 1
            self._last_stepped = now
        heap = self._wb_heap
        while heap and heap[0][0] <= now:
            _, _, warp, reg = heapq.heappop(heap)
            if reg is None:
                # Migration arrival: the warp's register state has landed
                # on its new sub-core.
                warp.set_state(WarpState.READY)
                warp.refresh_state()
            else:
                warp.complete_write(reg)

        # Dispatch first (CUs completed in earlier cycles), then issue (new
        # CU allocations enqueue their reads), then collect — so an operand
        # can be granted in its allocation cycle but dispatch is always at
        # least one cycle after allocation.  Each phase call is guarded by
        # the condition its own early-return would test: on stall-heavy
        # workloads most sub-core phases are no-ops, and the guards keep
        # those off the call stack while recording the exact counters the
        # skipped call would have.
        grants = 0
        subcores = self.subcores
        for sc in subcores:
            if sc._busy_cus:
                sc.dispatch_ready_cus(now)
        for sc in subcores:
            if sc.ready:
                sc.issue(now)
            else:
                # Inlined empty-ready issue(): one stalled scheduler cycle.
                sc.issue_stall_no_ready += 1
                if sc.stall_cycles is not None:
                    sc._attribute_stall(sc._stall_reason(), sc._issue_width, now)
        for sc in subcores:
            # With no queued reads grant_cycle is a no-op (the delayed-RBA
            # history dedupes unchanged all-zero snapshots), so the call is
            # skipped outright.  collect_operands is inlined: one grant
            # round, reads accounted to the RF slice.
            if sc.arbitration.pending:
                got = sc.arbitration.grant_cycle(now)
                if got:
                    sc.register_file.reads += got
                    grants += got

        if self._work_stealing:
            self._try_steal(now)

        if self.rf_read_timeline is not None and grants:
            self.rf_read_timeline.append((now, grants))

        if self.sanitizer is not None:
            self.sanitizer.check_sm(self, now)

    def _try_steal(self, now: int) -> None:  # simcheck: hot-ok -- work-stealing upper-bound study only; off on measured designs
        """Dynamic warp migration (Sec. VII's work-stealing design).

        A sub-core whose resident warps are all finished or parked at the
        CTA barrier steals the youngest runnable warp from the most loaded
        sub-core, paying ``migration_latency`` cycles of register-state
        transfer during which the warp cannot issue.
        """
        thieves = []
        donors = []
        for sc in self.subcores:
            runnable = sum(1 for w in sc.warps if w.state in RUNNABLE_STATES)
            if runnable == 0 and sc.free_slots > 0:
                thieves.append(sc)
            elif runnable >= 2:
                donors.append((runnable, sc))
        if not thieves or not donors:
            return
        donors.sort(key=lambda t: -t[0])
        for thief in thieves:
            if not donors or donors[0][0] < 2:
                break
            runnable, donor = donors[0]
            victims = [w for w in donor.warps if w.state in RUNNABLE_STATES]
            warp = max(victims, key=lambda w: w.age)  # youngest: least sunk work
            regs_per_warp = warp.cta.regs_per_warp
            if thief.free_registers() < regs_per_warp:
                continue
            donor.remove_warp(warp, regs_per_warp)
            warp.subcore_id = thief.subcore_id
            thief.add_warp(warp, regs_per_warp)
            warp.set_state(WarpState.MIGRATING)
            heapq.heappush(
                self._wb_heap,
                (now + self.config.migration_latency, next(self._seq), warp, None),
            )
            self.migrations += 1
            if self.tracer is not None:
                self.tracer.warp_migrate(
                    now,
                    self.sm_id,
                    thief.subcore_id,
                    warp.warp_id,
                    donor.subcore_id,
                )
            donors[0] = (runnable - 1, donor)
            donors.sort(key=lambda t: -t[0])

    def next_event(self, now: int) -> Optional[int]:
        """Earliest cycle this SM needs to step again, or None if idle.

        The per-SM event horizon: the minimum over each sub-core's local
        horizon (``now + 1`` while it can make progress on its own, the
        earliest execution-port release while collected instructions wait
        behind busy ports) and the next writeback event (the memory-stall
        fast-forward).  None with resident CTAs means deadlock — nothing
        will ever wake this SM again.
        """
        if not self.resident_ctas:
            return None
        horizon: Optional[int] = None
        if self._work_stealing:
            # _try_steal runs every stepped cycle and can migrate warps
            # while none is READY (donors may be BLOCKED), so only the
            # all-quiescent writeback fast-forward is safe to keep.
            for sc in self.subcores:
                if not sc.quiescent():
                    return now + 1
        else:
            for sc in self.subcores:
                event = sc.next_local_event(now)
                if event is not None:
                    if event <= now + 1:
                        return now + 1
                    if horizon is None or event < horizon:
                        horizon = event
        if self._wb_heap:
            wb = self._wb_heap[0][0]
            if wb <= now + 1:
                return now + 1
            if horizon is None or wb < horizon:
                horizon = wb
        return horizon

    def dormant(self) -> bool:
        """All sub-cores quiescent: only scheduled events can wake this SM.

        The classifier for fast-forward accounting: a jump over a window in
        which every active SM is dormant skips cycles the simulator never
        accounted per-cycle (the original writeback fast-forward); a jump
        while any active SM merely waits on execution ports skips cycles
        that used to be stepped, so their counters are reproduced in closed
        form via account_skipped_steps.
        """
        for sc in self.subcores:
            if not sc.quiescent():
                return False
        return True

    def account_skipped_steps(self, start: int, cycles: int) -> None:
        """Reproduce the counters of ``cycles`` stepped no-progress cycles.

        Called by the GPU cycle loop at fast-forward time for every active
        SM when the skipped window would previously have been stepped (some
        active SM non-dormant).  Warp states are static across the window,
        so per-sub-core accounting is exact; advancing ``_last_stepped``
        marks the window as stepped for the gap-attribution path.
        """
        for sc in self.subcores:
            sc.account_skipped_steps(start, cycles)
        if self.stall_attribution:
            self._attr_cycles += cycles
            if self._last_stepped is not None:
                self._last_stepped = start + cycles - 1

    # -- introspection -------------------------------------------------------------

    @property
    def idle(self) -> bool:
        return not self.resident_ctas

    def issue_counts(self) -> List[int]:
        """Instructions issued by each sub-core scheduler (Fig. 17 input)."""
        return [sc.instructions_issued for sc in self.subcores]

    def total_rf_reads(self) -> int:
        return sum(sc.register_file.reads for sc in self.subcores)

    def total_bank_conflict_cycles(self) -> int:
        return sum(sc.arbitration.conflict_cycles for sc in self.subcores)

    def occupancy(self) -> Dict[int, int]:
        return {sc.subcore_id: len(sc.warps) for sc in self.subcores}
