"""Warp→sub-core assignment policies (Sec. IV-B).

Assignment happens once per warp, when the thread-block scheduler places a
CTA on an SM, and is static for the warp's lifetime.  All policies are
expressed as a function of ``W``, the count of warps previously allocated
to this SM — matching the paper's hardware, where a counter (round robin)
or a small hash-function table (Fig. 7) drives the sub-core multiplexer.

``plan(num_warps)`` returns the sub-core ids of the next ``num_warps``
warps *without* committing, so the SM can first check per-sub-core slot
capacity; ``commit(num_warps)`` advances ``W``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..config import AssignmentPolicy, GPUConfig


class SubcoreAssignment:
    """Base class: stateful per-SM assignment of warps to sub-cores."""

    name = "base"

    def __init__(self, num_subcores: int):
        if num_subcores < 1:
            raise ValueError("num_subcores must be >= 1")
        self.num_subcores = num_subcores
        self.warps_allocated = 0  # the paper's W

    def subcore_for(self, w: int) -> int:
        """Sub-core of the ``w``-th warp ever allocated to this SM."""
        raise NotImplementedError

    def plan(self, num_warps: int) -> List[int]:
        base = self.warps_allocated
        return [self.subcore_for(base + i) for i in range(num_warps)]

    def commit(self, num_warps: int) -> None:
        self.warps_allocated += num_warps

    def reset(self) -> None:
        self.warps_allocated = 0


class RoundRobinAssignment(SubcoreAssignment):
    """The baseline: a 2-bit up-counter driving the sub-core multiplexer."""

    name = "rr"

    def subcore_for(self, w: int) -> int:
        return w % self.num_subcores


class SRRAssignment(SubcoreAssignment):
    """Skewed Round Robin: ``subcore = (W + floor(W / N)) mod N`` (Eq. 1).

    Keeps per-sub-core counts even while rotating the phase by one every
    ``N`` warps — crafted to spread TPC-H's one-long-warp-in-four pattern.
    """

    name = "srr"

    def subcore_for(self, w: int) -> int:
        n = self.num_subcores
        return (w + w // n) % n


class ShuffleAssignment(SubcoreAssignment):
    """Random Shuffle: per-group random permutations from a hash table.

    The hash-function table holds ``table_entries`` entries, each encoding
    the assignment of ``N`` consecutive warps as a random permutation of
    the sub-cores — balance within every group is exact, so per-sub-core
    counts never differ by more than one.  A 4-entry table repeats its
    pattern every ``4 * N`` warps; a 16-entry table covers all 64 resident
    warps without repetition (Sec. IV-B3).
    """

    name = "shuffle"

    def __init__(self, num_subcores: int, table_entries: int = 4, seed: int = 0xC0FFEE):
        super().__init__(num_subcores)
        if table_entries < 1:
            raise ValueError("table_entries must be >= 1")
        self.table_entries = table_entries
        rng = np.random.default_rng(seed)
        self.table: List[List[int]] = [
            list(rng.permutation(num_subcores)) for _ in range(table_entries)
        ]

    def subcore_for(self, w: int) -> int:
        n = self.num_subcores
        group = (w // n) % self.table_entries
        return int(self.table[group][w % n])


class HashTableAssignment(SubcoreAssignment):
    """Arbitrary user-programmed hash-function table (Fig. 7 hardware).

    Each entry lists the sub-core of ``N`` consecutive warps; entries need
    not be permutations, so pathological (unbalanced) tables are allowed —
    the SM's capacity check is what keeps them admissible.
    """

    name = "hash_table"

    def __init__(self, num_subcores: int, table: Sequence[Sequence[int]]):
        super().__init__(num_subcores)
        if not table:
            raise ValueError("hash table must have at least one entry")
        for entry in table:
            if len(entry) != num_subcores:
                raise ValueError(
                    f"each table entry must assign {num_subcores} warps"
                )
            if any(s < 0 or s >= num_subcores for s in entry):
                raise ValueError("table entries must name valid sub-cores")
        self.table = [list(e) for e in table]

    def subcore_for(self, w: int) -> int:
        n = self.num_subcores
        group = (w // n) % len(self.table)
        return self.table[group][w % n]


def make_assignment(config: GPUConfig) -> SubcoreAssignment:
    """Instantiate the policy named by ``config.assignment``."""
    n = config.subcores_per_sm
    if config.assignment == AssignmentPolicy.ROUND_ROBIN:
        return RoundRobinAssignment(n)
    if config.assignment == AssignmentPolicy.SRR:
        return SRRAssignment(n)
    if config.assignment == AssignmentPolicy.SHUFFLE:
        return ShuffleAssignment(
            n, table_entries=config.hash_table_entries, seed=config.assignment_seed
        )
    raise ValueError(
        f"assignment policy {config.assignment!r} needs an explicit table; "
        "construct HashTableAssignment directly"
    )
