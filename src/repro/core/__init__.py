"""Cycle-level SM model: sub-cores, operand collection, warp scheduling."""

from .arbitration import ArbitrationUnit
from .collector_unit import CollectorUnit
from .execution import ExecutionUnits, Pipeline
from .register_file import RegisterFile
from .sm import StreamingMultiprocessor
from .subcore import SubCore
from .subcore_assignment import (
    HashTableAssignment,
    RoundRobinAssignment,
    ShuffleAssignment,
    SRRAssignment,
    SubcoreAssignment,
    make_assignment,
)
from .thread_block import ThreadBlock
from .warp import Warp, WarpState
from .warp_scheduler import (
    BankStealingScheduler,
    TwoLevelScheduler,
    GTOScheduler,
    LRRScheduler,
    RBAScheduler,
    WarpScheduler,
    make_scheduler,
)

__all__ = [
    "ArbitrationUnit",
    "CollectorUnit",
    "ExecutionUnits",
    "Pipeline",
    "RegisterFile",
    "StreamingMultiprocessor",
    "SubCore",
    "HashTableAssignment",
    "RoundRobinAssignment",
    "ShuffleAssignment",
    "SRRAssignment",
    "SubcoreAssignment",
    "make_assignment",
    "ThreadBlock",
    "Warp",
    "WarpState",
    "BankStealingScheduler",
    "TwoLevelScheduler",
    "GTOScheduler",
    "LRRScheduler",
    "RBAScheduler",
    "WarpScheduler",
    "make_scheduler",
]
