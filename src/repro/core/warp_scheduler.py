"""Warp-scheduler policies.

A scheduler selects, each cycle, which ready warp's next instruction to
issue into a free collector unit.  Policies:

``LRRScheduler``
    Loose round-robin: rotate through warp slots from the last issued.
``GTOScheduler``
    Greedy-then-oldest (the paper's baseline): keep issuing the same warp
    until it stalls, then fall back to the oldest ready warp.
``RBAScheduler``
    Register-bank-aware (Sec. IV-A): order ready warps by the key
    ``(RBA score, age)`` — the score is the summed arbitration-queue length
    over the banks of the instruction's source operands, so the scheduler
    steers issue toward under-used banks.  Ties go to the older warp,
    preserving GTO order among equal scores.
``BankStealingScheduler``
    The comparison point from Jing et al. [36]: GTO issue order, plus an
    opportunistic *steal* pass that pre-issues a warp whose operands sit in
    currently-idle banks when a collector unit would otherwise sit free.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Collection, List, Optional, Sequence

from ..config import GPUConfig, SchedulerPolicy
from .arbitration import ArbitrationUnit
from .register_file import RegisterFile
from .warp import Warp


#: C-level age key for min()/sorted(); ties keep iteration order,
#: exactly like the equivalent lambda.
_AGE = attrgetter("age")


class WarpScheduler:
    """Base policy; subclasses override :meth:`select`."""

    name = "base"
    #: Whether the sub-core should run the post-issue bank-stealing pass.
    steals_banks = False

    def __init__(self, arbitration: ArbitrationUnit, register_file: RegisterFile):
        self.arbitration = arbitration
        self.register_file = register_file
        self.last_issued: Optional[Warp] = None

    def select(self, candidates: Collection[Warp], now: int) -> Optional[Warp]:
        raise NotImplementedError

    def note_issue(self, warp: Warp) -> None:
        self.last_issued = warp

    def selection_info(self, warp: Warp) -> dict:
        """Why ``warp`` was picked, for the event tracer.

        Read *before* :meth:`note_issue` — ``greedy`` compares against the
        previous issue, which ``note_issue`` overwrites.
        """
        return {"policy": self.name, "greedy": self.last_issued is warp}

    def note_warp_removed(self, warp: Warp) -> None:
        if self.last_issued is warp:
            self.last_issued = None

    def begin_run(self) -> None:
        """Reset per-kernel scheduling state at the start of a run."""
        self.last_issued = None

    # Bank stealing hook; only the BankStealingScheduler implements it.
    def steal_candidate(
        self, candidates: Collection[Warp], now: int
    ) -> Optional[Warp]:
        return None

    # -- sanitizer hook ------------------------------------------------------

    def validate(self, resident: Sequence[Warp]) -> List[dict]:
        """Scheduler-state invariants (consumed by the sanitizer).

        ``last_issued`` must never point at a warp that left this
        sub-core — a stale pointer would let GTO greedily re-issue a
        migrated/retired warp's successor state.
        """
        if self.last_issued is not None and self.last_issued not in resident:
            return [
                {
                    "invariant": "scheduler-state",
                    "message": (
                        f"last_issued warp {self.last_issued.warp_id} is "
                        "no longer resident on this sub-core"
                    ),
                    "counter": "scheduler.last_issued",
                    "expected": "a resident warp or None",
                    "actual": self.last_issued.warp_id,
                }
            ]
        return []


class LRRScheduler(WarpScheduler):
    name = "lrr"

    def select(self, candidates: Collection[Warp], now: int) -> Optional[Warp]:
        if not candidates:
            return None
        if self.last_issued is None:
            return min(candidates, key=_AGE)
        pivot = self.last_issued.age
        # First warp strictly after the pivot in age order, wrapping around.
        ordered = sorted(candidates, key=_AGE)  # simcheck: hot-ok -- LRR inherently materializes the age-ordered pool per selection
        for w in ordered:
            if w.age > pivot:
                return w
        return ordered[0]


class GTOScheduler(WarpScheduler):
    name = "gto"

    def select(self, candidates: Collection[Warp], now: int) -> Optional[Warp]:
        if not candidates:
            return None
        last = self.last_issued
        if last is not None and last in candidates:
            return last
        return min(candidates, key=_AGE)


class RBAScheduler(WarpScheduler):
    name = "rba"

    def select(self, candidates: Collection[Warp], now: int) -> Optional[Warp]:
        if not candidates:
            return None
        lengths = self.arbitration.queue_lengths(now)
        rf = self.register_file
        best = None
        best_key = None
        for w in candidates:
            if w._row is None:
                # Warps placed via SubCore.add_warp arrive with the view
                # attached; bare warps (unit tests, scripts) get it here.
                w.set_bank_view(rf.mapper, rf.num_banks)
            score = 0
            # The warp's compiled code pre-resolves the operand->bank
            # layout per trace position, so scoring is a couple of tuple
            # reads instead of re-running the bank mapper per operand per
            # candidate per cycle.
            for bank in w.src_banks_cached():
                score += lengths[bank]
            key = (score, w.age)
            if best_key is None or key < best_key:
                best, best_key = w, key
        return best


class BankStealingScheduler(GTOScheduler):
    name = "bank_stealing"
    steals_banks = True

    def steal_candidate(  # simcheck: hot-ok -- bank-stealing policy inherently scans the age-ordered pool per free CU
        self, candidates: Collection[Warp], now: int
    ) -> Optional[Warp]:
        """A ready warp whose next instruction only needs idle banks.

        Called after normal issue when a CU is still free.  With Volta's two
        CUs per sub-core such a free CU is rare, which is exactly why the
        paper measures < 1 % benefit from this design.
        """
        arb = self.arbitration
        rf = self.register_file
        for w in sorted(candidates, key=_AGE):
            if w._row is None:
                w.set_bank_view(rf.mapper, rf.num_banks)
            banks = w.src_banks_cached()
            # Iterate the tuple directly: duplicate banks re-check the same
            # idle queue harmlessly, and no set order ever feeds the result
            # (simlint RPR001).
            if banks and all(arb.bank_idle(b) for b in banks):
                return w
        return None


class TwoLevelScheduler(WarpScheduler):
    """Two-level warp scheduling (Narasiman et al. [49]).

    Warps are partitioned into fetch groups of ``group_size``; the
    scheduler round-robins *within* the active group and only moves to the
    next group when no warp of the active group is ready.  Staggering the
    groups de-correlates long-latency stalls — a classic latency-hiding
    baseline, included here as an additional comparison point for RBA.
    """

    name = "two_level"

    def __init__(
        self,
        arbitration: ArbitrationUnit,
        register_file: RegisterFile,
        group_size: int = 8,
    ):
        super().__init__(arbitration, register_file)
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        self.group_size = group_size
        self.active_group = 0

    def begin_run(self) -> None:
        super().begin_run()
        self.active_group = 0

    def _group(self, warp: Warp) -> int:
        return warp.age // self.group_size

    def select(self, candidates: Collection[Warp], now: int) -> Optional[Warp]:  # simcheck: hot-ok -- two-level policy inherently partitions the pool by fetch group per selection
        if not candidates:
            return None
        in_group = [w for w in candidates if self._group(w) == self.active_group]
        if not in_group:
            # Active group fully stalled: switch to the lowest group that
            # has a ready warp.
            self.active_group = min(self._group(w) for w in candidates)
            in_group = [w for w in candidates if self._group(w) == self.active_group]
        # LRR within the group.
        if self.last_issued is not None and self._group(self.last_issued) == self.active_group:
            pivot = self.last_issued.age
            after = [w for w in in_group if w.age > pivot]
            if after:
                return min(after, key=_AGE)
        return min(in_group, key=_AGE)


def make_scheduler(
    config: GPUConfig, arbitration: ArbitrationUnit, register_file: RegisterFile
) -> WarpScheduler:
    """Instantiate the scheduler named by ``config.scheduler``."""
    classes = {
        SchedulerPolicy.LRR: LRRScheduler,
        SchedulerPolicy.GTO: GTOScheduler,
        SchedulerPolicy.RBA: RBAScheduler,
        SchedulerPolicy.BANK_STEALING: BankStealingScheduler,
        SchedulerPolicy.TWO_LEVEL: TwoLevelScheduler,
    }
    return classes[config.scheduler](arbitration, register_file)
