"""The banked register-file slice owned by one scheduler domain.

On a partitioned SM each sub-core owns ``rf_banks_per_subcore`` banks
(two, on Volta); a fully-connected SM pools all banks into one slice.  The
slice's job in the timing model is bank *mapping* — translating an
instruction's architectural operands into the banks whose arbitration
queues the reads join — and write-port accounting.

Writebacks use a dedicated write port per bank and therefore never steal
read bandwidth; the paper's bottleneck is the read-operand stage.
"""

from __future__ import annotations

from typing import Tuple

from ..isa import Instruction
from ..regalloc import BankMapper, get_mapping


class RegisterFile:
    """Bank-mapping view of one register-file slice."""

    def __init__(self, num_banks: int, mapping: str | BankMapper = "warp_swizzle"):
        if num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        self.num_banks = num_banks
        self.mapper: BankMapper = (
            get_mapping(mapping) if isinstance(mapping, str) else mapping
        )
        self.reads = 0
        self.writes = 0

    def bank_of(self, reg: int, warp_id: int) -> int:
        return self.mapper(reg, warp_id, self.num_banks)

    def src_banks(self, inst: Instruction, warp_id: int) -> Tuple[int, ...]:
        """Banks of each source operand (duplicates preserved)."""
        return tuple(self.mapper(r, warp_id, self.num_banks) for r in inst.src_regs)

    def note_reads(self, count: int) -> None:
        self.reads += count

    def note_write(self) -> None:
        self.writes += 1

    # -- sanitizer hook ------------------------------------------------------

    def validate(self) -> list:
        """Counter invariants of this RF slice (consumed by the sanitizer)."""
        if self.reads < 0 or self.writes < 0:
            return [
                {
                    "invariant": "rf-accounting",
                    "message": "negative register-file access counter",
                    "counter": "register_file.reads/writes",
                    "expected": ">= 0",
                    "actual": (self.reads, self.writes),
                }
            ]
        return []
