"""The sub-core: one scheduler domain of a partitioned SM.

Each sub-core owns a warp scheduler, a register-file slice with its
arbitration unit, a handful of collector units, and a set of execution
pipelines.  A fully-connected SM is modelled as a single sub-core whose
config pools every bank, CU, lane and issue slot.

Per-cycle sequence (driven by :class:`~repro.core.sm.StreamingMultiprocessor`):

1. **dispatch** — collector units whose operands were all collected in
   earlier cycles send their instruction to the matching execution pipeline
   (if its issue port is free) and are released;
2. **issue** — the warp scheduler picks ready warps and issues their next
   instruction into a free collector unit (or directly, for instructions
   with no register-file sources), enqueueing its bank read requests;
3. **collect** — the arbitration unit grants one read per bank, including
   requests enqueued this cycle.

An operand can thus be granted in its allocation cycle, but dispatch is
always at least one cycle after allocation (the collect→dispatch pipeline
boundary), so a conflict-free instruction occupies its CU for one cycle.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Collection, Dict, List, Optional, Set, TYPE_CHECKING

from ..config import GPUConfig
from ..isa import FuncUnit, Instruction
from ..obs.stall import (
    BANK_CONFLICT,
    BARRIER,
    DRAIN,
    IDLE,
    ISSUED,
    NO_FREE_CU,
    NO_READY_WARP,
    SCOREBOARD,
    empty_buckets,
)
from ..trace.compiled import F_BARRIER, F_EXIT
from .arbitration import ArbitrationUnit
from .collector_unit import CollectorUnit
from .execution import ExecutionUnits, Pipeline
from .register_file import RegisterFile
from .warp import Warp, WarpState
from .warp_scheduler import WarpScheduler, make_scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Tracer
    from .sm import StreamingMultiprocessor


class SubCore:
    """One sub-core of an SM."""

    def __init__(self, subcore_id: int, config: GPUConfig, sm: "StreamingMultiprocessor"):
        self.subcore_id = subcore_id
        self.config = config
        self.sm = sm
        self.register_file = RegisterFile(
            config.rf_banks_per_subcore, config.bank_mapping
        )
        self.arbitration = ArbitrationUnit(
            config.rf_banks_per_subcore,
            read_ports=config.bank_read_ports,
            score_latency=config.rba_score_latency,
        )
        self.scheduler: WarpScheduler = make_scheduler(
            config, self.arbitration, self.register_file
        )
        self.collector_units = [
            CollectorUnit(i) for i in range(config.collector_units_per_subcore)
        ]
        self.execution = ExecutionUnits(config)
        #: Pipelines as a flat list indexed by the compiled code's unit
        #: ids (FuncUnit definition order — see repro.trace.compiled
        #: UNIT_INDEX), so the issue path resolves an instruction's
        #: pipeline with one list index instead of an enum-keyed dict get.
        self._pipes: List[Pipeline] = [
            self.execution.pipelines[unit] for unit in FuncUnit
        ]

        self.max_warps = config.max_warps_per_subcore
        self._issue_width = config.issue_width
        #: Cached scheduler-class flag (read once per issue cycle).
        self._steals_banks = self.scheduler.steals_banks
        self.max_registers = config.registers_per_sm // config.subcores_per_sm
        self.warps: List[Warp] = []  # simcheck: persistent -- drains via remove_warp at CTA retirement; a run only ends empty
        #: Warps currently in the READY state (maintained by Warp.set_state).
        #: A dict-as-set: iteration order is insertion order, never hash
        #: order, so scheduler tie-breaks are bit-deterministic across
        #: processes (a plain set would order candidates by object hash).
        self.ready: Dict[Warp, None] = {}  # simcheck: persistent -- mirrors warp residency; drains with self.warps
        self.registers_used = 0  # simcheck: persistent -- tracks warp residency; returns to 0 as CTAs retire
        self._age_counter = 0
        self._busy_cus = 0  # simcheck: persistent -- tracks in-flight CU occupancy; drains before a run ends

        # statistics
        self.instructions_issued = 0  # simcheck: persistent -- cumulative statistic; snapshot/delta reported
        self.issue_stall_no_cu = 0  # simcheck: persistent -- cumulative statistic; snapshot/delta reported
        self.issue_stall_no_ready = 0  # simcheck: persistent -- cumulative statistic; snapshot/delta reported
        self.steals = 0  # simcheck: persistent -- cumulative statistic; snapshot/delta reported

        # observability (repro.obs).  Both default to "off": the tracer is
        # attached by the SM when one is passed to the GPU, and the stall
        # buckets only exist under config.stall_attribution — when off,
        # every hook reduces to one None-check and collected stats are
        # byte-identical to pre-observability behaviour.
        self.tracer: Optional["Tracer"] = None  # simcheck: persistent -- wiring installed once per process, survives runs
        self.stall_cycles: Optional[Dict[str, int]] = (  # simcheck: persistent -- cumulative stall buckets; snapshot/delta reported
            empty_buckets() if config.stall_attribution else None
        )

    # -- occupancy ---------------------------------------------------------

    @property
    def free_slots(self) -> int:
        return self.max_warps - len(self.warps)

    def free_registers(self) -> int:
        return self.max_registers - self.registers_used

    def add_warp(self, warp: Warp, regs_per_warp: int) -> None:
        if self.free_slots <= 0:
            raise RuntimeError(f"sub-core {self.subcore_id} warp slots exhausted")
        warp.age = self._age_counter
        self._age_counter += 1
        self.warps.append(warp)
        warp.ready_pool = self.ready
        warp.set_bank_view(self.register_file.mapper, self.register_file.num_banks)
        if warp.state is WarpState.READY:
            self.ready[warp] = None
        self.registers_used += regs_per_warp

    def begin_run(self) -> None:
        """Reset per-launch transient state at the start of a kernel run.

        Warp ages restart at zero (they are the GTO/LRR/two-level tie-break
        and group key, so a second launch must age its warps exactly like a
        fresh GPU), execution ports booked past the previous kernel's end
        are freed, and scheduler/arbitration per-launch state clears.
        Cumulative statistics are untouched.
        """
        self._age_counter = 0
        self.execution.begin_run()
        self.scheduler.begin_run()
        self.arbitration.begin_run()

    def remove_warp(self, warp: Warp, regs_per_warp: int) -> None:
        self.warps.remove(warp)
        self.ready.pop(warp, None)
        warp.ready_pool = None
        self.registers_used -= regs_per_warp
        self.scheduler.note_warp_removed(warp)

    # -- per-cycle phases ------------------------------------------------------

    def dispatch_ready_cus(self, now: int) -> None:
        """Phase 1: send fully-collected instructions to execution.

        One of the two busiest loops in the simulator, so the delegate
        calls are flattened: ``Pipeline.issue``, the writeback scheduling
        of ``_execute_on`` and ``CollectorUnit.release`` are inlined, and
        the scan stops after the last occupied CU (``remaining``).
        """
        remaining = self._busy_cus
        if not remaining:
            return
        sm = self.sm
        for cu in self.collector_units:
            inst = cu.instruction
            if inst is None:
                continue
            if not cu.pending_operands:
                # The pipeline was resolved at allocation; bare allocations
                # (unit tests driving CUs directly) fall back to the opcode.
                pipe = cu.pipe
                if pipe is None:
                    pipe = self.execution.pipelines[inst.info.unit]
                ports = pipe.port_free
                if (ports[0] if pipe.single else min(ports)) <= now:
                    warp = cu.warp
                    assert warp is not None
                    if self.tracer is not None:
                        start, dur = cu.occupancy_span(now)
                        self.tracer.cu_span(
                            start, sm.sm_id, self.subcore_id, cu.cu_id,
                            warp.warp_id, inst.opcode.name, dur,
                        )
                    # Inlined Pipeline.issue ...
                    info = inst.info
                    interval = info.initiation_interval
                    if pipe.lane_interval > interval:
                        interval = pipe.lane_interval
                    if pipe.single:
                        ports[0] = now + interval
                    else:
                        idx = min(range(len(ports)), key=ports.__getitem__)
                        ports[idx] = now + interval
                    pstats = pipe.stats
                    pstats.issued += 1
                    pstats.busy_cycles += interval
                    # ... and _execute_on's completion/writeback tail ...
                    t_done = now + interval + info.latency
                    if info.is_memory:
                        t_done = sm.memory_access(inst, t_done, warp)
                    dst = inst.dst_reg
                    if dst is not None:
                        self.register_file.writes += 1
                        # Inlined SM.schedule_writeback.
                        heappush(sm._wb_heap, (t_done, next(sm._seq), warp, dst))
                    # ... and CollectorUnit.release.
                    cu.warp = None
                    cu.instruction = None
                    cu.pipe = None
                    cu.pending_operands = 0
                    cu.allocated_cycle = -1
                    self._busy_cus -= 1
            remaining -= 1
            if not remaining:
                return

    def collect_operands(self, now: int) -> int:
        """Phase 2: per-bank arbitration grants."""
        grants = self.arbitration.grant_cycle(now)
        if grants:
            self.register_file.note_reads(grants)
        return grants

    def issue(self, now: int) -> int:
        """Phase 3: warp scheduler issue; returns instructions issued."""
        attr = self.stall_cycles
        ready = self.ready
        if not ready:
            self.issue_stall_no_ready += 1
            if attr is not None:
                self._attribute_stall(self._stall_reason(), self._issue_width, now)
            return 0
        if self._issue_width == 1 and not self._steals_banks:
            # Single-slot fast path (every partitioned design): one select,
            # one issue attempt, the same stall accounting the general loop
            # below produces for width 1.
            warp = self.scheduler.select(ready, now)
            if warp is not None and self._issue_warp(warp, now):
                if attr is not None:
                    attr[ISSUED] += 1
                return 1
            if warp is None:
                if attr is not None:
                    self._attribute_stall(NO_READY_WARP, 1, now)
            else:
                self.issue_stall_no_cu += 1
                if attr is not None:
                    self._attribute_stall(self._structural_stall_reason(now), 1, now)
            return 0
        issued = 0
        # Lazily allocated: membership-only, never iterated.  With
        # issue_width == 1 (every partitioned design) no set is ever built.
        issued_warps: Optional[Set[Warp]] = None
        slots_issued = 0
        stall_reason: Optional[str] = None
        ready = self.ready
        scheduler = self.scheduler
        for _ in range(self._issue_width):
            if issued_warps:
                candidates: Collection[Warp] = [  # simcheck: hot-ok -- only reached with issue_width > 1 (no partitioned design)
                    w for w in ready if w not in issued_warps
                ]
                if not candidates:
                    self.issue_stall_no_ready += 1
                    # Ready warps exist but each already issued this cycle.
                    stall_reason = NO_READY_WARP
                    break
            else:
                # First slot: hand the scheduler the live ready pool (an
                # insertion-ordered dict-as-set) — select() only reads it,
                # and copying it every cycle dominated the issue path.
                candidates = ready
            warp = scheduler.select(candidates, now)
            if warp is None:
                stall_reason = NO_READY_WARP
                break
            if not self._issue_warp(warp, now):
                # Selected warp could not issue (no CU / port busy): stall
                # this slot, as the hardware scheduler would.
                self.issue_stall_no_cu += 1
                if attr is not None:
                    stall_reason = self._structural_stall_reason(now)
                break
            if issued_warps is None:
                issued_warps = set()  # simcheck: hot-ok -- lazily built once per multi-issue cycle; issue_width == 1 never allocates
            issued_warps.add(warp)
            issued += 1
            slots_issued += 1
        if attr is not None:
            attr[ISSUED] += slots_issued
            leftover = self._issue_width - slots_issued
            if leftover:
                self._attribute_stall(
                    stall_reason if stall_reason is not None else self._stall_reason(),
                    leftover,
                    now,
                )

        # Bank-stealing pass: fill a still-free CU with a warp whose
        # operands sit in idle banks (Jing et al. [36]).
        if self._steals_banks:
            free_cu = self._free_cu()
            if free_cu is not None:
                skip: Collection[Warp] = issued_warps or ()
                candidates = [  # simcheck: hot-ok -- bank-stealing policy only; the pass inherently materializes its candidate pool
                    w
                    for w in self.ready
                    if w not in skip and w.code.reads_rf[w.pc]
                ]
                victim = (
                    self.scheduler.steal_candidate(candidates, now)
                    if candidates
                    else None
                )
                if victim is not None:
                    self._allocate_cu(free_cu, victim, victim.next_instruction, now)
                    self._post_issue(victim, victim.next_instruction, now)
                    self.steals += 1
                    issued += 1
        return issued

    # -- stall attribution (repro.obs) ---------------------------------------

    def _attribute_stall(self, reason: str, slots: int, now: int) -> None:
        """Charge ``slots`` un-issued scheduler slots of cycle ``now``."""
        assert self.stall_cycles is not None
        self.stall_cycles[reason] += slots
        if self.tracer is not None:
            self.tracer.warp_stall(now, self.sm.sm_id, self.subcore_id, reason, slots)

    def _stall_reason(self) -> str:
        """Why no ready warp could fill an issue slot, top-down.

        Priority order: a scoreboard hazard outranks a barrier wait (the
        hazard is what blocks progress), which outranks in-transit or
        already-issued warps, which outranks the end-of-CTA drain; a
        sub-core with no resident warps at all is idle.

        One flat scan, no set build: this runs on every un-issued slot of
        every attributed cycle, and the highest-priority state
        short-circuits the walk.
        """
        if not self.warps:
            return IDLE
        saw_barrier = False
        saw_ready = False
        for w in self.warps:
            state = w.state
            if state is WarpState.BLOCKED:
                return SCOREBOARD
            if state is WarpState.AT_BARRIER:
                saw_barrier = True
            elif state is WarpState.MIGRATING or state is WarpState.READY:
                saw_ready = True
        if saw_barrier:
            return BARRIER
        if saw_ready:
            return NO_READY_WARP
        return DRAIN

    def _structural_stall_reason(self, now: int) -> str:
        """Why a *selected* warp could not issue: collector-side analysis.

        If some occupied collector unit is still waiting on bank reads it
        requested in an earlier cycle, the slot was lost to register-bank
        arbitration backlog; otherwise the structural limit itself (no
        free CU, or a busy execution port) is to blame.
        """
        for cu in self.collector_units:
            if (
                cu.instruction is not None
                and cu.pending_operands
                and cu.allocated_cycle < now
            ):
                return BANK_CONFLICT
        return NO_FREE_CU

    def attribute_gap(self, gap_start: int, cycles: int) -> None:
        """Attribute ``cycles`` fast-forwarded (un-stepped) cycles.

        Called by the SM before the writeback drain of the step that ends
        a fast-forward jump, so warp states still describe what the
        sub-core was waiting on during the gap (typically ``scoreboard``:
        every warp blocked on an outstanding memory writeback).
        """
        if self.stall_cycles is None or cycles <= 0:
            return
        reason = self._stall_reason()
        self.stall_cycles[reason] += cycles * self.config.issue_width
        if self.tracer is not None:
            self.tracer.warp_stall(
                gap_start, self.sm.sm_id, self.subcore_id, reason,
                cycles * self.config.issue_width, dur=cycles,
            )

    # -- issue helpers ------------------------------------------------------------

    def _free_cu(self) -> Optional[CollectorUnit]:
        for cu in self.collector_units:
            if cu.instruction is None:  # CollectorUnit.free, sans property call
                return cu
        return None

    def _issue_warp(self, warp: Warp, now: int) -> bool:
        # The issue fast path: _free_cu, CollectorUnit.allocate, the bank
        # enqueue of _allocate_cu and the whole of _post_issue are inlined
        # (those helpers remain for the bank-stealing pass).
        code = warp.code
        pc = warp.pc
        inst = warp.next_instruction
        if code.reads_rf[pc]:
            for cu in self.collector_units:
                if cu.instruction is None:
                    break
            else:
                return False
            cu.warp = warp
            cu.instruction = inst
            cu.pipe = self._pipes[code.unit_ids[pc]]
            cu.pending_operands = inst.num_src
            cu.allocated_cycle = now
            self._busy_cus += 1
            arbitration = self.arbitration
            queues = arbitration.queues
            for bank in warp._row[pc]:
                queues[bank].append(cu)
            arbitration.pending += inst.num_src
        else:
            # Direct path: no operands to collect.
            pipe = self._pipes[code.unit_ids[pc]]
            ports = pipe.port_free
            if (ports[0] if pipe.single else min(ports)) > now:
                return False
            self._execute_on(pipe, warp, inst, now)
        # Inlined _post_issue (flags read before note_issue advances pc).
        tracer = self.tracer
        flags = code.flags[pc]
        if tracer is not None:
            info = self.scheduler.selection_info(warp)
            tracer.warp_issue(
                now, self.sm.sm_id, self.subcore_id, warp.warp_id,
                inst.opcode.name, pc, info["policy"], info["greedy"],
            )
        warp.note_issue(inst)
        # WarpScheduler.note_issue is the same pointer update on every
        # policy — write it directly.
        self.scheduler.last_issued = warp
        self.instructions_issued += 1
        self.sm.total_instructions += 1
        if flags:
            if flags & F_BARRIER:
                if tracer is not None:
                    tracer.warp_barrier(
                        now, self.sm.sm_id, self.subcore_id, warp.warp_id
                    )
                self.sm.warp_at_barrier(warp)
            elif flags & F_EXIT:
                if tracer is not None:
                    tracer.warp_exit(
                        now, self.sm.sm_id, self.subcore_id, warp.warp_id
                    )
                self.sm.warp_exited(warp, now)
        return True

    def _allocate_cu(self, cu: CollectorUnit, warp: Warp, inst: Instruction, now: int) -> None:
        cu.allocate(warp, inst, now, self._pipes[warp.code.unit_ids[warp.pc]])
        self._busy_cus += 1
        arbitration = self.arbitration
        queues = arbitration.queues
        for bank in warp.src_banks_cached():
            queues[bank].append(cu)
        arbitration.pending += inst.num_src

    def _post_issue(self, warp: Warp, inst: Instruction, now: int) -> None:
        tracer = self.tracer
        # Compiled per-instruction flags, read before note_issue advances
        # the trace cursor.
        flags = warp.code.flags[warp.pc]
        if tracer is not None:
            # Selection info must be read before note_issue updates the
            # scheduler's greedy pointer.
            info = self.scheduler.selection_info(warp)
            tracer.warp_issue(
                now, self.sm.sm_id, self.subcore_id, warp.warp_id,
                inst.opcode.name, warp.pc, info["policy"], info["greedy"],
            )
        warp.note_issue(inst)
        self.scheduler.note_issue(warp)
        self.instructions_issued += 1
        self.sm.total_instructions += 1
        if flags:
            if flags & F_BARRIER:
                if tracer is not None:
                    tracer.warp_barrier(
                        now, self.sm.sm_id, self.subcore_id, warp.warp_id
                    )
                self.sm.warp_at_barrier(warp)
            elif flags & F_EXIT:
                if tracer is not None:
                    tracer.warp_exit(
                        now, self.sm.sm_id, self.subcore_id, warp.warp_id
                    )
                self.sm.warp_exited(warp, now)

    def _execute(self, warp: Warp, inst: Instruction, now: int) -> None:
        """Dispatch to the execution pipeline and schedule the writeback."""
        self._execute_on(self.execution.pipeline_for(inst), warp, inst, now)

    def _execute_on(
        self, pipe: "Pipeline", warp: Warp, inst: Instruction, now: int
    ) -> None:
        """_execute with the pipeline already resolved by the caller."""
        t_exec = pipe.issue(inst, now)
        if inst.info.is_memory:
            t_done = self.sm.memory_access(inst, t_exec, warp)
        else:
            t_done = t_exec
        if inst.dst_reg is not None:
            self.register_file.note_write()
            self.sm.schedule_writeback(t_done, warp, inst.dst_reg)

    # -- sanitizer hook -------------------------------------------------------------

    def validate(self) -> List[dict]:
        """Per-cycle occupancy/accounting invariants of this sub-core.

        Consumed by :class:`repro.analysis.Sanitizer`; returns structured
        error dicts (empty when consistent).  Checks are read-only so a
        sanitized run stays byte-identical to an unsanitized one.
        """
        errors: List[dict] = []
        if not 0 <= self.registers_used <= self.max_registers:
            errors.append(
                {
                    "invariant": "rf-capacity",
                    "message": (
                        "register charge outside bank capacity (an alloc "
                        "overran or a free over-released)"
                    ),
                    "counter": "registers_used",
                    "expected": f"0..{self.max_registers}",
                    "actual": self.registers_used,
                }
            )
        if len(self.warps) > self.max_warps:
            errors.append(
                {
                    "invariant": "warp-slots",
                    "message": "more resident warps than slots",
                    "counter": "warps",
                    "expected": self.max_warps,
                    "actual": len(self.warps),
                }
            )

        busy = sum(1 for cu in self.collector_units if not cu.free)
        if busy != self._busy_cus:
            errors.append(
                {
                    "invariant": "cu-occupancy",
                    "message": (
                        "busy-CU cache diverged from the collector-unit "
                        "array (an allocate/release went unaccounted)"
                    ),
                    "counter": "busy_cus",
                    "expected": busy,
                    "actual": self._busy_cus,
                }
            )
        for cu in self.collector_units:
            errors.extend(cu.validate())

        errors.extend(self.arbitration.validate())
        errors.extend(self.register_file.validate())

        # Every queued bank read belongs to exactly one pending CU operand.
        cu_pending = sum(cu.pending_operands for cu in self.collector_units)
        queued = self.arbitration.queued_requests()
        if queued != cu_pending:
            errors.append(
                {
                    "invariant": "arbitration-conservation",
                    "message": (
                        "queued bank reads do not match pending collector "
                        "operands"
                    ),
                    "counter": "arbitration.pending",
                    "expected": cu_pending,
                    "actual": queued,
                }
            )

        # Ready pool and warp list must agree on READY membership.
        for w in self.ready:
            if w not in self.warps or w.state is not WarpState.READY:
                errors.append(
                    {
                        "invariant": "ready-pool",
                        "message": (
                            f"warp {w.warp_id} in the ready pool but "
                            f"{'not resident' if w not in self.warps else 'not READY'}"
                        ),
                        "counter": "ready",
                        "expected": "resident READY warps only",
                        "actual": w.state.value,
                    }
                )
        for w in self.warps:
            if w.state is WarpState.READY and w not in self.ready:
                errors.append(
                    {
                        "invariant": "ready-pool",
                        "message": f"READY warp {w.warp_id} missing from the ready pool",
                        "counter": "ready",
                        "expected": "all READY warps",
                        "actual": "missing",
                    }
                )

        if self.stall_cycles is not None and any(
            v < 0 for v in self.stall_cycles.values()
        ):
            errors.append(
                {
                    "invariant": "stall-attribution",
                    "message": "negative stall-attribution bucket",
                    "counter": "stall_cycles",
                    "expected": ">= 0 per bucket",
                    "actual": dict(self.stall_cycles),
                }
            )

        errors.extend(self.scheduler.validate(self.warps))
        return errors

    # -- fast-forward support -------------------------------------------------------

    def quiescent(self) -> bool:
        """True when the sub-core cannot make progress next cycle on its own.

        Progress requires a ready warp, a pending arbitration request, or an
        occupied collector unit.  (Busy execution ports with nothing staged
        behind them need no per-cycle attention.)
        """
        return not (self.arbitration.pending or self._busy_cus or self.ready)

    def next_local_event(self, now: int) -> Optional[int]:
        """Earliest cycle this sub-core needs to be stepped, or None.

        ``now + 1`` whenever a ready warp or a queued bank read can make
        progress next cycle.  A sub-core whose only live work is collected
        instructions parked behind busy execution ports needs no attention
        until the earliest port frees — the shallow half of the SM's event
        horizon.  None means quiescent (writeback events notwithstanding).
        """
        if self.ready or self.arbitration.pending:
            return now + 1
        if self._busy_cus:
            horizon: Optional[int] = None
            pipelines = self.execution.pipelines
            for cu in self.collector_units:
                inst = cu.instruction
                if inst is None:
                    continue
                if cu.pending_operands:
                    # A pending operand without a queued bank read would be
                    # an invariant break; never fast-forward past it.
                    return now + 1
                pipe = cu.pipe
                if pipe is None:
                    pipe = pipelines[inst.info.unit]
                free = min(pipe.port_free)
                if free <= now + 1:
                    return now + 1
                if horizon is None or free < horizon:
                    horizon = free
            return horizon if horizon is not None else now + 1
        return None

    def account_skipped_steps(self, start: int, cycles: int) -> None:
        """Record counters exactly as ``cycles`` stepped cycles would have.

        Called by the SM when the cycle loop fast-forwards over a window in
        which this sub-core would have been stepped with an empty ready
        pool and nothing to dispatch or collect (every port-wait skip).
        Each such stepped cycle records one no-ready issue stall and, under
        attribution, charges the current stall reason for every issue slot
        — warp states are static across the window, so the closed form is
        byte-identical to stepping.
        """
        self.issue_stall_no_ready += cycles
        attr = self.stall_cycles
        if attr is not None:
            reason = self._stall_reason()
            attr[reason] += cycles * self.config.issue_width
            if self.tracer is not None:
                self.tracer.warp_stall(
                    start, self.sm.sm_id, self.subcore_id, reason,
                    cycles * self.config.issue_width, dur=cycles,
                )

    @property
    def active_warps(self) -> int:
        return sum(1 for w in self.warps if not w.done)
