"""Collector units: the staging slots of the operand collector.

Each CU holds a single warp instruction while its source operands are read
from the register-file banks (Fig. 2).  An operand entry is *pending* until
the arbitration unit grants its bank read; when no entries are pending the
CU is ready to dispatch to an execution unit.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..isa import Instruction

if TYPE_CHECKING:  # pragma: no cover
    from .execution import Pipeline
    from .warp import Warp


class CollectorUnit:
    """One collector unit of a sub-core's operand collector."""

    __slots__ = (
        "cu_id",
        "warp",
        "instruction",
        "pipe",
        "pending_operands",
        "allocated_cycle",
    )

    def __init__(self, cu_id: int):
        self.cu_id = cu_id
        self.warp: Optional["Warp"] = None
        self.instruction: Optional[Instruction] = None
        #: Execution pipeline resolved at allocation time (from the warp's
        #: compiled code), so dispatch never re-derives it from the opcode.
        self.pipe: Optional["Pipeline"] = None
        self.pending_operands = 0
        self.allocated_cycle = -1

    @property
    def free(self) -> bool:
        return self.instruction is None

    @property
    def ready(self) -> bool:
        """All operands collected; instruction awaiting dispatch."""
        return self.instruction is not None and self.pending_operands == 0

    def allocate(
        self,
        warp: "Warp",
        inst: Instruction,
        cycle: int,
        pipe: Optional["Pipeline"] = None,
    ) -> None:
        if not self.free:
            raise RuntimeError(f"CU {self.cu_id} double allocation")
        self.warp = warp
        self.instruction = inst
        self.pipe = pipe
        self.pending_operands = inst.num_src
        self.allocated_cycle = cycle

    def operand_granted(self) -> None:
        if self.pending_operands <= 0:
            raise RuntimeError(f"CU {self.cu_id} grant with no pending operands")
        self.pending_operands -= 1

    def release(self) -> None:
        self.warp = None
        self.instruction = None
        self.pipe = None
        self.pending_operands = 0
        self.allocated_cycle = -1

    # -- tracer hook ---------------------------------------------------------

    def occupancy_span(self, now: int) -> "tuple[int, int]":
        """``(allocation cycle, cycles occupied)`` as of ``now``.

        The tracer turns this into one span event per dispatched
        instruction, so collector-unit occupancy (the Fig. 12 quantity)
        reads directly off the exported timeline.  Call before
        :meth:`release` — releasing resets ``allocated_cycle``.
        """
        return self.allocated_cycle, max(1, now - self.allocated_cycle)

    # -- sanitizer hook ------------------------------------------------------

    def validate(self) -> list:
        """Occupancy invariants of this CU (consumed by the sanitizer).

        Returns a list of structured error dicts; empty when consistent.
        """
        errors = []
        if self.free:
            if self.pending_operands != 0:
                errors.append(
                    {
                        "invariant": "cu-occupancy",
                        "message": f"free CU {self.cu_id} has pending operands",
                        "counter": "pending_operands",
                        "expected": 0,
                        "actual": self.pending_operands,
                    }
                )
            return errors
        assert self.instruction is not None
        limit = self.instruction.num_src_operands
        if not 0 <= self.pending_operands <= limit:
            errors.append(
                {
                    "invariant": "cu-occupancy",
                    "message": (
                        f"CU {self.cu_id} pending operands outside "
                        "[0, num_src_operands]"
                    ),
                    "counter": "pending_operands",
                    "expected": f"0..{limit}",
                    "actual": self.pending_operands,
                }
            )
        if self.warp is None:
            errors.append(
                {
                    "invariant": "cu-occupancy",
                    "message": f"occupied CU {self.cu_id} has no warp",
                    "counter": "warp",
                    "expected": "a warp",
                    "actual": None,
                }
            )
        return errors
