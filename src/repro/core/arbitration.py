"""Register-file bank arbitration.

The arbitration unit keeps one FIFO request queue per register-file bank
and grants at most ``read_ports`` requests per bank per cycle (one, on
Volta).  Queue lengths are the signal the RBA scheduler consumes: the score
of a candidate instruction is the summed queue length of its operands'
banks (Sec. IV-A).

To model the score-update latency study (Sec. VI-B4) the unit can expose a
*stale* snapshot of the queue lengths, refreshed only every ``latency``
cycles.

Each per-bank FIFO is a preallocated Python list with a head cursor
(``_heads``): enqueue is ``list.append``, dequeue advances the cursor, and
the list is recycled (``clear`` + cursor reset) the moment it drains — the
steady state appends into a list that already has capacity, avoiding
per-request allocation on the hot path.  Queue length is always
``len(queue) - head``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple, TYPE_CHECKING

from .collector_unit import CollectorUnit

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import Tracer


class ArbitrationUnit:
    """Per-bank read-request queues with single-grant-per-bank arbitration."""

    def __init__(self, num_banks: int, read_ports: int = 1, score_latency: int = 0):
        if num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        if read_ports < 1:
            raise ValueError("read_ports must be >= 1")
        self.num_banks = num_banks
        self.read_ports = read_ports
        self.score_latency = score_latency
        self.queues: List[List[CollectorUnit]] = [[] for _ in range(num_banks)]
        #: Head cursor per bank queue: queues[b][_heads[b]:] are waiting.
        self._heads: List[int] = [0] * num_banks
        # Change-history of queue lengths for delayed (pipelined) RBA
        # scoring: entries are (cycle, lengths-at-end-of-cycle); only kept
        # when score_latency > 0.
        self._history: Deque[Tuple[int, List[int]]] = deque([(-1, [0] * num_banks)])
        # statistics
        self.total_grants = 0  # simcheck: persistent -- cumulative statistic; snapshot/delta reported
        self.conflict_cycles = 0  # simcheck: persistent -- cumulative statistic; snapshot/delta reported
        self.pending = 0  # simcheck: persistent -- tracks queued requests; drains with the kernel
        # event tracing (repro.obs); attached by the owning SM when active
        self.tracer: Optional["Tracer"] = None  # simcheck: persistent -- wiring installed once per process, survives runs
        self._sm_id = -1  # simcheck: persistent -- wiring installed once per process, survives runs
        self._subcore_id = -1  # simcheck: persistent -- wiring installed once per process, survives runs

    def attach_tracer(self, tracer: "Tracer", sm_id: int, subcore_id: int) -> None:
        """Attach the event tracer; conflict cycles emit bank-conflict events."""
        self.tracer = tracer
        self._sm_id = sm_id
        self._subcore_id = subcore_id

    def begin_run(self) -> None:
        """Reset transient per-launch state (queues drain with the kernel).

        Queues are empty whenever no kernel is in flight; this clears the
        delayed-scoring history so a second launch sees the same all-zero
        snapshot a fresh unit starts with.  Cumulative statistics persist.
        """
        for q in self.queues:
            q.clear()
        for i in range(self.num_banks):
            self._heads[i] = 0
        self.pending = 0
        self._history.clear()
        self._history.append((-1, [0] * self.num_banks))

    # -- enqueue ---------------------------------------------------------------

    def request(self, cu: CollectorUnit, bank: int) -> None:
        """Queue one operand read for ``cu`` on ``bank``.

        Duplicate registers of one instruction enqueue separately, matching
        the paper's scoring example (two operands in bank 0 count twice).
        """
        self.queues[bank].append(cu)
        self.pending += 1

    # -- per-cycle arbitration ---------------------------------------------------

    def grant_cycle(self, now: int) -> int:
        """Grant up to ``read_ports`` requests on every bank; returns grants."""
        if not self.pending:
            if self.score_latency:
                self._record(now)
            return 0
        grants = 0
        conflicted = False
        heads = self._heads
        if self.read_ports == 1:
            # Volta's single read port per bank.  CollectorUnit's
            # operand_granted is inlined (guard included): this loop runs
            # for every bank of every sub-core on every collect cycle.
            for bank, q in enumerate(self.queues):
                head = heads[bank]
                qlen = len(q)
                if head < qlen:
                    cu = q[head]
                    po = cu.pending_operands
                    if po <= 0:
                        raise RuntimeError(
                            f"CU {cu.cu_id} grant with no pending operands"
                        )
                    cu.pending_operands = po - 1
                    grants += 1
                    head += 1
                    if head < qlen:
                        conflicted = True
                        heads[bank] = head
                    else:
                        # Drained: recycle the list, keeping its capacity.
                        q.clear()
                        heads[bank] = 0
        else:
            for bank, q in enumerate(self.queues):
                head = heads[bank]
                qlen = len(q)
                end = head + self.read_ports
                if end > qlen:
                    end = qlen
                while head < end:
                    q[head].operand_granted()
                    grants += 1
                    head += 1
                if head < qlen:
                    conflicted = True
                    heads[bank] = head
                else:
                    q.clear()
                    heads[bank] = 0
        self.pending -= grants
        self.total_grants += grants
        if conflicted:
            self.conflict_cycles += 1
            if self.tracer is not None:
                self.tracer.bank_conflict(
                    now, self._sm_id, self._subcore_id, self.pending
                )
        if self.score_latency:
            self._record(now)
        return grants

    # -- RBA scoring interface ------------------------------------------------------

    def _record(self, now: int) -> None:  # simcheck: hot-ok -- delayed-RBA scoring history is inherently a per-cycle snapshot
        """Log end-of-cycle queue lengths for the delayed scoring path."""
        lengths = [len(q) - h for q, h in zip(self.queues, self._heads)]
        hist = self._history
        if hist[-1][0] == now:
            hist[-1] = (now, lengths)
        elif hist[-1][1] != lengths:
            hist.append((now, lengths))

    def queue_lengths(self, now: int) -> List[int]:  # simcheck: hot-ok -- RBA scoring inherently materializes the visible lengths
        """Queue lengths as visible to the scheduler at ``now``.

        With ``score_latency == 0`` this is the live state; otherwise the
        state from ``score_latency`` cycles ago, modelling a pipelined
        score-update path (Sec. VI-B4): scores still arrive every cycle,
        just delayed.

        Note (documented divergence): the paper measures < 0.1 % average
        loss at 20-cycle staleness because its real applications have long
        stable periods of register-file pressure.  Our synthetic traces
        oscillate faster, so part of RBA's gain here comes from
        cycle-fresh alternation and decays with staleness — the latency
        study reports that graceful degradation rather than the paper's
        near-zero figure (see EXPERIMENTS.md).
        """
        if self.score_latency == 0:
            return [len(q) - h for q, h in zip(self.queues, self._heads)]
        target = now - self.score_latency
        hist = self._history
        # Drop entries that can never be needed again (strictly older than
        # the newest entry at or before the target).
        while len(hist) > 1 and hist[1][0] <= target:
            hist.popleft()
        return hist[0][1] if hist[0][0] <= target else [0] * self.num_banks

    def score(self, banks: Tuple[int, ...], now: int) -> int:
        """RBA score: summed visible queue length over operand banks."""
        lengths = self.queue_lengths(now)
        return sum(lengths[b] for b in banks)

    def bank_idle(self, bank: int) -> bool:
        """True when a bank's queue is empty (a bank-stealing opportunity)."""
        return len(self.queues[bank]) == self._heads[bank]

    # -- sanitizer hooks -----------------------------------------------------

    def queued_requests(self) -> int:
        """Ground truth for ``pending``: summed per-bank queue lengths."""
        return sum(len(q) - h for q, h in zip(self.queues, self._heads))

    def validate(self) -> list:
        """Queue-accounting invariants (consumed by the sanitizer)."""
        errors = []
        queued = self.queued_requests()
        if self.pending != queued:
            errors.append(
                {
                    "invariant": "arbitration-accounting",
                    "message": (
                        "cached pending count diverged from summed queue "
                        "lengths (an enqueue or grant went unaccounted)"
                    ),
                    "counter": "arbitration.pending",
                    "expected": queued,
                    "actual": self.pending,
                }
            )
        for bank, (q, h) in enumerate(zip(self.queues, self._heads)):
            if not 0 <= h <= len(q) or (h == len(q) and h != 0):
                errors.append(
                    {
                        "invariant": "arbitration-accounting",
                        "message": (
                            f"bank {bank} head cursor inconsistent with its "
                            "queue (drained queues must be recycled)"
                        ),
                        "counter": "arbitration._heads",
                        "expected": f"0 <= head < {len(q)} or head == len == 0",
                        "actual": h,
                    }
                )
        if self.pending < 0 or self.total_grants < 0 or self.conflict_cycles < 0:
            errors.append(
                {
                    "invariant": "arbitration-accounting",
                    "message": "negative arbitration counter",
                    "counter": "arbitration.counters",
                    "expected": ">= 0",
                    "actual": (self.pending, self.total_grants, self.conflict_cycles),
                }
            )
        return errors
