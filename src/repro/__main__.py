"""Command-line entry point: regenerate paper figures by name.

Usage::

    python -m repro list                 # available experiments
    python -m repro fig10               # run one experiment, print its rows
    python -m repro fig15 fig16 fig17   # several in one process (shared cache)
    python -m repro all                 # everything (slow)

Engine options (see repro.experiments.engine)::

    --workers N      # worker processes for simulation fan-out
                     # (default: all CPUs; 1 = serial)
    --cache-dir DIR  # on-disk result cache location
                     # (default: $REPRO_CACHE_DIR or ~/.cache/repro-sim)
    --no-cache       # disable the on-disk result cache
    --profile        # print cache hit/miss counters and slowest points
    --sanitize       # run every simulation with the runtime invariant
                     # sanitizer installed (see repro.analysis); results
                     # are identical, runs are slower and cached apart

Observability options (see repro.obs and docs/observability.md)::

    --trace            # trace every simulated point: Chrome-trace JSON +
                       # events JSONL per point, plus a run manifest
                       # (manifest.jsonl); stats gain stall-attribution
                       # buckets and are cached apart from untraced runs
    --trace-dir DIR    # where trace files go (default: repro-traces;
                       # implies --trace)
    --trace-cycles N   # only record events of the first N cycles
    --profile-report APP[:DESIGN]
                       # simulate one point and print its profiler-style
                       # breakdown; with --trace it includes the stacked
                       # stall-attribution chart
    --manifest PATH    # append run-manifest records (cache hits, sims,
                       # retries, structured warnings) to PATH without
                       # paying for full event tracing
    --metrics-dir DIR  # enable the run-level metrics registry and write
                       # metrics.prom (Prometheus text exposition) and
                       # metrics.json (canonical JSON) there at exit
    --status-file PATH # write an atomic status.json heartbeat while
                       # batches run (done/failed/in-flight, per-worker
                       # last progress, ETA)

Robustness options (see docs/robustness.md)::

    --journal PATH     # append a crash-safe journal line per completed
                       # point (key + stats digest); the durable record
                       # of a batch's progress (default when tracing:
                       # <trace-dir>/journal.jsonl)
    --resume           # cross-check disk-cached results against the
                       # journal and re-simulate only points the journal
                       # does not cover; implies --journal (default
                       # path: repro-journal.jsonl).  Use after a crash,
                       # kill or Ctrl-C ended a batch early
"""

from __future__ import annotations

import os
import sys
from typing import Callable, Dict, List, Tuple

from . import experiments as ex
from .experiments.engine import configure, get_engine

EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "fig01": ex.fig01_partitioning.main,
    "fig03": ex.fig03_fma_imbalance.main,
    "fig08": ex.fig08_imbalance_scaling.main,
    "fig09": ex.fig09_all_apps.main,
    "fig10": ex.fig10_sensitive.main,
    "fig11": ex.fig11_fc_rba.main,
    "fig12": ex.fig12_cu_scaling.main,
    "fig13": ex.fig13_area_power.main,
    "fig14": ex.fig14_rf_utilization.main,
    "fig15": ex.fig15_tpch_compressed.main,
    "fig16": ex.fig16_tpch_uncompressed.main,
    "fig17": ex.fig17_issue_cov.main,
    "fig18": ex.fig18_sm_scaling.main,
    "cu-validation": ex.cu_validation.main,
    "rba-latency": ex.rba_latency.main,
    "rba-banks": ex.rba_banks.main,
    "hash-table": ex.hash_table_size.main,
    "headline": ex.headline.main,
    "ablation-mapping": ex.ablation_bank_mapping.main,
    "subcore-granularity": ex.subcore_granularity.main,
    "work-stealing": ex.work_stealing_study.main,
    "effect4": ex.effect4_concurrent.main,
    "ablation-scheduler": ex.ablation_baseline_scheduler.main,
}


class _CLIError(ValueError):
    pass


def _parse_args(args: List[str]) -> Tuple[dict, List[str]]:
    """Split engine flags from experiment names."""
    opts = {
        "workers": None,
        "cache_dir": None,
        "no_cache": False,
        "profile": False,
        "sanitize": False,
        "trace": False,
        "trace_dir": None,
        "trace_cycles": None,
        "profile_report": None,
        "manifest": None,
        "metrics_dir": None,
        "status_file": None,
        "journal": None,
        "resume": False,
    }
    valued = {
        "--workers": "workers",
        "--cache-dir": "cache_dir",
        "--trace-dir": "trace_dir",
        "--trace-cycles": "trace_cycles",
        "--profile-report": "profile_report",
        "--manifest": "manifest",
        "--metrics-dir": "metrics_dir",
        "--status-file": "status_file",
        "--journal": "journal",
    }
    names: List[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--no-cache":
            opts["no_cache"] = True
        elif arg == "--profile":
            opts["profile"] = True
        elif arg == "--sanitize":
            opts["sanitize"] = True
        elif arg == "--trace":
            opts["trace"] = True
        elif arg == "--resume":
            opts["resume"] = True
        elif any(arg == f or arg.startswith(f + "=") for f in valued):
            flag, sep, value = arg.partition("=")
            if not sep:
                i += 1
                if i >= len(args):
                    raise _CLIError(f"{flag} requires a value")
                value = args[i]
            key = valued[flag]
            if key in ("workers", "trace_cycles"):
                try:
                    opts[key] = int(value)
                except ValueError:
                    raise _CLIError(f"{flag} expects an integer, got {value!r}")
                if opts[key] < 1:
                    raise _CLIError(f"{flag} must be >= 1")
            else:
                opts[key] = value
        elif arg.startswith("-") and arg not in ("-h", "--help"):
            raise _CLIError(f"unknown option: {arg}")
        else:
            names.append(arg)
        i += 1
    if opts["trace_dir"] is not None or opts["trace_cycles"] is not None:
        opts["trace"] = True
    if opts["trace"] and opts["trace_dir"] is None:
        opts["trace_dir"] = "repro-traces"
    if opts["resume"] and opts["journal"] is None and not opts["trace"]:
        # --resume needs a journal to resume from; outside --trace (which
        # defaults the journal beside the manifest) give it a stable name.
        opts["journal"] = "repro-journal.jsonl"
    return opts, names


#: Point traced by a bare ``python -m repro --trace`` (no experiment names).
DEFAULT_TRACE_POINT = ("cg-lou", "baseline")


def _run_profile_report(spec: str) -> int:
    """``--profile-report APP[:DESIGN]``: one point, profiler-style text."""
    from .experiments.engine import SimPoint, get_engine
    from .metrics.profile_report import profile_report

    app, _, design = spec.partition(":")
    point = SimPoint(app=app, design=design or "baseline")
    try:
        stats = get_engine().run_point(point)
    except KeyError as exc:
        print(f"--profile-report: unknown app or design: {exc}", file=sys.stderr)
        return 2
    print(profile_report(stats))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    try:
        opts, names = _parse_args(args)
    except _CLIError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    standalone = opts["profile_report"] is not None or opts["trace"]
    if (not names and not standalone) or names == ["list"] or "-h" in names or "--help" in names:
        print(__doc__)
        print("experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [a for a in names if a not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"options: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    workers = opts["workers"]
    if workers is None:
        workers = int(os.environ.get("REPRO_WORKERS", "0") or 0) or (
            os.cpu_count() or 1
        )
    metrics = None
    if opts["metrics_dir"] is not None:
        from .obs import MetricsRegistry

        metrics = MetricsRegistry()
    configure(
        workers=workers,
        cache_dir=opts["cache_dir"],
        use_disk_cache=not opts["no_cache"],
        progress=sys.stderr.isatty(),
        sanitize=opts["sanitize"],
        trace_dir=opts["trace_dir"],
        trace_cycles=opts["trace_cycles"],
        manifest_path=opts["manifest"],
        metrics=metrics,
        status_path=opts["status_file"],
        journal_path=opts["journal"],
        resume=opts["resume"],
    )

    if opts["trace"] and not names and opts["profile_report"] is None:
        # A bare --trace still produces a trace to look at.
        app, design = DEFAULT_TRACE_POINT
        opts["profile_report"] = f"{app}:{design}"

    status = 0
    if opts["profile_report"] is not None:
        status = _run_profile_report(opts["profile_report"])
    for name in names:
        print(f"\n=== {name} ===")
        EXPERIMENTS[name]()
    if opts["profile"]:
        print(f"\n{get_engine().profile_summary()}")
    if opts["trace"]:
        engine = get_engine()
        written = (
            engine.manifest.records_written if engine.manifest is not None else 0
        )
        print(
            f"\ntraces in {opts['trace_dir']}/ "
            f"(manifest.jsonl: {written} records; open *.trace.json in "
            "https://ui.perfetto.dev)"
        )
    if metrics is not None:
        import json as _json
        from pathlib import Path

        out = Path(opts["metrics_dir"])
        out.mkdir(parents=True, exist_ok=True)
        (out / "metrics.prom").write_text(
            metrics.to_prometheus(), encoding="utf-8"
        )
        (out / "metrics.json").write_text(
            _json.dumps(metrics.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\nmetrics in {out}/ (metrics.prom, metrics.json)")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
