"""Command-line entry point: regenerate paper figures by name.

Usage::

    python -m repro list                 # available experiments
    python -m repro fig10               # run one experiment, print its rows
    python -m repro fig15 fig16 fig17   # several in one process (shared cache)
    python -m repro all                 # everything (slow)
"""

from __future__ import annotations

import sys
from typing import Callable, Dict

from . import experiments as ex

EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "fig01": ex.fig01_partitioning.main,
    "fig03": ex.fig03_fma_imbalance.main,
    "fig08": ex.fig08_imbalance_scaling.main,
    "fig09": ex.fig09_all_apps.main,
    "fig10": ex.fig10_sensitive.main,
    "fig11": ex.fig11_fc_rba.main,
    "fig12": ex.fig12_cu_scaling.main,
    "fig13": ex.fig13_area_power.main,
    "fig14": ex.fig14_rf_utilization.main,
    "fig15": ex.fig15_tpch_compressed.main,
    "fig16": ex.fig16_tpch_uncompressed.main,
    "fig17": ex.fig17_issue_cov.main,
    "fig18": ex.fig18_sm_scaling.main,
    "cu-validation": ex.cu_validation.main,
    "rba-latency": ex.rba_latency.main,
    "rba-banks": ex.rba_banks.main,
    "hash-table": ex.hash_table_size.main,
    "headline": ex.headline.main,
    "ablation-mapping": ex.ablation_bank_mapping.main,
    "subcore-granularity": ex.subcore_granularity.main,
    "work-stealing": ex.work_stealing_study.main,
    "effect4": ex.effect4_concurrent.main,
    "ablation-scheduler": ex.ablation_baseline_scheduler.main,
}


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args == ["list"] or "-h" in args or "--help" in args:
        print(__doc__)
        print("experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0
    if args == ["all"]:
        args = list(EXPERIMENTS)
    unknown = [a for a in args if a not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"options: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in args:
        print(f"\n=== {name} ===")
        EXPERIMENTS[name]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
