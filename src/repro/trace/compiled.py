"""Compiled warp code: the trace lowered into flat, replay-ready arrays.

Trace-driven simulators get their throughput from compiling the trace once
into a flat form the per-cycle loop can replay without touching the
front-end object graph (Accel-Sim's SASS front-end does exactly this).
:func:`compile_warp_trace` lowers one :class:`~repro.trace.WarpTrace` into
a :class:`CompiledWarp`: parallel immutable tuples, indexed by the warp's
existing trace cursor (``Warp.pc``), carrying everything the
issue/operand/dispatch path reads per instruction —

* the scoreboard *hazard mask* (one bit per architectural register; EXIT
  compiles to an all-ones mask because it waits for full drain) and the
  *destination bit* ``note_issue`` sets;
* the functional-unit id (an index into the sub-core's pipeline list,
  :data:`UNIT_INDEX`), and the ``reads_rf`` / ``num_src`` operand shape;
* per-instruction flags (barrier / exit / memory);
* the original :class:`~repro.isa.Instruction` objects, for the handoff
  points that still want them (pipeline issue, memory access, tracing).

Bank pre-resolution is layered on top: :meth:`CompiledWarp.bank_table`
returns a per-``(mapper, num_banks)`` table of source-operand bank tuples.
Mappings that are periodic in the warp id (``mod``: period 1,
``warp_swizzle``: period ``num_banks``) share rows across warps; aperiodic
mappings (``scrambled``, custom callables) get per-warp rows, computed once
and memoized.  Rows reproduce ``mapper(reg, warp_id, num_banks)`` call for
call, so collected stats stay byte-identical to the uncompiled path.

The compiled form is cached on the trace object itself (``trace._code``),
so every CTA sharing a trace by reference — ``KernelTrace.uniform``
replicates one ``CTATrace`` — compiles exactly once per process.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, TYPE_CHECKING

from ..isa import FuncUnit, Instruction

if TYPE_CHECKING:  # pragma: no cover
    from .kernel_trace import KernelTrace
    from .warp_trace import WarpTrace

#: Stable functional-unit -> pipeline-index mapping (definition order of
#: the FuncUnit enum; the sub-core builds its pipeline list in this order).
UNIT_INDEX: Dict[FuncUnit, int] = {unit: i for i, unit in enumerate(FuncUnit)}

#: Per-instruction flag bits (``CompiledWarp.flags``).
F_BARRIER = 1
F_EXIT = 2
F_MEMORY = 4

BankMapper = Callable[[int, int, int], int]


def _mapper_period(mapper: BankMapper, num_banks: int) -> Optional[int]:
    """Period of ``mapper`` in the warp id, or None when aperiodic.

    ``mod`` ignores the warp id entirely; ``warp_swizzle`` only sees
    ``warp_id % num_banks``.  Anything else (``scrambled``, custom
    callables) is treated as aperiodic and resolved per warp id.
    """
    # Late import: repro.regalloc imports nothing from repro.trace, but the
    # top-level import order (isa -> trace -> regalloc) stays acyclic this way.
    from ..regalloc import mod_mapping, warp_swizzle_mapping

    if mapper is mod_mapping:
        return 1
    if mapper is warp_swizzle_mapping:
        return num_banks
    return None


class _BankTable:
    """Pre-resolved source-operand banks for one ``(mapper, num_banks)``.

    ``row_for(warp_id)`` returns a tuple indexed by ``pc`` whose entries
    are the instruction's source banks (duplicates preserved) — exactly
    what ``RegisterFile.src_banks`` would compute, precomputed once per
    residue class (periodic mappings) or per warp id (aperiodic ones).
    """

    __slots__ = ("mapper", "num_banks", "period", "_src_regs", "_rows")

    def __init__(
        self, mapper: BankMapper, num_banks: int, src_regs: Tuple[Tuple[int, ...], ...]
    ):
        self.mapper = mapper
        self.num_banks = num_banks
        self.period = _mapper_period(mapper, num_banks)
        self._src_regs = src_regs
        self._rows: Dict[int, Tuple[Tuple[int, ...], ...]] = {}

    def row_for(self, warp_id: int) -> Tuple[Tuple[int, ...], ...]:  # simcheck: hot-ok -- memoized per warp-id residue; builds only on first miss
        key = warp_id % self.period if self.period else warp_id
        row = self._rows.get(key)
        if row is None:
            mapper = self.mapper
            nb = self.num_banks
            row = tuple(
                tuple(mapper(r, warp_id, nb) for r in srcs)
                for srcs in self._src_regs
            )
            self._rows[key] = row
        return row

    def prewarm(self) -> None:
        """Materialize every residue row of a periodic mapping."""
        if self.period:
            for wid in range(self.period):
                self.row_for(wid)


class CompiledWarp:
    """One warp trace, lowered to flat parallel tuples (see module doc)."""

    __slots__ = (
        "insts",
        "length",
        "src_regs",
        "hazard_masks",
        "dst_bits",
        "unit_ids",
        "reads_rf",
        "num_src",
        "flags",
        "_bank_tables",
    )

    def __init__(self, instructions: Tuple[Instruction, ...]):
        self.insts = instructions
        self.length = len(instructions)
        self.src_regs: Tuple[Tuple[int, ...], ...] = tuple(
            inst.src_regs for inst in instructions
        )
        hazard_masks = []
        dst_bits = []
        unit_ids = []
        reads_rf = []
        num_src = []
        flags = []
        for inst in instructions:
            info = inst.info
            if info.is_exit:
                # EXIT waits for the whole scoreboard to drain.
                mask = -1
            else:
                mask = 1 << inst.dst_reg if inst.dst_reg is not None else 0
                for r in inst.src_regs:
                    mask |= 1 << r
            hazard_masks.append(mask)
            dst_bits.append(1 << inst.dst_reg if inst.dst_reg is not None else 0)
            unit_ids.append(UNIT_INDEX[info.unit])
            reads_rf.append(inst.reads_rf)
            num_src.append(inst.num_src)
            flags.append(
                (F_BARRIER if info.is_barrier else 0)
                | (F_EXIT if info.is_exit else 0)
                | (F_MEMORY if info.is_memory else 0)
            )
        self.hazard_masks = tuple(hazard_masks)
        self.dst_bits = tuple(dst_bits)
        self.unit_ids = tuple(unit_ids)
        self.reads_rf = tuple(reads_rf)
        self.num_src = tuple(num_src)
        self.flags = tuple(flags)
        self._bank_tables: Dict[Tuple[BankMapper, int], _BankTable] = {}

    def bank_table(self, mapper: BankMapper, num_banks: int) -> _BankTable:  # simcheck: hot-ok -- memoized per (mapper, banks); builds only on first miss
        key = (mapper, num_banks)
        table = self._bank_tables.get(key)
        if table is None:
            table = _BankTable(mapper, num_banks, self.src_regs)
            self._bank_tables[key] = table
        return table


def compile_warp_trace(trace: "WarpTrace") -> CompiledWarp:
    """The compiled form of ``trace``, cached on the trace object."""
    code = getattr(trace, "_code", None)
    if code is None:
        code = CompiledWarp(tuple(trace.instructions))
        trace._code = code  # type: ignore[attr-defined]
    return code


def compile_kernel(
    kernel: "KernelTrace",
    mapper: Optional[BankMapper] = None,
    num_banks: Optional[int] = None,
) -> int:
    """Compile every unique warp trace of ``kernel``; returns the count.

    Traces are deduplicated via the ``_code`` attribute memo
    (``KernelTrace.uniform`` shares one ``CTATrace`` across the grid, so a
    4096-CTA kernel compiles its warps once).  With ``mapper``/``num_banks``
    given, the bank tables of periodic mappings are prewarmed too, so a
    simulation afterwards never computes bank layouts on the hot path.
    """
    compiled = 0
    for cta in kernel.ctas:
        for trace in cta.warps:
            code = getattr(trace, "_code", None)
            if code is None:
                code = compile_warp_trace(trace)
                compiled += 1
            if mapper is not None and num_banks is not None:
                code.bank_table(mapper, num_banks).prewarm()
    return compiled
