"""Kernel traces: a grid of thread blocks, each a list of warp traces.

A :class:`KernelTrace` also records the per-CTA resource demands (registers
per thread, shared memory) that the thread-block scheduler uses to decide
how many CTAs fit on an SM — the occupancy calculation that, combined with
CTA-granularity deallocation, produces the sub-core imbalance pathology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from .warp_trace import WarpTrace

#: Threads per warp on every architecture the paper studies.
WARP_SIZE = 32


@dataclass
class CTATrace:
    """The warp traces of one thread block (CTA)."""

    warps: List[WarpTrace]

    def __post_init__(self) -> None:
        if not self.warps:
            raise ValueError("a CTA must contain at least one warp")

    @property
    def num_warps(self) -> int:
        return len(self.warps)

    @property
    def num_threads(self) -> int:
        return len(self.warps) * WARP_SIZE

    @property
    def dynamic_instructions(self) -> int:
        return sum(w.dynamic_instructions for w in self.warps)

    def max_register(self) -> int:
        return max(w.max_register() for w in self.warps)


@dataclass
class KernelTrace:
    """A full kernel: CTAs plus launch-time resource requirements."""

    name: str
    ctas: List[CTATrace]
    regs_per_thread: int = 32
    shared_mem_per_cta: int = 0
    #: Average same-bank serialization degree of this kernel's LDS/STS
    #: accesses (1 = conflict-free); see :mod:`repro.memory.shared_memory`.
    shared_conflict_degree: int = 1

    def __post_init__(self) -> None:
        if not self.ctas:
            raise ValueError("a kernel must contain at least one CTA")
        if self.regs_per_thread < 1:
            raise ValueError("regs_per_thread must be >= 1")
        if self.shared_mem_per_cta < 0:
            raise ValueError("shared_mem_per_cta must be >= 0")
        needed = max(c.max_register() for c in self.ctas) + 1
        if needed > self.regs_per_thread:
            raise ValueError(
                f"kernel {self.name!r} references register R{needed - 1} but "
                f"declares only {self.regs_per_thread} registers per thread"
            )

    @property
    def num_ctas(self) -> int:
        return len(self.ctas)

    @property
    def warps_per_cta(self) -> int:
        """Warps in the first CTA (all CTAs of a kernel are uniform-size)."""
        return self.ctas[0].num_warps

    @property
    def total_warps(self) -> int:
        return sum(c.num_warps for c in self.ctas)

    @property
    def dynamic_instructions(self) -> int:
        return sum(c.dynamic_instructions for c in self.ctas)

    def regs_per_warp(self) -> int:
        return self.regs_per_thread * WARP_SIZE

    def regs_per_cta(self) -> int:
        return self.regs_per_warp() * self.warps_per_cta

    @staticmethod
    def uniform(
        name: str,
        cta: CTATrace,
        num_ctas: int,
        regs_per_thread: int = 32,
        shared_mem_per_cta: int = 0,
        shared_conflict_degree: int = 1,
    ) -> "KernelTrace":
        """A kernel whose CTAs all share one trace (replicated by reference —
        warp state lives in the simulator, not the trace, so sharing is safe).
        """
        if num_ctas < 1:
            raise ValueError("num_ctas must be >= 1")
        return KernelTrace(
            name=name,
            ctas=[cta] * num_ctas,
            regs_per_thread=regs_per_thread,
            shared_mem_per_cta=shared_mem_per_cta,
            shared_conflict_degree=shared_conflict_degree,
        )
