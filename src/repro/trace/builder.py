"""Fluent construction of synthetic warp and kernel traces.

:class:`TraceBuilder` is the low-level brick used by the microbenchmarks and
the suite-profile generator: it emits instruction streams with controllable
register working sets, operand counts, and memory behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..isa import Instruction, MemRef, Opcode, bar, exit_
from .kernel_trace import CTATrace, KernelTrace
from .warp_trace import WarpTrace


class TraceBuilder:
    """Accumulates instructions for a single warp trace."""

    def __init__(self) -> None:
        self._insts: List[Instruction] = []

    # -- raw --------------------------------------------------------------

    def emit(self, inst: Instruction) -> "TraceBuilder":
        self._insts.append(inst)
        return self

    def extend(self, insts: Sequence[Instruction]) -> "TraceBuilder":
        self._insts.extend(insts)
        return self

    # -- common shapes ------------------------------------------------------

    def fma_chain(self, count: int, base_reg: int = 0, regs: int = 8) -> "TraceBuilder":
        """``count`` dependent FFMA instructions cycling a small register window.

        Models the FMA microbenchmark of Sec. III-B: arithmetic on data
        resident in the register file.
        """
        if regs < 4:
            raise ValueError("fma_chain needs at least 4 registers")
        for i in range(count):
            d = base_reg + (i % regs)
            a = base_reg + ((i + 1) % regs)
            b = base_reg + ((i + 2) % regs)
            c = base_reg + ((i + 3) % regs)
            self._insts.append(Instruction(Opcode.FFMA, dst_reg=d, src_regs=(a, b, c)))
        return self

    def compute_block(
        self,
        count: int,
        rng: np.random.Generator,
        regs: int = 16,
        base_reg: int = 0,
        operand_weights: Sequence[float] = (0.2, 0.4, 0.4),
        fp_fraction: float = 0.7,
        sfu_fraction: float = 0.0,
        tensor_fraction: float = 0.0,
    ) -> "TraceBuilder":
        """Emit ``count`` arithmetic instructions with a random operand mix.

        ``operand_weights`` gives the probability of 1-, 2-, and 3-source
        instructions; registers are drawn uniformly from a window of
        ``regs`` registers starting at ``base_reg``.  This is the knob the
        workload profiles use to set register-file pressure.
        """
        weights = np.asarray(operand_weights, dtype=float)
        weights = weights / weights.sum()
        n_ops = rng.choice([1, 2, 3], size=count, p=weights)
        kinds = rng.random(count)
        regs_drawn = rng.integers(base_reg, base_reg + regs, size=(count, 4))
        for i in range(count):
            k = int(n_ops[i])
            srcs = tuple(int(r) for r in regs_drawn[i, :k])
            dst = int(regs_drawn[i, 3])
            if kinds[i] < tensor_fraction:
                op = Opcode.HMMA
                srcs = tuple(int(r) for r in regs_drawn[i, :3])
            elif kinds[i] < tensor_fraction + sfu_fraction:
                op = Opcode.MUFU
                srcs = (int(regs_drawn[i, 0]),)
            elif kinds[i] < tensor_fraction + sfu_fraction + fp_fraction:
                op = (Opcode.FADD, Opcode.FMUL, Opcode.FFMA)[min(k, 3) - 1]
            else:
                op = (Opcode.SHF, Opcode.IADD, Opcode.IMAD)[min(k, 3) - 1]
            self._insts.append(Instruction(op, dst_reg=dst, src_regs=srcs))
        return self

    def global_load(
        self,
        dst: int,
        addr_reg: int,
        base_address: int,
        num_lines: int = 1,
    ) -> "TraceBuilder":
        self._insts.append(
            Instruction(
                Opcode.LDG,
                dst_reg=dst,
                src_regs=(addr_reg,),
                mem=MemRef(base_address=base_address, num_lines=num_lines),
            )
        )
        return self

    def global_store(
        self,
        data_reg: int,
        addr_reg: int,
        base_address: int,
        num_lines: int = 1,
    ) -> "TraceBuilder":
        self._insts.append(
            Instruction(
                Opcode.STG,
                src_regs=(data_reg, addr_reg),
                mem=MemRef(base_address=base_address, num_lines=num_lines, is_store=True),
            )
        )
        return self

    def shared_load(self, dst: int, addr_reg: int) -> "TraceBuilder":
        self._insts.append(Instruction(Opcode.LDS, dst_reg=dst, src_regs=(addr_reg,)))
        return self

    def barrier(self) -> "TraceBuilder":
        self._insts.append(bar())
        return self

    def build(self) -> WarpTrace:
        """Finalize into a :class:`WarpTrace` (EXIT appended automatically)."""
        return WarpTrace.from_instructions(self._insts)


def make_cta(warp_traces: Sequence[WarpTrace]) -> CTATrace:
    return CTATrace(list(warp_traces))


def make_kernel(
    name: str,
    warp_traces: Sequence[WarpTrace],
    num_ctas: int = 1,
    regs_per_thread: Optional[int] = None,
    shared_mem_per_cta: int = 0,
) -> KernelTrace:
    """Kernel of ``num_ctas`` identical CTAs built from ``warp_traces``.

    ``regs_per_thread`` defaults to the smallest count covering every
    register the traces reference.
    """
    cta = make_cta(warp_traces)
    if regs_per_thread is None:
        regs_per_thread = max(8, cta.max_register() + 1)
    return KernelTrace.uniform(
        name,
        cta,
        num_ctas=num_ctas,
        regs_per_thread=regs_per_thread,
        shared_mem_per_cta=shared_mem_per_cta,
    )
