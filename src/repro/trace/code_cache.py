"""Content-addressed disk cache for compiled kernel traces.

Synthesizing a kernel trace from its :class:`~repro.workloads.AppProfile`
and lowering it to :class:`~repro.trace.compiled.CompiledWarp` form is pure
per-app work, yet an experiment grid repeats it for every (app, design)
point: 13 designs sharing ``cg-lou`` synthesize the identical trace 13
times.  This module stores the finished artifact — the ``KernelTrace``
with its compiled code and prewarmed bank tables attached — as a pickle
keyed by everything that determines its content:

* :data:`CODE_VERSION` (the compiled representation's own schema),
* ``PROFILE_VERSION`` (the profile → trace synthesis pipeline version),
* the full profile payload,
* the bank-mapping name and bank count (they shape the pre-resolved
  bank tables).

Changing any of these changes the key, so stale entries are simply never
addressed again — invalidation by construction, same discipline as the
experiment engine's result cache.

Location: ``$REPRO_TRACE_CACHE_DIR`` when set, else
``~/.cache/repro-sim/trace-code``.  Writers stage through a temp file and
``os.replace`` so concurrent engine workers never observe torn entries;
unreadable or version-skewed entries are treated as misses and removed
best-effort.

This module deliberately knows nothing about :mod:`repro.workloads` (which
imports :mod:`repro.trace`); callers pass the key material and a builder.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Tuple

#: Schema version of the compiled-trace artifact.  Bump whenever
#: :class:`~repro.trace.compiled.CompiledWarp`'s layout or the pickled
#: envelope changes; old entries then miss instead of unpickling garbage.
CODE_VERSION = 1

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_TRACE_CACHE_DIR"

_MAGIC = "repro-code"


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sim" / "trace-code"


def code_key(
    profile_version: int,
    profile_payload: Mapping[str, Any],
    mapping_name: str,
    num_banks: int,
) -> str:
    """Content hash addressing one compiled kernel on disk."""
    material = json.dumps(
        {
            "code_version": CODE_VERSION,
            "profile_version": profile_version,
            "profile": dict(profile_payload),
            "bank_mapping": mapping_name,
            "num_banks": num_banks,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(material.encode()).hexdigest()


def _entry_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.code.pkl"


def load_compiled(cache_dir: Path, key: str) -> Optional[Any]:
    """The cached artifact for ``key``, or None on miss/corruption."""
    path = _entry_path(cache_dir, key)
    try:
        with open(path, "rb") as fh:
            envelope = pickle.load(fh)
    except FileNotFoundError:
        return None
    except Exception:
        _discard(path)
        return None
    if (
        not isinstance(envelope, tuple)
        or len(envelope) != 3
        or envelope[0] != _MAGIC
        or envelope[1] != CODE_VERSION
    ):
        _discard(path)
        return None
    return envelope[2]


def store_compiled(cache_dir: Path, key: str, artifact: Any) -> None:
    """Atomically persist ``artifact`` under ``key`` (best-effort)."""
    path = _entry_path(cache_dir, key)
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(cache_dir), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump((_MAGIC, CODE_VERSION, artifact), fh, protocol=4)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        # A read-only or full cache dir degrades to recompilation, never
        # to failure.
        pass


def get_or_build(
    cache_dir: Optional[Path],
    key: str,
    builder: Callable[[], Any],
) -> Tuple[Any, str]:
    """Load ``key`` from ``cache_dir`` or build and store it.

    Returns ``(artifact, source)`` with source ``"disk"`` on a cache hit
    and ``"compile"`` on a build.  ``cache_dir=None`` disables the disk
    layer entirely (always compiles, stores nothing).
    """
    if cache_dir is not None:
        artifact = load_compiled(cache_dir, key)
        if artifact is not None:
            return artifact, "disk"
    artifact = builder()
    if cache_dir is not None:
        store_compiled(cache_dir, key, artifact)
    return artifact, "compile"


def _discard(path: Path) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass
