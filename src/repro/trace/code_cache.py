"""Content-addressed disk cache for compiled kernel traces.

Synthesizing a kernel trace from its :class:`~repro.workloads.AppProfile`
and lowering it to :class:`~repro.trace.compiled.CompiledWarp` form is pure
per-app work, yet an experiment grid repeats it for every (app, design)
point: 13 designs sharing ``cg-lou`` synthesize the identical trace 13
times.  This module stores the finished artifact — the ``KernelTrace``
with its compiled code and prewarmed bank tables attached — as a pickle
keyed by everything that determines its content:

* :data:`CODE_VERSION` (the compiled representation's own schema),
* ``PROFILE_VERSION`` (the profile → trace synthesis pipeline version),
* the full profile payload,
* the bank-mapping name and bank count (they shape the pre-resolved
  bank tables).

Changing any of these changes the key, so stale entries are simply never
addressed again — invalidation by construction, same discipline as the
experiment engine's result cache.

Location: ``$REPRO_TRACE_CACHE_DIR`` when set, else
``~/.cache/repro-sim/trace-code``.  Writers stage through a temp file and
``os.replace`` so concurrent engine workers never observe torn entries.

Failure handling follows the engine's degradation ladder
(``docs/robustness.md``): unreadable or version-skewed entries are
treated as misses and *quarantined* (moved into a ``quarantine/``
subdirectory under an inode guard, so a concurrent valid rewrite is
never discarded), and :data:`STORE_ERROR_THRESHOLD` consecutive store
``OSError``s degrade this process to memory-only compilation.  Both
events append ``(kind, detail)`` pairs to a per-process notes queue;
engine workers drain it (:func:`drain_notes`) and ship the notes to the
parent, which deduplicates them into structured manifest warnings.

This module deliberately knows nothing about :mod:`repro.workloads` (which
imports :mod:`repro.trace`); callers pass the key material and a builder.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, List, Mapping, Optional, Tuple

from ..chaos import trip as chaos_trip

#: Schema version of the compiled-trace artifact.  Bump whenever
#: :class:`~repro.trace.compiled.CompiledWarp`'s layout or the pickled
#: envelope changes; old entries then miss instead of unpickling garbage.
CODE_VERSION = 1

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_TRACE_CACHE_DIR"

#: Consecutive store ``OSError``s before this process stops writing the
#: trace-code cache (memory-only compilation; one note, not one per app).
STORE_ERROR_THRESHOLD = 3

_MAGIC = "repro-code"

#: Per-process degradation state for the store path.
_STORE_STATE = {"failures": 0, "disabled": False}

#: Per-process queue of ``(kind, detail)`` degradation events.  Kinds
#: reuse the manifest warning vocabulary (``cache_quarantine``,
#: ``cache_degraded``) so the engine can forward them verbatim.
_NOTES: List[Tuple[str, str]] = []


def drain_notes() -> List[Tuple[str, str]]:
    """Take (and clear) this process's pending degradation notes."""
    notes = list(_NOTES)
    _NOTES.clear()
    return notes


def reset_degradation() -> None:
    """Re-arm the store path and drop pending notes (tests, new runs)."""
    _STORE_STATE["failures"] = 0
    _STORE_STATE["disabled"] = False
    _NOTES.clear()


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sim" / "trace-code"


def code_key(
    profile_version: int,
    profile_payload: Mapping[str, Any],
    mapping_name: str,
    num_banks: int,
) -> str:
    """Content hash addressing one compiled kernel on disk."""
    material = json.dumps(
        {
            "code_version": CODE_VERSION,
            "profile_version": profile_version,
            "profile": dict(profile_payload),
            "bank_mapping": mapping_name,
            "num_banks": num_banks,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(material.encode()).hexdigest()


def _entry_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.code.pkl"


def load_compiled(cache_dir: Path, key: str) -> Optional[Any]:
    """The cached artifact for ``key``, or None on miss/corruption.

    Corrupted pickles and wrong-generation envelopes (stale magic or
    :data:`CODE_VERSION`) are quarantined — moved aside, never served,
    never silently deleted — and the artifact recompiles.
    """
    path = _entry_path(cache_dir, key)
    chaos_trip("code_read", key, path=str(path))
    try:
        fh = open(path, "rb")
    except OSError:
        return None
    with fh:
        try:
            envelope = pickle.load(fh)
        except Exception:
            _quarantine(path, fh, "unreadable pickle")
            return None
        if (
            not isinstance(envelope, tuple)
            or len(envelope) != 3
            or envelope[0] != _MAGIC
            or envelope[1] != CODE_VERSION
        ):
            _quarantine(path, fh, "wrong cache generation")
            return None
    return envelope[2]


def store_compiled(cache_dir: Path, key: str, artifact: Any) -> None:
    """Atomically persist ``artifact`` under ``key`` (best-effort).

    After :data:`STORE_ERROR_THRESHOLD` consecutive ``OSError``s the
    store path disables itself for this process (memory-only) and queues
    a single ``cache_degraded`` note instead of erroring per artifact.
    """
    if _STORE_STATE["disabled"]:
        return
    path = _entry_path(cache_dir, key)
    try:
        chaos_trip("code_store", key)
        cache_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(cache_dir), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump((_MAGIC, CODE_VERSION, artifact), fh, protocol=4)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        # A read-only or full cache dir degrades to recompilation, never
        # to failure.
        _STORE_STATE["failures"] += 1
        if _STORE_STATE["failures"] >= STORE_ERROR_THRESHOLD:
            _STORE_STATE["disabled"] = True
            _NOTES.append(
                (
                    "cache_degraded",
                    f"{_STORE_STATE['failures']} consecutive trace-code "
                    f"store errors ({cache_dir}); compiled traces are now "
                    "memory-only in this process",
                )
            )
        return
    _STORE_STATE["failures"] = 0
    chaos_trip("code_write", key, path=str(path))


def get_or_build(
    cache_dir: Optional[Path],
    key: str,
    builder: Callable[[], Any],
) -> Tuple[Any, str]:
    """Load ``key`` from ``cache_dir`` or build and store it.

    Returns ``(artifact, source)`` with source ``"disk"`` on a cache hit
    and ``"compile"`` on a build.  ``cache_dir=None`` disables the disk
    layer entirely (always compiles, stores nothing).
    """
    if cache_dir is not None:
        artifact = load_compiled(cache_dir, key)
        if artifact is not None:
            return artifact, "disk"
    artifact = builder()
    if cache_dir is not None:
        store_compiled(cache_dir, key, artifact)
    return artifact, "compile"


def _quarantine(path: Path, fh, why: str) -> None:
    """Move the corrupted entry aside, guarded by file identity.

    The unlink/rename happens only while ``path`` still names the file
    open as ``fh`` — a concurrent ``store_compiled`` may have already
    replaced the corrupted entry with a fresh one, which must survive.
    The bad file is preserved under ``quarantine/`` for post-mortems;
    a read-only directory falls back to a guarded unlink attempt.
    """
    try:
        opened = os.fstat(fh.fileno())
        current = os.stat(path)
        if (opened.st_dev, opened.st_ino) != (current.st_dev, current.st_ino):
            return
        quarantine_dir = path.parent / "quarantine"
        try:
            quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine_dir / path.name)
        except OSError:
            os.unlink(path)
    except OSError:
        return
    _NOTES.append(
        (
            "cache_quarantine",
            f"corrupted trace-code entry {path.name} quarantined ({why}); "
            "artifact will recompile",
        )
    )
