"""Trace-driven workload representation: warp, CTA, and kernel traces."""

from .builder import TraceBuilder, make_cta, make_kernel
from .kernel_trace import WARP_SIZE, CTATrace, KernelTrace
from .text_format import (
    TraceParseError,
    dump_kernel,
    format_instruction,
    load_kernel,
    parse_instruction,
    parse_kernel,
    save_kernel,
)
from .warp_trace import WarpTrace

__all__ = [
    "TraceBuilder",
    "make_cta",
    "make_kernel",
    "WARP_SIZE",
    "CTATrace",
    "KernelTrace",
    "WarpTrace",
    "TraceParseError",
    "dump_kernel",
    "format_instruction",
    "load_kernel",
    "parse_instruction",
    "parse_kernel",
    "save_kernel",
]
