"""Trace-driven workload representation: warp, CTA, and kernel traces."""

from .builder import TraceBuilder, make_cta, make_kernel
from .code_cache import CACHE_DIR_ENV, CODE_VERSION, code_key, default_cache_dir
from .compiled import CompiledWarp, compile_kernel, compile_warp_trace
from .kernel_trace import WARP_SIZE, CTATrace, KernelTrace
from .text_format import (
    TraceParseError,
    dump_kernel,
    format_instruction,
    load_kernel,
    parse_instruction,
    parse_kernel,
    save_kernel,
)
from .warp_trace import WarpTrace

__all__ = [
    "TraceBuilder",
    "make_cta",
    "make_kernel",
    "CACHE_DIR_ENV",
    "CODE_VERSION",
    "code_key",
    "default_cache_dir",
    "CompiledWarp",
    "compile_kernel",
    "compile_warp_trace",
    "WARP_SIZE",
    "CTATrace",
    "KernelTrace",
    "WarpTrace",
    "TraceParseError",
    "dump_kernel",
    "format_instruction",
    "load_kernel",
    "parse_instruction",
    "parse_kernel",
    "save_kernel",
]
