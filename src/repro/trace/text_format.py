"""Textual trace format: a SASS-like assembly for warp traces.

Accel-Sim consumes textual SASS trace files; this module gives the
simulator the same workflow — kernels can be written, inspected and
version-controlled as plain text:

.. code-block:: text

    .kernel demo
    .regs_per_thread 16
    .shared_mem 4096
    .ctas 2

    .cta
    .warp
    FFMA R4, R1, R2, R3
    LDG R5, [R0] lines=4 addr=0x1000
    BAR
    EXIT
    .warp
    IADD R6, R4, R5
    EXIT

Grammar
-------
* ``.kernel NAME`` starts a kernel; ``.regs_per_thread``, ``.shared_mem``,
  ``.shared_conflict_degree`` and ``.ctas`` set its attributes (``.ctas N``
  replicates the *single* described CTA N times).
* ``.cta`` starts a thread block; ``.warp`` starts a warp trace.
* Instructions are ``OPCODE [DST,] SRC...`` with registers written ``Rn``.
  Stores have no destination.  Global memory operands carry a bracketed
  address register plus ``lines=`` / ``addr=`` attributes.
* ``#`` starts a comment; blank lines are ignored.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..isa import Instruction, MemRef, Opcode
from .kernel_trace import CTATrace, KernelTrace
from .warp_trace import WarpTrace

_REG = re.compile(r"^R(\d+)$")
_MEM = re.compile(r"^\[R(\d+)\]$")
_ATTR = re.compile(r"^(\w+)=(\S+)$")


class TraceParseError(ValueError):
    """Raised on malformed trace text, with a line number."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


# ---------------------------------------------------------------------------
# Disassembly (traces -> text)
# ---------------------------------------------------------------------------

def format_instruction(inst: Instruction) -> str:
    """One instruction in the textual format."""
    parts = [inst.opcode.name]
    operands = []
    if inst.dst_reg is not None:
        operands.append(f"R{inst.dst_reg}")
    if inst.opcode.is_global_memory:
        assert inst.mem is not None
        # address register is the last source by convention
        data_srcs = inst.src_regs[:-1]
        addr = inst.src_regs[-1]
        operands.extend(f"R{r}" for r in data_srcs)
        operands.append(f"[R{addr}]")
        parts.append(", ".join(operands))
        parts.append(f"lines={inst.mem.num_lines}")
        parts.append(f"addr={inst.mem.base_address:#x}")
        return " ".join(parts)
    operands.extend(f"R{r}" for r in inst.src_regs)
    if operands:
        parts.append(", ".join(operands))
    return " ".join(parts)


def dump_kernel(kernel: KernelTrace) -> str:
    """Serialize a kernel trace to text.

    Kernels whose CTAs all share one trace object (the common
    ``KernelTrace.uniform`` case) serialize a single ``.cta`` block plus a
    ``.ctas N`` directive; heterogeneous kernels list every CTA.
    """
    lines: List[str] = [f".kernel {kernel.name}"]
    lines.append(f".regs_per_thread {kernel.regs_per_thread}")
    if kernel.shared_mem_per_cta:
        lines.append(f".shared_mem {kernel.shared_mem_per_cta}")
    if kernel.shared_conflict_degree != 1:
        lines.append(f".shared_conflict_degree {kernel.shared_conflict_degree}")

    uniform = all(cta is kernel.ctas[0] for cta in kernel.ctas)
    ctas = [kernel.ctas[0]] if uniform else kernel.ctas
    if uniform and kernel.num_ctas > 1:
        lines.append(f".ctas {kernel.num_ctas}")
    for cta in ctas:
        lines.append("")
        lines.append(".cta")
        for warp in cta.warps:
            lines.append(".warp")
            lines.extend(format_instruction(i) for i in warp.instructions)
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Assembly (text -> traces)
# ---------------------------------------------------------------------------

def parse_instruction(text: str, lineno: int = 0) -> Instruction:
    """Parse one instruction line."""
    body = text.split("#", 1)[0].strip()
    if not body:
        raise TraceParseError(lineno, "empty instruction")
    head, _, rest = body.partition(" ")
    try:
        opcode = Opcode[head.upper()]
    except KeyError:
        raise TraceParseError(lineno, f"unknown opcode {head!r}") from None

    # split trailing attr tokens (lines= / addr=) from the operand list
    attrs = {}
    tokens = rest.split()
    operand_tokens: List[str] = []
    for tok in tokens:
        m = _ATTR.match(tok)
        if m:
            attrs[m.group(1)] = m.group(2)
        else:
            operand_tokens.append(tok)
    operand_text = " ".join(operand_tokens)
    operands = [o.strip() for o in operand_text.split(",") if o.strip()]

    dst: Optional[int] = None
    srcs: List[int] = []
    addr_reg: Optional[int] = None
    for i, op in enumerate(operands):
        mem_m = _MEM.match(op)
        if mem_m:
            addr_reg = int(mem_m.group(1))
            continue
        reg_m = _REG.match(op)
        if not reg_m:
            raise TraceParseError(lineno, f"bad operand {op!r}")
        reg = int(reg_m.group(1))
        writes = opcode.is_memory and opcode in (Opcode.STG, Opcode.STS)
        if i == 0 and dst is None and not writes:
            dst = reg
        else:
            srcs.append(reg)

    mem: Optional[MemRef] = None
    if opcode.is_global_memory:
        if addr_reg is None:
            raise TraceParseError(lineno, f"{opcode.name} needs an [Rn] address operand")
        srcs.append(addr_reg)
        num_lines = int(attrs.get("lines", "1"))
        base = int(attrs.get("addr", "0"), 0)
        mem = MemRef(base_address=base, num_lines=num_lines,
                     is_store=opcode is Opcode.STG)
    elif addr_reg is not None:
        srcs.append(addr_reg)

    if opcode in (Opcode.BAR, Opcode.EXIT, Opcode.NOP) and (dst is not None or srcs):
        raise TraceParseError(lineno, f"{opcode.name} takes no operands")
    try:
        return Instruction(opcode, dst_reg=dst, src_regs=tuple(srcs), mem=mem)
    except ValueError as err:
        raise TraceParseError(lineno, str(err)) from None


def parse_kernel(text: str) -> KernelTrace:
    """Parse a full kernel trace from text."""
    name = None
    regs_per_thread = None
    shared_mem = 0
    conflict_degree = 1
    replicate = 1
    ctas: List[List[List[Instruction]]] = []
    current_cta: Optional[List[List[Instruction]]] = None
    current_warp: Optional[List[Instruction]] = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            directive, _, arg = line.partition(" ")
            arg = arg.strip()
            if directive == ".kernel":
                if name is not None:
                    raise TraceParseError(lineno, "duplicate .kernel")
                if not arg:
                    raise TraceParseError(lineno, ".kernel needs a name")
                name = arg
            elif directive == ".regs_per_thread":
                regs_per_thread = int(arg)
            elif directive == ".shared_mem":
                shared_mem = int(arg)
            elif directive == ".shared_conflict_degree":
                conflict_degree = int(arg)
            elif directive == ".ctas":
                replicate = int(arg)
            elif directive == ".cta":
                current_cta = []
                ctas.append(current_cta)
                current_warp = None
            elif directive == ".warp":
                if current_cta is None:
                    raise TraceParseError(lineno, ".warp outside a .cta")
                current_warp = []
                current_cta.append(current_warp)
            else:
                raise TraceParseError(lineno, f"unknown directive {directive!r}")
            continue
        if current_warp is None:
            raise TraceParseError(lineno, "instruction outside a .warp")
        current_warp.append(parse_instruction(line, lineno))

    if name is None:
        raise TraceParseError(0, "missing .kernel directive")
    if not ctas:
        raise TraceParseError(0, "kernel has no .cta")
    if replicate > 1 and len(ctas) != 1:
        raise TraceParseError(0, ".ctas replication requires exactly one .cta block")

    cta_traces = [
        CTATrace([WarpTrace.from_instructions(w) for w in cta]) for cta in ctas
    ]
    if replicate > 1:
        cta_traces = cta_traces * replicate
    if regs_per_thread is None:
        regs_per_thread = max(8, max(c.max_register() for c in cta_traces) + 1)
    return KernelTrace(
        name=name,
        ctas=cta_traces,
        regs_per_thread=regs_per_thread,
        shared_mem_per_cta=shared_mem,
        shared_conflict_degree=conflict_degree,
    )


def save_kernel(kernel: KernelTrace, path) -> None:
    """Write a kernel trace to a text file."""
    with open(path, "w") as fh:
        fh.write(dump_kernel(kernel))


def load_kernel(path) -> KernelTrace:
    """Read a kernel trace from a text file."""
    with open(path) as fh:
        return parse_kernel(fh.read())
