"""Per-warp instruction streams.

The simulator is trace driven, like Accel-Sim's SASS mode: each warp
executes a fixed, pre-recorded sequence of instructions.  Control flow is
already resolved in the trace (a warp that loops 4096 times simply carries
4096 FFMA entries), which is exactly the abstraction level at which the
paper's issue/operand-read effects arise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

from ..isa import Instruction, Opcode


@dataclass
class WarpTrace:
    """The instruction stream of one warp within a thread block.

    The final instruction of every warp trace must be ``EXIT``; the builder
    appends it automatically.
    """

    instructions: List[Instruction] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.instructions and not self.instructions[-1].opcode.is_exit:
            raise ValueError("warp trace must end with EXIT")
        for inst in self.instructions[:-1]:
            if inst.opcode.is_exit:
                raise ValueError("EXIT may only appear as the final instruction")

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, idx: int) -> Instruction:
        return self.instructions[idx]

    @property
    def dynamic_instructions(self) -> int:
        """Instruction count excluding the trailing EXIT."""
        return max(0, len(self.instructions) - 1)

    def max_register(self) -> int:
        """Highest architectural register id referenced, or -1 if none."""
        regs = [r for inst in self.instructions for r in inst.registers()]
        return max(regs) if regs else -1

    def register_reads(self) -> int:
        """Total register-file source-operand reads in the trace."""
        return sum(inst.num_src_operands for inst in self.instructions)

    def count_opcode(self, opcode: Opcode) -> int:
        return sum(1 for inst in self.instructions if inst.opcode is opcode)

    @staticmethod
    def from_instructions(instructions: Sequence[Instruction]) -> "WarpTrace":
        """Build a trace, appending EXIT if the sequence does not end in one."""
        insts = list(instructions)
        if not insts or not insts[-1].opcode.is_exit:
            from ..isa import exit_

            insts.append(exit_())
        return WarpTrace(insts)
