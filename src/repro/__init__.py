"""repro — reproduction of *Mitigating GPU Core Partitioning Performance
Effects* (Barnes, Shen & Rogers, HPCA 2023).

A cycle-level GPU SM simulator with sub-core partitioning, register-bank-
aware (RBA) warp scheduling, and hashed sub-core warp assignment, plus the
synthetic workloads and experiment harnesses that regenerate the paper's
evaluation figures.

Quickstart::

    from repro import simulate, volta_v100, rba
    from repro.workloads import fma_microbenchmark

    kernel = fma_microbenchmark("unbalanced")
    base = simulate(kernel, volta_v100(), num_sms=1)
    fast = simulate(kernel, rba(), num_sms=1)
    print(base.cycles, fast.cycles)
"""

from .config import (
    AssignmentPolicy,
    GPUConfig,
    MemoryConfig,
    SchedulerPolicy,
    ampere_a100,
    bank_stealing,
    fully_connected,
    kepler,
    rba,
    shuffle,
    shuffle_rba,
    srr,
    tpch_config,
    volta_v100,
    with_cus,
)
from .gpu import GPU, DeadlockError, KernelLaunch, simulate
from .metrics import SimStats, geomean, percent_speedup, speedup
from .obs import Tracer, write_chrome_trace
from .trace import CTATrace, KernelTrace, TraceBuilder, WarpTrace, make_kernel

__version__ = "1.0.0"

__all__ = [
    "AssignmentPolicy",
    "GPUConfig",
    "MemoryConfig",
    "SchedulerPolicy",
    "ampere_a100",
    "bank_stealing",
    "fully_connected",
    "kepler",
    "rba",
    "shuffle",
    "shuffle_rba",
    "srr",
    "tpch_config",
    "volta_v100",
    "with_cus",
    "GPU",
    "DeadlockError",
    "KernelLaunch",
    "simulate",
    "SimStats",
    "geomean",
    "percent_speedup",
    "speedup",
    "Tracer",
    "write_chrome_trace",
    "CTATrace",
    "KernelTrace",
    "TraceBuilder",
    "WarpTrace",
    "make_kernel",
    "__version__",
]
