"""Seeded fault plans: the deterministic grammar of injected failures.

A :class:`FaultPlan` is a small JSON-serializable document describing
*which* faults fire *where*.  Plans are deterministic by construction —
whether a rule fires for a given invocation depends only on the plan's
seed, the rule, the injection-site name, the site key (a point label or
cache key) and a per-process invocation counter; nothing reads entropy
or the wall clock.  The same plan over the same batch therefore injects
the same faults on every run, which is what lets the chaos matrix assert
byte-identical results rather than "it didn't crash".

Plan grammar (JSON)::

    {
      "schema": 1,
      "seed": 31337,
      "rules": [
        {"fault": "crash",    "site": "sim", "match": "rod-nw*", "times": 1},
        {"fault": "corrupt",  "site": "result_read", "times": 2},
        {"fault": "io_error", "site": "result_store", "times": 0},
        {"fault": "slow",     "site": "sim", "seconds": 0.05, "scope": "worker"},
        {"fault": "kill",     "site": "journal", "after": 5}
      ]
    }

Rule fields:

* ``fault`` — one of :data:`FAULTS`:
  ``crash`` (raise :class:`~repro.chaos.hooks.ChaosFault` — a worker
  dies mid-simulation), ``hang``/``slow`` (sleep ``seconds`` — a wedged
  or merely slow worker), ``corrupt`` (garble the file at the injection
  site's path — torn cache entries), ``io_error`` (raise ``OSError`` —
  a full or read-only disk), ``kill`` (``SIGKILL`` the calling process —
  a hard crash for resume testing).
* ``site`` — one of :data:`SITES`; production hooks name the seam they
  guard (``sim``, ``result_read``/``result_write``/``result_store``,
  ``code_read``/``code_write``/``code_store``, ``journal``).
* ``match`` — an :func:`fnmatch.fnmatch` glob over the site key
  (default ``*``).
* ``times`` — maximum firings per process (default 1; 0 = unlimited).
* ``after`` — skip the first N matching invocations (default 0).
* ``p`` — firing probability, decided by hashing (seed, site, fault,
  key): deterministic per key, no RNG (default 1.0).
* ``seconds`` — sleep duration for ``hang``/``slow`` (default 0.0).
* ``scope`` — ``any`` (default), ``worker`` (only in processes other
  than the plan's installing parent) or ``parent``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Plan document layout version; loaders reject unknown versions.
PLAN_SCHEMA_VERSION = 1

#: Injectable fault kinds.
FAULTS = ("crash", "hang", "slow", "corrupt", "io_error", "kill")

#: Named injection sites wired into production code.
SITES = (
    "sim",            # worker simulation entry (crash/hang/slow)
    "result_read",    # engine result cache, before an entry is read
    "result_write",   # engine result cache, after an entry is written
    "result_store",   # engine result cache, store syscall path (io_error)
    "code_read",      # compiled-trace cache, before an entry is read
    "code_write",     # compiled-trace cache, after an entry is written
    "code_store",     # compiled-trace cache, store syscall path (io_error)
    "journal",        # run journal, after an append (kill for resume tests)
)

#: Rule scopes relative to the process that installed the plan.
SCOPES = ("any", "worker", "parent")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule of a plan (see the module grammar)."""

    fault: str
    site: str
    match: str = "*"
    times: int = 1
    after: int = 0
    p: float = 1.0
    seconds: float = 0.0
    scope: str = "any"

    def to_json(self) -> Dict[str, Any]:
        doc = asdict(self)
        # Keep serialized plans minimal: defaults are implied.
        defaults = FaultRule(fault=self.fault, site=self.site)
        for key in ("match", "times", "after", "p", "seconds", "scope"):
            if doc[key] == getattr(defaults, key):
                del doc[key]
        return doc


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic set of fault rules."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": PLAN_SCHEMA_VERSION,
            "seed": self.seed,
            "rules": [rule.to_json() for rule in self.rules],
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    def decide(self, rule: FaultRule, key: str) -> bool:
        """The deterministic probability draw for one (rule, key) pair.

        Hashes the plan seed with the rule's identity and the site key;
        the same inputs fire identically in every process, so a plan's
        behaviour never depends on scheduling order across workers.
        """
        if rule.p >= 1.0:
            return True
        if rule.p <= 0.0:
            return False
        material = f"{self.seed}|{rule.site}|{rule.fault}|{rule.match}|{key}"
        draw = int.from_bytes(
            hashlib.sha256(material.encode("utf-8")).digest()[:8], "big"
        )
        return draw / float(1 << 64) < rule.p


def validate_plan(doc: Any) -> List[str]:
    """Structural problems of a plan document (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["plan must be a JSON object"]
    if doc.get("schema") != PLAN_SCHEMA_VERSION:
        problems.append(
            f"unknown plan schema {doc.get('schema')!r} "
            f"(supported: {PLAN_SCHEMA_VERSION})"
        )
    if not isinstance(doc.get("seed", 0), int):
        problems.append("seed must be an integer")
    rules = doc.get("rules")
    if not isinstance(rules, list):
        return problems + ["rules must be a list"]
    for i, rule in enumerate(rules):
        where = f"rule {i}"
        if not isinstance(rule, dict):
            problems.append(f"{where}: must be an object")
            continue
        if rule.get("fault") not in FAULTS:
            problems.append(
                f"{where}: unknown fault {rule.get('fault')!r} "
                f"(options: {', '.join(FAULTS)})"
            )
        if rule.get("site") not in SITES:
            problems.append(
                f"{where}: unknown site {rule.get('site')!r} "
                f"(options: {', '.join(SITES)})"
            )
        if rule.get("scope", "any") not in SCOPES:
            problems.append(f"{where}: unknown scope {rule.get('scope')!r}")
        if not isinstance(rule.get("match", "*"), str):
            problems.append(f"{where}: match must be a string glob")
        for key, kind in (("times", int), ("after", int)):
            value = rule.get(key, 0)
            if not isinstance(value, int) or value < 0:
                problems.append(f"{where}: {key} must be a non-negative integer")
        for key in ("p", "seconds"):
            value = rule.get(key, 0.0)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"{where}: {key} must be a non-negative number")
    return problems


def plan_from_json(doc: Any) -> FaultPlan:
    """Parse a plan document; raises ``ValueError`` on structural problems."""
    problems = validate_plan(doc)
    if problems:
        raise ValueError(f"invalid fault plan: {problems[0]}")
    rules = tuple(
        FaultRule(
            fault=rule["fault"],
            site=rule["site"],
            match=rule.get("match", "*"),
            times=rule.get("times", 1),
            after=rule.get("after", 0),
            p=float(rule.get("p", 1.0)),
            seconds=float(rule.get("seconds", 0.0)),
            scope=rule.get("scope", "any"),
        )
        for rule in doc["rules"]
    )
    return FaultPlan(seed=doc.get("seed", 0), rules=rules)


def plan_loads(text: str) -> FaultPlan:
    """Parse a plan from JSON text; raises ``ValueError``."""
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise ValueError(f"fault plan is not valid JSON: {exc}") from None
    return plan_from_json(doc)


def single_fault_plan(
    fault: str,
    site: str,
    match: str = "*",
    times: int = 1,
    seconds: float = 0.0,
    scope: str = "any",
    after: int = 0,
    seed: int = 0,
) -> FaultPlan:
    """Convenience constructor for one-rule plans (tests, smoke matrix)."""
    return FaultPlan(
        seed=seed,
        rules=(
            FaultRule(
                fault=fault,
                site=site,
                match=match,
                times=times,
                after=after,
                seconds=seconds,
                scope=scope,
            ),
        ),
    )
