"""Deterministic fault injection for the experiment engine (``repro.chaos``).

The engine fans 112-app figure sweeps across process pools with two disk
caches; this package is how its failure handling is *verified* rather
than spot-fixed.  A seeded :class:`FaultPlan` describes which faults
fire where — worker crashes, hangs, slow workers, cache-entry corruption
on read or write, ``OSError`` on store, and hard process kills — and is
activated through an environment variable, so engine worker processes
inherit it with no extra plumbing (:mod:`repro.chaos.hooks`).

Because plans are deterministic (hash draws, per-process counters, no
RNG, no wall clock), chaos runs have a stronger oracle than "survived":
**every fault class must produce byte-identical stats digests to a
fault-free run**, and a killed-then-resumed batch must re-simulate only
the points missing from its run journal.  ``python -m repro.chaos
--smoke`` gates exactly that in CI; see ``docs/robustness.md`` for the
failure model and the degradation ladder the faults exercise.

CLI::

    python -m repro.chaos --smoke          # fault matrix, digest oracle
    python -m repro.chaos --kill-resume    # SIGKILL mid-batch, then --resume
    python -m repro.chaos --list           # fault classes and sites
"""

from .hooks import (
    PARENT_ENV,
    PLAN_ENV,
    ChaosFault,
    active_plan,
    clear_plan,
    install_plan,
    reset,
    trip,
)
from .plan import (
    FAULTS,
    PLAN_SCHEMA_VERSION,
    SITES,
    FaultPlan,
    FaultRule,
    plan_from_json,
    plan_loads,
    single_fault_plan,
    validate_plan,
)

__all__ = [
    "FAULTS",
    "PARENT_ENV",
    "PLAN_ENV",
    "PLAN_SCHEMA_VERSION",
    "SITES",
    "ChaosFault",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "clear_plan",
    "install_plan",
    "plan_from_json",
    "plan_loads",
    "reset",
    "single_fault_plan",
    "trip",
    "validate_plan",
]
