"""The process-wide injection switchboard: env-keyed, zero-cost when off.

Production code guards its failure seams with one call::

    from ..chaos import trip
    trip("result_read", key, path=entry_path)

When no plan is active (the default), ``trip`` is a dict lookup and a
``None`` test — there is nothing to configure, no object to thread
through constructors, and results are byte-identical to a build without
the hook.  When a plan *is* active, the first matching armed rule fires
its effect: raise :class:`ChaosFault` (``crash``), sleep (``hang`` /
``slow``), garble the file at ``path`` (``corrupt``), raise ``OSError``
(``io_error``), or ``SIGKILL`` the calling process (``kill``).

Activation is environment-keyed (:data:`PLAN_ENV` holds the plan JSON,
or ``@/path/to/plan.json``): worker processes spawned by the experiment
engine inherit the environment and therefore the plan, with no pickling
or pool plumbing.  :data:`PARENT_ENV` records the installing process id
so rules can scope themselves to ``worker`` or ``parent`` processes —
that is how a plan crashes pool workers without also crashing the
in-parent retry that heals them.

Rule arming (``times`` / ``after`` counters) is per-process.  The
deterministic part of a decision — the ``p`` draw — hashes the plan
seed with the site key, so it is identical in every process; see
:mod:`repro.chaos.plan`.
"""

from __future__ import annotations

import fnmatch
import os
import signal
import time
from typing import Any, Dict, Optional

from .plan import FaultPlan, FaultRule, plan_loads

#: Environment variable carrying the active plan (JSON text, or
#: ``@path`` pointing at a JSON file).
PLAN_ENV = "REPRO_CHAOS_PLAN"

#: Environment variable carrying the pid of the installing process.
PARENT_ENV = "REPRO_CHAOS_PARENT"


class ChaosFault(RuntimeError):
    """An injected failure (the ``crash`` fault)."""


#: Per-process hook state: plan memo and per-rule invocation counters.
_state: Dict[str, Any] = {"loaded": False, "plan": None, "counters": {}}


def reset() -> None:
    """Forget the memoized plan; the next ``trip`` re-reads the env."""
    _state["loaded"] = False
    _state["plan"] = None
    _state["counters"] = {}


def install_plan(plan: FaultPlan, env: Optional[Dict[str, str]] = None) -> None:
    """Activate ``plan`` for this process and all future children."""
    target = os.environ if env is None else env
    target[PLAN_ENV] = plan.dumps()
    target[PARENT_ENV] = str(os.getpid())
    reset()


def clear_plan(env: Optional[Dict[str, str]] = None) -> None:
    """Deactivate any plan for this process and future children."""
    target = os.environ if env is None else env
    target.pop(PLAN_ENV, None)
    target.pop(PARENT_ENV, None)
    reset()


def active_plan() -> Optional[FaultPlan]:
    """The plan this process runs under, memoized per process."""
    if not _state["loaded"]:
        _state["loaded"] = True
        _state["counters"] = {}
        raw = os.environ.get(PLAN_ENV)
        if raw:
            if raw.startswith("@"):
                with open(raw[1:], "r", encoding="utf-8") as fh:
                    raw = fh.read()
            _state["plan"] = plan_loads(raw)
    return _state["plan"]


def _in_scope(rule: FaultRule) -> bool:
    if rule.scope == "any":
        return True
    parent = os.environ.get(PARENT_ENV)
    is_parent = parent is not None and parent == str(os.getpid())
    return is_parent if rule.scope == "parent" else not is_parent


def _select(
    plan: FaultPlan, site: str, key: str, path: Optional[str]
) -> Optional[FaultRule]:
    """First matching armed rule for this invocation (counters advance)."""
    for index, rule in enumerate(plan.rules):
        if rule.site != site or not _in_scope(rule):
            continue
        if not fnmatch.fnmatch(key, rule.match):
            continue
        if rule.fault == "corrupt" and (path is None or not os.path.exists(path)):
            continue
        if not plan.decide(rule, key):
            continue
        seen = _state["counters"].get(index, 0)
        _state["counters"][index] = seen + 1
        if seen < rule.after:
            continue
        if rule.times and seen - rule.after >= rule.times:
            continue
        return rule
    return None


def _corrupt_file(path: str) -> None:
    """Garble the entry at ``path``: truncate to half, append junk bytes."""
    try:
        keep = os.path.getsize(path) // 2
        with open(path, "r+b") as fh:
            fh.truncate(keep)
            fh.seek(keep)
            fh.write(b"\x00\xff chaos")
    except OSError:
        pass


def trip(site: str, key: str, path: Optional[str] = None) -> None:
    """Fire the active plan's first matching rule at ``site``, if any.

    ``key`` is the site's identity (a point label, a cache key); ``path``
    is the file a ``corrupt`` fault would damage.  No plan, or no match:
    returns immediately.
    """
    plan = active_plan()
    if plan is None:
        return
    rule = _select(plan, site, key, path)
    if rule is None:
        return
    if rule.fault == "crash":
        raise ChaosFault(f"chaos: injected crash at {site} ({key})")
    if rule.fault == "io_error":
        raise OSError(f"chaos: injected I/O failure at {site} ({key})")
    if rule.fault in ("hang", "slow"):
        time.sleep(rule.seconds)
        return
    if rule.fault == "corrupt":
        assert path is not None  # _select requires an existing path
        _corrupt_file(path)
        return
    if rule.fault == "kill":
        os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))
