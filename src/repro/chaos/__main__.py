"""Chaos smoke harness: injected faults must not change a single byte.

Usage::

    python -m repro.chaos --list                 # fault classes and sites
    python -m repro.chaos --smoke [--workers N]  # fault matrix, digest oracle
    python -m repro.chaos --kill-resume [--workers N] [--dir DIR]

``--smoke`` runs a small app × design grid under every injectable fault
class — worker crashes, slow and hung workers, cache-entry corruption on
read, ``OSError`` on store — and asserts the **digest oracle**: the
stats-digest grid of every faulted run must be byte-identical to the
fault-free reference, and the fault must actually have fired (checked
through the structured manifest warning its degradation-ladder step
emits).  A chaos run that merely "didn't crash" fails the harness.

``--kill-resume`` exercises the crash/resume path end to end in real
subprocesses: an ``rba-banks`` batch is SIGKILLed by a seeded plan after
a fixed number of journal appends, then re-run with ``--resume``; the
second manifest must show exactly the journaled points served from disk
and only the missing ones re-simulated.

Exit status: 0 when every scenario holds, 1 on any violation.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .hooks import PLAN_ENV, clear_plan, install_plan
from .plan import FAULTS, SITES, FaultPlan, FaultRule, single_fault_plan

#: The smoke grid: two cheap apps under two designs (≈1 s per point).
SMOKE_APPS = ("rod-nw", "cg-lou")
SMOKE_DESIGNS = ("baseline", "rba")

#: Journal appends the kill-resume run survives before SIGKILL.
KILL_AFTER = 5


def _smoke_points():
    from ..experiments.engine import SimPoint

    return [SimPoint(a, d) for a in SMOKE_APPS for d in SMOKE_DESIGNS]


def _digest_grid(results) -> Dict[str, str]:
    from ..obs import stats_digest

    return {
        p.label(): stats_digest(s.to_payload()) for p, s in results.items()
    }


def _warning_counts(manifest_path: Path) -> Dict[str, int]:
    from ..obs import read_manifest

    counts: Dict[str, int] = {}
    for rec in read_manifest(manifest_path):
        if rec.get("source") == "warning":
            kind = rec.get("kind", "?")
            counts[kind] = counts.get(kind, 0) + 1
    return counts


def _fresh_run(cache_dir: Path, manifest: Path, workers: int):
    """Run the smoke grid on a brand-new engine; returns (engine, digests)."""
    from ..experiments.engine import ExperimentEngine
    from ..trace.code_cache import reset_degradation
    from ..workloads import registry

    # Each scenario starts cold in this process: no compiled-kernel memo
    # (workers fork it, which would mask code-cache faults) and a re-armed
    # code-cache store path.
    registry._COMPILED_MEMO.clear()
    reset_degradation()
    engine = ExperimentEngine(
        workers=workers, cache_dir=cache_dir, manifest_path=manifest
    )
    digests = _digest_grid(engine.run_many(_smoke_points()))
    return engine, digests


#: The smoke matrix: scenario name, fault plan, cache preparation
#: (``fresh`` = empty cache dir; ``warm-results`` = results on disk so
#: read-path faults have a file to corrupt; ``warm-code`` = compiled
#: traces on disk but no results, so simulation re-reads them), and the
#: manifest warning kind that proves the fault fired and the ladder
#: engaged (None when the fault is absorbed without a warning).
SCENARIOS: Tuple[Tuple[str, FaultPlan, str, Optional[str]], ...] = (
    (
        "crash-worker",
        single_fault_plan("crash", "sim", match="rod-nw*", scope="worker"),
        "fresh",
        "chunk_crash",
    ),
    (
        "slow-worker",
        single_fault_plan("slow", "sim", times=0, seconds=0.05, scope="worker"),
        "fresh",
        None,
    ),
    (
        "hang-worker",
        single_fault_plan("hang", "sim", times=1, seconds=0.3, scope="worker"),
        "fresh",
        None,
    ),
    (
        "corrupt-result-read",
        single_fault_plan("corrupt", "result_read", times=2),
        "warm-results",
        "cache_quarantine",
    ),
    (
        "corrupt-code-read",
        single_fault_plan("corrupt", "code_read", times=1),
        "warm-code",
        "cache_quarantine",
    ),
    (
        "result-store-io-error",
        single_fault_plan("io_error", "result_store", times=0),
        "fresh",
        "cache_degraded",
    ),
    (
        "code-store-io-error",
        single_fault_plan("io_error", "code_store", times=0),
        "fresh",
        None,
    ),
)


def _prepare(kind: str, root: Path, workers: int) -> Path:
    """Build one scenario's cache directory per the preparation kind."""
    cache = root / "cache"
    if cache.exists():
        shutil.rmtree(cache)
    cache.mkdir(parents=True)
    if kind == "fresh":
        return cache
    # Seed with a clean, fault-free run into this cache dir.
    clear_plan()
    _fresh_run(cache, root / "seed-manifest.jsonl", workers)
    if kind == "warm-code":
        # Keep the compiled traces, drop the results: the chaos run must
        # simulate again and therefore re-read the trace-code cache.
        for entry in sorted(cache.glob("*.json")):
            entry.unlink()
    return cache


def _smoke(workers: int, keep_dir: Optional[str]) -> int:
    root = Path(keep_dir) if keep_dir else Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    root.mkdir(parents=True, exist_ok=True)
    failures: List[str] = []

    clear_plan()
    reference_cache = root / "reference-cache"
    _, reference = _fresh_run(
        reference_cache, root / "reference-manifest.jsonl", workers
    )
    print(f"reference: {len(reference)} points, fault-free")

    for name, plan, prep, expected_warn in SCENARIOS:
        cache = _prepare(prep, root / name, workers)
        manifest = root / name / "manifest.jsonl"
        install_plan(plan)
        try:
            engine, digests = _fresh_run(cache, manifest, workers)
        finally:
            clear_plan()
        problems: List[str] = []
        if digests != reference:
            changed = sorted(
                label
                for label in reference
                if digests.get(label) != reference[label]
            )
            problems.append(f"digest drift on {', '.join(changed) or 'grid'}")
        warns = _warning_counts(manifest) if manifest.exists() else {}
        if expected_warn is not None and not warns.get(expected_warn):
            problems.append(
                f"expected a {expected_warn!r} warning (fault did not fire "
                "or was silent)"
            )
        status = "ok" if not problems else "FAIL"
        detail = (
            f"sims={engine.profile.sims} retries={engine.profile.retries} "
            f"quarantines={engine.profile.quarantines} warnings={warns or '{}'}"
        )
        print(f"  {name:<24} {status}  {detail}")
        for problem in problems:
            print(f"    - {problem}")
            failures.append(f"{name}: {problem}")

    if not keep_dir:
        shutil.rmtree(root, ignore_errors=True)
    if failures:
        print(f"chaos smoke: {len(failures)} violation(s)", file=sys.stderr)
        return 1
    print(
        f"chaos smoke: {len(SCENARIOS)} fault scenarios, all digest-identical"
    )
    return 0


def _repro_cmd(args: List[str]) -> List[str]:
    return [sys.executable, "-m", "repro"] + args


def _child_env(extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    env = dict(os.environ)
    env.pop(PLAN_ENV, None)
    src = str(Path(__file__).resolve().parents[2])
    parts = [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    if extra:
        env.update(extra)
    return env


def _run_child(cmd: List[str], env: Dict[str, str], log_path: Path) -> int:
    """Run a ``python -m repro`` child, robust to its own SIGKILL.

    Output goes to ``log_path`` (not a pipe: when the seeded plan
    SIGKILLs the batch parent, its orphaned pool workers would keep a
    pipe open forever).  The child gets its own process group, which is
    swept with SIGKILL afterwards so orphaned workers from a killed run
    can't race the resume run.
    """
    with open(log_path, "w", encoding="utf-8") as log:
        proc = subprocess.Popen(
            cmd,
            env=env,
            stdout=log,
            stderr=subprocess.STDOUT,
            start_new_session=True,
        )
        try:
            return proc.wait(timeout=1500)
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except OSError:
                pass


def _kill_resume(workers: int, keep_dir: Optional[str]) -> int:
    from ..obs import load_journal, read_manifest

    root = Path(keep_dir) if keep_dir else Path(tempfile.mkdtemp(prefix="repro-chaos-kr-"))
    root.mkdir(parents=True, exist_ok=True)
    cache = root / "cache"
    journal = root / "journal.jsonl"
    manifest1 = root / "manifest-killed.jsonl"
    manifest2 = root / "manifest-resumed.jsonl"
    failures: List[str] = []

    plan = single_fault_plan("kill", "journal", after=KILL_AFTER, times=1)
    base = [
        "rba-banks",
        "--workers",
        str(workers),
        "--cache-dir",
        str(cache),
        "--journal",
        str(journal),
    ]
    print(f"run 1: rba-banks, SIGKILL after {KILL_AFTER + 1} journal appends")
    code1 = _run_child(
        _repro_cmd(base + ["--manifest", str(manifest1)]),
        _child_env({PLAN_ENV: plan.dumps()}),
        root / "run-killed.log",
    )
    if code1 == 0:
        failures.append("killed run exited 0 — the kill fault never fired")
    journaled = load_journal(journal)
    if len(journaled) != KILL_AFTER + 1:
        failures.append(
            f"journal covers {len(journaled)} points, "
            f"expected {KILL_AFTER + 1}"
        )
    print(f"  exit {code1}, journal covers {len(journaled)} points")

    print("run 2: same batch with --resume")
    code2 = _run_child(
        _repro_cmd(base + ["--resume", "--manifest", str(manifest2)]),
        _child_env(),
        root / "run-resumed.log",
    )
    if code2 != 0:
        tail = ""
        log2 = root / "run-resumed.log"
        if log2.exists():
            tail = log2.read_text(encoding="utf-8", errors="replace")[-400:]
        failures.append(f"resume run exited {code2}: {tail}")
    # A point can appear in several manifest records (disk hit first, then
    # memory hits on revisits within the experiment), so account per
    # unique point: one that ever simulated counts as re-simulated, the
    # rest were served entirely from cache.
    point_sources: Dict[str, set] = {}
    mismatch_warns = 0
    if manifest2.exists():
        for rec in read_manifest(manifest2):
            source = rec.get("source")
            if source == "warning":
                if rec.get("kind") == "journal_mismatch":
                    mismatch_warns += 1
                continue
            point = rec.get("point", "")
            if point.startswith("trace:"):
                continue
            point_sources.setdefault(point, set()).add(source)
    total_points = len(point_sources)
    resimulated = sum(
        1 for seen in point_sources.values() if seen & {"sim", "retry"}
    )
    served = total_points - resimulated
    print(
        f"  exit {code2}, {total_points} points: "
        f"{served} from cache, {resimulated} re-simulated, "
        f"{mismatch_warns} journal mismatches"
    )
    # Every journaled point must come back from cache; only the rest may
    # re-simulate.  (Workers the kill orphaned can legitimately settle a
    # few extra points to disk after the parent died, so the cache may
    # cover slightly more than the journal — never less.)
    if total_points and resimulated > total_points - len(journaled):
        failures.append(
            f"resume re-simulated {resimulated} points; at most "
            f"{total_points - len(journaled)} "
            f"({total_points} total - {len(journaled)} journaled) are missing"
        )
    if total_points and resimulated + served != total_points:
        failures.append(
            f"cache hits ({served}) + re-simulations ({resimulated}) "
            f"!= {total_points} points: the batch did not complete"
        )
    if served < len(journaled):
        failures.append(
            f"only {served} points served from cache; every journaled "
            f"point ({len(journaled)}) should have been"
        )
    if total_points and resimulated == 0:
        failures.append(
            "nothing re-simulated — the first run was not killed early"
        )
    if mismatch_warns:
        failures.append(
            f"{mismatch_warns} journal_mismatch warning(s): the cache "
            "changed under the journal"
        )

    if not keep_dir:
        shutil.rmtree(root, ignore_errors=True)
    if failures:
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print("chaos kill-resume: FAILED", file=sys.stderr)
        return 1
    print("chaos kill-resume: ok — only the missing points re-simulated")
    return 0


def _list() -> int:
    print("fault classes:")
    for fault in FAULTS:
        print(f"  {fault}")
    print("injection sites:")
    for site in SITES:
        print(f"  {site}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or "-h" in args or "--help" in args:
        print(__doc__)
        return 0
    mode: Optional[str] = None
    workers = 2
    keep_dir: Optional[str] = None
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--smoke":
            mode = "smoke"
        elif arg == "--kill-resume":
            mode = "kill-resume"
        elif arg == "--list":
            mode = "list"
        elif arg in ("--workers", "--dir") or arg.startswith(
            ("--workers=", "--dir=")
        ):
            flag, sep, value = arg.partition("=")
            if not sep:
                i += 1
                if i >= len(args):
                    print(f"{flag} requires a value", file=sys.stderr)
                    return 2
                value = args[i]
            if flag == "--workers":
                try:
                    workers = int(value)
                except ValueError:
                    print("--workers expects an integer", file=sys.stderr)
                    return 2
                if workers < 1:
                    print("--workers must be >= 1", file=sys.stderr)
                    return 2
            else:
                keep_dir = value
        else:
            print(f"unknown option: {arg}", file=sys.stderr)
            return 2
        i += 1
    if mode == "list":
        return _list()
    if mode == "smoke":
        return _smoke(workers, keep_dir)
    if mode == "kill-resume":
        return _kill_resume(workers, keep_dir)
    print(
        "usage: python -m repro.chaos --smoke|--kill-resume|--list "
        "[--workers N] [--dir DIR]",
        file=sys.stderr,
    )
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
