"""TPC-H query workload models (compressed and uncompressed databases).

The paper runs the 22 TPC-H queries through spark-rapids on a 100 GB
database, in two flavours: *uncompressed* (raw parquet) and *compressed*
(snappy parquet).  The decisive trace property is inter-warp divergence
from warp-specialized kernels: most queries exhibit one long-running warp
in every four (the pattern SRR was crafted for), and the compressed
flavour adds the highly warp-specialized snappy decompression kernel with
issue imbalance "on the order of 100x".

We model each query as a profile with ``divergence_period = 4``; the long
warps are compute/INT-heavy (decompression, expression evaluation,
hashing) while the short warps are scan/filter-shaped and memory-heavy —
which is what lets issue-count imbalance (Fig. 17's CoV ≈ 0.8) coexist
with wall-clock speedups in the tens of percent rather than 4x.
Per-query parameters vary deterministically by query number; query 8 is
given the deepest divergence (the paper's largest CoV, 1.01, and largest
balancing gain, 30.8 %).
"""

from __future__ import annotations

import zlib
from typing import Dict, List

import numpy as np

from ..trace import KernelTrace
from .profiles import AppProfile
from .synth import build_kernel

NUM_QUERIES = 22


def _seed(name: str) -> int:
    return zlib.crc32(name.encode())


def tpch_profile(query: int, compressed: bool) -> AppProfile:
    """Profile of one TPC-H query."""
    if not 1 <= query <= NUM_QUERIES:
        raise ValueError(f"TPC-H has queries 1..{NUM_QUERIES}, got {query}")
    flavour = "tpcC" if compressed else "tpcU"
    name = f"{flavour}-q{query}"
    rng = np.random.default_rng(_seed(name))

    # Divergence depth: uncompressed queries span multipliers ~3-7 (CoV
    # around the paper's 0.8 average); the snappy kernel pushes compressed
    # queries far higher.  Query 8 is pinned at the top of its flavour.
    if compressed:
        multiplier = float(rng.uniform(9.0, 16.0))
        if query == 9:
            multiplier = 18.0
    else:
        multiplier = float(rng.uniform(3.0, 6.0))
        if query == 8:
            multiplier = 7.0

    return AppProfile(
        name=name,
        suite="tpch-compressed" if compressed else "tpch-uncompressed",
        seed=_seed(name),
        warps_per_cta=32,
        num_ctas=4,
        insts_per_warp=int(rng.integers(90, 140)),
        # Query operators are scan-heavy but the *long* (decompression /
        # expression) warps dominate wall time; too much memory dilutes
        # the imbalance tail the balancing designs recover.
        mem_fraction=float(rng.uniform(0.14, 0.22)),
        store_fraction=0.25,
        fp_fraction=0.25,  # DB operators are INT/compare heavy
        operand_weights=(0.35, 0.45, 0.20),
        read_regs=16,
        write_regs=16,
        bank_bias=float(rng.uniform(0.05, 0.20)),
        dep_fraction=0.20,
        mem_locality=float(rng.uniform(0.55, 0.75)),
        coalesced_lines=4,
        divergence_period=4,
        divergence_multiplier=multiplier,
        barrier=True,
        shared_mem_per_cta=16 * 1024,
    )


def tpch_queries(compressed: bool) -> List[AppProfile]:
    """All 22 query profiles of one flavour."""
    return [tpch_profile(q, compressed) for q in range(1, NUM_QUERIES + 1)]


def tpch_kernel(query: int, compressed: bool) -> KernelTrace:
    return build_kernel(tpch_profile(query, compressed))


def all_tpch_profiles() -> Dict[str, AppProfile]:
    """Both flavours keyed by app name (44 apps)."""
    out: Dict[str, AppProfile] = {}
    for compressed in (False, True):
        for p in tpch_queries(compressed):
            out[p.name] = p
    return out
