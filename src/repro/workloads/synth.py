"""Profile → kernel-trace synthesis.

Turns an :class:`~repro.workloads.profiles.AppProfile` into a concrete
:class:`~repro.trace.KernelTrace`.  Generation is fully deterministic: the
per-warp RNG is seeded from ``(profile.seed, warp_index)``, so the same
profile always yields byte-identical traces regardless of how many warps
or CTAs other callers have generated.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..isa import Instruction, MemRef, Opcode
from ..trace import CTATrace, KernelTrace, WarpTrace
from .profiles import AppProfile

#: Cache-line size assumed by generated addresses.
LINE_BYTES = 128
#: Hot-set lines per warp for local (hit-side) accesses.
HOT_LINES = 16

_ARITH_FP = (Opcode.FADD, Opcode.FMUL, Opcode.FFMA)
_ARITH_INT = (Opcode.SHF, Opcode.IADD, Opcode.IMAD)


def build_warp_trace(profile: AppProfile, warp_index: int, num_insts: int) -> WarpTrace:
    """Synthesize one warp's instruction stream."""
    rng = np.random.default_rng((profile.seed, warp_index))
    p = profile

    weights = np.asarray(p.operand_weights, dtype=float)
    weights = weights / weights.sum()

    # Pre-draw every random decision in bulk.
    kind_draw = rng.random(num_insts)
    nops = rng.choice(np.array([1, 2, 3]), size=num_insts, p=weights)
    bias_draw = rng.random(num_insts) < p.bank_bias
    dep_draw = rng.random(num_insts) < p.dep_fraction
    fp_draw = rng.random(num_insts) < p.fp_fraction
    store_draw = rng.random(num_insts) < p.store_fraction
    local_draw = rng.random(num_insts) < p.mem_locality
    reg_draw = rng.integers(0, p.read_regs, size=(num_insts, 3))
    biased_draw = rng.integers(0, max(1, p.read_regs // 2), size=(num_insts, 3))
    hot_draw = rng.integers(0, HOT_LINES, size=num_insts)

    mem_cut = p.mem_fraction
    lds_cut = mem_cut + p.lds_fraction
    sfu_cut = lds_cut + p.sfu_fraction
    tensor_cut = sfu_cut + p.tensor_fraction

    # Per-warp address regions: a small hot set (locality hits) and an
    # unbounded stream (misses).
    hot_base = (warp_index + 1) << 24
    stream_line = (warp_index + 1) << 16
    write_base = p.read_regs
    addr_reg = p.read_regs + p.write_regs  # dedicated address register

    # Bank-coherent phases: all biased instructions inside one phase use
    # the same register parity class.
    parity = int(rng.integers(0, 2))
    phase_left = p.phase_len

    insts: List[Instruction] = []
    last_dst = None
    for i in range(num_insts):
        phase_left -= 1
        if phase_left <= 0:
            parity ^= 1
            phase_left = p.phase_len

        k = int(nops[i])
        if bias_draw[i]:
            srcs = [int(2 * biased_draw[i, j] + parity) % p.read_regs for j in range(k)]
        else:
            srcs = [int(reg_draw[i, j]) for j in range(k)]
        if dep_draw[i] and last_dst is not None:
            srcs[0] = last_dst
        dst = write_base + (i % p.write_regs)

        x = kind_draw[i]
        if x < mem_cut:
            if store_draw[i]:
                line = stream_line + i
                insts.append(
                    Instruction(
                        Opcode.STG,
                        src_regs=(srcs[0] if srcs else 0, addr_reg),
                        mem=MemRef(
                            base_address=line * LINE_BYTES,
                            num_lines=p.coalesced_lines,
                            is_store=True,
                        ),
                    )
                )
                last_dst = None
            else:
                if local_draw[i]:
                    line = hot_base + int(hot_draw[i])
                    lines = 1
                else:
                    stream_line += p.coalesced_lines
                    line = stream_line
                    lines = p.coalesced_lines
                insts.append(
                    Instruction(
                        Opcode.LDG,
                        dst_reg=dst,
                        src_regs=(addr_reg,),
                        mem=MemRef(base_address=line * LINE_BYTES, num_lines=lines),
                    )
                )
                last_dst = dst
        elif x < lds_cut:
            insts.append(Instruction(Opcode.LDS, dst_reg=dst, src_regs=(addr_reg,)))
            last_dst = dst
        elif x < sfu_cut:
            insts.append(Instruction(Opcode.MUFU, dst_reg=dst, src_regs=(srcs[0],)))
            last_dst = dst
        elif x < tensor_cut:
            while len(srcs) < 3:
                srcs.append(int(reg_draw[i, len(srcs) % 3]))
            insts.append(Instruction(Opcode.HMMA, dst_reg=dst, src_regs=tuple(srcs[:3])))
            last_dst = dst
        else:
            table = _ARITH_FP if fp_draw[i] else _ARITH_INT
            insts.append(Instruction(table[k - 1], dst_reg=dst, src_regs=tuple(srcs)))
            last_dst = dst

    if p.barrier:
        insts.append(Instruction(Opcode.BAR))
    return WarpTrace.from_instructions(insts)


def build_cta_trace(profile: AppProfile) -> CTATrace:
    lengths = profile.warp_lengths()
    return CTATrace(
        [build_warp_trace(profile, i, n) for i, n in enumerate(lengths)]
    )


def build_kernel(profile: AppProfile) -> KernelTrace:
    """Synthesize the full kernel trace for ``profile``."""
    cta = build_cta_trace(profile)
    return KernelTrace.uniform(
        profile.name,
        cta,
        num_ctas=profile.num_ctas,
        regs_per_thread=profile.regs_per_thread,
        shared_mem_per_cta=profile.shared_mem_per_cta,
        shared_conflict_degree=profile.shared_conflict_degree,
    )
