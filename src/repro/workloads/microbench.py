"""Microbenchmarks from the paper's hardware study (Sec. III, Fig. 3/4)
and the collector-unit validation suite (Sec. V).

The FMA microbenchmark family has 8 compute warps per thread block, each
performing a chain of register-resident FFMA instructions and then waiting
at a CTA-wide barrier:

``baseline``
    8 warps, all compute.
``balanced``
    8 compute warps + 24 empty warps, compute spread so that round-robin
    assignment gives each sub-core the same compute load (Fig. 4 middle).
``unbalanced``
    8 compute + 24 empty, compute warps at indices 0, 4, 8, ... so that
    round-robin assignment lands *all* compute on sub-core 0 (Fig. 4
    right) — the pathological 3.9x case.
"""

from __future__ import annotations

from typing import List

from ..trace import KernelTrace, TraceBuilder, WarpTrace, make_kernel

#: Fig. 4 layouts.
FMA_LAYOUTS = ("baseline", "balanced", "unbalanced")

#: FFMA chain length per compute thread in the paper's microbenchmark.
PAPER_FMA_COUNT = 4096


def _fma_warp(fmas: int) -> WarpTrace:
    return TraceBuilder().fma_chain(fmas).barrier().build()


def _empty_warp() -> WarpTrace:
    return TraceBuilder().barrier().build()


def fma_microbenchmark(
    layout: str,
    fmas: int = 512,
    num_ctas: int = 1,
    num_subcores: int = 4,
    compute_warps: int = 8,
    empty_warps: int = 24,
) -> KernelTrace:
    """The Fig. 3/4 FMA microbenchmark.

    ``fmas`` defaults to a shortened chain (512 instead of the paper's
    4096) — the speedup ratios converge well before that; pass
    ``PAPER_FMA_COUNT`` for the full-length run.
    """
    if layout not in FMA_LAYOUTS:
        raise ValueError(f"layout must be one of {FMA_LAYOUTS}")
    if layout == "baseline":
        warps = [_fma_warp(fmas) for _ in range(compute_warps)]
        return make_kernel(f"fma-{layout}", warps, num_ctas=num_ctas)

    total = compute_warps + empty_warps
    if layout == "unbalanced":
        # Every sub-core-count-th warp: round robin maps them all to
        # sub-core 0.
        compute_ids = set(range(0, total, num_subcores))
    else:  # balanced
        # One compute warp per (sub-core, row) cell: indices i*N + (i % N)
        # walk the diagonal of Fig. 4's layout grid.
        compute_ids = {
            i * num_subcores + (i % num_subcores) for i in range(compute_warps)
        }
    if len(compute_ids) != compute_warps:
        raise ValueError("layout does not produce the requested compute warps")
    warps = [
        _fma_warp(fmas) if i in compute_ids else _empty_warp() for i in range(total)
    ]
    return make_kernel(f"fma-{layout}", warps, num_ctas=num_ctas)


def scaled_imbalance_microbenchmark(
    imbalance: int,
    base_fmas: int = 64,
    total_warps: int = 32,
    num_ctas: int = 1,
) -> KernelTrace:
    """The Fig. 8 workload: unbalanced FMA with a scalable imbalance factor.

    Every 4th warp executes ``base_fmas * imbalance`` FFMAs; the rest
    execute ``base_fmas``.  At ``imbalance == 1`` the block is uniform;
    increasing it deepens the inter-warp divergence that sub-core
    assignment must smooth.
    """
    if imbalance < 1:
        raise ValueError("imbalance must be >= 1")
    warps: List[WarpTrace] = []
    for i in range(total_warps):
        n = base_fmas * imbalance if i % 4 == 0 else base_fmas
        warps.append(_fma_warp(n))
    return make_kernel(f"fma-imbalance-{imbalance}x", warps, num_ctas=num_ctas)


# -- Sec. V collector-unit validation suite -----------------------------------
#
# Seven small kernels that stress register-file bank conflicts in different
# ways.  The paper correlates Accel-Sim cycle counts at 1-4 CUs/sub-core
# against V100 silicon; we substitute an analytical silicon model (see
# repro.experiments.cu_validation) and keep the same seven stress shapes.

def _conflict_warp(insts: int, operands: int, window: int, stride: int) -> WarpTrace:
    """Arithmetic chain whose sources walk a register window with ``stride``.

    ``stride == 2`` keeps all operands in one bank (worst case for a 2-bank
    slice); ``stride == 1`` alternates banks.  FP and INT opcodes alternate
    so the stress sits in the read-operand stage, not one execution port.
    """
    from ..isa import Instruction, Opcode

    fp_ops = {1: Opcode.FADD, 2: Opcode.FADD, 3: Opcode.FFMA}
    int_ops = {1: Opcode.SHF, 2: Opcode.IADD, 3: Opcode.IMAD}
    body = []
    for i in range(insts):
        srcs = tuple((i * operands + k * stride) % window for k in range(operands))
        dst = window + (i % 8)
        ops = fp_ops if i % 2 == 0 else int_ops
        body.append(Instruction(ops[operands], dst_reg=dst, src_regs=srcs))
    return WarpTrace.from_instructions(body)


def cu_validation_microbenchmarks(insts: int = 256, warps: int = 16) -> dict:
    """The seven bank-conflict stress kernels, keyed by name."""
    shapes = {
        "ub-2op-conflict": (2, 8, 2),    # both operands in one bank
        "ub-2op-spread": (2, 8, 1),      # operands alternate banks
        "ub-3op-conflict": (3, 12, 2),   # three operands, one bank
        "ub-3op-spread": (3, 12, 1),     # three operands, spread
        "ub-1op": (1, 8, 1),             # single-source stream
        "ub-3op-window4": (3, 4, 1),     # tiny register window, heavy reuse
        "ub-mixed": None,                # alternating 2-op / 3-op
    }
    kernels = {}
    for name, shape in shapes.items():
        if shape is None:
            half = insts // 2
            from ..isa import Instruction, Opcode

            body = []
            for i in range(half):
                body.append(
                    Instruction(
                        Opcode.IADD, dst_reg=12 + (i % 8), src_regs=(i % 8, (i + 2) % 8)
                    )
                )
                body.append(
                    Instruction(
                        Opcode.FFMA,
                        dst_reg=12 + (i % 8),
                        src_regs=(i % 8, (i + 1) % 8, (i + 3) % 8),
                    )
                )
            trace = WarpTrace.from_instructions(body)
        else:
            operands, window, stride = shape
            trace = _conflict_warp(insts, operands, window, stride)
        kernels[name] = make_kernel(name, [trace] * warps)
    return kernels
