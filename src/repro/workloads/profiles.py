"""Statistical application profiles.

The paper evaluates on SASS traces of 112 real applications.  We substitute
seeded synthetic traces drawn from per-application *profiles*: statistical
descriptors of exactly the trace properties the studied mechanisms respond
to — instruction mix, operand counts, register working sets and their bank
coherence, memory behaviour, and inter-warp divergence.  See DESIGN.md
("Substitutions") for why this preserves the evaluation's shape.

Knob cheat-sheet (what creates which paper effect):

``bank_bias`` / ``phase_len``
    Probability that an instruction draws all its sources from a single
    bank-parity class, and how long such phases last.  High bias + long
    phases produce the dynamic inter-warp bank contention that the RBA
    scheduler exploits (cuGraph-style register reuse).
``divergence_period`` / ``divergence_multiplier``
    Every ``period``-th warp of a CTA executes ``multiplier`` times the
    instructions.  Period 4 reproduces TPC-H's one-long-warp-in-four
    pattern that SRR was crafted for (Sec. IV-B2).
``dep_fraction``
    Probability an instruction reads the previous instruction's result —
    the intra-warp ILP throttle.
``mem_fraction`` / ``mem_locality``
    Global-memory intensity and its L1 hit affinity; high fraction + low
    locality makes an app memory-bound (insensitive to partitioning).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

#: Version of the profile → trace synthesis pipeline.  Bump whenever the
#: synthesizer (:mod:`repro.workloads.synth`) or the profile semantics
#: change in a way that alters generated traces: the experiment engine's
#: disk cache keys include this number, so bumping it invalidates every
#: cached result derived from the old traces.
PROFILE_VERSION = 1


@dataclass(frozen=True)
class AppProfile:
    """Everything needed to synthesize one application's kernel trace."""

    name: str
    suite: str
    seed: int

    # -- shape -------------------------------------------------------------
    warps_per_cta: int = 32
    num_ctas: int = 4
    insts_per_warp: int = 200

    # -- instruction mix (fractions of all instructions) ---------------------
    mem_fraction: float = 0.10
    store_fraction: float = 0.2      # of memory instructions
    lds_fraction: float = 0.0
    sfu_fraction: float = 0.0
    tensor_fraction: float = 0.0
    fp_fraction: float = 0.5         # FP share of plain arithmetic

    #: P(instruction has 1, 2, 3 register sources)
    operand_weights: Tuple[float, float, float] = (0.2, 0.4, 0.4)

    # -- register behaviour ----------------------------------------------------
    read_regs: int = 16
    write_regs: int = 16
    bank_bias: float = 0.0
    phase_len: int = 48
    dep_fraction: float = 0.15

    # -- memory behaviour ---------------------------------------------------------
    mem_locality: float = 0.7
    coalesced_lines: int = 4         # lines per streaming (miss-side) access
    shared_conflict_degree: int = 1

    # -- inter-warp divergence -------------------------------------------------
    divergence_period: int = 0
    divergence_multiplier: float = 1.0

    # -- CTA attributes -----------------------------------------------------------
    barrier: bool = True
    shared_mem_per_cta: int = 0

    def __post_init__(self) -> None:
        if self.warps_per_cta < 1 or self.num_ctas < 1 or self.insts_per_warp < 1:
            raise ValueError("shape parameters must be positive")
        fracs = (
            self.mem_fraction,
            self.lds_fraction,
            self.sfu_fraction,
            self.tensor_fraction,
        )
        if any(f < 0 for f in fracs) or sum(fracs) > 1.0 + 1e-9:
            raise ValueError("instruction-mix fractions must be >= 0 and sum to <= 1")
        for f in (
            self.fp_fraction,
            self.bank_bias,
            self.dep_fraction,
            self.mem_locality,
            self.store_fraction,
        ):
            if not 0.0 <= f <= 1.0:
                raise ValueError("probability knobs must be in [0, 1]")
        if len(self.operand_weights) != 3 or any(w < 0 for w in self.operand_weights):
            raise ValueError("operand_weights must be three non-negative weights")
        if sum(self.operand_weights) <= 0:
            raise ValueError("operand_weights must not all be zero")
        if self.divergence_period < 0:
            raise ValueError("divergence_period must be >= 0")
        if self.divergence_multiplier < 1.0:
            raise ValueError("divergence_multiplier must be >= 1")
        if self.read_regs < 2 or self.write_regs < 1:
            raise ValueError("register windows too small")
        if self.phase_len < 1 or self.coalesced_lines < 1:
            raise ValueError("phase_len and coalesced_lines must be >= 1")

    # -- derived -------------------------------------------------------------

    @property
    def regs_per_thread(self) -> int:
        """Architectural registers the synthesized kernel declares."""
        return self.read_regs + self.write_regs + 2

    @property
    def mean_operands(self) -> float:
        w = self.operand_weights
        total = sum(w)
        return (w[0] + 2 * w[1] + 3 * w[2]) / total

    def warp_lengths(self) -> Tuple[int, ...]:
        """Instruction count of each warp in a CTA (divergence applied)."""
        lengths = []
        for i in range(self.warps_per_cta):
            long = self.divergence_period and i % self.divergence_period == 0
            n = self.insts_per_warp * (self.divergence_multiplier if long else 1.0)
            lengths.append(max(1, int(round(n))))
        return tuple(lengths)

    @property
    def total_instructions(self) -> int:
        return sum(self.warp_lengths()) * self.num_ctas

    def variant(self, **changes) -> "AppProfile":
        return replace(self, **changes)
