"""Synthetic workload models: microbenchmarks and the 112-app registry."""

from .characterize import TraceCharacteristics, characterization_table, characterize
from .microbench import (
    FMA_LAYOUTS,
    PAPER_FMA_COUNT,
    cu_validation_microbenchmarks,
    fma_microbenchmark,
    scaled_imbalance_microbenchmark,
)
from .profiles import PROFILE_VERSION, AppProfile
from .registry import (
    COMPUTE_BOUND_APPS,
    EXPECTED_APP_COUNT,
    RF_SENSITIVE_APPS,
    SENSITIVE_APPS,
    all_profiles,
    app_names,
    compiled_code_key,
    get_compiled_kernel,
    get_kernel,
    get_profile,
    suites,
)
from .synth import build_cta_trace, build_kernel, build_warp_trace
from .tpch import all_tpch_profiles, tpch_kernel, tpch_profile, tpch_queries

__all__ = [
    "TraceCharacteristics",
    "characterization_table",
    "characterize",
    "FMA_LAYOUTS",
    "PAPER_FMA_COUNT",
    "cu_validation_microbenchmarks",
    "fma_microbenchmark",
    "scaled_imbalance_microbenchmark",
    "AppProfile",
    "PROFILE_VERSION",
    "COMPUTE_BOUND_APPS",
    "EXPECTED_APP_COUNT",
    "RF_SENSITIVE_APPS",
    "SENSITIVE_APPS",
    "all_profiles",
    "app_names",
    "compiled_code_key",
    "get_compiled_kernel",
    "get_kernel",
    "get_profile",
    "suites",
    "build_cta_trace",
    "build_kernel",
    "build_warp_trace",
    "all_tpch_profiles",
    "tpch_kernel",
    "tpch_profile",
    "tpch_queries",
]
