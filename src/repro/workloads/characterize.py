"""Static trace characterization.

``characterize`` computes, from a kernel trace alone (no simulation), the
properties that determine which partitioning effect an application is
exposed to — the quantities the paper's analysis reasons about when
sorting its 112 apps into imbalance-bound, read-operand-bound and
insensitive populations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..isa import FuncUnit, Opcode
from ..regalloc import get_mapping
from ..trace import KernelTrace


@dataclass(frozen=True)
class TraceCharacteristics:
    """Static properties of one kernel trace."""

    name: str
    dynamic_instructions: int
    warps_per_cta: int
    num_ctas: int

    #: fraction of instructions per functional-unit class
    unit_mix: Dict[str, float]
    #: mean register-file source operands per instruction
    mean_operands: float
    #: register reads per instruction (same as mean_operands; kept for
    #: symmetry with the paper's "register intensive" phrasing)
    reads_per_instruction: float
    #: fraction of instructions touching global memory
    memory_fraction: float

    #: max warp length / mean warp length within a CTA — the paper's
    #: inter-warp-divergence indicator (1.0 = perfectly uniform)
    interwarp_divergence: float
    #: coefficient of variation of warp lengths within a CTA
    warp_length_cov: float

    #: fraction of multi-operand instructions whose sources all land in a
    #: single bank of a 2-bank slice (intra-instruction conflict exposure)
    bank_coherence: float

    def dominant_effect(self) -> str:
        """Coarse triage into the paper's populations."""
        if self.interwarp_divergence > 1.5:
            return "issue-imbalance"
        if self.memory_fraction > 0.22:
            return "memory-bound"
        if self.reads_per_instruction > 1.8 and self.bank_coherence > 0.35:
            return "read-operand-limited"
        return "insensitive"


def characterize(kernel: KernelTrace, mapping: str = "warp_swizzle") -> TraceCharacteristics:
    """Compute :class:`TraceCharacteristics` for ``kernel``.

    Only the first CTA is scanned (CTAs of a kernel are statistically
    uniform) so characterization is cheap even for large grids.
    """
    mapper = get_mapping(mapping)
    cta = kernel.ctas[0]

    unit_counts: Dict[str, int] = {}
    total = 0
    operands = 0
    mem = 0
    multi = 0
    coherent = 0
    lengths = []
    for warp_index, warp in enumerate(cta.warps):
        lengths.append(warp.dynamic_instructions)
        for inst in warp.instructions:
            if inst.opcode.is_exit:
                continue
            total += 1
            unit = inst.opcode.unit.value
            unit_counts[unit] = unit_counts.get(unit, 0) + 1
            operands += inst.num_src_operands
            if inst.opcode.is_global_memory:
                mem += 1
            if inst.num_src_operands >= 2:
                multi += 1
                banks = {mapper(r, warp_index, 2) for r in inst.src_regs}
                if len(banks) == 1:
                    coherent += 1

    lengths_arr = np.asarray(lengths, dtype=float)
    mean_len = lengths_arr.mean() if lengths_arr.size else 0.0
    return TraceCharacteristics(
        name=kernel.name,
        dynamic_instructions=kernel.dynamic_instructions,
        warps_per_cta=cta.num_warps,
        num_ctas=kernel.num_ctas,
        unit_mix={u: c / total for u, c in sorted(unit_counts.items())} if total else {},
        mean_operands=operands / total if total else 0.0,
        reads_per_instruction=operands / total if total else 0.0,
        memory_fraction=mem / total if total else 0.0,
        interwarp_divergence=float(lengths_arr.max() / mean_len) if mean_len else 1.0,
        warp_length_cov=float(lengths_arr.std() / mean_len) if mean_len else 0.0,
        bank_coherence=coherent / multi if multi else 0.0,
    )


def characterization_table(kernels: Dict[str, KernelTrace]) -> str:
    """ASCII table of characteristics for several kernels."""
    rows = [characterize(k) for k in kernels.values()]
    header = (
        f"{'kernel':16s} {'instr':>8s} {'ops/in':>7s} {'mem%':>6s} "
        f"{'div':>6s} {'bank-coh':>9s}  effect"
    )
    lines = [header, "-" * len(header)]
    for c in rows:
        lines.append(
            f"{c.name:16s} {c.dynamic_instructions:8d} {c.mean_operands:7.2f} "
            f"{c.memory_fraction:6.1%} {c.interwarp_divergence:6.2f} "
            f"{c.bank_coherence:9.1%}  {c.dominant_effect()}"
        )
    return "\n".join(lines)
