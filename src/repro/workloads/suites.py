"""Profiles for the six non-TPC-H benchmark suites (68 apps).

Each suite's profiles are parameterized to stress the bottleneck the paper
attributes to it:

* **cuGraph** — register-intensive INT workloads that "access a limited
  number of registers repeatedly": high bank bias over a small read window,
  long phases.  This is the population where RBA outruns even the
  fully-connected SM (Sec. VI-B1).
* **Parboil / Rodinia / Polybench** — a mix of read-operand-limited
  kernels (the Table III sensitive apps: pb-mriq, pb-mrig, pb-sgemm,
  rod-lavaMD, rod-bp, rod-srad, rod-htsp, ply-2Dcon, ply-3Dcon, ...) and
  memory- or latency-bound fillers that are largely insensitive to
  partitioning — Fig. 1's near-1.0 population.
* **DeepBench / Cutlass** — tensor-pipeline-heavy GEMM/conv kernels with
  well-balanced warps and moderate register pressure.
"""

from __future__ import annotations

import zlib
from typing import Dict, List

import numpy as np

from .profiles import AppProfile


def _seed(name: str) -> int:
    return zlib.crc32(name.encode())


def _rng(name: str) -> np.random.Generator:
    return np.random.default_rng(_seed(name))


# ---------------------------------------------------------------------------
# cuGraph (7)
# ---------------------------------------------------------------------------

CUGRAPH_APPS = ("cg-lou", "cg-bfs", "cg-sssp", "cg-pgrnk", "cg-wcc", "cg-katz", "cg-hits")


def cugraph_profile(name: str) -> AppProfile:
    rng = _rng(name)
    return AppProfile(
        name=name,
        suite="cugraph",
        seed=_seed(name),
        warps_per_cta=32,
        num_ctas=4,
        insts_per_warp=int(rng.integers(180, 260)),
        mem_fraction=float(rng.uniform(0.06, 0.12)),
        fp_fraction=0.35,
        operand_weights=(0.20, 0.50, 0.30),
        read_regs=12,
        write_regs=16,
        bank_bias=float(rng.uniform(0.80, 0.95)),
        phase_len=int(rng.integers(48, 96)),
        dep_fraction=float(rng.uniform(0.05, 0.12)),
        mem_locality=0.85,
        coalesced_lines=2,
        barrier=False,
    )


# ---------------------------------------------------------------------------
# Parboil (11)
# ---------------------------------------------------------------------------

PARBOIL_SENSITIVE = ("pb-mriq", "pb-mrig", "pb-sgemm", "pb-cutcp", "pb-sad")
PARBOIL_APPS = PARBOIL_SENSITIVE + (
    "pb-stencil",
    "pb-spmv",
    "pb-histo",
    "pb-lbm",
    "pb-tpacf",
    "pb-bfs",
)


def parboil_profile(name: str) -> AppProfile:
    rng = _rng(name)
    if name in PARBOIL_SENSITIVE:
        return AppProfile(
            name=name,
            suite="parboil",
            seed=_seed(name),
            warps_per_cta=32,
            num_ctas=4,
            insts_per_warp=int(rng.integers(200, 300)),
            mem_fraction=float(rng.uniform(0.04, 0.10)),
            fp_fraction=0.55,
            sfu_fraction=0.05 if name == "pb-mriq" else 0.0,
            operand_weights=(0.15, 0.45, 0.40),
            read_regs=16,
            write_regs=16,
            bank_bias=float(rng.uniform(0.55, 0.80)),
            phase_len=int(rng.integers(40, 72)),
            dep_fraction=0.10,
            mem_locality=0.85,
            lds_fraction=0.08 if name == "pb-sgemm" else 0.0,
            shared_mem_per_cta=32 * 1024 if name == "pb-sgemm" else 0,
        )
    return AppProfile(
        name=name,
        suite="parboil",
        seed=_seed(name),
        warps_per_cta=24,
        num_ctas=4,
        insts_per_warp=int(rng.integers(120, 200)),
        mem_fraction=float(rng.uniform(0.25, 0.40)),
        fp_fraction=0.5,
        operand_weights=(0.35, 0.45, 0.20),
        bank_bias=float(rng.uniform(0.0, 0.15)),
        dep_fraction=0.25,
        mem_locality=float(rng.uniform(0.35, 0.60)),
        coalesced_lines=4 if name != "pb-spmv" else 8,
    )


# ---------------------------------------------------------------------------
# Rodinia (20)
# ---------------------------------------------------------------------------

RODINIA_SENSITIVE = ("rod-lavaMD", "rod-bp", "rod-srad", "rod-htsp")
RODINIA_APPS = RODINIA_SENSITIVE + (
    "rod-nw",
    "rod-kmeans",
    "rod-gaussian",
    "rod-nn",
    "rod-pathfinder",
    "rod-streamcluster",
    "rod-bfs",
    "rod-cfd",
    "rod-lud",
    "rod-myocyte",
    "rod-particlefilter",
    "rod-heartwall",
    "rod-leukocyte",
    "rod-btree",
    "rod-dwt2d",
    "rod-hotspot",
)


def rodinia_profile(name: str) -> AppProfile:
    rng = _rng(name)
    if name in RODINIA_SENSITIVE:
        return AppProfile(
            name=name,
            suite="rodinia",
            seed=_seed(name),
            warps_per_cta=32,
            num_ctas=4,
            insts_per_warp=int(rng.integers(200, 280)),
            mem_fraction=float(rng.uniform(0.05, 0.10)),
            lds_fraction=0.06 if name in ("rod-srad", "rod-htsp") else 0.0,
            fp_fraction=0.55,
            operand_weights=(0.15, 0.45, 0.40),
            read_regs=14,
            write_regs=16,
            bank_bias=float(rng.uniform(0.55, 0.75)),
            phase_len=int(rng.integers(48, 80)),
            dep_fraction=0.10,
            mem_locality=0.85,
            shared_mem_per_cta=16 * 1024,
        )
    # Fillers span latency-bound, memory-bound and mildly divergent shapes.
    divergent = name in ("rod-bfs", "rod-particlefilter", "rod-myocyte")
    return AppProfile(
        name=name,
        suite="rodinia",
        seed=_seed(name),
        warps_per_cta=int(rng.choice([16, 24, 32])),
        num_ctas=4,
        insts_per_warp=int(rng.integers(100, 220)),
        mem_fraction=float(rng.uniform(0.18, 0.35)),
        fp_fraction=float(rng.uniform(0.4, 0.6)),
        operand_weights=(0.30, 0.45, 0.25),
        bank_bias=float(rng.uniform(0.0, 0.20)),
        dep_fraction=float(rng.uniform(0.15, 0.30)),
        mem_locality=float(rng.uniform(0.40, 0.70)),
        coalesced_lines=int(rng.choice([1, 2, 4])),
        divergence_period=8 if divergent else 0,
        divergence_multiplier=float(rng.uniform(1.8, 2.6)) if divergent else 1.0,
    )


# ---------------------------------------------------------------------------
# Polybench (15)
# ---------------------------------------------------------------------------

POLYBENCH_SENSITIVE = ("ply-2Dcon", "ply-3Dcon")
POLYBENCH_APPS = POLYBENCH_SENSITIVE + (
    "ply-atax",
    "ply-bicg",
    "ply-gemm",
    "ply-gesummv",
    "ply-mvt",
    "ply-syrk",
    "ply-syr2k",
    "ply-2mm",
    "ply-3mm",
    "ply-corr",
    "ply-covar",
    "ply-fdtd2d",
    "ply-gramschmidt",
)


def polybench_profile(name: str) -> AppProfile:
    rng = _rng(name)
    if name in POLYBENCH_SENSITIVE:
        return AppProfile(
            name=name,
            suite="polybench",
            seed=_seed(name),
            warps_per_cta=32,
            num_ctas=4,
            insts_per_warp=int(rng.integers(220, 300)),
            mem_fraction=0.06,
            fp_fraction=0.6,
            operand_weights=(0.10, 0.50, 0.40),
            read_regs=16,
            write_regs=16,
            bank_bias=float(rng.uniform(0.60, 0.80)),
            phase_len=int(rng.integers(56, 96)),
            dep_fraction=0.08,
            mem_locality=0.9,
        )
    gemm_like = name in ("ply-gemm", "ply-2mm", "ply-3mm", "ply-syrk", "ply-syr2k")
    return AppProfile(
        name=name,
        suite="polybench",
        seed=_seed(name),
        warps_per_cta=int(rng.choice([16, 32])),
        num_ctas=4,
        insts_per_warp=int(rng.integers(120, 220)),
        mem_fraction=0.15 if gemm_like else float(rng.uniform(0.28, 0.42)),
        fp_fraction=0.65,
        operand_weights=(0.15, 0.45, 0.40) if gemm_like else (0.35, 0.45, 0.20),
        bank_bias=float(rng.uniform(0.10, 0.30)) if gemm_like else 0.05,
        dep_fraction=0.15,
        mem_locality=0.75 if gemm_like else float(rng.uniform(0.30, 0.55)),
        coalesced_lines=1 if gemm_like else 4,
    )


# ---------------------------------------------------------------------------
# DeepBench (8)
# ---------------------------------------------------------------------------

DEEPBENCH_APPS = (
    "db-conv-tr",
    "db-conv-inf",
    "db-rnn-tr",
    "db-rnn-inf",
    "db-gemm-tr",
    "db-gemm-inf",
    "db-conv2-tr",
    "db-conv2-inf",
)


def deepbench_profile(name: str) -> AppProfile:
    rng = _rng(name)
    train = name.endswith("-tr")
    return AppProfile(
        name=name,
        suite="deepbench",
        seed=_seed(name),
        warps_per_cta=32,
        num_ctas=4,
        insts_per_warp=int(rng.integers(160, 240)),
        mem_fraction=float(rng.uniform(0.10, 0.18)),
        tensor_fraction=float(rng.uniform(0.15, 0.30)),
        fp_fraction=0.7,
        operand_weights=(0.15, 0.45, 0.40),
        read_regs=16,
        write_regs=16,
        bank_bias=float(rng.uniform(0.15, 0.35)),
        dep_fraction=0.12 if train else 0.18,
        mem_locality=0.8,
        lds_fraction=0.05,
        shared_mem_per_cta=32 * 1024,
    )


# ---------------------------------------------------------------------------
# Cutlass (7)
# ---------------------------------------------------------------------------

CUTLASS_APPS = (
    "cutlass-256",
    "cutlass-512",
    "cutlass-1024",
    "cutlass-2048",
    "cutlass-4096",
    "cutlass-gemm-64",
    "cutlass-conv-128",
)


def cutlass_profile(name: str) -> AppProfile:
    rng = _rng(name)
    return AppProfile(
        name=name,
        suite="cutlass",
        seed=_seed(name),
        warps_per_cta=16,
        num_ctas=6,
        insts_per_warp=int(rng.integers(180, 280)),
        mem_fraction=0.08,
        tensor_fraction=0.30,
        lds_fraction=0.10,
        fp_fraction=0.7,
        operand_weights=(0.10, 0.40, 0.50),
        read_regs=18,
        write_regs=16,
        bank_bias=float(rng.uniform(0.10, 0.25)),
        dep_fraction=0.08,
        mem_locality=0.9,
        shared_mem_per_cta=48 * 1024,
        shared_conflict_degree=1,
    )


# ---------------------------------------------------------------------------

def all_suite_profiles() -> Dict[str, AppProfile]:
    """The 68 non-TPC-H app profiles, keyed by name."""
    out: Dict[str, AppProfile] = {}
    for name in CUGRAPH_APPS:
        out[name] = cugraph_profile(name)
    for name in PARBOIL_APPS:
        out[name] = parboil_profile(name)
    for name in RODINIA_APPS:
        out[name] = rodinia_profile(name)
    for name in POLYBENCH_APPS:
        out[name] = polybench_profile(name)
    for name in DEEPBENCH_APPS:
        out[name] = deepbench_profile(name)
    for name in CUTLASS_APPS:
        out[name] = cutlass_profile(name)
    return out
