"""The 112-application registry.

Mirrors the paper's evaluation population: 44 TPC-H queries (22 x two
database flavours) plus 68 apps from cuGraph, Parboil, Rodinia, Polybench,
DeepBench and Cutlass.  ``SENSITIVE_APPS`` is the Table III subset used by
the Fig. 10/12 summary plots; ``RF_SENSITIVE_APPS`` is the read-operand-
limited sub-population of Fig. 11/14.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from ..trace import KernelTrace
from .profiles import AppProfile
from .suites import all_suite_profiles
from .synth import build_kernel
from .tpch import all_tpch_profiles

#: Number of applications the paper evaluates.
EXPECTED_APP_COUNT = 112

#: Table III — applications particularly sensitive to SM core partitioning.
SENSITIVE_APPS = (
    "tpcU-q8",
    "tpcC-q9",
    "pb-mriq",
    "pb-mrig",
    "pb-sad",
    "pb-sgemm",
    "pb-cutcp",
    "cutlass-4096",
    "rod-lavaMD",
    "rod-bp",
    "rod-srad",
    "rod-htsp",
    "cg-lou",
    "cg-bfs",
    "cg-sssp",
    "cg-pgrnk",
    "cg-wcc",
    "cg-katz",
    "cg-hits",
    "ply-2Dcon",
    "ply-3Dcon",
    "db-conv-tr",
    "db-conv-inf",
    "db-rnn-tr",
    "db-rnn-inf",
)

#: Apps limited by the read-operand stage (Fig. 11 / Fig. 14 population).
RF_SENSITIVE_APPS = (
    "pb-mriq",
    "pb-mrig",
    "pb-sgemm",
    "rod-lavaMD",
    "rod-bp",
    "rod-srad",
    "rod-htsp",
    "cg-lou",
    "cg-bfs",
    "cg-sssp",
    "cg-pgrnk",
    "cg-wcc",
    "cg-katz",
    "cg-hits",
    "ply-2Dcon",
    "ply-3Dcon",
)

#: Compute-bound apps that scale with SM count (Fig. 18 population).
COMPUTE_BOUND_APPS = (
    "pb-sgemm",
    "pb-cutcp",
    "pb-sad",
    "cutlass-4096",
    "cutlass-2048",
    "rod-lavaMD",
    "ply-gemm",
    "ply-2mm",
    "db-gemm-tr",
    "db-conv-tr",
)


@lru_cache(maxsize=1)
def all_profiles() -> Dict[str, AppProfile]:
    """All 112 application profiles, keyed by name."""
    out: Dict[str, AppProfile] = {}
    out.update(all_tpch_profiles())
    out.update(all_suite_profiles())
    if len(out) != EXPECTED_APP_COUNT:
        raise RuntimeError(
            f"registry has {len(out)} apps; expected {EXPECTED_APP_COUNT}"
        )
    return out


def get_profile(name: str) -> AppProfile:
    try:
        return all_profiles()[name]
    except KeyError:
        raise KeyError(f"unknown application {name!r}") from None


def get_kernel(name: str) -> KernelTrace:
    """Synthesize the kernel trace of a registered application."""
    return build_kernel(get_profile(name))


def app_names(suite: str | None = None) -> List[str]:
    """All app names, optionally filtered by suite."""
    profiles = all_profiles()
    if suite is None:
        return sorted(profiles)
    names = sorted(n for n, p in profiles.items() if p.suite == suite)
    if not names:
        # str is totally ordered; sorted() fully determines the order.
        suites = sorted({p.suite for p in profiles.values()})  # simlint: ignore[RPR002]
        raise KeyError(f"unknown suite {suite!r}; options: {suites}")
    return names


def suites() -> List[str]:
    # str is totally ordered; sorted() fully determines the order.
    return sorted({p.suite for p in all_profiles().values()})  # simlint: ignore[RPR002]
