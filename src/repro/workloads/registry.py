"""The 112-application registry.

Mirrors the paper's evaluation population: 44 TPC-H queries (22 x two
database flavours) plus 68 apps from cuGraph, Parboil, Rodinia, Polybench,
DeepBench and Cutlass.  ``SENSITIVE_APPS`` is the Table III subset used by
the Fig. 10/12 summary plots; ``RF_SENSITIVE_APPS`` is the read-operand-
limited sub-population of Fig. 11/14.
"""

from __future__ import annotations

from dataclasses import asdict
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..trace import KernelTrace, code_key, compile_kernel, default_cache_dir
from ..trace.code_cache import get_or_build
from .profiles import PROFILE_VERSION, AppProfile
from .suites import all_suite_profiles
from .synth import build_kernel
from .tpch import all_tpch_profiles

#: Number of applications the paper evaluates.
EXPECTED_APP_COUNT = 112

#: Table III — applications particularly sensitive to SM core partitioning.
SENSITIVE_APPS = (
    "tpcU-q8",
    "tpcC-q9",
    "pb-mriq",
    "pb-mrig",
    "pb-sad",
    "pb-sgemm",
    "pb-cutcp",
    "cutlass-4096",
    "rod-lavaMD",
    "rod-bp",
    "rod-srad",
    "rod-htsp",
    "cg-lou",
    "cg-bfs",
    "cg-sssp",
    "cg-pgrnk",
    "cg-wcc",
    "cg-katz",
    "cg-hits",
    "ply-2Dcon",
    "ply-3Dcon",
    "db-conv-tr",
    "db-conv-inf",
    "db-rnn-tr",
    "db-rnn-inf",
)

#: Apps limited by the read-operand stage (Fig. 11 / Fig. 14 population).
RF_SENSITIVE_APPS = (
    "pb-mriq",
    "pb-mrig",
    "pb-sgemm",
    "rod-lavaMD",
    "rod-bp",
    "rod-srad",
    "rod-htsp",
    "cg-lou",
    "cg-bfs",
    "cg-sssp",
    "cg-pgrnk",
    "cg-wcc",
    "cg-katz",
    "cg-hits",
    "ply-2Dcon",
    "ply-3Dcon",
)

#: Compute-bound apps that scale with SM count (Fig. 18 population).
COMPUTE_BOUND_APPS = (
    "pb-sgemm",
    "pb-cutcp",
    "pb-sad",
    "cutlass-4096",
    "cutlass-2048",
    "rod-lavaMD",
    "ply-gemm",
    "ply-2mm",
    "db-gemm-tr",
    "db-conv-tr",
)


@lru_cache(maxsize=1)
def all_profiles() -> Dict[str, AppProfile]:
    """All 112 application profiles, keyed by name."""
    out: Dict[str, AppProfile] = {}
    out.update(all_tpch_profiles())
    out.update(all_suite_profiles())
    if len(out) != EXPECTED_APP_COUNT:
        raise RuntimeError(
            f"registry has {len(out)} apps; expected {EXPECTED_APP_COUNT}"
        )
    return out


def get_profile(name: str) -> AppProfile:
    try:
        return all_profiles()[name]
    except KeyError:
        raise KeyError(f"unknown application {name!r}") from None


def get_kernel(name: str) -> KernelTrace:
    """Synthesize the kernel trace of a registered application."""
    return build_kernel(get_profile(name))


def compiled_code_key(name: str, mapping_name: str, num_banks: int) -> str:
    """Content-address of an app's compiled code for a bank layout.

    The key any :func:`get_compiled_kernel` disk entry is stored under;
    exposed so the experiment engine can cite it in run manifests without
    rebuilding the artifact.
    """
    return code_key(PROFILE_VERSION, asdict(get_profile(name)), mapping_name, num_banks)


#: In-process compiled-kernel memo: (app, mapping, num_banks) → KernelTrace.
#: Keeps one artifact per combination alive per process, so an engine
#: worker simulating one app under many designs compiles/loads it once.
_COMPILED_MEMO: Dict[Tuple[str, str, int], KernelTrace] = {}


def get_compiled_kernel(
    name: str,
    mapping_name: str,
    num_banks: int,
    cache_dir: Optional[Path] = None,
    use_disk: bool = True,
) -> Tuple[KernelTrace, str]:
    """A registered app's kernel trace with compiled code attached.

    Resolution order: in-process memo (``source="memory"``), the
    content-addressed disk cache (``"disk"``; default location
    :func:`repro.trace.default_cache_dir`, pass ``cache_dir`` to redirect
    or ``use_disk=False`` to skip it), else synthesize + compile + store
    (``"compile"``).  The disk key covers ``PROFILE_VERSION``, the full
    profile payload, the bank-mapping name and the bank count, so any of
    them changing invalidates the entry.
    """
    memo_key = (name, mapping_name, num_banks)
    cached = _COMPILED_MEMO.get(memo_key)
    if cached is not None:
        return cached, "memory"

    profile = get_profile(name)
    from ..regalloc import get_mapping

    mapper = get_mapping(mapping_name)
    key = compiled_code_key(name, mapping_name, num_banks)

    def _build() -> KernelTrace:
        kernel = build_kernel(profile)
        compile_kernel(kernel, mapper, num_banks)
        return kernel

    disk_dir: Optional[Path] = None
    if use_disk:
        disk_dir = cache_dir if cache_dir is not None else default_cache_dir()
    kernel, source = get_or_build(disk_dir, key, _build)
    _COMPILED_MEMO[memo_key] = kernel
    return kernel, source


def app_names(suite: str | None = None) -> List[str]:
    """All app names, optionally filtered by suite."""
    profiles = all_profiles()
    if suite is None:
        return sorted(profiles)
    names = sorted(n for n, p in profiles.items() if p.suite == suite)
    if not names:
        # str is totally ordered; the explicit key documents that.
        suites = sorted({p.suite for p in profiles.values()}, key=str)
        raise KeyError(f"unknown suite {suite!r}; options: {suites}")
    return names


def suites() -> List[str]:
    # str is totally ordered; the explicit key documents that.
    return sorted({p.suite for p in all_profiles().values()}, key=str)
