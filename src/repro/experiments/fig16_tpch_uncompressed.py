"""Fig. 16 — per-query speedups on uncompressed TPC-H.

Same designs as Fig. 15 over the raw-parquet database.  Paper averages:
SRR +17.5 %, Shuffle +13.9 %; query 8 sees the largest balancing gain
(+30.8 %).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..workloads import app_names
from .fig15_tpch_compressed import DESIGNS, TpchResult
from .report import speedup_table
from .runner import speedups_over_baseline

SUITE = "tpch-uncompressed"
PAPER_AVG = {"srr": 17.5, "shuffle": 13.9}


def run(queries: Optional[List[str]] = None, num_sms: int = 1) -> TpchResult:
    apps = queries if queries is not None else app_names(SUITE)
    return TpchResult(speedups_over_baseline(apps, DESIGNS, num_sms=num_sms), SUITE)


def q8_speedup(res: TpchResult) -> float:
    for app, v in res.rows:
        if app == "tpcU-q8":
            return v["srr"]
    raise KeyError("tpcU-q8 not in result rows")


def format_result(res: TpchResult) -> str:
    table = speedup_table(
        "Fig. 16: uncompressed TPC-H speedup over GTO + RR",
        res.rows,
        designs=list(DESIGNS),
    )
    avg = res.averages()
    lines = [
        table,
        "",
        f"SRR average: {(avg['srr'] - 1) * 100:+.1f}% (paper +17.5%); "
        f"Shuffle average: {(avg['shuffle'] - 1) * 100:+.1f}% (paper +13.9%)",
    ]
    try:
        lines.append(
            f"query 8 SRR speedup: {(q8_speedup(res) - 1) * 100:+.1f}% (paper +30.8%)"
        )
    except KeyError:
        pass
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
