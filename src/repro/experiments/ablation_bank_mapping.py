"""Ablation — register→bank mapping policy.

DESIGN.md calls out the bank-mapping policy as a modelling choice: Volta's
raw mapping is a modulo of the register id, the simulator's default adds a
per-warp swizzle (decorrelating warps the way physical renaming does), and
``scrambled`` is an idealized randomizing mapping.  This ablation measures
how much of the baseline's bank pressure — and of RBA's gain — each policy
accounts for on the register-file-sensitive apps.

Expected shape: the raw ``mod`` mapping suffers the most conflicts (warps
collide on the same parity), ``scrambled`` the least; RBA's *relative*
gain survives under every mapping because the inter-warp contention it
schedules around is present in all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import SchedulerPolicy, volta_v100
from ..gpu import simulate
from ..workloads import RF_SENSITIVE_APPS, get_kernel
from .report import series_table

MAPPINGS = ("mod", "warp_swizzle", "scrambled")


@dataclass
class BankMappingResult:
    apps: List[str]
    #: mapping -> app -> (baseline cycles, rba cycles)
    cycles: Dict[str, Dict[str, Tuple[int, int]]]

    def rba_speedup(self, mapping: str) -> float:
        """Mean RBA speedup under one mapping."""
        vals = [b / r for b, r in self.cycles[mapping].values()]
        return float(np.mean(vals))

    def baseline_cycles(self, mapping: str) -> float:
        return float(np.mean([b for b, _ in self.cycles[mapping].values()]))


def run(apps: Optional[Sequence[str]] = None) -> BankMappingResult:
    apps = list(apps) if apps is not None else list(RF_SENSITIVE_APPS[:8])
    cycles: Dict[str, Dict[str, Tuple[int, int]]] = {}
    for mapping in MAPPINGS:
        cycles[mapping] = {}
        for app in apps:
            kernel = get_kernel(app)
            base_cfg = volta_v100().replace(bank_mapping=mapping)
            rba_cfg = base_cfg.replace(scheduler=SchedulerPolicy.RBA)
            base = simulate(kernel, base_cfg, num_sms=1).cycles
            fast = simulate(kernel, rba_cfg, num_sms=1).cycles
            cycles[mapping][app] = (base, fast)
    return BankMappingResult(apps, cycles)


def format_result(res: BankMappingResult) -> str:
    table = series_table(
        "Ablation: register->bank mapping policy (RF-sensitive apps)",
        "metric",
        ["mean baseline cycles", "mean RBA speedup"],
        {
            m: [res.baseline_cycles(m), res.rba_speedup(m)]
            for m in MAPPINGS
        },
        fmt="{:.3f}",
    )
    gains = ", ".join(
        f"{m}: {(res.rba_speedup(m) - 1) * 100:+.1f}%" for m in MAPPINGS
    )
    return f"{table}\n\nRBA gain by mapping — {gains}"


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
