"""Extension study — how partitioning granularity scales the loss.

The paper evaluates the 4-sub-core Volta design against a monolithic SM;
real products have shipped 1, 2 and 4 sub-cores per SM (Kepler, Maxwell/
Pascal, Volta+).  This study sweeps the partitioning granularity while
holding aggregate SM capacity constant: an N-way split gives each
scheduler 8/N banks, 8/N collector units and 1/N of the execution lanes.

Expected shape: both pathologies deepen with N — the unbalanced-FMA
penalty approaches N x (issue bandwidth fragments), and the
register-sensitive apps slow as banks-per-scheduler shrink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import GPUConfig, volta_v100
from ..gpu import simulate
from ..workloads import fma_microbenchmark, get_kernel
from .report import series_table

#: Default sweep stops at 4: an 8-way split cannot keep the aggregate
#: issue width at 4 with integer per-sub-core widths, so it would conflate
#: partitioning effects with extra issue bandwidth.
SUBCORE_SWEEP = (1, 2, 4)


def partitioned_config(n_subcores: int) -> GPUConfig:
    """Volta-capacity SM split n-ways (n=1 is the fully-connected SM)."""
    base = volta_v100()
    agg_banks = base.total_rf_banks
    agg_cus = base.total_collector_units
    agg = base.subcores_per_sm
    if agg_banks % n_subcores or agg_cus % n_subcores:
        raise ValueError(f"cannot split 8 banks/CUs {n_subcores} ways")
    return base.replace(
        name=f"volta-{n_subcores}way",
        subcores_per_sm=n_subcores,
        issue_width=max(1, 4 // n_subcores),
        rf_banks_per_subcore=agg_banks // n_subcores,
        collector_units_per_subcore=agg_cus // n_subcores,
        fp32_lanes=base.fp32_lanes * agg // n_subcores,
        int_lanes=base.int_lanes * agg // n_subcores,
        sfu_lanes=max(1, base.sfu_lanes * agg // n_subcores),
        tensor_units=max(1, base.tensor_units * agg // n_subcores),
        ldst_units=max(1, base.ldst_units * agg // n_subcores),
    )


@dataclass
class GranularityResult:
    sweep: List[int]
    #: workload name -> cycles per sweep point
    cycles: Dict[str, List[int]]

    def slowdown_vs_monolithic(self, name: str) -> List[float]:
        base = self.cycles[name][0]
        return [c / base for c in self.cycles[name]]


def run(
    apps: Sequence[str] = ("cg-lou", "pb-sgemm"),
    sweep: Sequence[int] = SUBCORE_SWEEP,
    fmas: int = 128,
) -> GranularityResult:
    workloads = {"fma-unbalanced": fma_microbenchmark("unbalanced", fmas=fmas)}
    for app in apps:
        workloads[app] = get_kernel(app)
    cycles: Dict[str, List[int]] = {name: [] for name in workloads}
    for n in sweep:
        cfg = partitioned_config(n)
        for name, kernel in workloads.items():
            cycles[name].append(simulate(kernel, cfg, num_sms=1).cycles)
    return GranularityResult(list(sweep), cycles)


def format_result(res: GranularityResult) -> str:
    table = series_table(
        "Extension: slowdown vs partitioning granularity "
        "(normalized to the monolithic SM)",
        "sub-cores",
        res.sweep,
        {name: res.slowdown_vs_monolithic(name) for name in res.cycles},
        fmt="{:.2f}x",
    )
    unb = res.slowdown_vs_monolithic("fma-unbalanced")
    return (
        f"{table}\n\n"
        f"unbalanced FMA penalty grows with granularity: "
        + " -> ".join(f"{x:.2f}x" for x in unb)
    )


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
