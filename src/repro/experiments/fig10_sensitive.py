"""Fig. 10 — summary design performance on the partitioning-sensitive apps
(Table III subset).

Designs: RBA, SRR, Shuffle, Shuffle+RBA, register bank stealing [36],
doubled collector units (4 CUs), and the fully-connected SM — all
normalized to the GTO + RR baseline.  Paper reference points: RBA ≈ +11.1 %
average, bank stealing < +1 %, 4 CUs ≈ +4.1 %, combined techniques +19.3 %
on this population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..workloads import SENSITIVE_APPS
from .report import average_speedups, speedup_table
from .runner import speedups_over_baseline

DESIGNS = (
    "rba",
    "srr",
    "shuffle",
    "shuffle_rba",
    "bank_stealing",
    "cu4",
    "fully_connected",
)


@dataclass
class Fig10Result:
    rows: List[Tuple[str, Dict[str, float]]]

    def averages(self) -> Dict[str, float]:
        return average_speedups(self.rows, DESIGNS)


def run(apps: Optional[List[str]] = None, num_sms: int = 1) -> Fig10Result:
    apps = apps if apps is not None else list(SENSITIVE_APPS)
    return Fig10Result(speedups_over_baseline(apps, DESIGNS, num_sms=num_sms))


def format_result(res: Fig10Result) -> str:
    table = speedup_table(
        "Fig. 10: designs on partitioning-sensitive applications",
        res.rows,
        designs=list(DESIGNS),
    )
    avg = res.averages()
    refs = {
        "rba": "+11.1%",
        "bank_stealing": "<+1%",
        "cu4": "+4.1%",
        "shuffle_rba": "+19.3%",
    }
    notes = ", ".join(
        f"{d}: {(avg[d] - 1) * 100:+.1f}% (paper {refs[d]})" for d in refs
    )
    return f"{table}\n\n{notes}"


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
