"""Fig. 3 — FMA microbenchmark slowdown from sub-core issue imbalance.

The paper runs the baseline / balanced / unbalanced layouts (Fig. 4) on
Kepler, Volta and Ampere silicon; we run them on the corresponding
simulator configs.  Expected shape: normalized time ≈ 1.0 everywhere
except ``unbalanced`` on partitioned architectures, which lands near 4x
(A100 silicon: 3.9x); Kepler (monolithic) stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import ampere_a100, kepler, volta_v100
from ..gpu import simulate
from ..workloads import FMA_LAYOUTS, fma_microbenchmark
from .report import series_table

ARCHS = ("kepler", "volta", "ampere")


@dataclass
class Fig03Result:
    #: arch -> layout -> cycles
    cycles: Dict[str, Dict[str, int]]

    def normalized(self) -> Dict[str, Dict[str, float]]:
        """Execution time normalized to each arch's baseline layout."""
        out: Dict[str, Dict[str, float]] = {}
        for arch, by_layout in self.cycles.items():
            base = by_layout["baseline"]
            out[arch] = {lay: c / base for lay, c in by_layout.items()}
        return out

    def unbalanced_slowdown(self, arch: str) -> float:
        return self.normalized()[arch]["unbalanced"]


def run(fmas: int = 512) -> Fig03Result:
    configs = {"kepler": kepler(), "volta": volta_v100(), "ampere": ampere_a100()}
    cycles: Dict[str, Dict[str, int]] = {}
    for arch in ARCHS:
        cfg = configs[arch]
        cycles[arch] = {}
        for layout in FMA_LAYOUTS:
            # The Fig. 4 layouts are fixed programs written against the
            # 4-sub-core round-robin mapping; the same binaries run on
            # every architecture.
            kern = fma_microbenchmark(layout, fmas=fmas)
            cycles[arch][layout] = simulate(kern, cfg, num_sms=1).cycles
    return Fig03Result(cycles)


def format_result(res: Fig03Result) -> str:
    norm = res.normalized()
    table = series_table(
        "Fig. 3: FMA microbenchmark time, normalized to baseline layout",
        "layout",
        list(FMA_LAYOUTS),
        {arch: [norm[arch][lay] for lay in FMA_LAYOUTS] for arch in ARCHS},
        fmt="{:.2f}x",
    )
    return (
        f"{table}\n\n"
        f"unbalanced slowdown — volta: {res.unbalanced_slowdown('volta'):.2f}x, "
        f"ampere: {res.unbalanced_slowdown('ampere'):.2f}x (paper A100: 3.9x), "
        f"kepler: {res.unbalanced_slowdown('kepler'):.2f}x (paper: ~1.0x)"
    )


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
