"""Named design points used throughout the evaluation.

Every figure compares designs against the same baseline (GTO warp
scheduling + round-robin sub-core assignment on a 4-way partitioned Volta
SM), so designs are addressed by short stable names that the runner can
cache on.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..config import (
    GPUConfig,
    SchedulerPolicy,
    bank_stealing,
    fully_connected,
    rba,
    shuffle,
    shuffle_rba,
    srr,
    volta_v100,
    with_cus,
)


def _fc_rba() -> GPUConfig:
    cfg = fully_connected().replace(scheduler=SchedulerPolicy.RBA)
    return cfg.replace(name=cfg.name + "+rba")


def _srr_rba() -> GPUConfig:
    cfg = srr().replace(scheduler=SchedulerPolicy.RBA)
    return cfg.replace(name=cfg.name + "+rba")


def _rba_latency(cycles: int) -> Callable[[], GPUConfig]:
    def make() -> GPUConfig:
        cfg = rba().replace(rba_score_latency=cycles)
        return cfg.replace(name=f"{cfg.name}-lat{cycles}")

    return make


def _rba_banks(banks: int) -> GPUConfig:
    cfg = rba().replace(rf_banks_per_subcore=banks)
    return cfg.replace(name=f"{cfg.name}-{banks}banks")


def _baseline_banks(banks: int) -> GPUConfig:
    cfg = volta_v100().replace(rf_banks_per_subcore=banks)
    return cfg.replace(name=f"{cfg.name}-{banks}banks")


def _two_level() -> GPUConfig:
    cfg = volta_v100().replace(scheduler=SchedulerPolicy.TWO_LEVEL)
    return cfg.replace(name=cfg.name + "+two-level")


def _shuffle_table(entries: int) -> GPUConfig:
    cfg = shuffle().replace(hash_table_entries=entries)
    return cfg.replace(name=f"{cfg.name}-{entries}entry")


DESIGNS: Dict[str, Callable[[], GPUConfig]] = {
    "baseline": volta_v100,
    "rba": rba,
    "srr": srr,
    "shuffle": shuffle,
    "shuffle_rba": shuffle_rba,
    "srr_rba": _srr_rba,
    "fully_connected": fully_connected,
    "fc_rba": _fc_rba,
    "bank_stealing": bank_stealing,
    "two_level": _two_level,
    "cu1": lambda: with_cus(1),
    "cu2": lambda: with_cus(2),
    "cu3": lambda: with_cus(3),
    "cu4": lambda: with_cus(4),
    "cu8": lambda: with_cus(8),
    "cu16": lambda: with_cus(16),
    "rba_4banks": lambda: _rba_banks(4),
    "baseline_4banks": lambda: _baseline_banks(4),
    "shuffle_4entry": lambda: _shuffle_table(4),
    "shuffle_16entry": lambda: _shuffle_table(16),
}

for _lat in (0, 1, 2, 5, 10, 20):
    DESIGNS[f"rba_lat{_lat}"] = _rba_latency(_lat)


def get_design(name: str) -> GPUConfig:
    """Instantiate a named design point."""
    try:
        return DESIGNS[name]()
    except KeyError:
        raise KeyError(
            f"unknown design {name!r}; options: {sorted(DESIGNS)}"
        ) from None


def design_names() -> List[str]:
    return sorted(DESIGNS)
