"""Fig. 1 — speedup of a hypothetical fully-connected SM over the 4-way
partitioned Volta baseline, across the application registry.

The paper reports an average of ~13.2 % across 112 applications, with a
large near-1.0 population and a sensitive tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..workloads import app_names
from .report import speedup_table
from .runner import speedups_over_baseline

DESIGNS = ("fully_connected",)


@dataclass
class Fig01Result:
    rows: List[Tuple[str, Dict[str, float]]]

    @property
    def speedups(self) -> List[float]:
        return [r[1]["fully_connected"] for r in self.rows]

    @property
    def average(self) -> float:
        return float(np.mean(self.speedups))

    @property
    def max_speedup(self) -> float:
        return float(np.max(self.speedups))

    def sensitive_fraction(self, threshold: float = 1.05) -> float:
        """Fraction of apps whose fully-connected speedup exceeds threshold."""
        s = self.speedups
        return sum(1 for x in s if x > threshold) / len(s)


def run(apps: Optional[List[str]] = None, num_sms: int = 1) -> Fig01Result:
    apps = apps if apps is not None else app_names()
    return Fig01Result(speedups_over_baseline(apps, DESIGNS, num_sms=num_sms))


def format_result(res: Fig01Result) -> str:
    from ..viz import histogram

    table = speedup_table(
        "Fig. 1: fully-connected SM speedup over partitioned baseline",
        res.rows,
        designs=list(DESIGNS),
    )
    dist = histogram(
        "speedup distribution (x over baseline)", res.speedups, bins=8
    )
    return (
        f"{table}\n\n{dist}\n\n"
        f"average speedup: {(res.average - 1) * 100:+.1f}%  (paper: +13.2%)\n"
        f"apps > +5%: {res.sensitive_fraction():.0%}; max: "
        f"{(res.max_speedup - 1) * 100:+.1f}%"
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
