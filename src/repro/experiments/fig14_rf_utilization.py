"""Fig. 14 — per-cycle register-file read utilization traces.

For pb-mriq and rod-srad the paper plots 4-byte register reads per cycle
over the execution of one SM under baseline GTO, RBA, and the
fully-connected SM (max 256/cycle = 8 banks x 32 threads), with the
whole-run average drawn in red.  Reported rod-srad averages: 22.2
(baseline), 27.1 (RBA), 23.4 (fully-connected) — RBA wins by raising
*average* utilization, not peak.

A bank grant in the simulator is one warp-operand read = 32 four-byte
reads in the paper's unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..metrics import SimStats
from .report import series_table
from .runner import prefetch, run_app

APPS = ("pb-mriq", "rod-srad")
DESIGNS = ("baseline", "rba", "fully_connected")

#: 4-byte reads represented by one warp-operand bank grant.
READS_PER_GRANT = 32


@dataclass
class Fig14Result:
    #: app -> design -> SimStats (with rf_read_timeline populated)
    stats: Dict[str, Dict[str, SimStats]]

    def average_reads(self, app: str, design: str) -> float:
        """Whole-run average 4-byte reads per cycle (the red line)."""
        s = self.stats[app][design]
        return s.rf_reads_per_cycle() * READS_PER_GRANT

    def timeline(self, app: str, design: str) -> np.ndarray:
        """Dense per-cycle reads array in the paper's unit."""
        s = self.stats[app][design]
        sm = s.sms[0]
        arr = np.zeros(s.cycles, dtype=np.int64)
        assert sm.rf_read_timeline is not None
        for cycle, grants in sm.rf_read_timeline:
            if cycle < s.cycles:
                arr[cycle] = grants * READS_PER_GRANT
        return arr

    def low_utilization_cycles(self, app: str, design: str, threshold: int = 85) -> float:
        """Fraction of cycles with <= threshold reads (paper highlights 85)."""
        t = self.timeline(app, design)
        return float((t <= threshold).mean())


def run(apps: Optional[Tuple[str, ...]] = None) -> Fig14Result:
    apps = apps if apps is not None else APPS
    prefetch(apps, DESIGNS, num_sms=1, collect_timeline=True)
    stats: Dict[str, Dict[str, SimStats]] = {}
    for app in apps:
        stats[app] = {
            d: run_app(app, d, num_sms=1, collect_timeline=True) for d in DESIGNS
        }
    return Fig14Result(stats)


def format_result(res: Fig14Result) -> str:
    apps = list(res.stats)
    lines: List[str] = []
    avg_rows = {
        d: [res.average_reads(app, d) for app in apps] for d in DESIGNS
    }
    lines.append(
        series_table(
            "Fig. 14: average register-file reads/cycle per SM (max 256)",
            "app",
            apps,
            avg_rows,
            fmt="{:.1f}",
        )
    )
    lines.append("")
    for app in apps:
        low = ", ".join(
            f"{d}: {res.low_utilization_cycles(app, d):.0%}" for d in DESIGNS
        )
        lines.append(f"{app} cycles at <=85 reads — {low}")

    # Fig. 14's actual plots: per-cycle read traces (max 256/cycle).
    from ..viz import timeline

    for app in apps:
        lines.append("")
        for d in DESIGNS:
            lines.append(
                timeline(
                    f"{app} / {d} — reads per cycle",
                    res.timeline(app, d),
                    buckets=72,
                    vmax=256,
                )
            )
    lines.append(
        "\n(paper rod-srad averages: baseline 22.2, RBA 27.1, fully-connected 23.4)"
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
