"""Fig. 17 — coefficient of variation of per-sub-core instruction issue on
uncompressed TPC-H.

CoV (= sigma/mu over the four schedulers' issued-instruction totals) under
round-robin, SRR and Shuffle assignment.  Paper: SRR collapses the average
CoV from 0.80 to 0.11; query 8 has the largest baseline CoV at 1.01.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..workloads import app_names
from .report import series_table
from .runner import prefetch, run_app

DESIGNS = ("baseline", "srr", "shuffle")
SUITE = "tpch-uncompressed"


@dataclass
class Fig17Result:
    #: (query, {design: CoV})
    rows: List[Tuple[str, Dict[str, float]]]

    def averages(self) -> Dict[str, float]:
        return {
            d: float(np.mean([v[d] for _, v in self.rows])) for d in DESIGNS
        }

    def worst_baseline(self) -> Tuple[str, float]:
        app, v = max(self.rows, key=lambda r: r[1]["baseline"])
        return app, v["baseline"]


def run(queries: Optional[List[str]] = None, num_sms: int = 1) -> Fig17Result:
    apps = queries if queries is not None else app_names(SUITE)
    prefetch(apps, DESIGNS, num_sms=num_sms)
    rows: List[Tuple[str, Dict[str, float]]] = []
    for app in apps:
        rows.append(
            (app, {d: run_app(app, d, num_sms=num_sms).issue_cov() for d in DESIGNS})
        )
    return Fig17Result(rows)


def format_result(res: Fig17Result) -> str:
    apps = [r[0] for r in res.rows]
    table = series_table(
        "Fig. 17: CoV of per-sub-core instructions issued (uncompressed TPC-H)",
        "query",
        apps,
        {d: [v[d] for _, v in res.rows] for d in DESIGNS},
        fmt="{:.2f}",
    )
    avg = res.averages()
    worst_app, worst = res.worst_baseline()
    return (
        f"{table}\n\n"
        f"averages — baseline: {avg['baseline']:.2f} (paper 0.80), "
        f"srr: {avg['srr']:.2f} (paper 0.11), shuffle: {avg['shuffle']:.2f}\n"
        f"largest baseline CoV: {worst_app} at {worst:.2f} (paper: q8 at 1.01)"
    )


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
