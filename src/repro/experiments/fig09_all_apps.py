"""Fig. 9 — combined-design performance on all applications.

Speedup of Shuffle+RBA and of the fully-connected SM over the GTO+RR
baseline, across the registry.  Paper: Shuffle+RBA averages +10.6 %,
fully-connected +13.2 %, and RBA beats fully-connected on some apps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..workloads import app_names
from .report import average_speedups, speedup_table
from .runner import speedups_over_baseline

DESIGNS = ("shuffle_rba", "fully_connected")


@dataclass
class Fig09Result:
    rows: List[Tuple[str, Dict[str, float]]]

    def averages(self) -> Dict[str, float]:
        return average_speedups(self.rows, DESIGNS)

    def combined_vs_fc_gap(self) -> float:
        """Percentage points between fully-connected and Shuffle+RBA (paper: 2.6)."""
        avg = self.averages()
        return (avg["fully_connected"] - avg["shuffle_rba"]) * 100.0

    def apps_where_design_beats_fc(self) -> List[str]:
        return [
            app
            for app, v in self.rows
            if v["shuffle_rba"] > v["fully_connected"]
        ]


def run(apps: Optional[List[str]] = None, num_sms: int = 1) -> Fig09Result:
    apps = apps if apps is not None else app_names()
    return Fig09Result(speedups_over_baseline(apps, DESIGNS, num_sms=num_sms))


def format_result(res: Fig09Result) -> str:
    table = speedup_table(
        "Fig. 9: all-application speedup over GTO + RR baseline",
        res.rows,
        designs=list(DESIGNS),
    )
    avg = res.averages()
    beats = res.apps_where_design_beats_fc()
    return (
        f"{table}\n\n"
        f"Shuffle+RBA average: {(avg['shuffle_rba'] - 1) * 100:+.1f}% (paper: +10.6%)\n"
        f"fully-connected average: {(avg['fully_connected'] - 1) * 100:+.1f}% "
        f"(paper: +13.2%)\n"
        f"apps where Shuffle+RBA beats fully-connected: {len(beats)}"
    )


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
