"""Extension study — dynamic warp migration vs hashed assignment.

Sec. VII argues a work-stealing design "would be forced to transfer the
register file state of all of the threads within the migrating warp",
making it far more expensive than the 4-byte hash table.  This study
quantifies the comparison: an idle sub-core may steal the youngest
runnable warp from the most loaded one, paying a configurable
register-transfer latency.

Expected shape: with *free* migration (latency 0) stealing approaches (or
slightly beats) SRR, since it reacts to any imbalance rather than a fixed
pattern; at realistic transfer costs the advantage shrinks; hashed SRR
delivers comparable performance with none of the migration hardware —
the paper's argument, now with numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import volta_v100
from ..gpu import simulate
from ..workloads import get_kernel, scaled_imbalance_microbenchmark
from .designs import get_design
from .report import series_table

MIGRATION_LATENCIES = (0, 64, 256, 1024)


@dataclass
class WorkStealingResult:
    workloads: List[str]
    #: design label -> workload -> cycles
    cycles: Dict[str, Dict[str, int]]
    #: workload -> migrations performed at the default latency
    migrations: Dict[str, int]

    def speedup(self, design: str) -> Dict[str, float]:
        base = self.cycles["baseline"]
        return {w: base[w] / c for w, c in self.cycles[design].items()}

    def mean_speedup(self, design: str) -> float:
        return float(np.mean(list(self.speedup(design).values())))


def run(
    apps: Sequence[str] = ("tpcU-q8", "tpcC-q9"),
    imbalance: int = 16,
    latencies: Sequence[int] = MIGRATION_LATENCIES,
) -> WorkStealingResult:
    workloads = {f"fma-{imbalance}x": scaled_imbalance_microbenchmark(imbalance, base_fmas=64)}
    for app in apps:
        workloads[app] = get_kernel(app)

    designs: Dict[str, object] = {
        "baseline": get_design("baseline"),
        "srr": get_design("srr"),
        "shuffle": get_design("shuffle"),
    }
    for lat in latencies:
        designs[f"steal_lat{lat}"] = volta_v100().replace(
            name=f"volta+steal{lat}", work_stealing=True, migration_latency=lat
        )

    cycles: Dict[str, Dict[str, int]] = {d: {} for d in designs}
    migrations: Dict[str, int] = {}
    for wname, kernel in workloads.items():
        for dname, cfg in designs.items():
            stats = simulate(kernel, cfg, num_sms=1)
            cycles[dname][wname] = stats.cycles
            if dname == f"steal_lat{latencies[1] if len(latencies) > 1 else latencies[0]}":
                migrations[wname] = sum(sm.migrations for sm in stats.sms)
    return WorkStealingResult(list(workloads), cycles, migrations)


def format_result(res: WorkStealingResult) -> str:
    designs = [d for d in res.cycles if d != "baseline"]
    table = series_table(
        "Extension: dynamic warp migration vs hashed assignment "
        "(speedup over RR baseline)",
        "workload",
        res.workloads,
        {d: [res.speedup(d)[w] for w in res.workloads] for d in designs},
        fmt="{:.2f}x",
    )
    mig = ", ".join(f"{w}: {n}" for w, n in res.migrations.items())
    steal_designs = sorted(
        (d for d in res.cycles if d.startswith("steal_lat")),
        key=lambda d: int(d.rsplit("lat", 1)[1]),
    )
    best_steal = res.mean_speedup(steal_designs[0]) if steal_designs else float("nan")
    return (
        f"{table}\n\n"
        f"migrations performed (default latency): {mig}\n"
        f"SRR achieves {res.mean_speedup('srr'):.2f}x with a 4-byte table; "
        f"free migration reaches {best_steal:.2f}x "
        "but requires full register-file state transfer (Sec. VII)"
    )


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
