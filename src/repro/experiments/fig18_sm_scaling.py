"""Fig. 18 — fewer fully-connected SMs vs more partitioned SMs.

The paper fixes the work and scales the number of partitioned SMs until
they match 80 fully-connected SMs: ~100 partitioned SMs are needed at
baseline, but only ~84 with the proposed techniques (Shuffle+RBA).

We reproduce the trade-off at reduced scale: a fully-connected GPU with
``fc_sms`` SMs sets the reference time on a fixed CTA pool of
compute-bound apps; partitioned GPUs sweep SM counts and we interpolate
the count matching the reference (the "equivalence point").  The ratio
``equivalent_partitioned / fc_sms`` is the figure's 100/80 = 1.25 at
baseline and 84/80 = 1.05 with the techniques.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..gpu import simulate
from ..workloads import COMPUTE_BOUND_APPS, build_kernel, get_profile
from .designs import get_design

#: Apps that scale with SM count *and* lose visibly to partitioning —
#: the paper's Fig. 18 population ("compute-bound applications that
#: benefit from SM scaling"); a mix of issue-imbalance and read-operand
#: victims keeps the equivalence point representative.
DEFAULT_APPS = ("tpcU-q8", "cg-lou", "pb-sgemm")
DEFAULT_SWEEP = (4, 5, 6, 7, 8)
DEFAULT_FC_SMS = 4
#: CTAs per app for the fixed work pool (divisible by every sweep point
#: keeps the round-robin CTA distribution even).
DEFAULT_CTAS = 32


@dataclass
class Fig18Result:
    fc_sms: int
    sweep: List[int]
    #: app -> cycles of the fully-connected reference
    fc_cycles: Dict[str, int]
    #: design -> app -> cycles per sweep point
    partitioned_cycles: Dict[str, Dict[str, List[int]]]

    def equivalence_point(self, design: str) -> float:
        """Partitioned SM count whose mean performance matches the FC reference.

        Linear interpolation of mean speedup (over apps) across the sweep;
        clamped to the sweep boundaries.
        """
        # mean relative performance (fc_time / partitioned_time) per point
        perf = []
        for i in range(len(self.sweep)):
            ratios = [
                self.fc_cycles[app] / self.partitioned_cycles[design][app][i]
                for app in self.fc_cycles
            ]
            perf.append(float(np.mean(ratios)))
        xs, ys = self.sweep, perf
        if ys[0] >= 1.0:
            return float(xs[0])
        for i in range(1, len(xs)):
            if ys[i] >= 1.0:
                x0, x1, y0, y1 = xs[i - 1], xs[i], ys[i - 1], ys[i]
                return x0 + (1.0 - y0) * (x1 - x0) / (y1 - y0)
        return float(xs[-1])

    def overhead_ratio(self, design: str) -> float:
        """Equivalence point / FC SM count (paper: 1.25 base, 1.05 ours)."""
        return self.equivalence_point(design) / self.fc_sms


def run(
    apps: Sequence[str] = DEFAULT_APPS,
    sweep: Sequence[int] = DEFAULT_SWEEP,
    fc_sms: int = DEFAULT_FC_SMS,
    num_ctas: int = DEFAULT_CTAS,
    designs: Sequence[str] = ("baseline", "shuffle_rba"),
) -> Fig18Result:
    kernels = {}
    for app in apps:
        profile = get_profile(app).variant(num_ctas=num_ctas)
        kernels[app] = build_kernel(profile)

    fc_cfg = get_design("fully_connected")
    fc_cycles = {
        app: simulate(k, fc_cfg, num_sms=fc_sms).cycles for app, k in kernels.items()
    }

    partitioned: Dict[str, Dict[str, List[int]]] = {}
    for design in designs:
        cfg = get_design(design)
        partitioned[design] = {
            app: [simulate(k, cfg, num_sms=n).cycles for n in sweep]
            for app, k in kernels.items()
        }
    return Fig18Result(fc_sms, list(sweep), fc_cycles, partitioned)


def format_result(res: Fig18Result) -> str:
    lines = [
        "Fig. 18: partitioned SMs needed to match "
        f"{res.fc_sms} fully-connected SMs",
        "-" * 60,
    ]
    for design in res.partitioned_cycles:
        eq = res.equivalence_point(design)
        ratio = res.overhead_ratio(design)
        scaled = ratio * 80
        lines.append(
            f"{design:12s}: equivalence at {eq:.1f} SMs "
            f"(x{ratio:.2f}; scaled to the paper's 80 FC SMs: ~{scaled:.0f})"
        )
    lines.append("(paper: ~100 partitioned at baseline, ~84 with the techniques)")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
