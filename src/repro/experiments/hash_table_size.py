"""Sec. IV-B3 — Shuffle hash-function table size.

A 4-entry table repeats its assignment pattern every 16 warps; a 16-entry
table encodes a unique permutation for all 64 resident warps.  The paper
found the 16-entry table within 2 % of the 4-entry table across every
suite, justifying the cheaper 4-entry design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..workloads import app_names
from .report import speedup_table
from .runner import prefetch, run_app

DEFAULT_APPS = (
    "tpcU-q1",
    "tpcU-q8",
    "tpcC-q9",
    "tpcC-q4",
    "cg-lou",
    "pb-sgemm",
    "rod-srad",
    "ply-2Dcon",
    "db-conv-tr",
    "cutlass-4096",
)


@dataclass
class HashTableResult:
    #: (app, {"4entry": speedup, "16entry": speedup}) over baseline
    rows: List[Tuple[str, Dict[str, float]]]

    def max_gap_percent(self) -> float:
        """Largest |4-entry vs 16-entry| execution-time gap in percent."""
        gaps = [
            abs(v["16entry"] / v["4entry"] - 1.0) * 100.0 for _, v in self.rows
        ]
        return float(np.max(gaps))


def run(apps: Optional[Sequence[str]] = None) -> HashTableResult:
    apps = list(apps) if apps is not None else list(DEFAULT_APPS)
    prefetch(apps, ("baseline", "shuffle_4entry", "shuffle_16entry"))
    rows: List[Tuple[str, Dict[str, float]]] = []
    for app in apps:
        base = run_app(app, "baseline")
        rows.append(
            (
                app,
                {
                    "4entry": base.cycles / run_app(app, "shuffle_4entry").cycles,
                    "16entry": base.cycles / run_app(app, "shuffle_16entry").cycles,
                },
            )
        )
    return HashTableResult(rows)


def format_result(res: HashTableResult) -> str:
    table = speedup_table(
        "Sec. IV-B3: Shuffle with 4-entry vs 16-entry hash table",
        res.rows,
        designs=["4entry", "16entry"],
    )
    return (
        f"{table}\n\n"
        f"max 4-vs-16-entry gap: {res.max_gap_percent():.1f}% (paper: within 2%)"
    )


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
