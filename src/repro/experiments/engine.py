"""Parallel, disk-cached experiment-execution engine.

Every figure of the reproduction decomposes into *simulation points* —
``(app, design, num_sms, collect_timeline)`` tuples — and figures share
points heavily (the Fig. 1 baseline runs are the Fig. 9/10 denominators).
The engine is the single authority that turns a batch of points into
:class:`~repro.metrics.SimStats`:

1. **dedup** — a batch is reduced to its unique points;
2. **cache** — each point is looked up in a per-process memory cache and
   then in a content-addressed on-disk cache keyed by a stable SHA-256
   hash of the *resolved* design config (every ``GPUConfig`` field,
   including the memory hierarchy), the workload name plus its full
   profile and :data:`~repro.workloads.PROFILE_VERSION`, and the
   simulator version;
3. **fan-out** — remaining misses are grouped into *app-affinity chunks*
   (every point of one app lands on one worker, so each trace is
   synthesized/compiled once per bank layout and then served from the
   worker's in-process memo) and run on a ``concurrent.futures`` process
   pool (``workers > 1``).  Chunks are LPT-packed using expected
   per-point seconds from past :class:`~repro.obs.RunManifest` records
   to even out worker wall time.  A per-chunk timeout (the per-point
   budget × chunk size), one in-parent retry when a worker crashes or
   times out, and a graceful serial fallback when the pool cannot be
   created keep batches robust.

Caching is loss-free because simulation is bit-deterministic (warp
scheduling never iterates hash-ordered sets — see ``SubCore.ready``) and
:meth:`SimStats.to_payload` round-trips losslessly.

Robustness is a verified *degradation ladder*, not ad-hoc handling (see
``docs/robustness.md`` and :mod:`repro.chaos`, which injects every fault
class and asserts byte-identical digests): results are persisted and
journaled per point *as they settle* (:class:`~repro.obs.RunJournal`,
enabling ``python -m repro --resume``); corrupted cache entries are
quarantined, never served; :data:`STORE_ERROR_THRESHOLD` consecutive
store errors degrade the disk cache to memory-only with one structured
warning; :data:`CIRCUIT_THRESHOLD` consecutive pool chunk failures open
a circuit breaker that falls back to serial in-process execution; and
Ctrl-C/SIGTERM ends a batch with a flushed journal, a manifest warning
and a final ``interrupted`` heartbeat instead of a torn run.

Observability: the engine keeps per-point wall times and hit/miss/retry
counters (:class:`EngineProfile`); ``python -m repro --profile`` prints
them, and ``--workers/--cache-dir/--no-cache`` configure the process-wide
engine used by :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
import multiprocessing
import os
import signal
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import __version__ as _SIM_VERSION
from ..chaos import trip as chaos_trip
from ..config import GPUConfig
from ..gpu import simulate
from ..metrics import SimStats
from ..obs import (
    Heartbeat,
    MetricsRegistry,
    RunJournal,
    RunManifest,
    load_journal,
    read_manifest,
    stats_digest,
)
from ..trace.code_cache import drain_notes as drain_code_notes
from ..workloads import (
    PROFILE_VERSION,
    compiled_code_key,
    get_compiled_kernel,
    get_profile,
)
from .designs import get_design

#: Bump when the cache-file layout (not the simulated results) changes.
#: 2: SMStats payloads may carry ``stall_cycles`` (repro.obs).
CACHE_SCHEMA = 2

#: Default on-disk cache location (override with ``REPRO_CACHE_DIR`` or
#: ``configure(cache_dir=...)``).
DEFAULT_CACHE_DIR = Path(
    os.environ.get("REPRO_CACHE_DIR", "~/.cache/repro-sim")
).expanduser()

#: Consecutive result-store ``OSError``s before the disk cache degrades
#: to memory-only for the rest of the engine's lifetime (one structured
#: ``cache_degraded`` warning instead of one error per point).
STORE_ERROR_THRESHOLD = 3

#: Consecutive failed pool chunks (crash or timeout) before the circuit
#: breaker opens and later batches run serially in-process.
CIRCUIT_THRESHOLD = 3


@dataclass(frozen=True, order=True)
class SimPoint:
    """One simulation the evaluation needs: an app under a named design."""

    app: str
    design: str = "baseline"
    num_sms: int = 1
    collect_timeline: bool = False

    def label(self) -> str:
        tl = " +timeline" if self.collect_timeline else ""
        return f"{self.app} × {self.design} (num_sms={self.num_sms}{tl})"


@dataclass
class EngineProfile:
    """Counters and per-point wall times for one engine's lifetime."""

    mem_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    sims: int = 0
    retries: int = 0
    disk_errors: int = 0
    #: Corrupted cache entries moved into the quarantine directory
    #: instead of being served (result cache; the trace-code cache keeps
    #: its own per-process tally and reports through worker notes).
    quarantines: int = 0
    #: Disk hits whose digest matched a journaled checkpoint on a
    #: ``--resume`` run — points this run did *not* have to redo.
    resumed: int = 0
    #: Compiled-trace artifact events observed across workers: ``compile``
    #: (synthesized + lowered + stored) vs ``disk`` (loaded from the
    #: content-addressed trace-code cache).  In-process memo hits are not
    #: counted — they are the expected steady state inside an app chunk.
    code_compiles: int = 0
    code_loads: int = 0
    point_seconds: List[Tuple[str, float]] = field(default_factory=list)
    #: Simulation wall time accumulated per worker process id; the parent
    #: process appears under its own pid (serial runs and retries).
    worker_seconds: Dict[int, float] = field(default_factory=dict)

    @property
    def hits(self) -> int:
        return self.mem_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of point lookups served from a cache (0..1)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def note_sim(self, label: str, secs: float, worker: int) -> None:
        self.sims += 1
        self.point_seconds.append((label, secs))
        self.worker_seconds[worker] = self.worker_seconds.get(worker, 0.0) + secs

    def worker_skew(self) -> float:
        """Max/mean ratio of per-worker simulation wall time (1.0 = even).

        A high skew means the pool spent most of its wall clock waiting
        for one loaded worker — the signal to look at per-point timeouts
        or point ordering.
        """
        if not self.worker_seconds:
            return 1.0
        times = list(self.worker_seconds.values())
        mean = sum(times) / len(times)
        return max(times) / mean if mean > 0 else 1.0

    def total_sim_seconds(self) -> float:
        return sum(s for _, s in self.point_seconds)

    def summary(self, slowest: int = 5) -> str:
        lines = [
            "engine profile",
            "--------------",
            f"memory hits   {self.mem_hits}",
            f"disk hits     {self.disk_hits}",
            f"simulations   {self.sims}",
            f"retries       {self.retries}",
            f"disk errors   {self.disk_errors}",
            f"quarantines   {self.quarantines}",
            f"cache hit rate {self.hit_rate():.1%} "
            f"({self.hits}/{self.lookups} lookups)",
            f"trace code    {self.code_compiles} compiled, "
            f"{self.code_loads} loaded from cache",
            f"sim wall time {self.total_sim_seconds():.2f}s",
        ]
        if self.resumed:
            lines.append(f"resumed       {self.resumed} journaled points")
        if len(self.worker_seconds) > 1:
            lines.append(
                f"worker skew   {self.worker_skew():.2f}x max/mean over "
                f"{len(self.worker_seconds)} workers"
            )
        if self.point_seconds:
            lines.append(f"slowest points (top {slowest}):")
            ranked = sorted(self.point_seconds, key=lambda t: -t[1])[:slowest]
            lines.extend(f"  {secs:7.2f}s  {label}" for label, secs in ranked)
        elif self.lookups:
            lines.append(
                "no simulations ran: every point was served from cache"
            )
        return "\n".join(lines)


def resolved_config(
    point: SimPoint, sanitize: bool = False, trace: bool = False
) -> GPUConfig:
    """The effective config a point simulates (design + num_sms applied).

    ``trace`` enables stall attribution: traced runs carry the taxonomy
    buckets in their stats, which is why they key the cache separately.
    """
    config = get_design(point.design).replace(num_sms=point.num_sms)
    if sanitize:
        config = config.replace(sanitize=True)
    if trace:
        config = config.replace(stall_attribution=True)
    return config


def config_key_fields(config: GPUConfig) -> dict:
    """Every field of a config as JSON-safe primitives (nested included)."""
    return dataclasses.asdict(config)


def point_key(point: SimPoint, sanitize: bool = False, trace: bool = False) -> str:
    """Stable content hash identifying a point's simulation inputs.

    The key covers the full resolved config, the workload's name *and*
    profile fields (so editing a profile invalidates its cached results),
    the trace-synthesis :data:`PROFILE_VERSION`, the simulator version,
    and the timeline flag.  It deliberately excludes the design *name*:
    two names resolving to identical configs share cache entries.
    ``sanitize`` is part of the config and therefore of the key: sanitized
    runs must be byte-identical to plain ones (that's what the smoke gate
    asserts), but they never *share* cache entries, so a sanitizer bug can
    never poison the plain-run cache.  ``trace`` separates the cache the
    same way: traced stats carry stall buckets a plain consumer must
    never see, and an explicit flag keeps the separation even if the
    resolved configs were ever to collide.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "sim_version": _SIM_VERSION,
        "config": config_key_fields(
            resolved_config(point, sanitize=sanitize, trace=trace)
        ),
        "workload": {
            "app": point.app,
            "profile": dataclasses.asdict(get_profile(point.app)),
            "profile_version": PROFILE_VERSION,
        },
        "collect_timeline": point.collect_timeline,
        "trace": trace,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def trace_stem(point: SimPoint) -> str:
    """Filesystem-safe basename for a point's trace files."""
    tl = "-tl" if point.collect_timeline else ""
    return f"{point.app}--{point.design}--sms{point.num_sms}{tl}"


def _simulate_point(
    point_fields: tuple,
    sanitize: bool = False,
    trace_dir: Optional[str] = None,
    trace_cycles: Optional[int] = None,
    code_cache_dir: Optional[str] = None,
) -> Tuple[tuple, dict, float, int, Optional[str], str, tuple]:
    """Worker entry: simulate one point, return its payload and wall time.

    Takes/returns plain tuples and dicts so the function pickles cheaply
    under any multiprocessing start method.  Returns ``(point_fields,
    stats payload, sim seconds, worker pid, chrome-trace path or None,
    compiled-code source, trace-code cache notes)``.  The notes are
    ``(kind, detail)`` pairs drained from :mod:`repro.trace.code_cache`
    — quarantine/degradation events that happened inside this worker
    process and would otherwise be invisible to the parent's manifest.
    The kernel arrives pre-compiled through
    :func:`~repro.workloads.get_compiled_kernel` — resolved *before* the
    timed region, so ``secs`` measures simulation alone and the same-app
    points of an affinity chunk pay for trace synthesis exactly once per
    bank layout (``code source == "memory"`` from the second point on).
    With ``trace_dir`` set, the run is traced (stall attribution on, a
    :class:`~repro.obs.Tracer` attached) and the worker itself writes the
    point's ``<stem>.trace.json`` / ``<stem>.events.jsonl`` files, so
    event streams never travel over the pool's result pipe.
    """
    point = SimPoint(*point_fields)
    chaos_trip("sim", point.label())
    config = get_design(point.design)
    if sanitize:
        config = config.replace(sanitize=True)
    tracer = None
    if trace_dir is not None:
        from ..obs import Tracer

        config = config.replace(stall_attribution=True)
        tracer = Tracer(max_cycles=trace_cycles)
    kernel, code_source = get_compiled_kernel(
        point.app,
        config.bank_mapping,
        config.rf_banks_per_subcore,
        cache_dir=Path(code_cache_dir) if code_cache_dir is not None else None,
        use_disk=code_cache_dir is not None,
    )
    t0 = time.perf_counter()
    stats = simulate(
        kernel,
        config,
        num_sms=point.num_sms,
        collect_timeline=point.collect_timeline,
        tracer=tracer,
    )
    secs = time.perf_counter() - t0
    trace_path: Optional[str] = None
    if tracer is not None:
        from ..obs import write_chrome_trace, write_events_jsonl

        assert trace_dir is not None
        out = Path(trace_dir)
        out.mkdir(parents=True, exist_ok=True)
        stem = trace_stem(point)
        chrome = out / f"{stem}.trace.json"
        write_chrome_trace(tracer, chrome)
        write_events_jsonl(tracer, out / f"{stem}.events.jsonl")
        trace_path = str(chrome)
    return (
        point_fields,
        stats.to_payload(),
        secs,
        os.getpid(),
        trace_path,
        code_source,
        tuple(drain_code_notes()),
    )


def _simulate_chunk(fields_list: Sequence[tuple], **kwargs) -> List[tuple]:
    """Worker entry for an app-affinity chunk: simulate points in order.

    One pool task per chunk keeps every same-app point on one worker, so
    the compiled trace is synthesized (or disk-loaded) once and then served
    from the in-process memo.  Looks ``_simulate_point`` up as a module
    global on every call so test seams that patch it apply to chunked runs
    too.
    """
    return [_simulate_point(fields, **kwargs) for fields in fields_list]


class ExperimentEngine:
    """Executes simulation points with caching, fan-out and robustness."""

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[os.PathLike] = None,
        use_disk_cache: bool = True,
        timeout: Optional[float] = None,
        progress: bool = False,
        sanitize: bool = False,
        trace_dir: Optional[os.PathLike] = None,
        trace_cycles: Optional[int] = None,
        manifest_path: Optional[os.PathLike] = None,
        metrics: Optional[MetricsRegistry] = None,
        status_path: Optional[os.PathLike] = None,
        journal_path: Optional[os.PathLike] = None,
        resume: bool = False,
    ):
        self.workers = max(1, int(workers))
        self.cache_dir = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR
        self.use_disk_cache = use_disk_cache
        #: Per-point wall-clock budget (seconds) when running on the pool;
        #: a point exceeding it is retried once in the parent process.
        self.timeout = timeout
        self.progress = progress
        #: Run every simulation with the runtime invariant sanitizer
        #: installed (``python -m repro --sanitize``).  Keys the cache
        #: separately from plain runs even though results are identical.
        self.sanitize = sanitize
        #: Trace every simulated point into this directory (``--trace``):
        #: stall attribution on, Chrome-trace JSON + events JSONL written
        #: per point.  Keys the cache separately — traced stats carry
        #: stall buckets.
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.trace_cycles = trace_cycles
        #: Per-run JSONL telemetry (``repro.obs.RunManifest``).  Defaults
        #: to ``<trace_dir>/manifest.jsonl`` when tracing; pass an explicit
        #: path to audit untraced batches too.
        if manifest_path is None and self.trace_dir is not None:
            manifest_path = self.trace_dir / "manifest.jsonl"
        self.manifest: Optional[RunManifest] = (
            RunManifest(manifest_path) if manifest_path is not None else None
        )
        #: Optional run-level metrics registry (``repro.obs.metrics``).
        #: ``None`` (the default) is the zero-overhead path: every hook is
        #: an ``is not None`` test, no instrument exists, results are
        #: byte-identical to an uninstrumented run.
        self.metrics = metrics
        #: Optional live-health heartbeat: a status.json rewritten
        #: atomically while batches run (``repro.obs.heartbeat``).
        self.heartbeat: Optional[Heartbeat] = (
            Heartbeat(str(status_path)) if status_path is not None else None
        )
        #: Crash-safe run journal (``repro.obs.journal``): one atomically
        #: appended line per settled point.  Defaults to
        #: ``<trace_dir>/journal.jsonl`` when tracing, like the manifest.
        if journal_path is None and self.trace_dir is not None:
            journal_path = self.trace_dir / "journal.jsonl"
        self.journal: Optional[RunJournal] = (
            RunJournal(journal_path) if journal_path is not None else None
        )
        #: ``--resume``: journaled ``key -> digest`` checkpoints from the
        #: interrupted run.  Disk hits matching a checkpoint count as
        #: resumed; mismatches warn (``journal_mismatch``) and re-simulate.
        self.resume = resume
        self._resume_digests: Dict[str, str] = (
            load_journal(self.journal.path)
            if resume and self.journal is not None
            else {}
        )
        #: Degradation-ladder state (see ``docs/robustness.md``): store
        #: failures feed the memory-only degrade, chunk failures feed the
        #: serial-fallback circuit breaker; both warn exactly once.
        self.store_error_threshold = STORE_ERROR_THRESHOLD
        self.circuit_threshold = CIRCUIT_THRESHOLD
        self._store_failures = 0
        self._store_degraded = False
        self._pool_failures = 0
        self._circuit_open = False
        self._seen_code_notes: set = set()
        self.profile = EngineProfile()
        self._mem: Dict[str, SimStats] = {}

    @property
    def trace(self) -> bool:
        return self.trace_dir is not None

    def _point_key(self, point: SimPoint) -> str:
        return point_key(point, sanitize=self.sanitize, trace=self.trace)

    def _record(
        self,
        point: SimPoint,
        key: str,
        source: str,
        stats: SimStats,
        seconds: Optional[float] = None,
        worker: Optional[int] = None,
        trace: Optional[str] = None,
    ) -> None:
        self._metric_point(source)
        if self.manifest is None:
            return
        self.manifest.record(
            point.label(),
            key,
            source,
            stats_digest(stats.to_payload()),
            seconds=seconds,
            worker=worker,
            trace=trace,
        )

    def _warn(self, kind: str, detail: str, point: Optional[str] = None) -> None:
        """One degradation-ladder step: manifest warning + metrics counter."""
        self._metric_degradation(kind)
        if self.manifest is not None:
            self.manifest.warn(kind, detail, point=point)

    def _settle(self, point: SimPoint, key: str, stats: SimStats) -> None:
        """Persist one freshly simulated point the moment it arrives.

        Memory cache, disk cache, then the journal checkpoint — in that
        order, so a key is journaled only after the result it names is
        durable.  Called per point as pool chunks settle (not after the
        whole batch), which is what makes a crash at point 900/1000 lose
        at most the in-flight points.
        """
        self._mem[key] = stats
        self._store_disk(key, point, stats)
        self._journal_point(point, key, stats)

    def _journal_point(self, point: SimPoint, key: str, stats: SimStats) -> None:
        if self.journal is None:
            return
        try:
            self.journal.record(key, stats_digest(stats.to_payload()), point.label())
        except OSError:
            self.profile.disk_errors += 1
            return
        chaos_trip("journal", key, path=str(self.journal.path))

    # -- cache plumbing ----------------------------------------------------

    def memory_cache_size(self) -> int:
        return len(self._mem)

    def clear_memory(self) -> None:
        self._mem.clear()

    def cache_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _load_disk(self, key: str) -> Optional[SimStats]:
        if not self.use_disk_cache:
            return None
        path = self.cache_path(key)
        chaos_trip("result_read", key, path=str(path))
        try:
            fh = open(path, "r", encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            self.profile.disk_errors += 1
            return None
        with fh:
            try:
                doc = json.load(fh)
                if doc.get("schema") != CACHE_SCHEMA:
                    # CACHE_SCHEMA is part of the point key, so an entry
                    # *at this path* stamped with another generation is
                    # inconsistent, not merely old — quarantine it like
                    # any other corruption and recompute.
                    raise ValueError(f"schema {doc.get('schema')!r}")
                return SimStats.from_payload(doc["stats"])
            except (OSError, ValueError, KeyError, TypeError):
                # Corrupted or truncated entry: quarantine it and
                # re-simulate — but only the exact file we read.  On a
                # shared cache directory a parallel _store_disk may have
                # os.replace()d a fresh, valid entry over this path
                # between our read and the move; a blind unlink/rename
                # would silently discard that result.  Comparing the open
                # handle's identity with the path's current identity
                # confines the quarantine to the corrupted file.
                self.profile.disk_errors += 1
                if self._quarantine_exact(
                    path, fh, self.cache_dir / "quarantine"
                ):
                    self.profile.quarantines += 1
                    self._warn(
                        "cache_quarantine",
                        f"corrupted result-cache entry {path.name} moved "
                        "to quarantine/; point will re-simulate",
                    )
                return None

    @staticmethod
    def _quarantine_exact(path: Path, fh, quarantine_dir: Path) -> bool:
        """Move ``path`` aside only while it still names the file open as ``fh``.

        The corrupted entry is preserved under ``quarantine_dir`` for
        post-mortems instead of being destroyed; when even that fails
        (read-only directory) it falls back to a guarded unlink.  Returns
        True when the bad file no longer occupies the cache path.
        """
        try:
            opened = os.fstat(fh.fileno())
            current = os.stat(path)
            if (opened.st_dev, opened.st_ino) != (current.st_dev, current.st_ino):
                return False
            try:
                quarantine_dir.mkdir(parents=True, exist_ok=True)
                os.replace(path, quarantine_dir / path.name)
            except OSError:
                os.unlink(path)
            return True
        except OSError:
            return False

    def _store_disk(self, key: str, point: SimPoint, stats: SimStats) -> None:
        if not self.use_disk_cache or self._store_degraded:
            return
        doc = {
            "schema": CACHE_SCHEMA,
            "point": dataclasses.asdict(point),
            "stats": stats.to_payload(),
        }
        try:
            chaos_trip("result_store", key)
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.cache_dir, prefix=f".{key[:16]}.", suffix=".tmp"
            )
        except OSError:
            # A read-only or full cache directory must never fail a run.
            self._store_failed()
            return
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, self.cache_path(key))
        except OSError:
            # Serialization or the atomic rename failed (disk full,
            # permissions flipped, the final path is a directory, ...):
            # count it and remove the orphaned temp file — mkstemp names
            # are unique per call, so leaked ``.tmp`` files would pile up
            # in a long-lived shared cache directory forever.
            self._store_failed()
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self._store_failures = 0
        chaos_trip("result_write", key, path=str(self.cache_path(key)))

    def _store_failed(self) -> None:
        """One store ``OSError``: count it, degrade to memory-only at N."""
        self.profile.disk_errors += 1
        self._store_failures += 1
        if (
            self._store_failures >= self.store_error_threshold
            and not self._store_degraded
        ):
            self._store_degraded = True
            self._warn(
                "cache_degraded",
                f"{self._store_failures} consecutive result-store errors "
                f"({self.cache_dir}); disk cache is now memory-only for "
                "this engine",
            )

    # -- execution ---------------------------------------------------------

    def _resume_ok(self, point: SimPoint, key: str, stats: SimStats) -> bool:
        """Cross-check a disk hit against its journaled checkpoint.

        Only meaningful on ``--resume`` runs: a hit whose digest matches
        the journal counts as resumed; a mismatch means the cache changed
        underneath the journal (corruption, a foreign writer), so the
        point re-simulates and the discrepancy is warned, not hidden.
        """
        expected = self._resume_digests.get(key)
        if expected is None:
            return True
        if expected == stats_digest(stats.to_payload()):
            self.profile.resumed += 1
            return True
        self._warn(
            "journal_mismatch",
            f"cached digest for {point.label()} no longer matches its "
            "journaled checkpoint; re-simulating",
            point=point.label(),
        )
        return False

    def run_point(self, point: SimPoint) -> SimStats:
        """Resolve one point (memory cache → disk cache → simulate)."""
        key = self._point_key(point)
        hit = self._mem.get(key)
        if hit is not None:
            self.profile.mem_hits += 1
            self._record(point, key, "memory", hit)
            return hit
        stats = self._load_disk(key)
        if stats is not None and self._resume_ok(point, key, stats):
            self.profile.disk_hits += 1
            self._mem[key] = stats
            self._record(point, key, "disk", stats)
            return stats
        self.profile.misses += 1
        stats = self._simulate_serial(point)
        self._settle(point, key, stats)
        return stats

    def run_many(self, points: Iterable[SimPoint]) -> Dict[SimPoint, SimStats]:
        """Resolve a batch of points, fanning cache misses out over workers.

        Returns a dict covering every *distinct* point in ``points``.
        """
        ordered: List[SimPoint] = []
        seen = set()
        for p in points:
            if p not in seen:
                seen.add(p)
                ordered.append(p)

        batch_t0 = time.perf_counter()
        hb = self.heartbeat
        if hb is not None:
            hb.begin(len(ordered), in_flight=len(ordered))

        results: Dict[SimPoint, SimStats] = {}
        missing: List[Tuple[SimPoint, str]] = []
        scan_t0 = time.perf_counter()
        for p in ordered:
            key = self._point_key(p)
            hit = self._mem.get(key)
            if hit is not None:
                self.profile.mem_hits += 1
                self._record(p, key, "memory", hit)
                results[p] = hit
            else:
                stats = self._load_disk(key)
                if stats is not None and self._resume_ok(p, key, stats):
                    self.profile.disk_hits += 1
                    self._mem[key] = stats
                    self._record(p, key, "disk", stats)
                    results[p] = stats
                else:
                    self.profile.misses += 1
                    missing.append((p, key))
                    continue
            if hb is not None:
                hb.advance(done=1)
        self._metric_phase("cache-load", time.perf_counter() - scan_t0)

        if missing:
            use_pool = (
                self.workers > 1
                and len(missing) > 1
                and not self._circuit_open
            )
            restore_term = self._install_sigterm()
            try:
                if use_pool:
                    simulated = self._run_pool(missing)
                else:
                    simulated = {}
                    for p, key in missing:
                        stats = self._simulate_serial(p)
                        self._settle(p, key, stats)
                        simulated[p] = stats
                        if hb is not None:
                            hb.advance(done=1)
                for p, _ in missing:
                    results[p] = simulated[p]
            except KeyboardInterrupt:
                self._interrupted()
                raise
            finally:
                self._restore_sigterm(restore_term)

        self._metric_batch(len(ordered), time.perf_counter() - batch_t0)
        if hb is not None:
            hb.finish()
        return results

    # -- interrupt handling --------------------------------------------------

    @staticmethod
    def _sigterm_to_interrupt(signum, frame):
        raise KeyboardInterrupt()

    def _install_sigterm(self):
        """Route SIGTERM through the KeyboardInterrupt path while a batch runs.

        Only possible from the main thread (a CPython restriction); from
        anywhere else — or when signals are unavailable — the run keeps
        default delivery and returns ``None``.  The previous handler is
        wrapped in a tuple so ``SIG_DFL`` (which is falsy) restores
        correctly.
        """
        if threading.current_thread() is not threading.main_thread():
            return None
        try:
            previous = signal.signal(signal.SIGTERM, self._sigterm_to_interrupt)
        except (ValueError, OSError):
            return None
        return (previous,)

    def _restore_sigterm(self, token) -> None:
        if token is None:
            return
        try:
            signal.signal(signal.SIGTERM, token[0])
        except (ValueError, OSError):
            pass

    def _interrupted(self) -> None:
        """Flush telemetry on Ctrl-C/SIGTERM: the run ends loudly, not torn.

        Every settled point is already on disk and in the journal
        (:meth:`_settle` runs per arrival), so all that remains is to say
        so: a structured manifest warning, a metrics counter, and a final
        heartbeat with state ``interrupted``.
        """
        self._progress_end()
        self._warn(
            "interrupted",
            "batch interrupted by signal; settled points are journaled "
            "and a re-run with --resume completes only the rest",
        )
        if self.heartbeat is not None:
            self.heartbeat.interrupt()

    # -- execution backends --------------------------------------------------

    def _sim_kwargs(self) -> dict:
        return {
            "sanitize": self.sanitize,
            "trace_dir": str(self.trace_dir) if self.trace_dir else None,
            "trace_cycles": self.trace_cycles,
            # The compiled-trace code cache lives beside the stats cache
            # and is disabled with it: --no-cache runs build in memory.
            "code_cache_dir": (
                str(self.cache_dir / "trace-code") if self.use_disk_cache else None
            ),
        }

    def _note_code(self, point: SimPoint, code_source: str, worker: int) -> None:
        """Account one point's compiled-code resolution (profile + manifest).

        In-process memo hits (``"memory"``) are the steady state inside an
        app-affinity chunk and are not recorded; compiles and disk loads
        are, as ``trace:<app>`` manifest entries keyed by the artifact's
        content address.  Without a disk cache there is no durable
        artifact to cite, so only the profile counter is kept.
        """
        if code_source == "memory":
            return
        self._metric_code(code_source)
        if code_source == "compile":
            self.profile.code_compiles += 1
        elif code_source == "disk":
            self.profile.code_loads += 1
        if self.manifest is None or not self.use_disk_cache:
            return
        config = resolved_config(point)
        key = compiled_code_key(
            point.app, config.bank_mapping, config.rf_banks_per_subcore
        )
        self.manifest.record(
            f"trace:{point.app}", key, code_source, key[:16], worker=worker
        )

    def _code_notes(self, notes: Sequence[Tuple[str, str]]) -> None:
        """Surface trace-code cache degradation events from workers.

        Each worker process quarantines and degrades independently;
        identical (kind, detail) pairs from different workers collapse
        into one structured warning so a 16-worker pool on a read-only
        cache warns once, not sixteen times.
        """
        for kind, detail in notes:
            if (kind, detail) in self._seen_code_notes:
                continue
            self._seen_code_notes.add((kind, detail))
            self._warn(kind, detail)

    def _simulate_serial(self, point: SimPoint, source: str = "sim") -> SimStats:
        _, payload, secs, worker, trace_path, code_source, notes = _simulate_point(
            dataclasses.astuple(point), **self._sim_kwargs()
        )
        self._code_notes(notes)
        self._note_code(point, code_source, worker)
        self.profile.note_sim(point.label(), secs, worker)
        self._metric_phase("retry" if source == "retry" else "simulate", secs)
        stats = SimStats.from_payload(payload)
        self._record(
            point,
            self._point_key(point),
            source,
            stats,
            seconds=secs,
            worker=worker,
            trace=trace_path,
        )
        return stats

    def _make_pool(self, n: int) -> concurrent.futures.ProcessPoolExecutor:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        return concurrent.futures.ProcessPoolExecutor(max_workers=n, mp_context=ctx)

    def _point_weights(self) -> Dict[str, float]:
        """Expected seconds per point label, for chunk load balancing.

        Sourced from past runs: the run manifest on disk first (it survives
        across engines pointed at the same manifest path), then this
        engine's own profile.  Points never timed before weigh 1.0.
        """
        weights: Dict[str, float] = {}
        if self.manifest is not None:
            try:
                for rec in read_manifest(self.manifest.path):
                    secs = rec.get("seconds")
                    if isinstance(secs, (int, float)):
                        weights[rec["point"]] = float(secs)
            except (OSError, ValueError):
                pass
        for label, secs in self.profile.point_seconds:
            weights.setdefault(label, secs)
        return weights

    def _plan_chunks(
        self, missing: Sequence[Tuple[SimPoint, str]]
    ) -> List[List[SimPoint]]:
        """Pack points into app-affinity chunks, one pool task each.

        All points of one app always share a chunk — the worker then
        synthesizes/loads that app's compiled trace once and serves every
        design from its in-process memo.  App groups are LPT-packed
        (heaviest first, into the lightest bin) over at most ``workers``
        bins, weighted by expected per-point seconds from past
        :class:`~repro.obs.RunManifest` records, which evens out worker
        wall time when apps differ wildly in cost.  Ties break on app name
        and bin index, keeping the plan deterministic.
        """
        weights = self._point_weights()
        groups: Dict[str, List[SimPoint]] = {}
        for p, _ in missing:
            groups.setdefault(p.app, []).append(p)

        def load(points: List[SimPoint]) -> float:
            return sum(weights.get(p.label(), 1.0) for p in points)

        ordered = sorted(groups.items(), key=lambda kv: (-load(kv[1]), kv[0]))
        bins = min(self.workers, len(ordered))
        chunks: List[List[SimPoint]] = [[] for _ in range(bins)]
        loads = [0.0] * bins
        for _, points in ordered:
            i = min(range(bins), key=lambda j: (loads[j], j))
            chunks[i].extend(points)
            loads[i] += load(points)
        return [c for c in chunks if c]

    def _run_pool(
        self, missing: Sequence[Tuple[SimPoint, str]]
    ) -> Dict[SimPoint, SimStats]:
        """Fan app-affinity chunks out over a worker pool; retry failures.

        Robustness contract: a worker crash (``BrokenProcessPool``), a
        chunk timeout (the per-point budget times the chunk's size), or a
        pool that cannot even be created never fails the batch — affected
        points are re-simulated once in the parent process, which either
        succeeds or raises the *real* error.  Consecutive chunk failures
        feed the circuit breaker: at :data:`CIRCUIT_THRESHOLD` the engine
        warns once (``circuit_open``) and later batches run serially.
        Every settled point is persisted and journaled on arrival.
        """
        points = [p for p, _ in missing]
        keymap = {p: key for p, key in missing}
        plan_t0 = time.perf_counter()
        chunks = self._plan_chunks(missing)
        self._metric_phase("plan", time.perf_counter() - plan_t0)
        hb = self.heartbeat
        try:
            pool = self._make_pool(len(chunks))
        except (OSError, ValueError):
            self._pool_failures = self.circuit_threshold
            self._open_circuit("worker pool could not be created")
            done: Dict[SimPoint, SimStats] = {}
            for p in points:
                done[p] = self._simulate_serial(p)
                self._settle(p, keymap[p], done[p])
                if hb is not None:
                    hb.advance(done=1)
            return done

        done = {}
        failed: List[SimPoint] = []
        total = len(points)
        try:
            pending: Dict[concurrent.futures.Future, int] = {}
            submitted = time.perf_counter()
            deadlines: Dict[int, Optional[float]] = {}
            try:
                for i, chunk in enumerate(chunks):
                    fut = pool.submit(
                        _simulate_chunk,
                        [dataclasses.astuple(p) for p in chunk],
                        **self._sim_kwargs(),
                    )
                    pending[fut] = i
                    budget = (
                        self.timeout * len(chunk)
                        if self.timeout is not None
                        else None
                    )
                    deadlines[i] = (
                        submitted + budget if budget is not None else None
                    )
                    if hb is not None:
                        hb.worker_started(
                            f"chunk-{i}",
                            hb.clock() + budget if budget is not None else None,
                        )
            except concurrent.futures.process.BrokenProcessPool:
                started = set(pending.values())
                for i, chunk in enumerate(chunks):
                    if i not in started:
                        failed.extend(chunk)

            # Poll instead of a blocking per-chunk join: each pass settles
            # every completed chunk, expires chunks past their deadline
            # (budget = per-point timeout × chunk size) with a structured
            # manifest warning, and refreshes the heartbeat — so a wedged
            # worker is visible the moment it goes stale, not at join.
            while pending:
                wait_for: Optional[float] = None
                now = time.perf_counter()
                live = [
                    deadlines[i] for i in pending.values()
                    if deadlines[i] is not None
                ]
                if live:
                    wait_for = max(0.0, min(live) - now)
                if hb is not None:
                    wait_for = (
                        hb.interval
                        if wait_for is None
                        else min(wait_for, hb.interval)
                    )
                ready, _ = concurrent.futures.wait(
                    list(pending),
                    timeout=wait_for,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                now = time.perf_counter()
                for fut in sorted(ready, key=lambda f: pending[f]):
                    i = pending.pop(fut)
                    chunk = chunks[i]
                    try:
                        results = fut.result()
                    except Exception:
                        # BrokenProcessPool or an error raised inside the
                        # worker — every point of the chunk is retried
                        # once in-parent, where a real simulation error
                        # surfaces undisturbed.
                        failed.extend(chunk)
                        self._chunk_failed()
                        if self.manifest is not None:
                            self.manifest.warn(
                                "chunk_crash",
                                f"chunk {i} ({chunk[0].app}, "
                                f"{len(chunk)} points) raised in a worker; "
                                "retrying in parent",
                                point=f"chunk:{chunk[0].app}",
                            )
                    else:
                        elapsed = now - submitted
                        self._metric_phase("simulate", elapsed)
                        self._pool_failures = 0
                        for p, res in zip(chunk, results):
                            (
                                _,
                                payload,
                                secs,
                                worker,
                                trace_path,
                                code_source,
                                notes,
                            ) = res
                            self._code_notes(notes)
                            self._note_code(p, code_source, worker)
                            self.profile.note_sim(p.label(), secs, worker)
                            stats = SimStats.from_payload(payload)
                            self._record(
                                p,
                                keymap[p],
                                "sim",
                                stats,
                                seconds=secs,
                                worker=worker,
                                trace=trace_path,
                            )
                            self._settle(p, keymap[p], stats)
                            done[p] = stats
                        if hb is not None:
                            hb.advance(done=len(chunk))
                    if hb is not None:
                        hb.worker_finished(f"chunk-{i}")
                    self._progress_line(len(done) + len(failed), total)
                for fut in sorted(pending, key=lambda f: pending[f]):
                    i = pending[fut]
                    deadline = deadlines[i]
                    if deadline is None or now <= deadline:
                        continue
                    # Past its budget with no result: the worker is
                    # wedged (or the budget too tight).  Record the
                    # stall in the manifest while the run is still in
                    # flight, abandon the chunk and retry in-parent.
                    pending.pop(fut)
                    fut.cancel()
                    chunk = chunks[i]
                    failed.extend(chunk)
                    self._chunk_failed()
                    if self.manifest is not None:
                        self.manifest.warn(
                            "chunk_timeout",
                            f"chunk {i} ({chunk[0].app}, {len(chunk)} "
                            f"points) exceeded its "
                            f"{self.timeout * len(chunk):.3g}s budget; "
                            "retrying in parent",
                            point=f"chunk:{chunk[0].app}",
                        )
                    self._progress_line(len(done) + len(failed), total)
                if hb is not None:
                    hb.stale_workers()
                    hb.write()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
            self._progress_end()

        for p in failed:
            self.profile.retries += 1
            stats = self._simulate_serial(p, source="retry")
            self._settle(p, keymap[p], stats)
            done[p] = stats
            if hb is not None:
                hb.advance(done=1)
        return done

    def _chunk_failed(self) -> None:
        """One failed pool chunk: count it, open the circuit breaker at N."""
        self._pool_failures += 1
        if (
            self._pool_failures >= self.circuit_threshold
            and not self._circuit_open
        ):
            self._open_circuit(
                f"{self._pool_failures} consecutive pool chunk failures"
            )

    def _open_circuit(self, why: str) -> None:
        if self._circuit_open:
            return
        self._circuit_open = True
        self._warn(
            "circuit_open",
            f"{why}; falling back to serial in-process execution",
        )

    # -- observability -------------------------------------------------------

    def _metric_point(self, source: str) -> None:
        """Count one point resolution by source (memory/disk/sim/retry)."""
        if self.metrics is None:
            return
        self.metrics.counter(
            "repro_engine_points_total",
            "Point resolutions by source (cache tier or simulation).",
            ("source",),
        ).labels(source=source).inc()

    def _metric_code(self, source: str) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(
            "repro_engine_code_total",
            "Compiled-trace artifact events by source (compile or disk load).",
            ("source",),
        ).labels(source=source).inc()

    def _metric_degradation(self, step: str) -> None:
        """Count one degradation-ladder event by step (quarantine, ...)."""
        if self.metrics is None:
            return
        self.metrics.counter(
            "repro_engine_degradations_total",
            "Degradation-ladder events by step (cache_quarantine, "
            "cache_degraded, circuit_open, interrupted, journal_mismatch).",
            ("step",),
        ).labels(step=step).inc()

    def _metric_phase(self, phase: str, secs: float) -> None:
        """Observe one engine phase span (plan/cache-load/simulate/retry)."""
        if self.metrics is None:
            return
        self.metrics.histogram(
            "repro_engine_phase_seconds",
            "Wall time of engine phases, per chunk or batch.",
            ("phase",),
        ).labels(phase=phase).observe(secs)

    def _metric_batch(self, points: int, elapsed: float) -> None:
        """Publish batch-level gauges after :meth:`run_many` settles."""
        if self.metrics is None:
            return
        prof = self.profile
        self.metrics.gauge(
            "repro_engine_cache_hit_ratio",
            "Fraction of point lookups served from a cache (0..1).",
        ).set(prof.hit_rate())
        self.metrics.gauge(
            "repro_engine_worker_skew",
            "Max/mean ratio of per-worker simulation wall time (1.0 = even).",
        ).set(prof.worker_skew())
        if elapsed > 0:
            self.metrics.gauge(
                "repro_engine_points_per_sec",
                "Points resolved per wall-clock second over the last batch.",
            ).set(points / elapsed)
        seconds = self.metrics.gauge(
            "repro_engine_worker_seconds_total",
            "Simulation wall time accumulated per worker process.",
            ("worker",),
        )
        for worker in sorted(prof.worker_seconds):
            seconds.labels(worker=str(worker)).set(prof.worker_seconds[worker])

    def _progress_line(self, done: int, total: int) -> None:
        if self.progress:
            prof = self.profile
            sys.stderr.write(
                f"\r[engine] {done}/{total} points "
                f"(hits {prof.hits}, sims {prof.sims}, retries {prof.retries})"
            )
            sys.stderr.flush()

    def _progress_end(self) -> None:
        if self.progress:
            sys.stderr.write("\n")
            sys.stderr.flush()

    def profile_summary(self) -> str:
        return self.profile.summary()


# -- the process-wide engine used by repro.experiments.runner ----------------

_engine = ExperimentEngine()


def get_engine() -> ExperimentEngine:
    """The engine behind :func:`repro.experiments.run_app`."""
    return _engine


def configure(
    workers: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    use_disk_cache: Optional[bool] = None,
    timeout: Optional[float] = None,
    progress: Optional[bool] = None,
    sanitize: Optional[bool] = None,
    trace_dir: Optional[os.PathLike] = None,
    trace_cycles: Optional[int] = None,
    manifest_path: Optional[os.PathLike] = None,
    metrics: Optional[MetricsRegistry] = None,
    status_path: Optional[os.PathLike] = None,
    journal_path: Optional[os.PathLike] = None,
    resume: Optional[bool] = None,
) -> ExperimentEngine:
    """Replace the process-wide engine; unspecified knobs keep their values.

    The memory cache starts empty on the new engine; the disk cache is
    shared through the filesystem, so previously stored results remain
    visible (keys are content-addressed and engine-independent).
    """
    global _engine
    old = _engine
    _engine = ExperimentEngine(
        workers=old.workers if workers is None else workers,
        cache_dir=old.cache_dir if cache_dir is None else cache_dir,
        use_disk_cache=(
            old.use_disk_cache if use_disk_cache is None else use_disk_cache
        ),
        timeout=old.timeout if timeout is None else timeout,
        progress=old.progress if progress is None else progress,
        sanitize=old.sanitize if sanitize is None else sanitize,
        trace_dir=old.trace_dir if trace_dir is None else trace_dir,
        trace_cycles=old.trace_cycles if trace_cycles is None else trace_cycles,
        manifest_path=(
            (old.manifest.path if old.manifest is not None else None)
            if manifest_path is None
            else manifest_path
        ),
        metrics=old.metrics if metrics is None else metrics,
        status_path=(
            (old.heartbeat.path if old.heartbeat is not None else None)
            if status_path is None
            else status_path
        ),
        journal_path=(
            (old.journal.path if old.journal is not None else None)
            if journal_path is None
            else journal_path
        ),
        resume=old.resume if resume is None else resume,
    )
    return _engine
