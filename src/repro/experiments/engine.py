"""Parallel, disk-cached experiment-execution engine.

Every figure of the reproduction decomposes into *simulation points* —
``(app, design, num_sms, collect_timeline)`` tuples — and figures share
points heavily (the Fig. 1 baseline runs are the Fig. 9/10 denominators).
The engine is the single authority that turns a batch of points into
:class:`~repro.metrics.SimStats`:

1. **dedup** — a batch is reduced to its unique points;
2. **cache** — each point is looked up in a per-process memory cache and
   then in a content-addressed on-disk cache keyed by a stable SHA-256
   hash of the *resolved* design config (every ``GPUConfig`` field,
   including the memory hierarchy), the workload name plus its full
   profile and :data:`~repro.workloads.PROFILE_VERSION`, and the
   simulator version;
3. **fan-out** — remaining misses run on a ``concurrent.futures`` process
   pool (``workers > 1``), with a per-point timeout, one retry in the
   parent process when a worker crashes or times out, and a graceful
   serial fallback when the pool cannot be created at all.

Caching is loss-free because simulation is bit-deterministic (warp
scheduling never iterates hash-ordered sets — see ``SubCore.ready``) and
:meth:`SimStats.to_payload` round-trips losslessly.

Observability: the engine keeps per-point wall times and hit/miss/retry
counters (:class:`EngineProfile`); ``python -m repro --profile`` prints
them, and ``--workers/--cache-dir/--no-cache`` configure the process-wide
engine used by :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
import multiprocessing
import os
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import __version__ as _SIM_VERSION
from ..config import GPUConfig
from ..gpu import simulate
from ..metrics import SimStats
from ..workloads import PROFILE_VERSION, get_kernel, get_profile
from .designs import get_design

#: Bump when the cache-file layout (not the simulated results) changes.
CACHE_SCHEMA = 1

#: Default on-disk cache location (override with ``REPRO_CACHE_DIR`` or
#: ``configure(cache_dir=...)``).
DEFAULT_CACHE_DIR = Path(
    os.environ.get("REPRO_CACHE_DIR", "~/.cache/repro-sim")
).expanduser()


@dataclass(frozen=True, order=True)
class SimPoint:
    """One simulation the evaluation needs: an app under a named design."""

    app: str
    design: str = "baseline"
    num_sms: int = 1
    collect_timeline: bool = False

    def label(self) -> str:
        tl = " +timeline" if self.collect_timeline else ""
        return f"{self.app} × {self.design} (num_sms={self.num_sms}{tl})"


@dataclass
class EngineProfile:
    """Counters and per-point wall times for one engine's lifetime."""

    mem_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    sims: int = 0
    retries: int = 0
    disk_errors: int = 0
    point_seconds: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def hits(self) -> int:
        return self.mem_hits + self.disk_hits

    def total_sim_seconds(self) -> float:
        return sum(s for _, s in self.point_seconds)

    def summary(self, slowest: int = 5) -> str:
        lines = [
            "engine profile",
            "--------------",
            f"memory hits   {self.mem_hits}",
            f"disk hits     {self.disk_hits}",
            f"simulations   {self.sims}",
            f"retries       {self.retries}",
            f"disk errors   {self.disk_errors}",
            f"sim wall time {self.total_sim_seconds():.2f}s",
        ]
        if self.point_seconds:
            lines.append(f"slowest points (top {slowest}):")
            ranked = sorted(self.point_seconds, key=lambda t: -t[1])[:slowest]
            lines.extend(f"  {secs:7.2f}s  {label}" for label, secs in ranked)
        return "\n".join(lines)


def resolved_config(point: SimPoint, sanitize: bool = False) -> GPUConfig:
    """The effective config a point simulates (design + num_sms applied)."""
    config = get_design(point.design).replace(num_sms=point.num_sms)
    if sanitize:
        config = config.replace(sanitize=True)
    return config


def config_key_fields(config: GPUConfig) -> dict:
    """Every field of a config as JSON-safe primitives (nested included)."""
    return dataclasses.asdict(config)


def point_key(point: SimPoint, sanitize: bool = False) -> str:
    """Stable content hash identifying a point's simulation inputs.

    The key covers the full resolved config, the workload's name *and*
    profile fields (so editing a profile invalidates its cached results),
    the trace-synthesis :data:`PROFILE_VERSION`, the simulator version,
    and the timeline flag.  It deliberately excludes the design *name*:
    two names resolving to identical configs share cache entries.
    ``sanitize`` is part of the config and therefore of the key: sanitized
    runs must be byte-identical to plain ones (that's what the smoke gate
    asserts), but they never *share* cache entries, so a sanitizer bug can
    never poison the plain-run cache.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "sim_version": _SIM_VERSION,
        "config": config_key_fields(resolved_config(point, sanitize=sanitize)),
        "workload": {
            "app": point.app,
            "profile": dataclasses.asdict(get_profile(point.app)),
            "profile_version": PROFILE_VERSION,
        },
        "collect_timeline": point.collect_timeline,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _simulate_point(
    point_fields: tuple, sanitize: bool = False
) -> Tuple[tuple, dict, float]:
    """Worker entry: simulate one point, return its payload and wall time.

    Takes/returns plain tuples and dicts so the function pickles cheaply
    under any multiprocessing start method.
    """
    point = SimPoint(*point_fields)
    config = get_design(point.design)
    if sanitize:
        config = config.replace(sanitize=True)
    t0 = time.perf_counter()
    stats = simulate(
        get_kernel(point.app),
        config,
        num_sms=point.num_sms,
        collect_timeline=point.collect_timeline,
    )
    return point_fields, stats.to_payload(), time.perf_counter() - t0


class ExperimentEngine:
    """Executes simulation points with caching, fan-out and robustness."""

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[os.PathLike] = None,
        use_disk_cache: bool = True,
        timeout: Optional[float] = None,
        progress: bool = False,
        sanitize: bool = False,
    ):
        self.workers = max(1, int(workers))
        self.cache_dir = Path(cache_dir) if cache_dir is not None else DEFAULT_CACHE_DIR
        self.use_disk_cache = use_disk_cache
        #: Per-point wall-clock budget (seconds) when running on the pool;
        #: a point exceeding it is retried once in the parent process.
        self.timeout = timeout
        self.progress = progress
        #: Run every simulation with the runtime invariant sanitizer
        #: installed (``python -m repro --sanitize``).  Keys the cache
        #: separately from plain runs even though results are identical.
        self.sanitize = sanitize
        self.profile = EngineProfile()
        self._mem: Dict[str, SimStats] = {}

    # -- cache plumbing ----------------------------------------------------

    def memory_cache_size(self) -> int:
        return len(self._mem)

    def clear_memory(self) -> None:
        self._mem.clear()

    def cache_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _load_disk(self, key: str) -> Optional[SimStats]:
        if not self.use_disk_cache:
            return None
        path = self.cache_path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            if doc.get("schema") != CACHE_SCHEMA:
                return None
            return SimStats.from_payload(doc["stats"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupted or truncated entry: drop it and re-simulate.
            self.profile.disk_errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _store_disk(self, key: str, point: SimPoint, stats: SimStats) -> None:
        if not self.use_disk_cache:
            return
        doc = {
            "schema": CACHE_SCHEMA,
            "point": dataclasses.asdict(point),
            "stats": stats.to_payload(),
        }
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.cache_dir, prefix=f".{key[:16]}.", suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, self.cache_path(key))
        except OSError:
            # A read-only or full cache directory must never fail a run.
            self.profile.disk_errors += 1

    # -- execution ---------------------------------------------------------

    def run_point(self, point: SimPoint) -> SimStats:
        """Resolve one point (memory cache → disk cache → simulate)."""
        key = point_key(point, sanitize=self.sanitize)
        hit = self._mem.get(key)
        if hit is not None:
            self.profile.mem_hits += 1
            return hit
        stats = self._load_disk(key)
        if stats is not None:
            self.profile.disk_hits += 1
            self._mem[key] = stats
            return stats
        self.profile.misses += 1
        stats = self._simulate_serial(point)
        self._mem[key] = stats
        self._store_disk(key, point, stats)
        return stats

    def run_many(self, points: Iterable[SimPoint]) -> Dict[SimPoint, SimStats]:
        """Resolve a batch of points, fanning cache misses out over workers.

        Returns a dict covering every *distinct* point in ``points``.
        """
        ordered: List[SimPoint] = []
        seen = set()
        for p in points:
            if p not in seen:
                seen.add(p)
                ordered.append(p)

        results: Dict[SimPoint, SimStats] = {}
        missing: List[Tuple[SimPoint, str]] = []
        for p in ordered:
            key = point_key(p, sanitize=self.sanitize)
            hit = self._mem.get(key)
            if hit is not None:
                self.profile.mem_hits += 1
                results[p] = hit
                continue
            stats = self._load_disk(key)
            if stats is not None:
                self.profile.disk_hits += 1
                self._mem[key] = stats
                results[p] = stats
                continue
            self.profile.misses += 1
            missing.append((p, key))

        if not missing:
            return results

        if self.workers > 1 and len(missing) > 1:
            simulated = self._run_pool(missing)
        else:
            simulated = {
                p: self._simulate_serial(p) for p, _ in missing
            }

        for p, key in missing:
            stats = simulated[p]
            self._mem[key] = stats
            self._store_disk(key, p, stats)
            results[p] = stats
        return results

    # -- execution backends --------------------------------------------------

    def _simulate_serial(self, point: SimPoint) -> SimStats:
        _, payload, secs = _simulate_point(
            dataclasses.astuple(point), sanitize=self.sanitize
        )
        self.profile.sims += 1
        self.profile.point_seconds.append((point.label(), secs))
        return SimStats.from_payload(payload)

    def _make_pool(self, n: int) -> concurrent.futures.ProcessPoolExecutor:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        return concurrent.futures.ProcessPoolExecutor(max_workers=n, mp_context=ctx)

    def _run_pool(
        self, missing: Sequence[Tuple[SimPoint, str]]
    ) -> Dict[SimPoint, SimStats]:
        """Fan points out over a worker pool; retry stragglers serially.

        Robustness contract: a worker crash (``BrokenProcessPool``), a
        per-point timeout, or a pool that cannot even be created never
        fails the batch — affected points are re-simulated once in the
        parent process, which either succeeds or raises the *real* error.
        """
        points = [p for p, _ in missing]
        try:
            pool = self._make_pool(min(self.workers, len(points)))
        except (OSError, ValueError):
            return {p: self._simulate_serial(p) for p in points}

        done: Dict[SimPoint, SimStats] = {}
        failed: List[SimPoint] = []
        total = len(points)
        try:
            futures = {}
            try:
                for p in points:
                    futures[p] = pool.submit(
                        _simulate_point,
                        dataclasses.astuple(p),
                        sanitize=self.sanitize,
                    )
            except concurrent.futures.process.BrokenProcessPool:
                failed.extend(p for p in points if p not in futures)
            for p, fut in futures.items():
                try:
                    _, payload, secs = fut.result(timeout=self.timeout)
                except Exception:
                    # TimeoutError, BrokenProcessPool, or an error raised
                    # inside the worker — all retried once in-parent, where
                    # a real simulation error surfaces undisturbed.
                    fut.cancel()
                    failed.append(p)
                else:
                    self.profile.sims += 1
                    self.profile.point_seconds.append((p.label(), secs))
                    done[p] = SimStats.from_payload(payload)
                self._progress_line(len(done) + len(failed), total)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
            self._progress_end()

        for p in failed:
            self.profile.retries += 1
            done[p] = self._simulate_serial(p)
        return done

    # -- observability -------------------------------------------------------

    def _progress_line(self, done: int, total: int) -> None:
        if self.progress:
            prof = self.profile
            sys.stderr.write(
                f"\r[engine] {done}/{total} points "
                f"(hits {prof.hits}, sims {prof.sims}, retries {prof.retries})"
            )
            sys.stderr.flush()

    def _progress_end(self) -> None:
        if self.progress:
            sys.stderr.write("\n")
            sys.stderr.flush()

    def profile_summary(self) -> str:
        return self.profile.summary()


# -- the process-wide engine used by repro.experiments.runner ----------------

_engine = ExperimentEngine()


def get_engine() -> ExperimentEngine:
    """The engine behind :func:`repro.experiments.run_app`."""
    return _engine


def configure(
    workers: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
    use_disk_cache: Optional[bool] = None,
    timeout: Optional[float] = None,
    progress: Optional[bool] = None,
    sanitize: Optional[bool] = None,
) -> ExperimentEngine:
    """Replace the process-wide engine; unspecified knobs keep their values.

    The memory cache starts empty on the new engine; the disk cache is
    shared through the filesystem, so previously stored results remain
    visible (keys are content-addressed and engine-independent).
    """
    global _engine
    old = _engine
    _engine = ExperimentEngine(
        workers=old.workers if workers is None else workers,
        cache_dir=old.cache_dir if cache_dir is None else cache_dir,
        use_disk_cache=(
            old.use_disk_cache if use_disk_cache is None else use_disk_cache
        ),
        timeout=old.timeout if timeout is None else timeout,
        progress=old.progress if progress is None else progress,
        sanitize=old.sanitize if sanitize is None else sanitize,
    )
    return _engine
