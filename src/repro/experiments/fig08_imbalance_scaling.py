"""Fig. 8 — unbalanced-FMA performance as inter-warp imbalance scales.

One warp in four runs ``imbalance`` times the work.  Series: round-robin
baseline, SRR, and Random Shuffle sub-core assignment.  Expected shape:
SRR stays near flat (it was crafted for this 1-in-4 pattern), Shuffle
degrades slowly, RR degrades fastest — and the SRR/Shuffle gap widens as
imbalance grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..gpu import simulate
from ..workloads import scaled_imbalance_microbenchmark
from .designs import get_design
from .report import series_table

DESIGNS = ("baseline", "srr", "shuffle")
DEFAULT_SWEEP = (1, 2, 4, 8, 16, 32)


@dataclass
class Fig08Result:
    imbalances: List[int]
    #: design -> cycles per sweep point
    cycles: Dict[str, List[int]]

    def speedup_over_rr(self) -> Dict[str, List[float]]:
        base = self.cycles["baseline"]
        return {
            d: [base[i] / c for i, c in enumerate(series)]
            for d, series in self.cycles.items()
        }


def run(
    imbalances: Sequence[int] = DEFAULT_SWEEP, base_fmas: int = 64
) -> Fig08Result:
    cycles: Dict[str, List[int]] = {d: [] for d in DESIGNS}
    for imb in imbalances:
        kern = scaled_imbalance_microbenchmark(imb, base_fmas=base_fmas)
        for d in DESIGNS:
            cycles[d].append(simulate(kern, get_design(d), num_sms=1).cycles)
    return Fig08Result(list(imbalances), cycles)


def format_result(res: Fig08Result) -> str:
    sp = res.speedup_over_rr()
    return series_table(
        "Fig. 8: unbalanced FMA — speedup over round-robin vs imbalance factor",
        "imbalance",
        res.imbalances,
        {d: sp[d] for d in DESIGNS},
        fmt="{:.2f}x",
    )


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
