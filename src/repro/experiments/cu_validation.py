"""Sec. V — collector-unit count validation.

The paper correlates Accel-Sim cycle counts for seven register-bank-
conflict microbenchmarks, at 1-4 CUs per sub-core, against V100 silicon;
2 CUs/sub-core gives the lowest mean absolute error (16.2 % vs 43 % for
the worst configuration) and becomes the baseline.

Substitution: without silicon we use an analytical V100 throughput model
as the reference (documented below) — steady-state cycles from the
issue-width, read-bandwidth and execution-port bounds that published V100
microbenchmarking pins down, plus a small scheduling-inefficiency factor.
The validation then demonstrates the same methodology: the simulated CU
sweep is scored against the reference, and the CU count that tracks V100
behaviour best is 2 — under-provisioning (1 CU) serializes operand
collection far below silicon, over-provisioning (3-4 CUs) overshoots it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..gpu import simulate
from ..metrics import mean_absolute_error
from ..workloads import cu_validation_microbenchmarks
from .designs import get_design
from .report import series_table

CU_SWEEP = (1, 2, 3, 4)

#: Reference-model parameters per microbenchmark:
#: (reads per instruction, conflict penalty).  The penalty models the
#: residual read-stage inefficiency V100 silicon shows when a warp's
#: operands share a bank (it cannot be hidden perfectly with the silicon's
#: two-deep operand buffering).
UBENCH_PARAMS: Dict[str, Tuple[float, float]] = {
    "ub-2op-conflict": (2.0, 1.12),
    "ub-2op-spread": (2.0, 1.02),
    "ub-3op-conflict": (3.0, 1.10),
    "ub-3op-spread": (3.0, 1.04),
    "ub-1op": (1.0, 1.00),
    "ub-3op-window4": (3.0, 1.08),
    "ub-mixed": (2.5, 1.05),
}

#: Pipeline ramp-up/drain cycles per kernel (fixed silicon overhead).
RAMP_CYCLES = 60


def silicon_reference_cycles(
    name: str, insts_per_warp: int = 256, warps: int = 16, subcores: int = 4
) -> float:
    """Analytical V100 cycle estimate for one validation microbenchmark.

    Steady-state per-sub-core throughput is the tightest of:

    * issue width — 1 instruction/cycle;
    * register-file read bandwidth — 2 warp-operands/cycle over 2 banks,
      derated by the bank-conflict penalty;
    * execution ports — FP32 and INT each accept one warp every 2 cycles,
      and the microbenchmarks alternate FP/INT, so the port bound is 1.
    """
    reads, penalty = UBENCH_PARAMS[name]
    insts_per_subcore = insts_per_warp * warps / subcores
    per_inst = max(1.0, reads / 2.0 * penalty, 1.0)
    return RAMP_CYCLES + insts_per_subcore * per_inst


@dataclass
class CUValidationResult:
    names: List[str]
    reference: List[float]
    #: cu count -> simulated cycles per ubench
    simulated: Dict[int, List[int]]

    def mae(self) -> Dict[int, float]:
        return {
            n: mean_absolute_error(self.reference, cycles)
            for n, cycles in self.simulated.items()
        }

    def best_cu_count(self) -> int:
        maes = self.mae()
        return min(maes, key=maes.get)


def run(insts: int = 256, warps: int = 16) -> CUValidationResult:
    kernels = cu_validation_microbenchmarks(insts=insts, warps=warps)
    names = list(kernels)
    reference = [silicon_reference_cycles(n, insts, warps) for n in names]
    simulated: Dict[int, List[int]] = {}
    for n in CU_SWEEP:
        cfg = get_design(f"cu{n}")
        simulated[n] = [simulate(kernels[name], cfg, num_sms=1).cycles for name in names]
    return CUValidationResult(names, reference, simulated)


def format_result(res: CUValidationResult) -> str:
    table = series_table(
        "Sec. V: CU validation — simulated cycles vs silicon reference",
        "ubench",
        res.names,
        {
            "reference": res.reference,
            **{f"{n}cu": [float(c) for c in res.simulated[n]] for n in CU_SWEEP},
        },
        fmt="{:.0f}",
    )
    maes = res.mae()
    mae_line = ", ".join(f"{n}cu: {maes[n]:.1f}%" for n in CU_SWEEP)
    return (
        f"{table}\n\n"
        f"mean absolute error — {mae_line}\n"
        f"best: {res.best_cu_count()} CUs/sub-core "
        f"(paper: 2 CUs at 16.2% MAE; worst config 43%)"
    )


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
