"""Generic design-space sweeps.

``sweep`` runs a kernel over a grid of :class:`~repro.config.GPUConfig`
field overrides and returns a results table — the utility behind the
"explore your own design point" workflow (see
``examples/custom_design_sweep.py`` for the hand-rolled version).

Example::

    from repro.experiments import sweep
    from repro.workloads import get_kernel

    res = sweep.sweep(
        get_kernel("pb-sgemm"),
        {"rf_banks_per_subcore": [1, 2, 4],
         "collector_units_per_subcore": [2, 4, 8]},
    )
    print(sweep.format_grid(res, metric="ipc"))
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import GPUConfig, volta_v100
from ..gpu import simulate
from ..metrics import SimStats
from ..trace import KernelTrace


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: the overrides applied and the resulting stats."""

    overrides: Tuple[Tuple[str, object], ...]
    stats: SimStats

    def value(self, metric: str) -> float:
        if metric == "ipc":
            return self.stats.ipc
        if metric == "cycles":
            return float(self.stats.cycles)
        if metric == "issue_cov":
            return self.stats.issue_cov()
        if metric == "rf_reads_per_cycle":
            return self.stats.rf_reads_per_cycle()
        raise KeyError(
            f"unknown metric {metric!r}; options: ipc, cycles, issue_cov, "
            "rf_reads_per_cycle"
        )


@dataclass
class SweepResult:
    kernel_name: str
    axes: Dict[str, List[object]]
    points: List[SweepPoint]

    def lookup(self, **overrides) -> SweepPoint:
        key = tuple(sorted(overrides.items()))
        for p in self.points:
            if tuple(sorted(p.overrides)) == key:
                return p
        raise KeyError(f"no sweep point with overrides {overrides}")

    def best(self, metric: str = "ipc", maximize: bool = True) -> SweepPoint:
        return (max if maximize else min)(
            self.points, key=lambda p: p.value(metric)
        )


def sweep(
    kernel: KernelTrace,
    axes: Mapping[str, Sequence[object]],
    base: Optional[GPUConfig] = None,
    num_sms: int = 1,
) -> SweepResult:
    """Run ``kernel`` over the cartesian grid of config overrides."""
    if not axes:
        raise ValueError("need at least one sweep axis")
    base = base if base is not None else volta_v100()
    names = list(axes)
    points: List[SweepPoint] = []
    for combo in itertools.product(*(axes[n] for n in names)):
        overrides = dict(zip(names, combo))
        cfg = base.replace(**overrides)
        stats = simulate(kernel, cfg, num_sms=num_sms)
        points.append(SweepPoint(tuple(sorted(overrides.items())), stats))
    return SweepResult(kernel.name, {n: list(v) for n, v in axes.items()}, points)


def format_grid(result: SweepResult, metric: str = "ipc") -> str:
    """Render a 1- or 2-axis sweep as a table (rows = first axis)."""
    names = list(result.axes)
    if len(names) == 1:
        (name,) = names
        lines = [f"{result.kernel_name}: {metric} vs {name}",
                 f"{name:>16}  {metric}"]
        for v in result.axes[name]:
            p = result.lookup(**{name: v})
            lines.append(f"{v!s:>16}  {p.value(metric):.3f}")
        return "\n".join(lines)
    if len(names) == 2:
        row_name, col_name = names
        cols = result.axes[col_name]
        header = f"{row_name}\\{col_name}"
        lines = [f"{result.kernel_name}: {metric}",
                 f"{header:>20}" + "".join(f"{c!s:>10}" for c in cols)]
        for r in result.axes[row_name]:
            cells = []
            for c in cols:
                p = result.lookup(**{row_name: r, col_name: c})
                cells.append(f"{p.value(metric):10.3f}")
            lines.append(f"{r!s:>20}" + "".join(cells))
        return "\n".join(lines)
    raise ValueError("format_grid renders 1- or 2-axis sweeps; "
                     f"got {len(names)} axes")
