"""Fig. 12 — collector-unit scaling versus RBA on sensitive applications.

Speedup of 4/8/16 CUs per sub-core (banks held at 2), the fully-connected
SM, and the RBA scheduler, normalized to the 2-CU baseline.  Paper: CU
scaling averages +4.1 / +7.1 / +9.6 % with diminishing returns past 8 CUs;
RBA averages +11.9 %, and beats the fully-connected SM on every cuGraph
app by 15 % or more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..workloads import SENSITIVE_APPS, get_profile
from .report import average_speedups, speedup_table
from .runner import speedups_over_baseline

DESIGNS = ("cu4", "cu8", "cu16", "fully_connected", "rba")


@dataclass
class Fig12Result:
    rows: List[Tuple[str, Dict[str, float]]]

    def averages(self) -> Dict[str, float]:
        return average_speedups(self.rows, DESIGNS)

    def cugraph_rba_vs_fc(self) -> List[Tuple[str, float]]:
        """Per-cuGraph-app gap (percentage points) of RBA over fully-connected."""
        out = []
        for app, v in self.rows:
            if get_profile(app).suite == "cugraph":
                out.append((app, (v["rba"] - v["fully_connected"]) * 100.0))
        return out

    def diminishing_returns(self) -> float:
        """Percentage points gained going from 8 to 16 CUs (paper: ~2.5)."""
        avg = self.averages()
        return (avg["cu16"] - avg["cu8"]) * 100.0


def run(apps: Optional[List[str]] = None, num_sms: int = 1) -> Fig12Result:
    apps = apps if apps is not None else list(SENSITIVE_APPS)
    return Fig12Result(speedups_over_baseline(apps, DESIGNS, num_sms=num_sms))


def format_result(res: Fig12Result) -> str:
    table = speedup_table(
        "Fig. 12: CU scaling vs RBA (normalized to 2 CUs/sub-core)",
        res.rows,
        designs=list(DESIGNS),
    )
    avg = res.averages()
    return (
        f"{table}\n\n"
        f"averages — 4cu: {(avg['cu4'] - 1) * 100:+.1f}% (paper +4.1%), "
        f"8cu: {(avg['cu8'] - 1) * 100:+.1f}% (paper +7.1%), "
        f"16cu: {(avg['cu16'] - 1) * 100:+.1f}% (paper +9.6%), "
        f"rba: {(avg['rba'] - 1) * 100:+.1f}% (paper +11.9%)\n"
        f"8->16 CU gain: {res.diminishing_returns():+.1f} pp (paper ~+2.5)"
    )


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
