"""Machine-readable export of simulation and experiment results.

The figure harnesses print human tables; this module serializes the same
data as JSON so downstream tooling (plotting, regression tracking) can
consume it.  Everything here is plain-stdlib JSON — dataclasses are
flattened, numpy scalars coerced, and result objects of the experiment
modules handled structurally (dataclass fields).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from ..metrics import SimStats, SMStats


def _coerce(value: Any) -> Any:
    """Make a value JSON-serializable."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _coerce(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _coerce(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_coerce(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    raise TypeError(f"cannot serialize {type(value).__name__}")


def stats_to_dict(stats: SimStats, include_timeline: bool = False) -> dict:
    """Flatten a :class:`SimStats` (plus derived metrics) to a dict."""
    out = _coerce(stats)
    if not include_timeline:
        for sm in out["sms"]:
            sm.pop("rf_read_timeline", None)
    out["derived"] = {
        "ipc": stats.ipc,
        "issue_cov": stats.issue_cov(),
        "rf_reads_per_cycle": stats.rf_reads_per_cycle(),
        "bank_conflict_cycles": stats.bank_conflict_cycles(),
    }
    return out


def result_to_dict(result: Any) -> dict:
    """Flatten any experiment result object (a dataclass) to a dict."""
    if not dataclasses.is_dataclass(result):
        raise TypeError("experiment results are dataclasses")
    return _coerce(result)


def dump_json(obj: Any, path=None, indent: int = 2) -> str:
    """Serialize a stats/result object; optionally write it to ``path``."""
    if isinstance(obj, SimStats):
        payload = stats_to_dict(obj)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        payload = result_to_dict(obj)
    else:
        payload = _coerce(obj)
    text = json.dumps(payload, indent=indent, sort_keys=True)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text)
    return text


def load_json(path) -> Any:
    with open(path) as fh:
        return json.load(fh)
