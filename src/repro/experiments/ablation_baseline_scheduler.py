"""Ablation — warp-scheduler policy comparison around RBA.

The paper normalizes to GTO because contemporary GPUs ship it.  This
ablation adds the classic alternatives — loose round-robin (LRR) and
two-level scheduling (Narasiman et al. [49]) — to separate *generic warp
interleaving* from *bank-aware selection*:

* On bank-phased apps, any interleaving policy (LRR, two-level) recovers
  much of the loss GTO's greediness causes, because alternating warps
  happens to alternate banks.
* But interleaving policies *lose* on apps where greedy issue matters
  (they fall behind the GTO baseline), which is why GPUs ship GTO.
* RBA is the only policy that takes the interleaving win **and** never
  falls below GTO — its selection is driven by the actual bank state, so
  it degenerates to GTO order when banks are balanced.

The robustness metric reported is each policy's *minimum* speedup across
the apps: positive only for RBA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import SchedulerPolicy, volta_v100
from ..gpu import simulate
from ..workloads import RF_SENSITIVE_APPS, get_kernel
from .report import series_table

SCHEDULERS = (
    SchedulerPolicy.GTO,
    SchedulerPolicy.LRR,
    SchedulerPolicy.TWO_LEVEL,
    SchedulerPolicy.RBA,
)

#: Mixed population: bank-phased apps where interleaving wins plus apps
#: where greedy issue matters (the fair robustness test).
DEFAULT_APPS = (
    "cg-lou",
    "cg-bfs",
    "pb-mriq",
    "pb-sgemm",
    "rod-srad",
    "ply-2Dcon",
    "tpcU-q1",
    "rod-nw",
    "cutlass-4096",
    "db-conv-tr",
)


@dataclass
class BaselineSchedulerResult:
    apps: List[str]
    #: scheduler -> app -> cycles
    cycles: Dict[str, Dict[str, int]]

    def speedups_over_gto(self, scheduler: str) -> Dict[str, float]:
        gto = self.cycles[SchedulerPolicy.GTO]
        return {a: gto[a] / c for a, c in self.cycles[scheduler].items()}

    def mean_speedup(self, scheduler: str) -> float:
        return float(np.mean(list(self.speedups_over_gto(scheduler).values())))

    def min_speedup(self, scheduler: str) -> float:
        """Worst-case over the apps — the robustness metric."""
        return float(np.min(list(self.speedups_over_gto(scheduler).values())))

    def rba_gain_over(self, baseline: str) -> float:
        vals = [
            self.cycles[baseline][a] / self.cycles[SchedulerPolicy.RBA][a]
            for a in self.apps
        ]
        return float(np.mean(vals))

    def lrr_vs_gto(self) -> float:
        return self.mean_speedup(SchedulerPolicy.LRR)


def run(apps: Optional[Sequence[str]] = None) -> BaselineSchedulerResult:
    apps = list(apps) if apps is not None else list(DEFAULT_APPS)
    cycles: Dict[str, Dict[str, int]] = {s: {} for s in SCHEDULERS}
    for app in apps:
        kernel = get_kernel(app)
        for sched in SCHEDULERS:
            cfg = volta_v100().replace(scheduler=sched)
            cycles[sched][app] = simulate(kernel, cfg, num_sms=1).cycles
    return BaselineSchedulerResult(apps, cycles)


def format_result(res: BaselineSchedulerResult) -> str:
    table = series_table(
        "Ablation: warp-scheduler policies (speedup over GTO)",
        "app",
        res.apps,
        {
            s: [res.speedups_over_gto(s)[a] for a in res.apps]
            for s in SCHEDULERS
            if s != SchedulerPolicy.GTO
        },
        fmt="{:.3f}x",
    )
    summary = "; ".join(
        f"{s}: mean {(res.mean_speedup(s) - 1) * 100:+.1f}%, "
        f"min {(res.min_speedup(s) - 1) * 100:+.1f}%"
        for s in SCHEDULERS
        if s != SchedulerPolicy.GTO
    )
    return (
        f"{table}\n\n{summary}\n"
        "RBA should be the only policy whose minimum stays at/above GTO."
    )


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
