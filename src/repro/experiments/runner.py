"""Experiment runner with per-process result caching.

Figures share design points (the Fig. 1 baseline runs are the Fig. 9/10
denominators), so the runner memoizes ``(app, design, num_sms)`` →
:class:`~repro.metrics.SimStats` for the life of the process.  Simulation
is fully deterministic, so caching is loss-free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..gpu import simulate
from ..metrics import SimStats
from ..trace import KernelTrace
from ..workloads import get_kernel
from .designs import get_design

_CACHE: Dict[Tuple[str, str, int, bool], SimStats] = {}


def clear_cache() -> None:
    _CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)


def run_app(
    app: str,
    design: str = "baseline",
    num_sms: int = 1,
    collect_timeline: bool = False,
) -> SimStats:
    """Simulate one registered application under one named design."""
    key = (app, design, num_sms, collect_timeline)
    hit = _CACHE.get(key)
    if hit is not None:
        return hit
    stats = simulate(
        get_kernel(app),
        get_design(design),
        num_sms=num_sms,
        collect_timeline=collect_timeline,
    )
    _CACHE[key] = stats
    return stats


def run_kernel(
    kernel: KernelTrace,
    design: str = "baseline",
    num_sms: int = 1,
    collect_timeline: bool = False,
) -> SimStats:
    """Simulate an ad-hoc kernel (microbenchmarks) — not cached."""
    return simulate(
        kernel,
        get_design(design),
        num_sms=num_sms,
        collect_timeline=collect_timeline,
    )


def speedups_over_baseline(
    apps: Iterable[str],
    designs: Iterable[str],
    num_sms: int = 1,
    baseline: str = "baseline",
) -> List[Tuple[str, Dict[str, float]]]:
    """Rows of ``(app, {design: speedup})`` over the shared baseline."""
    designs = list(designs)
    rows: List[Tuple[str, Dict[str, float]]] = []
    for app in apps:
        base = run_app(app, baseline, num_sms=num_sms)
        rows.append(
            (
                app,
                {
                    d: base.cycles / run_app(app, d, num_sms=num_sms).cycles
                    for d in designs
                },
            )
        )
    return rows
