"""Experiment runner — a thin façade over the execution engine.

Figures share design points (the Fig. 1 baseline runs are the Fig. 9/10
denominators), so every registered-app simulation goes through the
process-wide :class:`~repro.experiments.engine.ExperimentEngine`, which
memoizes ``(app, design, num_sms, collect_timeline)`` →
:class:`~repro.metrics.SimStats` in memory, persists results in a
content-addressed disk cache, and fans batched requests out over a worker
pool.  Simulation is bit-deterministic, so caching is loss-free.

The figure harnesses keep calling :func:`run_app` point-by-point; batch
entry points (:func:`speedups_over_baseline`, :func:`prefetch`) hand the
whole point set to the engine first so misses simulate in parallel.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..gpu import simulate
from ..metrics import SimStats
from ..trace import KernelTrace
from .designs import get_design
from .engine import SimPoint, get_engine


def clear_cache() -> None:
    """Forget in-memory results (the disk cache is left untouched)."""
    get_engine().clear_memory()


def cache_size() -> int:
    return get_engine().memory_cache_size()


def run_app(
    app: str,
    design: str = "baseline",
    num_sms: int = 1,
    collect_timeline: bool = False,
) -> SimStats:
    """Simulate one registered application under one named design."""
    return get_engine().run_point(
        SimPoint(app, design, num_sms, collect_timeline)
    )


def prefetch(
    apps: Iterable[str],
    designs: Iterable[str],
    num_sms: int = 1,
    collect_timeline: bool = False,
) -> None:
    """Resolve an apps × designs grid through the engine in one batch.

    Harnesses that loop over :func:`run_app` call this first: the engine
    dedupes the grid, simulates the misses in parallel, and the following
    per-point calls all hit the memory cache.
    """
    get_engine().run_many(
        SimPoint(app, d, num_sms, collect_timeline)
        for app in apps
        for d in designs
    )


def run_kernel(
    kernel: KernelTrace,
    design: str = "baseline",
    num_sms: int = 1,
    collect_timeline: bool = False,
) -> SimStats:
    """Simulate an ad-hoc kernel (microbenchmarks) — not cached."""
    return simulate(
        kernel,
        get_design(design),
        num_sms=num_sms,
        collect_timeline=collect_timeline,
    )


def speedups_over_baseline(
    apps: Iterable[str],
    designs: Iterable[str],
    num_sms: int = 1,
    baseline: str = "baseline",
) -> List[Tuple[str, Dict[str, float]]]:
    """Rows of ``(app, {design: speedup})`` over the shared baseline."""
    apps = list(apps)
    designs = list(designs)
    points = get_engine().run_many(
        SimPoint(app, d, num_sms)
        for app in apps
        for d in [baseline, *designs]
    )
    rows: List[Tuple[str, Dict[str, float]]] = []
    for app in apps:
        base = points[SimPoint(app, baseline, num_sms)]
        rows.append(
            (
                app,
                {
                    d: base.cycles / points[SimPoint(app, d, num_sms)].cycles
                    for d in designs
                },
            )
        )
    return rows
