"""Experiment harnesses: one module per paper figure/table.

Each module exposes ``run(...)`` returning a result object with the
figure's series, and ``format_result(...)``/``main()`` to print the same
rows the paper reports.  EXPERIMENTS.md records paper-vs-measured for
every entry.
"""

from . import (
    ablation_bank_mapping,
    ablation_baseline_scheduler,
    cu_validation,
    effect4_concurrent,
    fig01_partitioning,
    fig03_fma_imbalance,
    fig08_imbalance_scaling,
    fig09_all_apps,
    fig10_sensitive,
    fig11_fc_rba,
    fig12_cu_scaling,
    fig13_area_power,
    fig14_rf_utilization,
    fig15_tpch_compressed,
    fig16_tpch_uncompressed,
    fig17_issue_cov,
    fig18_sm_scaling,
    hash_table_size,
    headline,
    subcore_granularity,
    work_stealing_study,
    rba_banks,
    rba_latency,
)
from . import sweep
from .engine import (
    ExperimentEngine,
    SimPoint,
    configure,
    get_engine,
    point_key,
)
from .export import dump_json, load_json, result_to_dict, stats_to_dict
from .designs import DESIGNS, design_names, get_design
from .runner import (
    cache_size,
    clear_cache,
    prefetch,
    run_app,
    run_kernel,
    speedups_over_baseline,
)

__all__ = [
    "ablation_bank_mapping",
    "ablation_baseline_scheduler",
    "headline",
    "subcore_granularity",
    "work_stealing_study",
    "cu_validation",
    "effect4_concurrent",
    "fig01_partitioning",
    "fig03_fma_imbalance",
    "fig08_imbalance_scaling",
    "fig09_all_apps",
    "fig10_sensitive",
    "fig11_fc_rba",
    "fig12_cu_scaling",
    "fig13_area_power",
    "fig14_rf_utilization",
    "fig15_tpch_compressed",
    "fig16_tpch_uncompressed",
    "fig17_issue_cov",
    "fig18_sm_scaling",
    "hash_table_size",
    "rba_banks",
    "rba_latency",
    "sweep",
    "dump_json",
    "load_json",
    "result_to_dict",
    "stats_to_dict",
    "DESIGNS",
    "design_names",
    "get_design",
    "ExperimentEngine",
    "SimPoint",
    "configure",
    "get_engine",
    "point_key",
    "cache_size",
    "clear_cache",
    "prefetch",
    "run_app",
    "run_kernel",
    "speedups_over_baseline",
]
