"""ASCII reporting helpers shared by the figure harnesses."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np


def fmt_speedup(x: float) -> str:
    """1.112 -> '+11.2%'."""
    return f"{(x - 1.0) * 100.0:+.1f}%"


def speedup_table(
    title: str,
    rows: Sequence[Tuple[str, Mapping[str, float]]],
    designs: Sequence[str] | None = None,
    summary: str = "mean",
) -> str:
    """Render per-app speedup rows plus a summary line.

    ``summary`` is ``"mean"`` (arithmetic, the paper's default for average
    speedups) or ``"geomean"``.
    """
    if not rows:
        return f"{title}\n(no rows)"
    if designs is None:
        designs = list(rows[0][1].keys())
    name_w = max(len(r[0]) for r in rows)
    name_w = max(name_w, len("average"))
    col_w = max(8, max(len(d) for d in designs) + 1)

    lines = [title, "-" * len(title)]
    header = " " * name_w + "".join(f"{d:>{col_w}}" for d in designs)
    lines.append(header)
    for app, vals in rows:
        cells = "".join(f"{fmt_speedup(vals[d]):>{col_w}}" for d in designs)
        lines.append(f"{app:<{name_w}}{cells}")

    agg_cells = []
    for d in designs:
        vals = np.asarray([r[1][d] for r in rows], dtype=float)
        agg = float(np.exp(np.log(vals).mean())) if summary == "geomean" else float(vals.mean())
        agg_cells.append(f"{fmt_speedup(agg):>{col_w}}")
    lines.append(f"{summary and 'average':<{name_w}}" + "".join(agg_cells))
    return "\n".join(lines)


def series_table(
    title: str,
    x_label: str,
    xs: Sequence,
    series: Mapping[str, Sequence[float]],
    fmt: str = "{:.3f}",
) -> str:
    """Render an x-vs-series table (the 'figure as rows' format)."""
    names = list(series)
    x_w = max(len(x_label), max(len(str(x)) for x in xs)) + 1
    col_w = max(9, max(len(n) for n in names) + 1)
    lines = [title, "-" * len(title)]
    lines.append(f"{x_label:<{x_w}}" + "".join(f"{n:>{col_w}}" for n in names))
    for i, x in enumerate(xs):
        cells = "".join(f"{fmt.format(series[n][i]):>{col_w}}" for n in names)
        lines.append(f"{str(x):<{x_w}}" + cells)
    return "\n".join(lines)


def average_speedups(
    rows: Sequence[Tuple[str, Mapping[str, float]]], designs: Iterable[str]
) -> Dict[str, float]:
    """Arithmetic-mean speedup per design over the rows."""
    out: Dict[str, float] = {}
    for d in designs:
        out[d] = float(np.mean([r[1][d] for r in rows]))
    return out
