"""Fig. 11 — RBA also improves the *fully-connected* SM on register-file-
sensitive apps.

The population is the apps where RBA-on-partitioned outperforms the
fully-connected SM.  Paper: the fully-connected SM alone achieves a
geomean of +6.1 % there; adding RBA scheduling to the fully-connected SM
raises it to +19.6 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..workloads import RF_SENSITIVE_APPS
from .report import speedup_table
from .runner import speedups_over_baseline

DESIGNS = ("rba", "fully_connected", "fc_rba")


@dataclass
class Fig11Result:
    rows: List[Tuple[str, Dict[str, float]]]

    def population(self) -> List[Tuple[str, Dict[str, float]]]:
        """Apps where partitioned-RBA beats the fully-connected SM."""
        return [r for r in self.rows if r[1]["rba"] > r[1]["fully_connected"]]

    def geomeans(self) -> Dict[str, float]:
        pop = self.population() or self.rows
        out: Dict[str, float] = {}
        for d in DESIGNS:
            vals = np.asarray([r[1][d] for r in pop])
            out[d] = float(np.exp(np.log(vals).mean()))
        return out


def run(apps: Optional[List[str]] = None, num_sms: int = 1) -> Fig11Result:
    apps = apps if apps is not None else list(RF_SENSITIVE_APPS)
    return Fig11Result(speedups_over_baseline(apps, DESIGNS, num_sms=num_sms))


def format_result(res: Fig11Result) -> str:
    table = speedup_table(
        "Fig. 11: RBA on the fully-connected SM (RF-sensitive apps)",
        res.rows,
        designs=list(DESIGNS),
        summary="geomean",
    )
    g = res.geomeans()
    return (
        f"{table}\n\n"
        f"population (RBA > FC): {len(res.population())}/{len(res.rows)} apps\n"
        f"fully-connected geomean: {(g['fully_connected'] - 1) * 100:+.1f}% "
        f"(paper: +6.1%); FC+RBA geomean: {(g['fc_rba'] - 1) * 100:+.1f}% "
        f"(paper: +19.6%)"
    )


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
