"""Extension study — the paper's fourth partitioning effect.

Sec. I lists four potential sub-core performance effects; the fourth:
"if warps assigned to an SM have diverse register-file capacity demands,
which can occur when SMs execute concurrent kernels, a lack of register
space on one sub-core may prevent others with capacity from accepting
work."  The paper measures effects 1 and 2 as dominant and does not
evaluate effect 4 further; this study supplies that experiment.

Two kernels run concurrently: a register-*fat* kernel (large per-thread
register footprint) and a register-*thin* one.  On the partitioned SM the
register file is sliced per sub-core, so a fat CTA needs its per-sub-core
share on *every* sub-core its warps land on; interleaved thin CTAs
fragment those slices.  The monolithic SM draws from one pooled register
file.  The reported metric is concurrency efficiency:
``sequential_time / concurrent_time`` per architecture — the fully-
connected SM should lose less of its concurrency benefit to
fragmentation, and the effect should be visibly smaller than effects 1-2
(consistent with the paper's triage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..config import GPUConfig, fully_connected, volta_v100
from ..gpu import GPU
from ..trace import KernelTrace, TraceBuilder, make_kernel

ARCHS = ("partitioned", "fully_connected")


def _compute_kernel(name: str, regs_per_thread: int, num_ctas: int,
                    insts: int = 96, warps: int = 8) -> KernelTrace:
    traces = [TraceBuilder().fma_chain(insts).build() for _ in range(warps)]
    return make_kernel(name, traces, num_ctas=num_ctas, regs_per_thread=regs_per_thread)


def _memory_kernel(name: str, regs_per_thread: int, num_ctas: int,
                   loads: int = 24, warps: int = 8) -> KernelTrace:
    """A latency-bound streaming kernel: each load feeds the next address."""
    traces = []
    for w in range(warps):
        tb = TraceBuilder()
        for i in range(loads):
            # dependent pointer-chase: dst doubles as next address register
            tb.global_load(dst=1, addr_reg=1, base_address=(w << 22) + i * 8192,
                           num_lines=4)
        traces.append(tb.build())
    return make_kernel(name, traces, num_ctas=num_ctas, regs_per_thread=regs_per_thread)


@dataclass
class Effect4Result:
    #: arch -> (sequential cycles, concurrent cycles)
    cycles: Dict[str, Tuple[int, int]]

    def efficiency(self, arch: str) -> float:
        seq, conc = self.cycles[arch]
        return seq / conc

    def fragmentation_loss(self) -> float:
        """Concurrency-efficiency points the partitioned SM gives up."""
        return self.efficiency("fully_connected") - self.efficiency("partitioned")


def run(
    fat_regs: int = 224,
    thin_regs: int = 16,
    num_ctas: int = 6,
) -> Effect4Result:
    configs = {
        "partitioned": volta_v100(),
        "fully_connected": fully_connected(),
    }
    cycles: Dict[str, Tuple[int, int]] = {}
    for arch, cfg in configs.items():
        # fat: compute-bound with a huge register footprint;
        # thin: latency-bound pointer-chasing with a small footprint —
        # complementary bottlenecks, so concurrency has something to win.
        fat = _compute_kernel("fat", fat_regs, num_ctas)
        thin = _memory_kernel("thin", thin_regs, num_ctas)
        gpu_seq = GPU(cfg, num_sms=1)
        seq = gpu_seq.run(fat).cycles + gpu_seq.run(thin).cycles
        gpu_conc = GPU(cfg, num_sms=1)
        conc = gpu_conc.run_concurrent([fat, thin]).cycles
        cycles[arch] = (seq, conc)
    return Effect4Result(cycles)


def format_result(res: Effect4Result) -> str:
    lines = [
        "Extension: effect #4 — concurrent kernels with diverse register demands",
        "-" * 72,
    ]
    for arch in ARCHS:
        seq, conc = res.cycles[arch]
        lines.append(
            f"{arch:16s} sequential={seq:7d}  concurrent={conc:7d}  "
            f"efficiency={res.efficiency(arch):.2f}x"
        )
    lines.append(
        f"\nregister-slice fragmentation costs the partitioned SM "
        f"{res.fragmentation_loss() * 100:+.1f} efficiency points "
        "(the paper classifies this effect as minor relative to bank "
        "conflicts and issue imbalance)"
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
