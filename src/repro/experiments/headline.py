"""The abstract's headline numbers.

The paper's abstract claims an average **11.2 %** speedup across the
application set, capturing **81 %** of the performance lost to SM
sub-division (i.e. of the hypothetical fully-connected SM's 13.2 %), and
**19.3 %** on partitioning-sensitive applications.  This harness computes
all three from the same runs that produce Figs. 1, 9 and 10:

* ``combined`` speedup: the better of Shuffle+RBA and SRR+RBA per the
  paper's "intelligent scheduling mechanisms";
* ``captured``: combined average gain / fully-connected average gain;
* ``sensitive``: combined average over the Table III subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..workloads import SENSITIVE_APPS, app_names
from .runner import speedups_over_baseline

DESIGNS = ("shuffle_rba", "srr_rba", "fully_connected")


@dataclass
class HeadlineResult:
    rows: List[Tuple[str, Dict[str, float]]]
    sensitive_rows: List[Tuple[str, Dict[str, float]]]

    def _avg(self, rows, design: str) -> float:
        return float(np.mean([v[design] for _, v in rows]))

    @property
    def combined_average(self) -> float:
        """Mean speedup of the combined design (best hashed variant + RBA)."""
        shuffle = self._avg(self.rows, "shuffle_rba")
        srr = self._avg(self.rows, "srr_rba")
        return max(shuffle, srr)

    @property
    def fully_connected_average(self) -> float:
        return self._avg(self.rows, "fully_connected")

    @property
    def captured_fraction(self) -> float:
        """Share of the partitioning loss recovered (paper: 81 %)."""
        fc_gain = self.fully_connected_average - 1.0
        if fc_gain <= 0:
            return float("nan")
        return (self.combined_average - 1.0) / fc_gain

    @property
    def sensitive_average(self) -> float:
        shuffle = self._avg(self.sensitive_rows, "shuffle_rba")
        srr = self._avg(self.sensitive_rows, "srr_rba")
        return max(shuffle, srr)


def run(apps: Optional[List[str]] = None, num_sms: int = 1) -> HeadlineResult:
    apps = apps if apps is not None else app_names()
    rows = speedups_over_baseline(apps, DESIGNS, num_sms=num_sms)
    sensitive = [a for a in SENSITIVE_APPS if a in set(apps)] or list(SENSITIVE_APPS)
    sensitive_rows = speedups_over_baseline(sensitive, DESIGNS, num_sms=num_sms)
    return HeadlineResult(rows, sensitive_rows)


def format_result(res: HeadlineResult) -> str:
    return (
        "Headline (paper abstract) numbers\n"
        "---------------------------------\n"
        f"combined design average speedup: "
        f"{(res.combined_average - 1) * 100:+.1f}%  (paper: +11.2%)\n"
        f"fully-connected average speedup: "
        f"{(res.fully_connected_average - 1) * 100:+.1f}%  (paper: +13.2%)\n"
        f"fraction of partitioning loss captured: "
        f"{res.captured_fraction:.0%}  (paper: 81%)\n"
        f"sensitive-app average speedup: "
        f"{(res.sensitive_average - 1) * 100:+.1f}%  (paper: +19.3%)"
    )


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
