"""Sec. VI-B5 — RBA sensitivity to register-bank count.

Doubling banks per sub-core from 2 to 4 relieves the read-operand stage,
leaving RBA less to fix: the paper's average RBA benefit drops from
+19.3 % to +15.4 %.  Speedups at each bank count are measured against the
GTO baseline *with the same bank count*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..workloads import RF_SENSITIVE_APPS
from .report import speedup_table
from .runner import prefetch, run_app

BANK_DESIGNS = {
    2: ("baseline", "rba"),
    4: ("baseline_4banks", "rba_4banks"),
}


@dataclass
class RBABanksResult:
    #: (app, {"2banks": speedup, "4banks": speedup})
    rows: List[tuple]

    def average(self, key: str) -> float:
        return float(np.mean([v[key] for _, v in self.rows]))


def run(apps: Optional[Sequence[str]] = None) -> RBABanksResult:
    apps = list(apps) if apps is not None else list(RF_SENSITIVE_APPS)
    prefetch(apps, [d for pair in BANK_DESIGNS.values() for d in pair])
    rows = []
    for app in apps:
        vals: Dict[str, float] = {}
        for banks, (base_design, rba_design) in BANK_DESIGNS.items():
            base = run_app(app, base_design)
            got = run_app(app, rba_design)
            vals[f"{banks}banks"] = base.cycles / got.cycles
        rows.append((app, vals))
    return RBABanksResult(rows)


def format_result(res: RBABanksResult) -> str:
    table = speedup_table(
        "Sec. VI-B5: RBA speedup at 2 vs 4 banks per sub-core",
        res.rows,
        designs=["2banks", "4banks"],
    )
    a2 = (res.average("2banks") - 1) * 100
    a4 = (res.average("4banks") - 1) * 100
    return (
        f"{table}\n\n"
        f"average RBA benefit — 2 banks: {a2:+.1f}% (paper +19.3%), "
        f"4 banks: {a4:+.1f}% (paper +15.4%); "
        f"benefit should shrink as banks scale"
    )


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
