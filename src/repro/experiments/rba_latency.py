"""Sec. VI-B4 — RBA score-update latency sensitivity.

RBA scores may arrive stale if the score-update path is latched or
pipelined.  The paper sweeps 0-20 cycles of staleness over the top 15
RBA-benefiting apps and sees < 0.1 % average degradation; only ply-2Dcon
loses more than 1 % (its RBA speedup drops from +24.2 % to +19.2 % at 20
cycles).

Documented divergence: the paper's near-zero sensitivity relies on real
applications having long stable periods of register-file pressure.  Our
synthetic traces oscillate on a shorter timescale, so RBA here degrades
gracefully with staleness (retaining a positive gain at 20 cycles but
losing the cycle-fresh alternation component) instead of being flat — the
qualitative claims that survive are "stale RBA never falls meaningfully
below GTO" and "most of the gain is intact at small latencies".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..workloads import RF_SENSITIVE_APPS
from .report import series_table
from .runner import prefetch, run_app

LATENCIES = (0, 1, 2, 5, 10, 20)


@dataclass
class RBALatencyResult:
    apps: List[str]
    #: latency -> app -> speedup over GTO baseline
    speedups: Dict[int, Dict[str, float]]

    def average_speedup(self, latency: int) -> float:
        return float(np.mean(list(self.speedups[latency].values())))

    def average_degradation(self) -> float:
        """Percentage points lost going from latency 0 to the max latency."""
        lat_max = max(self.speedups)
        return (self.average_speedup(0) - self.average_speedup(lat_max)) * 100.0

    def worst_app(self) -> Tuple[str, float]:
        """App with the largest 0→max-latency speedup loss (pp)."""
        lat_max = max(self.speedups)
        losses = {
            app: (self.speedups[0][app] - self.speedups[lat_max][app]) * 100.0
            for app in self.apps
        }
        app = max(losses, key=losses.get)
        return app, losses[app]


def run(
    apps: Optional[Sequence[str]] = None, latencies: Sequence[int] = LATENCIES
) -> RBALatencyResult:
    apps = list(apps) if apps is not None else list(RF_SENSITIVE_APPS)
    prefetch(apps, ["baseline", *(f"rba_lat{lat}" for lat in latencies)])
    speedups: Dict[int, Dict[str, float]] = {}
    for lat in latencies:
        design = f"rba_lat{lat}"
        speedups[lat] = {}
        for app in apps:
            base = run_app(app, "baseline")
            got = run_app(app, design)
            speedups[lat][app] = base.cycles / got.cycles
    return RBALatencyResult(apps, speedups)


def format_result(res: RBALatencyResult) -> str:
    lats = sorted(res.speedups)
    table = series_table(
        "Sec. VI-B4: RBA speedup vs score-update latency",
        "app",
        res.apps,
        {f"lat{l}": [res.speedups[l][a] for a in res.apps] for l in lats},
        fmt="{:.3f}x",
    )
    worst_app, worst_loss = res.worst_app()
    return (
        f"{table}\n\n"
        f"average degradation 0→{max(lats)} cycles: "
        f"{res.average_degradation():.2f} pp (paper: <0.1%)\n"
        f"worst app: {worst_app} loses {worst_loss:.1f} pp "
        f"(paper: ply-2Dcon, ~5 pp)"
    )


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
