"""Fig. 15 — per-query speedups on compressed TPC-H.

SRR, Shuffle, RBA, Shuffle+RBA and the fully-connected SM, normalized to
the GTO + RR baseline, for each of the 22 queries over the snappy-
compressed database.  Paper averages: SRR +33.1 %, Shuffle +27.4 % (SRR
wins every query; Shuffle within 5 % on average).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..workloads import app_names
from .report import average_speedups, speedup_table
from .runner import speedups_over_baseline

DESIGNS = ("srr", "shuffle", "rba", "shuffle_rba", "fully_connected")
SUITE = "tpch-compressed"
PAPER_AVG = {"srr": 33.1, "shuffle": 27.4}


@dataclass
class TpchResult:
    rows: List[Tuple[str, Dict[str, float]]]
    suite: str

    def averages(self) -> Dict[str, float]:
        return average_speedups(self.rows, DESIGNS)

    def srr_wins(self) -> int:
        """Queries where SRR >= Shuffle (paper: SRR best in all queries)."""
        return sum(1 for _, v in self.rows if v["srr"] >= v["shuffle"] - 1e-9)


def run(queries: Optional[List[str]] = None, num_sms: int = 1) -> TpchResult:
    apps = queries if queries is not None else app_names(SUITE)
    return TpchResult(speedups_over_baseline(apps, DESIGNS, num_sms=num_sms), SUITE)


def format_result(res: TpchResult) -> str:
    table = speedup_table(
        "Fig. 15: compressed TPC-H speedup over GTO + RR",
        res.rows,
        designs=list(DESIGNS),
    )
    avg = res.averages()
    return (
        f"{table}\n\n"
        f"SRR average: {(avg['srr'] - 1) * 100:+.1f}% (paper +33.1%); "
        f"Shuffle average: {(avg['shuffle'] - 1) * 100:+.1f}% (paper +27.4%); "
        f"SRR >= Shuffle in {res.srr_wins()}/{len(res.rows)} queries"
    )


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
