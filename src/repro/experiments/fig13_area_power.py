"""Fig. 13 — area and power of CU scaling versus the RBA design.

All design points include the warp issue scheduler, operand collector and
two register-file banks, normalized to the 2-CU GTO baseline (the paper
synthesizes these in RTL; we use the structure-count model in
:mod:`repro.power`).  Paper: 4 CUs cost +27 % area / +60 % power; the RBA
design costs ~1 % in both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..power import normalized_costs
from .report import series_table


@dataclass
class Fig13Result:
    #: design -> {"area": x, "power": x} relative to the 2-CU baseline
    costs: Dict[str, Dict[str, float]]

    def overhead(self, design: str, metric: str) -> float:
        """Relative overhead in percent (e.g. +27.0 for 1.27x)."""
        return (self.costs[design][metric] - 1.0) * 100.0


def run() -> Fig13Result:
    return Fig13Result(normalized_costs())


def format_result(res: Fig13Result) -> str:
    designs = list(res.costs)
    table = series_table(
        "Fig. 13: area & power vs the 2-CU baseline",
        "metric",
        ["area", "power"],
        {d: [res.costs[d]["area"], res.costs[d]["power"]] for d in designs},
        fmt="{:.2f}x",
    )
    return (
        f"{table}\n\n"
        f"4 CUs: {res.overhead('4cu', 'area'):+.0f}% area / "
        f"{res.overhead('4cu', 'power'):+.0f}% power (paper: +27% / +60%)\n"
        f"RBA: {res.overhead('2cu+rba', 'area'):+.1f}% area / "
        f"{res.overhead('2cu+rba', 'power'):+.1f}% power (paper: ~+1% / +1%)"
    )


def main() -> None:  # pragma: no cover
    print(format_result(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
