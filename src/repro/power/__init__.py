"""Analytical area/power model of the issue + operand-read hardware."""

from .components import Cost, comparator_network, crossbar, flops, request_queues, sram
from .model import DesignPoint, config_cost, fig13_design_points, normalized_costs

__all__ = [
    "Cost",
    "comparator_network",
    "crossbar",
    "flops",
    "request_queues",
    "sram",
    "DesignPoint",
    "config_cost",
    "fig13_design_points",
    "normalized_costs",
]
