"""Design-cost model for the warp scheduler + operand collector + RF banks.

Reproduces Fig. 13: the area/power of scaling collector units per sub-core
versus adding RBA support, normalized to the 2-CU GTO baseline.  The paper
reports (from RTL synthesis) roughly +27 % area / +60 % power for 4 CUs and
~+1 % for RBA; the structure-count model below reproduces those trends from
the component inventory:

* each CU stores up to 3 operand entries of 32 threads x 32 bits plus tags;
* the operand crossbar connects every bank to every CU operand entry;
* the arbitration unit has one request queue per bank with one port per CU
  operand;
* the GTO warp-selection comparator network compares 6-bit age keys over
  the warp PC table; RBA widens each key by the 5-bit score and adds the
  scoring adders — the paper's "80 bits per sub-core" of extra state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..config import GPUConfig, volta_v100
from .components import (
    Cost,
    comparator_network,
    crossbar,
    flops,
    request_queues,
    sram,
)

#: Operand entries per collector unit (3-source instructions).
OPERANDS_PER_CU = 3
#: One operand entry: 32 threads x 32 bits of data + ~16 bits of tag state.
OPERAND_ENTRY_BITS = 32 * 32 + 16
#: Warp PC table entries per sub-core (V100: 64 warps / 4 sub-cores x 2
#: slots of lookahead).
PC_TABLE_ENTRIES = 16
#: GTO selection key: warp age.
AGE_BITS = 6
#: RBA score width (Sec. IV-A).
RBA_SCORE_BITS = 5


@dataclass(frozen=True)
class DesignPoint:
    """One Fig. 13 design: a sub-core's issue + operand-read hardware."""

    name: str
    collector_units: int
    rf_banks: int = 2
    rba: bool = False
    registers_kib: int = 64

    def cost(self) -> Cost:
        total = Cost(0.0, 0.0)

        # Register file banks (OpenRAM SRAM macros in the paper).  The RF
        # dominates area but is identical across Fig. 13's designs.
        rf_bits = self.registers_kib * 1024 * 8
        total += sram(rf_bits, activity=0.5)

        # Collector units: operand storage flops.
        cu_bits = self.collector_units * OPERANDS_PER_CU * OPERAND_ENTRY_BITS
        total += flops(cu_bits, activity=0.6)

        # Operand crossbar: banks x (CU operand entries), 32-bit lanes x32
        # threads wide.  This is the term that explodes with CU count.
        total += crossbar(
            inputs=self.rf_banks,
            outputs=self.collector_units * OPERANDS_PER_CU,
            width_bits=32 * 32,  # full 32-thread x 32-bit vector operand bus
            activity=0.5,
        )

        # Arbitration: per-bank queues with a port per CU operand.
        total += request_queues(
            queues=self.rf_banks,
            depth=self.collector_units * OPERANDS_PER_CU,
            width_bits=8,
            activity=0.4,
        )

        # Warp PC table + selection comparator network.
        key_bits = AGE_BITS + (RBA_SCORE_BITS if self.rba else 0)
        table_bits = PC_TABLE_ENTRIES * (64 + key_bits)
        total += flops(table_bits, activity=0.3)
        total += comparator_network(PC_TABLE_ENTRIES, key_bits, activity=0.5)

        if self.rba:
            # Score adders: one small adder tree per table entry
            # (2 CUs x 3 operands -> max queue length 6 -> 3-bit adds).
            total += flops(PC_TABLE_ENTRIES * RBA_SCORE_BITS, activity=0.5)

        return total


def fig13_design_points() -> List[DesignPoint]:
    """The Fig. 13 sweep: 2/4/8/16 CUs plus the RBA design."""
    return [
        DesignPoint("2cu-baseline", collector_units=2),
        DesignPoint("2cu+rba", collector_units=2, rba=True),
        DesignPoint("4cu", collector_units=4),
        DesignPoint("8cu", collector_units=8),
        DesignPoint("16cu", collector_units=16),
    ]


def normalized_costs(points: List[DesignPoint] | None = None) -> Dict[str, Dict[str, float]]:
    """Area/power of each design point relative to the 2-CU baseline."""
    points = points if points is not None else fig13_design_points()
    base = DesignPoint("2cu-baseline", collector_units=2).cost()
    out: Dict[str, Dict[str, float]] = {}
    for p in points:
        c = p.cost()
        out[p.name] = {
            "area": c.area / base.area,
            "power": c.power / base.power,
        }
    return out


def config_cost(config: GPUConfig | None = None, rba: bool | None = None) -> Cost:
    """Cost of one sub-core's issue/operand hardware for a GPUConfig."""
    cfg = config if config is not None else volta_v100()
    use_rba = rba if rba is not None else cfg.scheduler == "rba"
    point = DesignPoint(
        cfg.name,
        collector_units=cfg.collector_units_per_subcore,
        rf_banks=cfg.rf_banks_per_subcore,
        rba=use_rba,
    )
    return point.cost()
