"""Area/power primitives for the design-cost model.

The paper synthesizes the operand collector + warp scheduler + register
file in RTL (Cadence Genus, 45 nm, OpenRAM SRAMs) and reports *relative*
area and power versus the 2-CU baseline (Fig. 13).  We substitute an
analytical structure-count model: each hardware structure is charged per
bit of storage, per crossbar cross-point, and per comparator bit, with
technology constants expressed in normalized gate-equivalent units.  Only
ratios between design points are meaningful — exactly how the paper
presents Fig. 13.

Constants are first-principles scale factors (an SRAM bit cell ~0.5 gate
equivalents, a flip-flop bit ~4, a crossbar cross-point ~3 including its
mux/driver share, a comparator ~1.2 per bit) — close to standard-cell
folklore, and documented here so the model is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

# normalized gate-equivalent costs
SRAM_BIT_AREA = 0.4
FLOP_BIT_AREA = 4.0
CROSSBAR_POINT_AREA = 5.0
COMPARATOR_BIT_AREA = 1.2
QUEUE_SLOT_AREA = 6.0

# dynamic-power weights per unit (activity-scaled gate equivalents); SRAM
# reads are cheap per bit, crossbar toggling and flop clocks dominate.
SRAM_BIT_POWER = 0.08
FLOP_BIT_POWER = 1.0
CROSSBAR_POINT_POWER = 4.0
COMPARATOR_BIT_POWER = 0.6
QUEUE_SLOT_POWER = 1.2


@dataclass(frozen=True)
class Cost:
    """Area and power in normalized units."""

    area: float
    power: float

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.area + other.area, self.power + other.power)

    def scaled(self, factor: float) -> "Cost":
        return Cost(self.area * factor, self.power * factor)


def sram(bits: int, activity: float = 1.0) -> Cost:
    """An SRAM macro of ``bits`` with a relative access activity."""
    return Cost(bits * SRAM_BIT_AREA, bits * SRAM_BIT_POWER * activity)


def flops(bits: int, activity: float = 1.0) -> Cost:
    """Flip-flop (register) storage."""
    return Cost(bits * FLOP_BIT_AREA, bits * FLOP_BIT_POWER * activity)


def crossbar(inputs: int, outputs: int, width_bits: int, activity: float = 1.0) -> Cost:
    """A full crossbar of ``inputs x outputs`` ports, ``width_bits`` wide.

    This is the dominant scaling term for collector units: every CU
    operand entry is a 32-thread x 32-bit vector that must be reachable
    from every bank (Sec. VI-B2: "the full crossbar connecting the vector
    operands is expensive to scale").
    """
    points = inputs * outputs * width_bits
    return Cost(points * CROSSBAR_POINT_AREA, points * CROSSBAR_POINT_POWER * activity)


def comparator_network(entries: int, width_bits: int, activity: float = 1.0) -> Cost:
    """A hierarchical min/max comparator tree over ``entries`` keys."""
    bits = max(0, entries - 1) * width_bits
    return Cost(bits * COMPARATOR_BIT_AREA, bits * COMPARATOR_BIT_POWER * activity)


def request_queues(queues: int, depth: int, width_bits: int, activity: float = 1.0) -> Cost:
    """Arbitration-unit FIFO queues."""
    slots = queues * depth * width_bits
    return Cost(slots * QUEUE_SLOT_AREA / 8.0, slots * QUEUE_SLOT_POWER / 8.0 * activity)
