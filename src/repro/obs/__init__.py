"""Observability for the simulator (``repro.obs``).

Three layers, one contract (everything here is deterministic and
zero-overhead when off):

* **event tracing** — :class:`Tracer` collects cycle-attributed model
  events (warp issue/stall/barrier/exit, CTA launch/retire, collector-
  unit occupancy, bank conflicts, memory accesses) through hooks in the
  core model; :mod:`repro.obs.chrome_trace` exports them as Perfetto-
  loadable Chrome-trace JSON plus a compact JSONL stream;
* **stall attribution** — the top-down issue-slot taxonomy of
  :mod:`repro.obs.stall`, accumulated per sub-core into
  :class:`~repro.metrics.SMStats` when ``GPUConfig.stall_attribution``
  is set, conservation-checked by the runtime sanitizer;
* **run telemetry** — :class:`RunManifest`, the experiment engine's
  per-run JSONL audit log (cache hit/miss, wall time, worker id, stats
  digest), now schema-versioned and validated, and :class:`RunJournal`,
  the crash-safe append-only index of completed point keys that powers
  ``python -m repro --resume`` (see ``docs/robustness.md``);
* **run metrics** — :class:`MetricsRegistry` (counters, gauges,
  histograms with label sets) exported as Prometheus text exposition and
  canonical JSON, plus the :class:`Heartbeat` status.json writer for
  live run health;
* **dashboard** — ``python -m repro.obs --dashboard`` renders one
  static HTML report merging manifests, stall attribution, metrics,
  status and the committed ``BENCH_*.json`` trajectory.

CLI::

    python -m repro <figure> --trace [--trace-dir DIR] [--trace-cycles N]
    python -m repro --trace --profile-report APP[:DESIGN]
    python -m repro.obs --validate TRACE.json MANIFEST.jsonl ...  # CI gate
    python -m repro.obs --dashboard --out report.html [INPUTS...]

See ``docs/observability.md`` for the event schema, the taxonomy
definitions, the exposition grammar, and how to open traces in Perfetto.
"""

from .chrome_trace import (
    chrome_trace,
    dumps_chrome_trace,
    iter_jsonl,
    write_chrome_trace,
    write_events_jsonl,
)
from .events import EVENT_FIELDS, EVENT_KINDS, validate_chrome_trace, validate_event
from .heartbeat import STATUS_SCHEMA_VERSION, Heartbeat, read_status, validate_status
from .journal import (
    JOURNAL_SCHEMA_VERSION,
    RunJournal,
    load_journal,
    validate_journal,
    validate_journal_record,
)
from .manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    read_manifest,
    stats_digest,
    validate_manifest,
    validate_manifest_record,
)
from .metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
    record_stats_metrics,
    validate_metrics_json,
    validate_prometheus_text,
)
from .stall import STALL_BUCKETS, empty_buckets, merge_buckets
from .tracer import Tracer

__all__ = [
    "Counter",
    "EVENT_FIELDS",
    "EVENT_KINDS",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "JOURNAL_SCHEMA_VERSION",
    "MANIFEST_SCHEMA_VERSION",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "RunJournal",
    "RunManifest",
    "STALL_BUCKETS",
    "STATUS_SCHEMA_VERSION",
    "Tracer",
    "chrome_trace",
    "dumps_chrome_trace",
    "empty_buckets",
    "iter_jsonl",
    "load_journal",
    "merge_buckets",
    "parse_prometheus_text",
    "read_manifest",
    "read_status",
    "record_stats_metrics",
    "stats_digest",
    "validate_chrome_trace",
    "validate_event",
    "validate_journal",
    "validate_journal_record",
    "validate_manifest",
    "validate_manifest_record",
    "validate_metrics_json",
    "validate_prometheus_text",
    "write_chrome_trace",
    "write_events_jsonl",
]
