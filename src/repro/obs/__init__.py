"""Observability for the simulator (``repro.obs``).

Three layers, one contract (everything here is deterministic and
zero-overhead when off):

* **event tracing** — :class:`Tracer` collects cycle-attributed model
  events (warp issue/stall/barrier/exit, CTA launch/retire, collector-
  unit occupancy, bank conflicts, memory accesses) through hooks in the
  core model; :mod:`repro.obs.chrome_trace` exports them as Perfetto-
  loadable Chrome-trace JSON plus a compact JSONL stream;
* **stall attribution** — the top-down issue-slot taxonomy of
  :mod:`repro.obs.stall`, accumulated per sub-core into
  :class:`~repro.metrics.SMStats` when ``GPUConfig.stall_attribution``
  is set, conservation-checked by the runtime sanitizer;
* **run telemetry** — :class:`RunManifest`, the experiment engine's
  per-run JSONL audit log (cache hit/miss, wall time, worker id, stats
  digest).

CLI::

    python -m repro <figure> --trace [--trace-dir DIR] [--trace-cycles N]
    python -m repro --trace --profile-report APP[:DESIGN]
    python -m repro.obs --validate TRACE.json ...   # schema gate (CI)

See ``docs/observability.md`` for the event schema, the taxonomy
definitions, and how to open traces in Perfetto.
"""

from .chrome_trace import (
    chrome_trace,
    dumps_chrome_trace,
    iter_jsonl,
    write_chrome_trace,
    write_events_jsonl,
)
from .events import EVENT_FIELDS, EVENT_KINDS, validate_chrome_trace, validate_event
from .manifest import RunManifest, read_manifest, stats_digest
from .stall import STALL_BUCKETS, empty_buckets, merge_buckets
from .tracer import Tracer

__all__ = [
    "EVENT_FIELDS",
    "EVENT_KINDS",
    "RunManifest",
    "STALL_BUCKETS",
    "Tracer",
    "chrome_trace",
    "dumps_chrome_trace",
    "empty_buckets",
    "iter_jsonl",
    "merge_buckets",
    "read_manifest",
    "stats_digest",
    "validate_chrome_trace",
    "validate_event",
    "write_chrome_trace",
    "write_events_jsonl",
]
