"""Command-line observability tooling.

Usage::

    python -m repro.obs --validate FILE [...]          # schema gates (CI)
    python -m repro.obs --summarize EVENTS.jsonl       # event-kind counts
    python -m repro.obs --dashboard [--out FILE] [INPUTS...]

``--validate`` dispatches on artifact shape: Chrome-trace JSON documents
check against :func:`repro.obs.events.validate_chrome_trace`, run
manifests (``*.jsonl``) against the versioned record schema
(:func:`repro.obs.manifest.validate_manifest_record` — unknown-version
records are rejected, unstamped pre-versioning records are flagged as
legacy), run journals against
:func:`repro.obs.journal.validate_journal`, metrics exports against
:func:`repro.obs.metrics.validate_metrics_json`, status files against
:func:`repro.obs.heartbeat.validate_status`, and bench reports against
``repro.bench.schema``.  Exit status: 0 clean, 1 schema errors, 2 usage
error.

``--dashboard`` renders the unified static HTML report (default
``repro-dashboard.html``) from any mix of manifests, ``BENCH_*.json``
reports, metrics exports and status files; with no inputs it picks up
every ``BENCH_*.json`` in the current directory.
"""

from __future__ import annotations

import json
import sys
from collections import Counter
from typing import List, Optional

from .events import validate_chrome_trace, validate_event


def _print_problems(path: str, problems: List[str]) -> None:
    for problem in problems[:20]:
        print(f"{path}: {problem}", file=sys.stderr)
    if len(problems) > 20:
        print(f"{path}: ... {len(problems) - 20} more", file=sys.stderr)


def _validate_one(path: str) -> bool:
    """Validate one artifact by shape; returns True when clean."""
    from .dashboard import classify_input
    from .heartbeat import validate_status
    from .journal import validate_journal
    from .manifest import validate_manifest
    from .metrics import validate_metrics_json

    kind, payload = classify_input(path)
    if kind == "error":
        print(payload, file=sys.stderr)
        return False
    if kind == "trace":
        errors = validate_chrome_trace(payload)
        if errors:
            _print_problems(path, errors)
            return False
        print(f"{path}: OK ({len(payload['traceEvents'])} events)")
        return True
    if kind == "manifest":
        counts, problems = validate_manifest(path)
        if problems:
            _print_problems(path, problems)
            return False
        legacy = f", {counts['legacy']} legacy" if counts["legacy"] else ""
        print(f"{path}: OK ({counts['ok']} records{legacy})")
        return True
    if kind == "journal":
        counts, problems = validate_journal(path)
        if problems:
            _print_problems(path, problems)
            return False
        torn = ", torn tail" if counts["torn_tail"] else ""
        print(f"{path}: OK ({counts['ok']} journal records{torn})")
        return True
    if kind == "events":
        bad = sum(1 for event in payload if validate_event(event))
        if bad:
            print(f"{path}: {bad} invalid event(s)", file=sys.stderr)
            return False
        print(f"{path}: OK ({len(payload)} events)")
        return True
    if kind == "metrics":
        problems = validate_metrics_json(payload)
        if problems:
            _print_problems(path, problems)
            return False
        print(f"{path}: OK ({len(payload['metrics'])} metric families)")
        return True
    if kind == "status":
        problems = validate_status(payload)
        if problems:
            _print_problems(path, problems)
            return False
        print(f"{path}: OK (state {payload['state']})")
        return True
    if kind == "bench":
        from ..bench.schema import validate_report

        problems = validate_report(payload)
        if problems:
            _print_problems(path, problems)
            return False
        print(f"{path}: OK ({len(payload['points'])} bench points)")
        return True
    print(f"{path}: unrecognized artifact", file=sys.stderr)
    return False


def _validate(paths: List[str]) -> int:
    failed = sum(0 if _validate_one(path) else 1 for path in paths)
    return 1 if failed else 0


def _summarize(paths: List[str]) -> int:
    status = 0
    for path in paths:
        counts: Counter = Counter()
        bad = 0
        last_cycle = 0
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                if validate_event(event):
                    bad += 1
                    continue
                counts[event["e"]] += 1
                last_cycle = max(last_cycle, event["t"] + event.get("dur", 1) - 1)
        total = sum(counts.values())
        print(f"{path}: {total} events through cycle {last_cycle}")
        for kind in sorted(counts):
            print(f"  {kind:<14} {counts[kind]}")
        if bad:
            print(f"  INVALID        {bad}", file=sys.stderr)
            status = 1
    return status


def _dashboard(paths: List[str], out: str) -> int:
    from .dashboard import build_dashboard

    if not paths:
        from pathlib import Path

        paths = [str(p) for p in sorted(Path(".").glob("BENCH_*.json"))]
    model = build_dashboard(paths, out)
    rendered = (
        len(model["manifests"])
        + len(model["journals"])
        + len(model["bench"])
        + len(model["metrics"])
        + len(model["status"])
    )
    print(f"dashboard written to {out} ({rendered} artifact(s) rendered)")
    for problem in model["problems"]:
        print(problem, file=sys.stderr)
    return 1 if model["problems"] else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or "-h" in args or "--help" in args:
        print(__doc__)
        return 0
    mode: Optional[str] = None
    out = "repro-dashboard.html"
    paths: List[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--validate":
            mode = "validate"
        elif arg == "--summarize":
            mode = "summarize"
        elif arg == "--dashboard":
            mode = "dashboard"
        elif arg == "--out" or arg.startswith("--out="):
            flag, sep, value = arg.partition("=")
            if not sep:
                i += 1
                if i >= len(args):
                    print("--out requires a value", file=sys.stderr)
                    return 2
                value = args[i]
            out = value
        elif arg.startswith("-"):
            print(f"unknown option: {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
        i += 1
    if mode is None:
        print(
            "usage: python -m repro.obs --validate|--summarize|--dashboard "
            "[--out FILE] FILE [...]",
            file=sys.stderr,
        )
        return 2
    if mode == "dashboard":
        return _dashboard(paths, out)
    if not paths:
        print("no input files given", file=sys.stderr)
        return 2
    return _validate(paths) if mode == "validate" else _summarize(paths)


if __name__ == "__main__":
    raise SystemExit(main())
