"""Command-line trace tooling.

Usage::

    python -m repro.obs --validate TRACE.json [...]   # Chrome-trace schema
    python -m repro.obs --summarize EVENTS.jsonl       # event-kind counts

``--validate`` checks exported Chrome-trace documents against the
invariants Perfetto/``chrome://tracing`` rely on (see
:func:`repro.obs.events.validate_chrome_trace`); CI's trace-smoke job
gates on it.  Exit status: 0 clean, 1 schema errors, 2 usage error.
"""

from __future__ import annotations

import json
import sys
from collections import Counter
from typing import List, Optional

from .events import validate_chrome_trace, validate_event


def _validate(paths: List[str]) -> int:
    failed = 0
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable trace: {exc}", file=sys.stderr)
            failed += 1
            continue
        errors = validate_chrome_trace(doc)
        if errors:
            failed += 1
            for error in errors[:20]:
                print(f"{path}: {error}", file=sys.stderr)
            if len(errors) > 20:
                print(f"{path}: ... {len(errors) - 20} more", file=sys.stderr)
        else:
            n = len(doc["traceEvents"])
            print(f"{path}: OK ({n} events)")
    return 1 if failed else 0


def _summarize(paths: List[str]) -> int:
    status = 0
    for path in paths:
        counts: Counter = Counter()
        bad = 0
        last_cycle = 0
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                if validate_event(event):
                    bad += 1
                    continue
                counts[event["e"]] += 1
                last_cycle = max(last_cycle, event["t"] + event.get("dur", 1) - 1)
        total = sum(counts.values())
        print(f"{path}: {total} events through cycle {last_cycle}")
        for kind in sorted(counts):
            print(f"  {kind:<14} {counts[kind]}")
        if bad:
            print(f"  INVALID        {bad}", file=sys.stderr)
            status = 1
    return status


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or "-h" in args or "--help" in args:
        print(__doc__)
        return 0
    mode: Optional[str] = None
    paths: List[str] = []
    for arg in args:
        if arg == "--validate":
            mode = "validate"
        elif arg == "--summarize":
            mode = "summarize"
        elif arg.startswith("-"):
            print(f"unknown option: {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if mode is None or not paths:
        print("usage: python -m repro.obs --validate|--summarize FILE [...]",
              file=sys.stderr)
        return 2
    return _validate(paths) if mode == "validate" else _summarize(paths)


if __name__ == "__main__":
    raise SystemExit(main())
