"""Trace event kinds and schemas.

A trace is an ordered list of flat dicts.  Every event carries ``"e"``
(the kind) and ``"t"`` (the model cycle it happened at); the remaining
keys are kind-specific and listed in :data:`EVENT_FIELDS`.  Keys are
single letters or short words so the JSONL stream stays compact:

==========  =============================================================
key         meaning
==========  =============================================================
``t``       model cycle (start cycle for span events)
``e``       event kind (one of :data:`EVENT_KINDS`)
``sm``      SM id
``sc``      sub-core id
``w``       warp id
``cu``      collector-unit id
``cta``     thread-block id
``op``      opcode name
``dur``     span length in cycles (≥ 1)
``pc``      warp trace cursor at issue
``pol``     warp-scheduler policy name
``greedy``  1 when the policy re-issued its last warp (GTO greed)
``why``     stall bucket (see :mod:`repro.obs.stall`)
``slots``   scheduler slots attributed by a stall event
``kind``    memory-access class (``global``/``shared``)
``h``/``m`` L1 hits / misses of one global access
``n``       generic count (warps of a CTA, reads waiting on a conflict)
``from``    donor sub-core of a warp migration
==========  =============================================================

Everything in an event is derived from simulator state — warp ids, SM
ids, cycles — never from wall clocks or object identity, so a trace is
byte-identical across processes and ``PYTHONHASHSEED`` values (the same
contract :mod:`repro.analysis` enforces for stats).

The module also validates exported Chrome-trace documents
(:func:`validate_chrome_trace`); CI's trace-smoke job runs it via
``python -m repro.obs --validate``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

#: Version of the trace-event schema (kinds, per-kind required keys, key
#: semantics).  External tooling that parses exported JSONL keys on it;
#: bump whenever :data:`EVENT_KINDS` / :data:`EVENT_FIELDS` or the meaning
#: of a key changes.  simcheck's RPR301 contract check
#: (``analysis/contracts.json``) fails CI when this module changes
#: without an acknowledged manifest refresh.
EVENT_SCHEMA_VERSION = 1

# -- event kinds -------------------------------------------------------------

WARP_ISSUE = "issue"
WARP_STALL = "stall"
WARP_BARRIER = "barrier"
WARP_EXIT = "exit"
WARP_MIGRATE = "migrate"
CTA_LAUNCH = "cta_launch"
CTA_RETIRE = "cta_retire"
CU_SPAN = "cu"
BANK_CONFLICT = "bank_conflict"
MEM_ACCESS = "mem"

EVENT_KINDS = (
    WARP_ISSUE,
    WARP_STALL,
    WARP_BARRIER,
    WARP_EXIT,
    WARP_MIGRATE,
    CTA_LAUNCH,
    CTA_RETIRE,
    CU_SPAN,
    BANK_CONFLICT,
    MEM_ACCESS,
)

#: Required keys per kind (beyond the universal ``e``/``t``).
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    WARP_ISSUE: ("sm", "sc", "w", "op", "pc", "pol", "greedy"),
    WARP_STALL: ("sm", "sc", "why", "slots", "dur"),
    WARP_BARRIER: ("sm", "sc", "w"),
    WARP_EXIT: ("sm", "sc", "w"),
    WARP_MIGRATE: ("sm", "sc", "w", "from"),
    CTA_LAUNCH: ("sm", "cta", "n"),
    CTA_RETIRE: ("sm", "cta", "dur"),
    CU_SPAN: ("sm", "sc", "cu", "w", "op", "dur"),
    BANK_CONFLICT: ("sm", "sc", "n"),
    MEM_ACCESS: ("sm", "kind", "dur"),
}


def validate_event(event: Mapping[str, Any]) -> List[str]:
    """Schema errors of one raw trace event (empty when valid)."""
    errors: List[str] = []
    kind = event.get("e")
    if kind not in EVENT_FIELDS:
        return [f"unknown event kind {kind!r}"]
    if not isinstance(event.get("t"), int) or event["t"] < 0:
        errors.append(f"{kind}: cycle {event.get('t')!r} is not a non-negative int")
    for key in EVENT_FIELDS[kind]:
        if key not in event:
            errors.append(f"{kind}: missing required field {key!r}")
    dur = event.get("dur")
    if dur is not None and (not isinstance(dur, int) or dur < 1):
        errors.append(f"{kind}: dur {dur!r} is not a positive int")
    return errors


# -- Chrome-trace document validation ----------------------------------------

#: Phases the exporter emits: complete spans, instants, metadata.
_CHROME_PHASES = {"X", "i", "M"}
_METADATA_NAMES = {"process_name", "thread_name", "process_sort_index", "thread_sort_index"}


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema errors of an exported Chrome-trace JSON document.

    Checks the invariants ``chrome://tracing`` / Perfetto rely on: a
    ``traceEvents`` list whose entries carry ``ph``/``pid``/``tid``/
    ``name``, timestamps and durations that are non-negative numbers, and
    metadata events restricted to the names the viewers understand.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["top level is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _CHROME_PHASES:
            errors.append(f"{where}: unsupported phase {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                errors.append(f"{where}: {key} is not an int")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing name")
        if ph == "M":
            if ev["name"] not in _METADATA_NAMES:
                errors.append(f"{where}: unknown metadata name {ev['name']!r}")
            if not isinstance(ev.get("args"), dict):
                errors.append(f"{where}: metadata without args")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts {ts!r} is not a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur <= 0:
                errors.append(f"{where}: X event dur {dur!r} is not positive")
    return errors
