"""The crash-safe run journal: completed point keys, appended atomically.

The :class:`~repro.experiments.engine.ExperimentEngine` stores results
to its disk cache *as they arrive*; the journal is the durable index of
that progress — one line per settled point with its content-address key
and stats digest.  After a crash, an ``OOM`` kill or a Ctrl-C at point
900/1000, ``python -m repro --resume`` loads the journal and re-simulates
only the points it does not cover: journaled points are served from the
disk cache, and their fresh digests are cross-checked against the
journaled ones, so silent cache corruption between runs surfaces as a
structured warning instead of a wrong figure.

Crash safety is by construction:

* every line is written with a **single ``os.write`` to an
  ``O_APPEND`` descriptor** — POSIX guarantees the append is atomic for
  writes under ``PIPE_BUF``, and journal lines are far smaller, so
  concurrent or interrupted appends never interleave or tear;
* the loader **skips a torn trailing line** (a crash mid-append loses at
  most the point being written, never the journal);
* records are schema-versioned (``"v"``); unknown versions are refused
  by :func:`validate_journal` and skipped by :func:`load_journal`.

A journal is *not* a result store — digests, not payloads.  The results
themselves live in the engine's content-addressed disk cache; the
journal says which of them this run already earned.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

#: Version stamped into every journal line.  Bump when the record layout
#: changes incompatibly; loaders skip (and validators reject) records
#: stamped with a version they do not understand.
JOURNAL_SCHEMA_VERSION = 1


class RunJournal:
    """Append-only journal of completed simulation points."""

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = Path(path)
        self.records_written = 0

    def record(self, key: str, digest: str, point: str) -> None:
        """Append one completed point: content-address key + stats digest."""
        entry = {
            "v": JOURNAL_SCHEMA_VERSION,
            "key": key,
            "digest": digest,
            "point": point,
        }
        line = json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        self.records_written += 1


def validate_journal_record(record: Any) -> List[str]:
    """Structural problems of one journal record (empty = valid)."""
    if not isinstance(record, dict):
        return ["record must be a JSON object"]
    problems: List[str] = []
    version = record.get("v")
    if version != JOURNAL_SCHEMA_VERSION:
        problems.append(
            f"unknown journal schema version {version!r} "
            f"(supported: {JOURNAL_SCHEMA_VERSION})"
        )
    for field in ("key", "digest", "point"):
        if not isinstance(record.get(field), str) or not record[field]:
            problems.append(f"missing or empty {field!r}")
    return problems


def load_journal(path: Union[str, os.PathLike]) -> Dict[str, str]:
    """The journaled ``key -> digest`` map; tolerant of a torn tail.

    Unparseable lines and unknown-version records are skipped — a crash
    mid-append must never make the journal unreadable.  The last record
    for a key wins (a point re-simulated after a digest mismatch
    overwrites its earlier entry).
    """
    seen: Dict[str, str] = {}
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError:
        return seen
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if validate_journal_record(record):
                continue
            seen[record["key"]] = record["digest"]
    return seen


def validate_journal(
    path: Union[str, os.PathLike]
) -> Tuple[Dict[str, int], List[str]]:
    """Validate a whole journal file; returns ``(counts, problems)``.

    Unlike :func:`load_journal` this is strict: every malformed line is
    reported.  A single torn *trailing* line is tolerated (counted under
    ``torn_tail``) because a crash mid-append legitimately leaves one.
    """
    counts = {"ok": 0, "error": 0, "torn_tail": 0}
    problems: List[str] = []
    lines: List[Tuple[int, str]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if line:
                lines.append((lineno, line))
    for i, (lineno, line) in enumerate(lines):
        try:
            record = json.loads(line)
        except ValueError as exc:
            if i == len(lines) - 1:
                counts["torn_tail"] += 1
            else:
                counts["error"] += 1
                problems.append(f"line {lineno}: unparseable JSON ({exc})")
            continue
        record_problems = validate_journal_record(record)
        if record_problems:
            counts["error"] += 1
            for problem in record_problems:
                problems.append(f"line {lineno}: {problem}")
        else:
            counts["ok"] += 1
    return counts, problems
