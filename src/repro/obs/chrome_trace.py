"""Export traces to Chrome-trace JSON and compact JSONL.

The Chrome trace event format (the JSON Perfetto and ``chrome://tracing``
load) models a trace as processes and threads; we map one **SM per
process** and one **track per sub-core, collector unit and warp**:

* ``tid 1`` — the SM track: CTA launch/retire instants and memory
  accesses (span per warp memory instruction);
* ``tid 10 + 10·sc`` — the sub-core track: stall spans (one per
  attributed stall, named ``stall:<bucket>``), bank-conflict instants and
  migration arrivals;
* ``tid 10 + 10·sc + 1 + cu`` — one track per collector unit: a span
  from allocation to dispatch, so operand-collector occupancy reads
  directly off the timeline (Fig. 12's quantity);
* ``tid 1000 + warp_id`` — one track per warp: issued instructions
  (1-cycle spans named by opcode) plus barrier/exit instants.

Model cycles map 1:1 to trace microseconds (``ts``/``dur``), so Perfetto
durations read as cycle counts.

Export is deterministic: events keep emission order (simulation order),
metadata tracks are sorted by ``(pid, tid)``, and serialization uses
sorted keys with fixed separators — the exported bytes are identical
across processes and ``PYTHONHASHSEED`` values (pinned by a golden
test).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Sequence, Tuple, Union

from . import events as ev
from .tracer import Tracer

#: tid of the per-SM track (CTA + memory events).
SM_TID = 1
#: tid base/stride of per-sub-core tracks; CU n of sub-core s gets
#: ``SUBCORE_TID_BASE + SUBCORE_TID_STRIDE*s + 1 + n``.
SUBCORE_TID_BASE = 10
SUBCORE_TID_STRIDE = 10
#: tid base of per-warp tracks.
WARP_TID_BASE = 1000

EventList = Sequence[Dict[str, Any]]
TraceLike = Union[Tracer, EventList]


def _events_of(trace: TraceLike) -> EventList:
    return trace.events if isinstance(trace, Tracer) else trace


def subcore_tid(sc: int) -> int:
    return SUBCORE_TID_BASE + SUBCORE_TID_STRIDE * sc


def cu_tid(sc: int, cu: int) -> int:
    return subcore_tid(sc) + 1 + cu


def warp_tid(warp: int) -> int:
    return WARP_TID_BASE + warp


def _instant(name: str, t: int, pid: int, tid: int, args: Dict[str, Any]) -> Dict[str, Any]:
    return {"name": name, "ph": "i", "s": "t", "ts": t, "pid": pid, "tid": tid, "args": args}


def _span(name: str, t: int, dur: int, pid: int, tid: int, args: Dict[str, Any]) -> Dict[str, Any]:
    return {"name": name, "ph": "X", "ts": t, "dur": dur, "pid": pid, "tid": tid, "args": args}


def _convert(event: Dict[str, Any]) -> Tuple[Dict[str, Any], str]:
    """One raw event → (chrome event, track name for its tid)."""
    kind, t, sm = event["e"], event["t"], event["sm"]
    if kind == ev.WARP_ISSUE:
        tid = warp_tid(event["w"])
        track = f"warp {event['w']} (sc {event['sc']})"
        args = {"pc": event["pc"], "policy": event["pol"], "greedy": event["greedy"]}
        return _span(event["op"], t, 1, sm, tid, args), track
    if kind == ev.WARP_STALL:
        tid = subcore_tid(event["sc"])
        track = f"sub-core {event['sc']}"
        args = {"slots": event["slots"]}
        return _span(f"stall:{event['why']}", t, event["dur"], sm, tid, args), track
    if kind == ev.WARP_BARRIER:
        tid = warp_tid(event["w"])
        track = f"warp {event['w']} (sc {event['sc']})"
        return _instant("barrier", t, sm, tid, {}), track
    if kind == ev.WARP_EXIT:
        tid = warp_tid(event["w"])
        track = f"warp {event['w']} (sc {event['sc']})"
        return _instant("exit", t, sm, tid, {}), track
    if kind == ev.WARP_MIGRATE:
        tid = subcore_tid(event["sc"])
        track = f"sub-core {event['sc']}"
        args = {"warp": event["w"], "from_subcore": event["from"]}
        return _instant("migrate-in", t, sm, tid, args), track
    if kind == ev.CTA_LAUNCH:
        return _instant(f"CTA {event['cta']} launch", t, sm, SM_TID, {"warps": event["n"]}), "SM"
    if kind == ev.CTA_RETIRE:
        return _instant(f"CTA {event['cta']} retire", t, sm, SM_TID, {"latency": event["dur"]}), "SM"
    if kind == ev.CU_SPAN:
        tid = cu_tid(event["sc"], event["cu"])
        track = f"sub-core {event['sc']} CU{event['cu']}"
        args = {"warp": event["w"]}
        return _span(event["op"], t, event["dur"], sm, tid, args), track
    if kind == ev.BANK_CONFLICT:
        tid = subcore_tid(event["sc"])
        track = f"sub-core {event['sc']}"
        return _instant("bank-conflict", t, sm, tid, {"waiting": event["n"]}), track
    if kind == ev.MEM_ACCESS:
        args = {k: event[k] for k in ("h", "m") if k in event}
        return _span(f"mem:{event['kind']}", t, event["dur"], sm, SM_TID, args), "SM"
    raise ValueError(f"unknown event kind {kind!r}")


def chrome_trace(trace: TraceLike) -> Dict[str, Any]:
    """The Chrome-trace document (a JSON-safe dict) for a raw event list."""
    trace_events: List[Dict[str, Any]] = []
    tracks: Dict[Tuple[int, int], str] = {}
    pids: Dict[int, None] = {}
    for event in _events_of(trace):
        chrome, track = _convert(event)
        pid, tid = chrome["pid"], chrome["tid"]
        tracks.setdefault((pid, tid), track)
        pids.setdefault(pid, None)
        trace_events.append(chrome)

    metadata: List[Dict[str, Any]] = []
    for pid in sorted(pids):
        metadata.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": f"SM {pid}"}}
        )
    for (pid, tid), track in sorted(tracks.items()):
        metadata.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": track}}
        )
        metadata.append(
            {"name": "thread_sort_index", "ph": "M", "pid": pid, "tid": tid,
             "args": {"sort_index": tid}}
        )
    return {
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "cycles", "exporter": "repro.obs"},
        "traceEvents": metadata + trace_events,
    }


def dumps_chrome_trace(trace: TraceLike) -> str:
    """Byte-stable serialization of :func:`chrome_trace`."""
    return json.dumps(chrome_trace(trace), sort_keys=True, separators=(",", ":"))


def write_chrome_trace(trace: TraceLike, path: Union[str, os.PathLike]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_chrome_trace(trace))
        fh.write("\n")


def iter_jsonl(trace: TraceLike) -> Iterable[str]:
    """Raw events as compact JSONL lines (no trailing newlines)."""
    for event in _events_of(trace):
        yield json.dumps(event, sort_keys=True, separators=(",", ":"))


def write_events_jsonl(trace: TraceLike, path: Union[str, os.PathLike]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        for line in iter_jsonl(trace):
            fh.write(line)
            fh.write("\n")
