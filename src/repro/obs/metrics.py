"""Run-level metrics: a registry of counters, gauges and histograms.

The registry follows the same design discipline as the tracer
(:mod:`repro.obs.tracer`): **zero overhead when off**.  Nothing in the
simulator constructs a registry by default; instrumented code holds an
``Optional[MetricsRegistry]`` and guards every observation with
``if metrics is not None`` — a disabled run executes one attribute test
per potential observation and allocates nothing.  A regression test pins
that a metered engine run produces byte-identical stats digests to a
plain one.

Instruments:

* :class:`Counter` — a monotonically increasing total (``inc``);
* :class:`Gauge` — a value that goes both ways (``set``/``inc``);
* :class:`Histogram` — observation counts in cumulative buckets plus
  a sum (``observe``), Prometheus ``le`` semantics.

Every instrument is a *family*: label names are declared at registration
and each distinct label-value tuple materializes one child series
(``family.labels(phase="simulate").inc()``).  Children are stored in an
insertion-ordered dict and exports sort them by label values, so exports
are deterministic for a deterministic observation sequence.

Two export formats, both schema-checked:

* :meth:`MetricsRegistry.to_prometheus` — the text exposition format
  (``# HELP``/``# TYPE`` + samples); :func:`validate_prometheus_text`
  re-checks the grammar and histogram invariants, and
  :func:`parse_prometheus_text` round-trips the samples;
* :meth:`MetricsRegistry.to_json` — a canonical JSON document stamped
  with :data:`METRICS_SCHEMA_VERSION`; :func:`validate_metrics_json`
  validates it and :meth:`MetricsRegistry.from_json` reconstructs an
  equal registry (``to_json`` round-trip).

Like the event schema, the JSON schema is drift-guarded: simcheck's
RPR301 contract check fails CI when this module changes without an
acknowledged ``analysis/contracts.json`` refresh.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Version of the metrics JSON export schema (document layout, sample
#: shapes, bucket encoding).  Bump whenever :meth:`MetricsRegistry.to_json`
#: output changes shape; external dashboards key on it.
METRICS_SCHEMA_VERSION = 1

#: Default histogram bounds for wall-time observations (seconds).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """Shortest exact decimal for a sample value (ints stay integral)."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Instrument:
    """One family: declared labels, children keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str]):
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._children: Dict[Tuple[str, ...], Any] = {}

    def labels(self, **labels: str) -> Any:
        """The child series for one label-value assignment (memoized)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self) -> Any:
        raise NotImplementedError

    def _sorted_children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        return sorted(self._children.items())

    def _label_str(self, values: Tuple[str, ...], extra: str = "") -> str:
        parts = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.label_names, values)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled series (families without labels)."""
        if self.label_names:
            raise ValueError(f"{self.name} is labeled; use .labels(...)")
        self.labels().inc(amount)


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        if self.label_names:
            raise ValueError(f"{self.name} is labeled; use .labels(...)")
        self.labels().set(value)

    def inc(self, amount: float = 1.0) -> None:
        if self.label_names:
            raise ValueError(f"{self.name} is labeled; use .labels(...)")
        self.labels().inc(amount)


class _HistogramChild:
    __slots__ = ("bounds", "bucket_counts", "total", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break


class Histogram(_Instrument):
    """Observations in cumulative ``le`` buckets, plus sum and count."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ):
        super().__init__(name, help_text, label_names)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"{name}: bucket bounds must strictly increase")
        #: Finite bounds; the ``+Inf`` bucket is implicit (== count).
        self.bounds = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds)

    def observe(self, value: float) -> None:
        if self.label_names:
            raise ValueError(f"{self.name} is labeled; use .labels(...)")
        self.labels().observe(value)


class MetricsRegistry:
    """A named collection of instrument families.

    Instantiate one per run (the engine does when metrics are enabled);
    never a process-wide default — the absence of a registry is what
    makes the disabled path free.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Instrument] = {}

    def __len__(self) -> int:
        return len(self._families)

    def families(self) -> List[_Instrument]:
        return [self._families[name] for name in sorted(self._families)]

    def _register(self, instrument: _Instrument) -> Any:
        name = instrument.name
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in instrument.label_names:
            if not _LABEL_RE.match(label) or label == "le":
                raise ValueError(f"{name}: invalid label name {label!r}")
        existing = self._families.get(name)
        if existing is not None:
            if (
                type(existing) is not type(instrument)
                or existing.label_names != instrument.label_names
            ):
                raise ValueError(f"metric {name!r} re-registered differently")
            return existing
        self._families[name] = instrument
        return instrument

    def counter(
        self, name: str, help_text: str, label_names: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help_text, label_names))

    def gauge(
        self, name: str, help_text: str, label_names: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help_text, label_names))

    def histogram(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help_text, label_names, buckets))

    # -- exports -----------------------------------------------------------

    def to_prometheus(self) -> str:
        """The text exposition format (one family per HELP/TYPE block)."""
        lines: List[str] = []
        for family in self.families():
            help_text = family.help.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {family.name} {help_text}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in family._sorted_children():
                if isinstance(family, Histogram):
                    cumulative = 0
                    for bound, in_bucket in zip(child.bounds, child.bucket_counts):
                        cumulative += in_bucket
                        labels = family._label_str(
                            values, f'le="{_format_value(bound)}"'
                        )
                        lines.append(
                            f"{family.name}_bucket{labels} {cumulative}"
                        )
                    labels = family._label_str(values, 'le="+Inf"')
                    lines.append(f"{family.name}_bucket{labels} {child.count}")
                    plain = family._label_str(values)
                    lines.append(
                        f"{family.name}_sum{plain} {_format_value(child.total)}"
                    )
                    lines.append(f"{family.name}_count{plain} {child.count}")
                else:
                    labels = family._label_str(values)
                    lines.append(
                        f"{family.name}{labels} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def to_json(self) -> Dict[str, Any]:
        """Canonical, schema-versioned JSON document."""
        metrics: List[Dict[str, Any]] = []
        for family in self.families():
            samples: List[Dict[str, Any]] = []
            for values, child in family._sorted_children():
                labels = dict(zip(family.label_names, values))
                if isinstance(family, Histogram):
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": {
                                _format_value(b): c
                                for b, c in zip(child.bounds, child.bucket_counts)
                            },
                            "sum": child.total,
                            "count": child.count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            entry: Dict[str, Any] = {
                "name": family.name,
                "type": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "samples": samples,
            }
            if isinstance(family, Histogram):
                entry["bounds"] = [float(b) for b in family.bounds]
            metrics.append(entry)
        return {"schema": METRICS_SCHEMA_VERSION, "metrics": metrics}

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_json` output (round-trip)."""
        problems = validate_metrics_json(doc)
        if problems:
            raise ValueError(f"invalid metrics document: {problems[0]}")
        registry = cls()
        for entry in doc["metrics"]:
            name, kind = entry["name"], entry["type"]
            label_names = entry["label_names"]
            if kind == "counter":
                family: _Instrument = registry.counter(
                    name, entry["help"], label_names
                )
            elif kind == "gauge":
                family = registry.gauge(name, entry["help"], label_names)
            else:
                family = registry.histogram(
                    name, entry["help"], label_names, buckets=entry["bounds"]
                )
            for sample in entry["samples"]:
                child = family.labels(**sample["labels"])
                if kind == "histogram":
                    child.bucket_counts = [
                        sample["buckets"][_format_value(b)] for b in family.bounds
                    ]
                    child.total = sample["sum"]
                    child.count = sample["count"]
                else:
                    child.value = sample["value"]
        return registry


# -- stats → labeled series ---------------------------------------------------


def record_stats_metrics(registry: MetricsRegistry, stats: Any) -> None:
    """Feed one run's :class:`~repro.metrics.SimStats` into the registry.

    Takes the stats object duck-typed (``cycles``, ``instructions``,
    ``sms`` with per-SM ``stall_cycles`` bucket dicts) so this module
    never imports the model.  The SM/sub-core layer's existing
    stall-attribution buckets become the labeled series
    ``repro_stall_slots_total{bucket=...}`` — no new per-cycle hooks, the
    accounting the sanitizer already conservation-checks is simply
    re-exported.
    """
    registry.counter(
        "repro_sim_cycles_total", "Simulated cycles across runs."
    ).inc(stats.cycles)
    registry.counter(
        "repro_sim_instructions_total", "Simulated instructions across runs."
    ).inc(stats.instructions)
    stalls = registry.counter(
        "repro_stall_slots_total",
        "Issue slots by stall-attribution bucket (see repro.obs.stall).",
        ("bucket",),
    )
    for sm in stats.sms:
        for buckets in sm.stall_cycles or ():
            for bucket, slots in buckets.items():
                stalls.labels(bucket=bucket).inc(slots)


# -- validation ---------------------------------------------------------------


def validate_metrics_json(doc: Any) -> List[str]:
    """Structural problems of a metrics JSON document (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["metrics document must be a JSON object"]
    if doc.get("schema") != METRICS_SCHEMA_VERSION:
        problems.append(
            f"schema {doc.get('schema')!r} != supported {METRICS_SCHEMA_VERSION}"
        )
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        return problems + ["missing or non-list 'metrics'"]
    for i, entry in enumerate(metrics):
        where = f"metrics[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: must be an object")
            continue
        name = entry.get("name")
        if not isinstance(name, str) or not _NAME_RE.match(name):
            problems.append(f"{where}: invalid name {name!r}")
            name = f"<{i}>"
        kind = entry.get("type")
        if kind not in ("counter", "gauge", "histogram"):
            problems.append(f"{name}: unknown type {kind!r}")
            continue
        if not isinstance(entry.get("help"), str):
            problems.append(f"{name}: missing help text")
        label_names = entry.get("label_names")
        if not isinstance(label_names, list) or not all(
            isinstance(n, str) and _LABEL_RE.match(n) and n != "le"
            for n in label_names
        ):
            problems.append(f"{name}: invalid label_names {label_names!r}")
            label_names = []
        bounds = entry.get("bounds")
        if kind == "histogram":
            if (
                not isinstance(bounds, list)
                or not bounds
                or not all(isinstance(b, (int, float)) for b in bounds)
                or any(b <= a for a, b in zip(bounds, bounds[1:]))
            ):
                problems.append(
                    f"{name}: histogram bounds must be a strictly "
                    "increasing number list"
                )
                continue
        elif bounds is not None:
            problems.append(f"{name}: only histograms carry bounds")
        samples = entry.get("samples")
        if not isinstance(samples, list):
            problems.append(f"{name}: missing samples list")
            continue
        for j, sample in enumerate(samples):
            swhere = f"{name}.samples[{j}]"
            if not isinstance(sample, dict) or not isinstance(
                sample.get("labels"), dict
            ):
                problems.append(f"{swhere}: must be an object with labels")
                continue
            if sorted(sample["labels"]) != sorted(label_names):
                problems.append(
                    f"{swhere}: labels {sorted(sample['labels'])} != "
                    f"declared {sorted(label_names)}"
                )
            if kind == "histogram":
                buckets = sample.get("buckets")
                count = sample.get("count")
                if not isinstance(buckets, dict) or not isinstance(count, int):
                    problems.append(f"{swhere}: missing buckets/count")
                    continue
                expected = [_format_value(float(b)) for b in entry["bounds"]]
                if sorted(buckets) != sorted(expected):
                    problems.append(
                        f"{swhere}: bucket keys do not match bounds"
                    )
                elif sum(buckets.values()) > count:
                    problems.append(
                        f"{swhere}: bucketed observations exceed count"
                    )
                if not isinstance(sample.get("sum"), (int, float)):
                    problems.append(f"{swhere}: missing sum")
            elif not isinstance(sample.get("value"), (int, float)):
                problems.append(f"{swhere}: missing numeric value")
    return problems


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)


def _parse_sample_value(raw: str) -> Optional[float]:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    try:
        return float(raw)
    except ValueError:
        return None


def parse_prometheus_text(
    text: str,
) -> Tuple[Dict[str, Dict[str, Any]], List[str]]:
    """Parse an exposition document into families; returns (families, problems).

    Families map name → ``{"type", "help", "samples"}`` where samples map
    a rendered label string to the float value.  Used by
    :func:`validate_prometheus_text` and the export round-trip test.
    """
    families: Dict[str, Dict[str, Any]] = {}
    problems: List[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _NAME_RE.match(parts[2]):
                problems.append(f"line {lineno}: malformed {parts[1]} line")
                continue
            family = families.setdefault(
                parts[2], {"type": None, "help": None, "samples": {}}
            )
            key = "help" if parts[1] == "HELP" else "type"
            if family[key] is not None:
                problems.append(f"line {lineno}: duplicate {parts[1]} for {parts[2]}")
            family[key] = parts[3]
            if key == "type" and parts[3] not in ("counter", "gauge", "histogram"):
                problems.append(f"line {lineno}: unknown type {parts[3]!r}")
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = name[: -len(suffix)] if name.endswith(suffix) else None
            if stripped and families.get(stripped, {}).get("type") == "histogram":
                base = stripped
                break
        family = families.get(base)
        if family is None or family.get("type") is None:
            problems.append(f"line {lineno}: sample {name!r} precedes its # TYPE")
            continue
        labels = match.group("labels")
        for pair in labels.split(",") if labels else ():
            if not _LABEL_PAIR_RE.match(pair):
                problems.append(f"line {lineno}: malformed label {pair!r}")
        value = _parse_sample_value(match.group("value"))
        if value is None:
            problems.append(f"line {lineno}: non-numeric value")
            continue
        sample_key = f"{name}{{{labels}}}" if labels else name
        if sample_key in family["samples"]:
            problems.append(f"line {lineno}: duplicate sample {sample_key}")
        family["samples"][sample_key] = value
    return families, problems


def validate_prometheus_text(text: str) -> List[str]:
    """Grammar and invariant problems of an exposition document.

    Beyond line grammar (checked by the parser): every family has HELP
    and TYPE, histograms carry ``_count``/``_sum`` and a ``+Inf`` bucket
    per series, and cumulative bucket counts never decrease as ``le``
    grows.
    """
    families, problems = parse_prometheus_text(text)
    for name, family in sorted(families.items()):
        if family["type"] is None:
            problems.append(f"{name}: missing # TYPE")
            continue
        if family["help"] is None:
            problems.append(f"{name}: missing # HELP")
        if family["type"] != "histogram":
            continue
        series: Dict[str, Dict[float, float]] = {}
        counts: Dict[str, float] = {}
        for key, value in family["samples"].items():
            if key.startswith(f"{name}_bucket"):
                labels = key[len(f"{name}_bucket") :]
                le_match = re.search(r'le="([^"]*)"', labels)
                if le_match is None:
                    problems.append(f"{name}: bucket sample without le: {key}")
                    continue
                le = _parse_sample_value(le_match.group(1))
                if le is None:
                    problems.append(f"{name}: non-numeric le in {key}")
                    continue
                rest = re.sub(r',?le="[^"]*"', "", labels).strip("{},")
                series.setdefault(rest, {})[le] = value
            elif key.startswith(f"{name}_count"):
                rest = key[len(f"{name}_count") :].strip("{}")
                counts[rest] = value
        for rest, buckets in sorted(series.items()):
            if float("inf") not in buckets:
                problems.append(f"{name}{{{rest}}}: no +Inf bucket")
                continue
            ordered = sorted(buckets)
            values = [buckets[le] for le in ordered]
            if any(b < a for a, b in zip(values, values[1:])):
                problems.append(
                    f"{name}{{{rest}}}: bucket counts decrease with le"
                )
            if rest in counts and buckets[float("inf")] != counts[rest]:
                problems.append(
                    f"{name}{{{rest}}}: +Inf bucket != _count"
                )
    return problems
