"""Atomic run-health heartbeat: a small ``status.json`` for long runs.

The engine owns an optional :class:`Heartbeat`; when enabled it rewrites
one JSON file at a bounded cadence so a running fleet can be inspected
from *outside* the process (``watch cat status.json``, a dashboard, a
babysitter cron).  The write is atomic (temp file + ``os.replace``) so a
reader never sees a torn document, and throttled (:attr:`interval`
seconds between writes, forced on terminal transitions) so the file is
never the bottleneck.

The document answers the three questions a long run raises:

* **how far along?** — ``done`` / ``failed`` / ``in_flight`` / ``total``
  plus ``points_per_sec`` and an ``eta_seconds`` extrapolation;
* **is anyone wedged?** — per-worker ``last_progress`` timestamps with a
  ``stale`` flag once a worker exceeds its chunk deadline;
* **is it over?** — ``state`` (``running`` / ``done`` / ``interrupted``)
  and ``updated_at``.

Wall-clock time is injected (``clock=time.time``) rather than called
directly so the simulator's determinism lint stays silent and tests can
drive staleness with a fake clock.  Heartbeat output is *health*
telemetry, not results: nothing in it feeds back into stats, so runs
with and without a heartbeat remain digest-identical.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, List, Optional

#: Version of the status.json layout; readers reject unknown versions.
STATUS_SCHEMA_VERSION = 1

#: Seconds between heartbeat writes unless a transition forces one.
DEFAULT_INTERVAL = 2.0

_STATES = ("running", "done", "interrupted")


class Heartbeat:
    """Periodic atomic writer of a run-status document.

    ``clock`` defaults to :func:`time.time` as an injected callable; the
    engine never reads it back into results, only into this file.
    """

    def __init__(
        self,
        path: str,
        interval: float = DEFAULT_INTERVAL,
        clock: Callable[[], float] = time.time,
    ):
        self.path = str(path)
        self.interval = float(interval)
        self.clock = clock
        self.started_at = clock()
        self.total = 0
        self.done = 0
        self.failed = 0
        self.in_flight = 0
        self.state = "running"
        #: worker label -> {"last_progress": ts, "deadline": ts|None, "stale": bool}
        self.workers: Dict[str, Dict[str, Any]] = {}
        self._last_write = 0.0
        self.writes = 0

    # -- updates (engine-facing) ------------------------------------------

    def begin(self, total: int, in_flight: int = 0) -> None:
        self.total = int(total)
        self.in_flight = int(in_flight)
        self.write(force=True)

    def worker_started(self, worker: str, deadline: Optional[float] = None) -> None:
        """A chunk was handed to ``worker``; ``deadline`` is its timeout."""
        self.workers[str(worker)] = {
            "last_progress": self.clock(),
            "deadline": deadline,
            "stale": False,
        }

    def worker_progress(self, worker: str) -> None:
        entry = self.workers.get(str(worker))
        if entry is not None:
            entry["last_progress"] = self.clock()
            entry["stale"] = False

    def worker_finished(self, worker: str) -> None:
        self.workers.pop(str(worker), None)

    def stale_workers(self) -> List[str]:
        """Workers whose last progress predates their deadline (and flag them)."""
        now = self.clock()
        stale: List[str] = []
        for name in sorted(self.workers):
            entry = self.workers[name]
            deadline = entry.get("deadline")
            if deadline is not None and now > deadline:
                entry["stale"] = True
                stale.append(name)
        return stale

    def advance(self, done: int = 0, failed: int = 0) -> None:
        self.done += done
        self.failed += failed
        self.in_flight = max(0, self.in_flight - done - failed)
        self.write()

    def finish(self) -> None:
        self.state = "done"
        self.in_flight = 0
        self.write(force=True)

    def interrupt(self) -> None:
        """Terminal write after Ctrl-C/SIGTERM: the run ended early."""
        self.state = "interrupted"
        self.write(force=True)

    # -- document ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        now = self.clock()
        elapsed = max(now - self.started_at, 0.0)
        settled = self.done + self.failed
        rate = settled / elapsed if elapsed > 0 and settled else 0.0
        remaining = max(self.total - settled, 0)
        eta = remaining / rate if rate > 0 else None
        return {
            "schema": STATUS_SCHEMA_VERSION,
            "state": self.state,
            "started_at": self.started_at,
            "updated_at": now,
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "in_flight": self.in_flight,
            "points_per_sec": rate,
            "eta_seconds": eta,
            "workers": {
                name: dict(entry) for name, entry in sorted(self.workers.items())
            },
        }

    def write(self, force: bool = False) -> bool:
        """Atomically rewrite ``status.json`` if the interval elapsed."""
        now = self.clock()
        if not force and now - self._last_write < self.interval:
            return False
        self._last_write = now
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(self.snapshot(), handle, sort_keys=True, indent=2)
                handle.write("\n")
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.writes += 1
        return True


def validate_status(doc: Any) -> List[str]:
    """Structural problems of a status document (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["status document must be a JSON object"]
    if doc.get("schema") != STATUS_SCHEMA_VERSION:
        problems.append(
            f"schema {doc.get('schema')!r} != supported {STATUS_SCHEMA_VERSION}"
        )
    if doc.get("state") not in _STATES:
        problems.append(f"unknown state {doc.get('state')!r}")
    for field in ("started_at", "updated_at", "points_per_sec"):
        if not isinstance(doc.get(field), (int, float)):
            problems.append(f"missing numeric {field!r}")
    for field in ("total", "done", "failed", "in_flight"):
        value = doc.get(field)
        if not isinstance(value, int) or value < 0:
            problems.append(f"{field!r} must be a non-negative integer")
    eta = doc.get("eta_seconds")
    if eta is not None and not isinstance(eta, (int, float)):
        problems.append("eta_seconds must be a number or null")
    workers = doc.get("workers")
    if not isinstance(workers, dict):
        return problems + ["missing workers object"]
    for name, entry in sorted(workers.items()):
        if not isinstance(entry, dict):
            problems.append(f"worker {name!r}: must be an object")
            continue
        if not isinstance(entry.get("last_progress"), (int, float)):
            problems.append(f"worker {name!r}: missing last_progress")
        if not isinstance(entry.get("stale"), bool):
            problems.append(f"worker {name!r}: missing stale flag")
    return problems


def read_status(path: str) -> Dict[str, Any]:
    """Load and validate one status file; raises ``ValueError`` on problems."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    problems = validate_status(doc)
    if problems:
        raise ValueError(f"{path}: {problems[0]}")
    return doc
