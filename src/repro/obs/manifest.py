"""Engine run telemetry: the per-run JSONL manifest.

Every simulation point the :class:`~repro.experiments.engine
.ExperimentEngine` resolves appends one line describing *how* it was
resolved — memory hit, disk hit, fresh simulation, or in-parent retry —
with the point's content-address key, wall time, worker process id and a
digest of the resulting stats.  The manifest is what lets a batch run be
audited after the fact: which points actually simulated, where the wall
time went, whether two runs of the same point produced the same result
(compare digests), and which trace files belong to which point.

Lines are appended immediately (crash-robust) and are self-describing
JSON objects, so the file tails cleanly while a long batch runs::

    tail -f repro-traces/manifest.jsonl | python -m json.tool --json-lines
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union


def stats_digest(payload: Dict[str, Any]) -> str:
    """Short content digest of a serialized :class:`SimStats` payload.

    Two runs of the same point must produce the same digest (simulation
    determinism); a mismatch between a cached and a fresh run is the
    first sign of a nondeterminism regression.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class RunManifest:
    """Append-only JSONL sink for engine run records."""

    #: Resolution sources a record may carry.  ``compile`` marks a
    #: compiled-trace build (``trace:<app>`` records), the rest are
    #: simulation-point resolutions.
    SOURCES = ("memory", "disk", "sim", "retry", "compile")

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = Path(path)
        self.records_written = 0

    def record(
        self,
        point: str,
        key: str,
        source: str,
        digest: str,
        seconds: Optional[float] = None,
        worker: Optional[int] = None,
        trace: Optional[str] = None,
    ) -> None:
        """Append one resolution record."""
        if source not in self.SOURCES:
            raise ValueError(f"unknown manifest source {source!r}")
        entry: Dict[str, Any] = {
            "point": point,
            "key": key,
            "source": source,
            "digest": digest,
        }
        if seconds is not None:
            entry["seconds"] = round(seconds, 6)
        if worker is not None:
            entry["worker"] = worker
        if trace is not None:
            entry["trace"] = trace
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True, separators=(",", ":")))
            fh.write("\n")
        self.records_written += 1


def read_manifest(path: Union[str, os.PathLike]) -> list:
    """All records of a manifest file (for tests and tooling)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
