"""Engine run telemetry: the per-run JSONL manifest.

Every simulation point the :class:`~repro.experiments.engine
.ExperimentEngine` resolves appends one line describing *how* it was
resolved — memory hit, disk hit, fresh simulation, or in-parent retry —
with the point's content-address key, wall time, worker process id and a
digest of the resulting stats.  The manifest is what lets a batch run be
audited after the fact: which points actually simulated, where the wall
time went, whether two runs of the same point produced the same result
(compare digests), and which trace files belong to which point.

Records are schema-versioned (``"v"``): readers use
:func:`validate_manifest_record` to flag structurally broken lines and
reject records stamped with a version this reader does not understand,
while unstamped lines from pre-versioning runs pass as ``legacy``.
Besides point resolutions, a manifest may carry ``warning`` records —
structured run-health events (e.g. a worker exceeding its chunk
deadline) that would otherwise only surface as a hung ``join``.

Lines are appended immediately (crash-robust) and are self-describing
JSON objects, so the file tails cleanly while a long batch runs::

    tail -f repro-traces/manifest.jsonl | python -m json.tool --json-lines
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

#: Version stamped into every new record.  Bump when the record layout
#: changes incompatibly; :func:`validate_manifest_record` rejects records
#: stamped with an unknown version.
MANIFEST_SCHEMA_VERSION = 1


def stats_digest(payload: Dict[str, Any]) -> str:
    """Short content digest of a serialized :class:`SimStats` payload.

    Two runs of the same point must produce the same digest (simulation
    determinism); a mismatch between a cached and a fresh run is the
    first sign of a nondeterminism regression.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class RunManifest:
    """Append-only JSONL sink for engine run records."""

    #: Resolution sources a record may carry.  ``compile`` marks a
    #: compiled-trace build (``trace:<app>`` records), the rest are
    #: simulation-point resolutions.
    SOURCES = ("memory", "disk", "sim", "retry", "compile")

    #: Warning kinds a ``warning`` record may carry.  The first three are
    #: in-flight pool health; the rest are steps of the engine's
    #: degradation ladder (see ``docs/robustness.md``): a corrupted cache
    #: entry quarantined, a cache dir degraded to memory-only, the pool
    #: circuit breaker opening to serial execution, a run interrupted by
    #: signal, and a journaled point whose cached digest no longer
    #: matches on resume.
    WARNINGS = (
        "stale_worker",
        "chunk_timeout",
        "chunk_crash",
        "cache_quarantine",
        "cache_degraded",
        "circuit_open",
        "interrupted",
        "journal_mismatch",
    )

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = Path(path)
        self.records_written = 0

    def _append(self, entry: Dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True, separators=(",", ":")))
            fh.write("\n")
        self.records_written += 1

    def record(
        self,
        point: str,
        key: str,
        source: str,
        digest: str,
        seconds: Optional[float] = None,
        worker: Optional[int] = None,
        trace: Optional[str] = None,
    ) -> None:
        """Append one resolution record."""
        if source not in self.SOURCES:
            raise ValueError(f"unknown manifest source {source!r}")
        entry: Dict[str, Any] = {
            "v": MANIFEST_SCHEMA_VERSION,
            "point": point,
            "key": key,
            "source": source,
            "digest": digest,
        }
        if seconds is not None:
            entry["seconds"] = round(seconds, 6)
        if worker is not None:
            entry["worker"] = worker
        if trace is not None:
            entry["trace"] = trace
        self._append(entry)

    def warn(self, kind: str, detail: str, point: Optional[str] = None) -> None:
        """Append one structured run-health warning.

        Used by the engine when a worker's last-progress timestamp
        exceeds its chunk deadline — the wedge is recorded while the run
        is still in flight instead of staying silent until join.
        """
        if kind not in self.WARNINGS:
            raise ValueError(f"unknown manifest warning {kind!r}")
        entry: Dict[str, Any] = {
            "v": MANIFEST_SCHEMA_VERSION,
            "source": "warning",
            "kind": kind,
            "detail": detail,
        }
        if point is not None:
            entry["point"] = point
        self._append(entry)


def validate_manifest_record(record: Any) -> Tuple[str, List[str]]:
    """Classify one manifest record; returns ``(status, problems)``.

    ``status`` is ``"ok"`` (current schema), ``"legacy"`` (no version
    stamp — written before versioning, structurally checked but flagged),
    or ``"error"``.  Records stamped with an unknown version are errors:
    this reader cannot interpret them.
    """
    if not isinstance(record, dict):
        return "error", ["record must be a JSON object"]
    problems: List[str] = []
    version = record.get("v")
    if version is None:
        status = "legacy"
    elif version == MANIFEST_SCHEMA_VERSION:
        status = "ok"
    else:
        return "error", [
            f"unknown manifest schema version {version!r} "
            f"(supported: {MANIFEST_SCHEMA_VERSION})"
        ]
    source = record.get("source")
    if source == "warning":
        if record.get("kind") not in RunManifest.WARNINGS:
            problems.append(f"unknown warning kind {record.get('kind')!r}")
        if not isinstance(record.get("detail"), str):
            problems.append("warning record missing detail")
    elif source in RunManifest.SOURCES:
        for field in ("point", "key", "digest"):
            if not isinstance(record.get(field), str) or not record[field]:
                problems.append(f"missing or empty {field!r}")
        for field in ("seconds",):
            if field in record and not isinstance(record[field], (int, float)):
                problems.append(f"non-numeric {field!r}")
        for field in ("worker",):
            if field in record and not isinstance(record[field], int):
                problems.append(f"non-integer {field!r}")
    else:
        problems.append(f"unknown manifest source {source!r}")
    return ("error" if problems else status), problems


def validate_manifest(path: Union[str, os.PathLike]) -> Tuple[Dict[str, int], List[str]]:
    """Validate a whole manifest file; returns ``(counts, problems)``.

    ``counts`` tallies record statuses (``ok`` / ``legacy`` / ``error``);
    ``problems`` carries one line-prefixed message per finding.
    """
    counts = {"ok": 0, "legacy": 0, "error": 0}
    problems: List[str] = []
    for lineno, record in enumerate(_iter_lines(path), start=1):
        if isinstance(record, str):
            counts["error"] += 1
            problems.append(f"line {lineno}: {record}")
            continue
        status, record_problems = validate_manifest_record(record)
        counts[status] += 1
        for problem in record_problems:
            problems.append(f"line {lineno}: {problem}")
    return counts, problems


def _iter_lines(path: Union[str, os.PathLike]):
    """Parsed records, or an error string for unparseable lines."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError as exc:
                yield f"unparseable JSON ({exc})"


def read_manifest(path: Union[str, os.PathLike]) -> list:
    """All records of a manifest file (for tests and tooling)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
