"""The stall-attribution taxonomy.

Top-down accounting of scheduler issue slots (Accel-Sim-correlation
style): every ``(cycle, sub-core, slot)`` of a run lands in exactly one
bucket, so the buckets of one sub-core always sum to
``cycles × issue_width`` — a conservation law the runtime sanitizer
enforces (see :mod:`repro.analysis.invariants`).

Buckets, in severity order from "doing work" to "nothing to do":

``issued``
    The slot issued a warp instruction.
``no_ready_warp``
    Ready warps exist but none was issuable in this slot (every ready
    warp already issued this cycle, or its register state is mid-flight
    between sub-cores after a migration).
``scoreboard``
    All resident runnable warps are blocked on a RAW/WAW hazard —
    outstanding writebacks, typically memory latency.
``no_free_cu``
    A warp was selected but no collector unit (or execution port) could
    accept it, and the operand collector shows no conflict backlog.
``bank_conflict``
    A warp was selected but every collector unit is occupied by an
    instruction still waiting on register-bank reads that lost
    arbitration in an earlier cycle — the Fig. 11 stall class.
``barrier``
    Every runnable warp is parked at its CTA barrier.
``drain``
    All resident warps have issued EXIT; the sub-core is waiting for the
    CTA's siblings so resources can be released.
``idle``
    No warps are resident on the sub-core (partitioning-induced idleness
    while sibling sub-cores work, or the SM itself has no CTA).

This module is deliberately import-free of the core model so both the
core (:mod:`repro.core.subcore`) and the renderers (:mod:`repro.viz`,
:mod:`repro.metrics.profile_report`) can depend on it without cycles.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

ISSUED = "issued"
NO_READY_WARP = "no_ready_warp"
SCOREBOARD = "scoreboard"
NO_FREE_CU = "no_free_cu"
BANK_CONFLICT = "bank_conflict"
BARRIER = "barrier"
DRAIN = "drain"
IDLE = "idle"

#: Every bucket, in the canonical top-down rendering order.
STALL_BUCKETS = (
    ISSUED,
    NO_READY_WARP,
    SCOREBOARD,
    NO_FREE_CU,
    BANK_CONFLICT,
    BARRIER,
    DRAIN,
    IDLE,
)


def empty_buckets() -> Dict[str, int]:
    """A zeroed bucket dict in canonical (insertion) order."""
    return {bucket: 0 for bucket in STALL_BUCKETS}


def merge_buckets(per_subcore: Sequence[Mapping[str, int]]) -> Dict[str, int]:
    """Sum per-sub-core bucket dicts into one SM-level dict."""
    total = empty_buckets()
    for buckets in per_subcore:
        for bucket in STALL_BUCKETS:
            total[bucket] += buckets.get(bucket, 0)
    return total
