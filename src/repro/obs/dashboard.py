"""The unified run dashboard: one static HTML file, no dependencies.

``python -m repro.obs --dashboard`` merges whatever run artifacts exist
into a single report that answers *what ran, how fast, where did the
cycles go, and is it getting faster*:

* **run manifests** (``manifest.jsonl``) — points by resolution source,
  simulation wall time, structured warnings, digest-mismatch detection
  (the first sign of a nondeterminism regression);
* **bench reports** (``BENCH_*.json``) — the committed performance
  trajectory via :mod:`repro.bench.history`, plus stacked
  stall-attribution bars from the newest report carrying stage shares;
* **metrics exports** (``metrics.json``) — the run's counter/gauge/
  histogram series;
* **status files** (``status.json``) — the last heartbeat of a live run.

Inputs are classified by shape (:func:`classify_input`), validated with
the same validators CI gates on, and rendering is pure — the same inputs
always produce byte-identical HTML (no timestamps), so the dashboard can
be diffed and cached like any other build artifact.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .heartbeat import validate_status
from .journal import validate_journal_record
from .manifest import validate_manifest_record
from .metrics import validate_metrics_json
from .stall import STALL_BUCKETS

#: Categorical palette, one slot per stall bucket in STALL_BUCKETS order.
#: Fixed assignment (never cycled); light/dark pairs are the validated
#: 8-slot reference palette.
_SERIES = (
    ("#2a78d6", "#3987e5"),
    ("#eb6834", "#d95926"),
    ("#1baf7a", "#199e70"),
    ("#eda100", "#c98500"),
    ("#e87ba4", "#d55181"),
    ("#008300", "#008300"),
    ("#4a3aa7", "#9085e9"),
    ("#e34948", "#e66767"),
)


def classify_input(path: Union[str, Path]) -> Tuple[str, Any]:
    """Classify one artifact by shape; returns ``(kind, payload)``.

    Kinds: ``manifest`` (JSONL of run records), ``journal`` (JSONL run
    journal — key/digest checkpoints without a ``source``), ``events``
    (JSONL event stream), ``bench`` (a BENCH report), ``metrics`` (a
    metrics JSON export), ``status`` (a heartbeat document), ``trace``
    (Chrome-trace JSON), ``error`` (unreadable; payload is the message).
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return "error", f"{path}: unreadable: {exc}"
    if path.suffix == ".jsonl":
        records = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError as exc:
                return "error", f"{path}: line {lineno}: {exc}"
        first = records[0] if records else {}
        if isinstance(first, dict) and "e" in first and "t" in first:
            return "events", records
        if (
            isinstance(first, dict)
            and "key" in first
            and "digest" in first
            and "source" not in first
        ):
            return "journal", records
        return "manifest", records
    try:
        doc = json.loads(text)
    except ValueError as exc:
        return "error", f"{path}: {exc}"
    if isinstance(doc, dict):
        if "traceEvents" in doc:
            return "trace", doc
        if "metrics" in doc and "schema" in doc:
            return "metrics", doc
        if "state" in doc and "schema" in doc:
            return "status", doc
        if "suite" in doc and "points" in doc:
            return "bench", doc
    return "error", f"{path}: unrecognized artifact shape"


def collect_inputs(paths: Sequence[Union[str, Path]]) -> Dict[str, Any]:
    """Classify and validate every input; returns the dashboard model."""
    model: Dict[str, Any] = {
        "manifests": [],   # (path, records)
        "journals": [],    # (path, records)
        "bench": [],       # (path, report)
        "metrics": [],     # (path, doc)
        "status": [],      # (path, doc)
        "skipped": [],     # (path, kind)
        "problems": [],    # strings
    }
    for raw in paths:
        kind, payload = classify_input(raw)
        name = str(raw)
        if kind == "error":
            model["problems"].append(str(payload))
        elif kind == "manifest":
            for i, record in enumerate(payload, start=1):
                status, problems = validate_manifest_record(record)
                if status == "error":
                    model["problems"].append(
                        f"{name}: record {i}: "
                        + (problems[0] if problems else "invalid")
                    )
            model["manifests"].append((name, payload))
        elif kind == "journal":
            for i, record in enumerate(payload, start=1):
                problems = validate_journal_record(record)
                if problems:
                    model["problems"].append(f"{name}: record {i}: {problems[0]}")
            model["journals"].append((name, payload))
        elif kind == "bench":
            from ..bench.schema import validate_report

            problems = validate_report(payload)
            if problems:
                model["problems"].append(f"{name}: {problems[0]}")
            else:
                model["bench"].append((name, payload))
        elif kind == "metrics":
            problems = validate_metrics_json(payload)
            if problems:
                model["problems"].append(f"{name}: {problems[0]}")
            else:
                model["metrics"].append((name, payload))
        elif kind == "status":
            problems = validate_status(payload)
            if problems:
                model["problems"].append(f"{name}: {problems[0]}")
            else:
                model["status"].append((name, payload))
        else:
            model["skipped"].append((name, kind))
    return model


def manifest_summary(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Counts, wall time, warnings and digest mismatches of one manifest."""
    by_source: Dict[str, int] = {}
    seconds = 0.0
    warnings: List[Dict[str, Any]] = []
    digests: Dict[str, set] = {}
    for record in records:
        source = record.get("source", "?")
        by_source[source] = by_source.get(source, 0) + 1
        if source == "warning":
            warnings.append(record)
            continue
        if isinstance(record.get("seconds"), (int, float)):
            seconds += record["seconds"]
        key = record.get("key")
        digest = record.get("digest")
        if isinstance(key, str) and isinstance(digest, str):
            digests.setdefault(key, set()).add(digest)
    mismatched = sorted(k for k, seen in digests.items() if len(seen) > 1)
    return {
        "records": len(records),
        "by_source": by_source,
        "sim_seconds": seconds,
        "warnings": warnings,
        "digest_mismatches": mismatched,
    }


# -- HTML rendering -----------------------------------------------------------

_CSS = """
:root { color-scheme: light dark; }
.viz-root {
  color-scheme: light;
  --page:          #f9f9f7;
  --surface-1:     #fcfcfb;
  --text-primary:  #0b0b0b;
  --text-secondary:#52514e;
  --text-muted:    #898781;
  --gridline:      #e1e0d9;
  --border:        rgba(11,11,11,0.10);
  --good:          #006300;
  --critical:      #d03b3b;
__LIGHT_SERIES__
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page:          #0d0d0d;
    --surface-1:     #1a1a19;
    --text-primary:  #ffffff;
    --text-secondary:#c3c2b7;
    --text-muted:    #898781;
    --gridline:      #2c2c2a;
    --border:        rgba(255,255,255,0.10);
    --good:          #0ca30c;
    --critical:      #d03b3b;
__DARK_SERIES__
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page:          #0d0d0d;
  --surface-1:     #1a1a19;
  --text-primary:  #ffffff;
  --text-secondary:#c3c2b7;
  --text-muted:    #898781;
  --gridline:      #2c2c2a;
  --border:        rgba(255,255,255,0.10);
  --good:          #0ca30c;
  --critical:      #d03b3b;
__DARK_SERIES__
}
.viz-root h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
.viz-root h2 {
  font-size: 14px; font-weight: 600; margin: 28px 0 10px;
  color: var(--text-primary);
}
.viz-root .subtitle { color: var(--text-secondary); font-size: 13px; margin: 0 0 20px; }
.viz-root section {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 16px 20px;
  margin-bottom: 16px;
}
.viz-root .tiles { display: flex; flex-wrap: wrap; gap: 24px; }
.viz-root .tile .label { font-size: 12px; color: var(--text-secondary); }
.viz-root .tile .value { font-size: 24px; font-weight: 600; }
.viz-root .tile .value.bad { color: var(--critical); }
.viz-root table { border-collapse: collapse; font-size: 13px; width: 100%; }
.viz-root th {
  text-align: left; font-weight: 600; color: var(--text-secondary);
  border-bottom: 1px solid var(--gridline); padding: 4px 12px 4px 0;
}
.viz-root td {
  padding: 4px 12px 4px 0; border-bottom: 1px solid var(--gridline);
  color: var(--text-primary);
}
.viz-root td.num, .viz-root th.num {
  text-align: right; font-variant-numeric: tabular-nums;
}
.viz-root td.good { color: var(--good); }
.viz-root td.bad { color: var(--critical); }
.viz-root .bar-row { display: flex; align-items: center; margin: 6px 0; }
.viz-root .bar-label {
  width: 180px; flex: none; font-size: 12px; color: var(--text-secondary);
  overflow: hidden; text-overflow: ellipsis; white-space: nowrap;
}
.viz-root .bar {
  display: flex; gap: 2px; height: 16px; flex: 1; min-width: 0;
}
.viz-root .bar .seg { border-radius: 0; }
.viz-root .bar .seg:last-child { border-radius: 0 4px 4px 0; }
.viz-root .legend {
  display: flex; flex-wrap: wrap; gap: 14px; margin-top: 12px;
  font-size: 12px; color: var(--text-secondary);
}
.viz-root .legend .key { display: flex; align-items: center; gap: 5px; }
.viz-root .legend .swatch {
  width: 10px; height: 10px; border-radius: 2px; display: inline-block;
}
.viz-root .problem { color: var(--critical); font-size: 13px; margin: 3px 0; }
.viz-root .muted { color: var(--text-muted); font-size: 12px; }
"""


def _css() -> str:
    light = "\n".join(
        f"  --series-{i + 1}: {pair[0]};" for i, pair in enumerate(_SERIES)
    )
    dark = "\n".join(
        f"    --series-{i + 1}: {pair[1]};" for i, pair in enumerate(_SERIES)
    )
    return _CSS.replace("__LIGHT_SERIES__", light).replace("__DARK_SERIES__", dark)


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _tile(label: str, value: str, bad: bool = False) -> str:
    cls = "value bad" if bad else "value"
    return (
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="{cls}">{_esc(value)}</div></div>'
    )


def _render_manifests(model: Dict[str, Any]) -> List[str]:
    out: List[str] = []
    for name, records in model["manifests"]:
        info = manifest_summary(records)
        out.append("<section>")
        out.append(f"<h2>run manifest — {_esc(Path(name).name)}</h2>")
        out.append('<div class="tiles">')
        out.append(_tile("records", str(info["records"])))
        for source in ("memory", "disk", "sim", "retry", "compile"):
            if info["by_source"].get(source):
                out.append(_tile(source, str(info["by_source"][source])))
        out.append(_tile("sim wall time", f"{info['sim_seconds']:.2f}s"))
        out.append(
            _tile(
                "digest mismatches",
                str(len(info["digest_mismatches"])),
                bad=bool(info["digest_mismatches"]),
            )
        )
        out.append(
            _tile(
                "warnings",
                str(len(info["warnings"])),
                bad=bool(info["warnings"]),
            )
        )
        out.append("</div>")
        for key in info["digest_mismatches"]:
            out.append(
                f'<p class="problem">digest mismatch for key '
                f"{_esc(key[:16])}… — nondeterminism suspect</p>"
            )
        for warning in info["warnings"]:
            out.append(
                f'<p class="problem">warning [{_esc(warning.get("kind", "?"))}] '
                f"{_esc(warning.get('detail', ''))}</p>"
            )
        out.append("</section>")
    return out


def _render_stall_bars(model: Dict[str, Any]) -> List[str]:
    staged = [
        (name, report)
        for name, report in model["bench"]
        if any(p.get("stall_shares") for p in report["points"])
    ]
    if not staged:
        return []
    # Newest report in history order: the last one after the same sort
    # the trajectory uses.
    from ..bench.history import _order_key

    name, report = sorted(staged, key=lambda item: _order_key(item[0]))[-1]
    out = ["<section>"]
    out.append(
        f"<h2>where the issue slots went — {_esc(Path(name).name)}</h2>"
    )
    for point in report["points"]:
        shares = point.get("stall_shares")
        if not shares:
            continue
        out.append('<div class="bar-row">')
        out.append(f'<div class="bar-label">{_esc(point["name"])}</div>')
        out.append('<div class="bar">')
        for i, bucket in enumerate(STALL_BUCKETS):
            share = float(shares.get(bucket, 0.0))
            if share <= 0:
                continue
            out.append(
                f'<div class="seg" style="width:{share * 100:.2f}%;'
                f"background:var(--series-{i + 1})\" "
                f'title="{_esc(bucket)}: {share:.1%}"></div>'
            )
        out.append("</div></div>")
    out.append('<div class="legend">')
    for i, bucket in enumerate(STALL_BUCKETS):
        out.append(
            f'<span class="key"><span class="swatch" '
            f'style="background:var(--series-{i + 1})"></span>'
            f"{_esc(bucket)}</span>"
        )
    out.append("</div>")
    out.append("</section>")
    return out


def _render_trajectory(model: Dict[str, Any]) -> List[str]:
    if not model["bench"]:
        return []
    from ..bench.history import load_history

    rows, problems = load_history([name for name, _ in model["bench"]])
    out = ["<section>", "<h2>performance trajectory</h2>"]
    for problem in problems:
        out.append(f'<p class="problem">{_esc(problem)}</p>')
    out.append("<table>")
    out.append(
        "<tr><th>report</th><th>suite</th><th>sim</th>"
        '<th class="num">points</th><th class="num">norm cycles/s</th>'
        '<th class="num">vs prev</th></tr>'
    )
    for row in rows:
        ratio = row["ratio"]
        if ratio is None:
            vs, cls = "—", "num"
        else:
            vs = f"{ratio:.2f}×"
            cls = "num good" if ratio >= 1.0 else "num bad"
        out.append(
            f"<tr><td>{_esc(row['name'])}</td><td>{_esc(row['suite'])}</td>"
            f"<td>{_esc(row['sim_version'])}</td>"
            f'<td class="num">{row["points"]}</td>'
            f'<td class="num">{row["normalized_cycles_per_sec"]:.5g}</td>'
            f'<td class="{cls}">{_esc(vs)}</td></tr>'
        )
    out.append("</table>")
    out.append("</section>")
    return out


def _render_journals(model: Dict[str, Any]) -> List[str]:
    out: List[str] = []
    for name, records in model["journals"]:
        keys = set()
        for record in records:
            key = record.get("key")
            if isinstance(key, str):
                keys.add(key)
        out.append("<section>")
        out.append(f"<h2>run journal — {_esc(Path(name).name)}</h2>")
        out.append('<div class="tiles">')
        out.append(_tile("checkpointed points", str(len(keys))))
        out.append(_tile("journal records", str(len(records))))
        out.append("</div>")
        out.append(
            '<p class="muted">points already earned by this run; '
            "<code>python -m repro --resume</code> re-simulates only the "
            "rest</p>"
        )
        out.append("</section>")
    return out


def _render_status(model: Dict[str, Any]) -> List[str]:
    out: List[str] = []
    for name, doc in model["status"]:
        stale = sorted(
            worker
            for worker, entry in doc["workers"].items()
            if entry.get("stale")
        )
        out.append("<section>")
        out.append(f"<h2>run health — {_esc(Path(name).name)}</h2>")
        out.append('<div class="tiles">')
        out.append(
            _tile(
                "state",
                doc["state"],
                bad=bool(stale) or doc["state"] == "interrupted",
            )
        )
        out.append(_tile("done", f"{doc['done']}/{doc['total']}"))
        out.append(_tile("failed", str(doc["failed"]), bad=doc["failed"] > 0))
        out.append(_tile("in flight", str(doc["in_flight"])))
        if doc.get("points_per_sec"):
            out.append(
                _tile("points/sec", f"{doc['points_per_sec']:.2f}")
            )
        eta = doc.get("eta_seconds")
        if eta is not None:
            out.append(_tile("ETA", f"{eta:.0f}s"))
        out.append(
            _tile("stale workers", str(len(stale)), bad=bool(stale))
        )
        out.append("</div>")
        for worker in stale:
            out.append(
                f'<p class="problem">worker {_esc(worker)} exceeded its '
                "chunk deadline without progress</p>"
            )
        out.append("</section>")
    return out


def _render_metrics(model: Dict[str, Any]) -> List[str]:
    out: List[str] = []
    for name, doc in model["metrics"]:
        out.append("<section>")
        out.append(f"<h2>metrics — {_esc(Path(name).name)}</h2>")
        out.append("<table>")
        out.append(
            "<tr><th>metric</th><th>type</th><th>labels</th>"
            '<th class="num">value</th></tr>'
        )
        for entry in doc["metrics"]:
            for sample in entry["samples"]:
                labels = ", ".join(
                    f"{k}={v}" for k, v in sorted(sample["labels"].items())
                )
                if entry["type"] == "histogram":
                    value = (
                        f"n={sample['count']}, sum={sample['sum']:.4g}"
                    )
                else:
                    value = f"{sample['value']:.6g}"
                out.append(
                    f"<tr><td>{_esc(entry['name'])}</td>"
                    f"<td>{_esc(entry['type'])}</td>"
                    f"<td>{_esc(labels) or '—'}</td>"
                    f'<td class="num">{_esc(value)}</td></tr>'
                )
        out.append("</table>")
        out.append("</section>")
    return out


def render_dashboard(model: Dict[str, Any]) -> str:
    """The full HTML document for one collected input model."""
    body: List[str] = []
    body.append("<h1>repro run telemetry</h1>")
    counted = (
        f"{len(model['manifests'])} manifest(s), "
        f"{len(model['journals'])} journal(s), "
        f"{len(model['bench'])} bench report(s), "
        f"{len(model['metrics'])} metrics export(s), "
        f"{len(model['status'])} status file(s)"
    )
    body.append(f'<p class="subtitle">{_esc(counted)}</p>')
    if model["problems"]:
        body.append("<section>")
        body.append("<h2>input problems</h2>")
        for problem in model["problems"]:
            body.append(f'<p class="problem">{_esc(problem)}</p>')
        body.append("</section>")
    body.extend(_render_status(model))
    body.extend(_render_manifests(model))
    body.extend(_render_journals(model))
    body.extend(_render_stall_bars(model))
    body.extend(_render_trajectory(model))
    body.extend(_render_metrics(model))
    if model["skipped"]:
        names = ", ".join(f"{n} ({k})" for n, k in model["skipped"])
        body.append(
            f'<p class="muted">not rendered (trace/event artifacts): '
            f"{_esc(names)}</p>"
        )
    if len(body) == 2:
        body.append('<p class="muted">no inputs recognized</p>')
    joined = "\n".join(body)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        "<title>repro run telemetry</title>\n"
        f"<style>{_css()}</style>\n"
        "</head>\n"
        f'<body class="viz-root">\n{joined}\n</body>\n</html>\n'
    )


def build_dashboard(
    paths: Sequence[Union[str, Path]],
    out: Union[str, Path],
) -> Dict[str, Any]:
    """Collect inputs, render, write; returns the model (for callers/tests)."""
    model = collect_inputs(paths)
    document = render_dashboard(model)
    out = Path(out)
    if out.parent != Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(document, encoding="utf-8")
    return model
