"""The cycle-level event tracer.

A :class:`Tracer` is an append-only event sink the core model emits into
through ``if self.tracer is not None`` guards — when no tracer is
attached the hooks cost a single attribute test, and an untraced run's
stats are byte-identical to seed behaviour (a regression test pins
this).

Events are flat dicts (schema in :mod:`repro.obs.events`), ordered by
emission, which simulation determinism makes reproducible: the same
``(workload, config, num_sms)`` produces a byte-identical event stream
in every process and under every ``PYTHONHASHSEED``.

``max_cycles`` bounds trace size for long runs (the CLI's
``--trace-cycles``): events at later cycles are counted in ``dropped``
instead of stored.  Stall-attribution *counters* are not affected — the
cap only limits the event stream.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from . import events as ev


class Tracer:
    """Collects model events for Chrome-trace / JSONL export."""

    def __init__(self, max_cycles: Optional[int] = None):
        if max_cycles is not None and max_cycles < 1:
            raise ValueError("max_cycles must be >= 1")
        self.max_cycles = max_cycles
        self.events: List[Dict[str, Any]] = []
        #: Events suppressed by the ``max_cycles`` cap.
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    def active(self, cycle: int) -> bool:
        """Whether events at ``cycle`` are still being recorded."""
        return self.max_cycles is None or cycle < self.max_cycles

    def _emit(self, event: Dict[str, Any]) -> None:
        if self.active(event["t"]):
            self.events.append(event)
        else:
            self.dropped += 1

    # -- warp lifecycle ----------------------------------------------------

    def warp_issue(
        self,
        cycle: int,
        sm: int,
        sc: int,
        warp: int,
        opcode: str,
        pc: int,
        policy: str,
        greedy: bool,
    ) -> None:
        self._emit(
            {
                "t": cycle,
                "e": ev.WARP_ISSUE,
                "sm": sm,
                "sc": sc,
                "w": warp,
                "op": opcode,
                "pc": pc,
                "pol": policy,
                "greedy": int(greedy),
            }
        )

    def warp_stall(
        self, cycle: int, sm: int, sc: int, why: str, slots: int, dur: int = 1
    ) -> None:
        self._emit(
            {
                "t": cycle,
                "e": ev.WARP_STALL,
                "sm": sm,
                "sc": sc,
                "why": why,
                "slots": slots,
                "dur": dur,
            }
        )

    def warp_barrier(self, cycle: int, sm: int, sc: int, warp: int) -> None:
        self._emit(
            {"t": cycle, "e": ev.WARP_BARRIER, "sm": sm, "sc": sc, "w": warp}
        )

    def warp_exit(self, cycle: int, sm: int, sc: int, warp: int) -> None:
        self._emit({"t": cycle, "e": ev.WARP_EXIT, "sm": sm, "sc": sc, "w": warp})

    def warp_migrate(
        self, cycle: int, sm: int, to_sc: int, warp: int, from_sc: int
    ) -> None:
        self._emit(
            {
                "t": cycle,
                "e": ev.WARP_MIGRATE,
                "sm": sm,
                "sc": to_sc,
                "w": warp,
                "from": from_sc,
            }
        )

    # -- CTA lifecycle -----------------------------------------------------

    def cta_launch(self, cycle: int, sm: int, cta: int, num_warps: int) -> None:
        self._emit(
            {"t": cycle, "e": ev.CTA_LAUNCH, "sm": sm, "cta": cta, "n": num_warps}
        )

    def cta_retire(self, cycle: int, sm: int, cta: int, latency: int) -> None:
        self._emit(
            {
                "t": cycle,
                "e": ev.CTA_RETIRE,
                "sm": sm,
                "cta": cta,
                "dur": max(1, latency),
            }
        )

    # -- operand collector -------------------------------------------------

    def cu_span(
        self,
        start_cycle: int,
        sm: int,
        sc: int,
        cu: int,
        warp: int,
        opcode: str,
        dur: int,
    ) -> None:
        self._emit(
            {
                "t": start_cycle,
                "e": ev.CU_SPAN,
                "sm": sm,
                "sc": sc,
                "cu": cu,
                "w": warp,
                "op": opcode,
                "dur": max(1, dur),
            }
        )

    def bank_conflict(self, cycle: int, sm: int, sc: int, waiting: int) -> None:
        self._emit(
            {"t": cycle, "e": ev.BANK_CONFLICT, "sm": sm, "sc": sc, "n": waiting}
        )

    # -- memory ------------------------------------------------------------

    def mem_access(
        self,
        cycle: int,
        sm: int,
        kind: str,
        dur: int,
        l1_hits: Optional[int] = None,
        l1_misses: Optional[int] = None,
    ) -> None:
        event: Dict[str, Any] = {
            "t": cycle,
            "e": ev.MEM_ACCESS,
            "sm": sm,
            "kind": kind,
            "dur": max(1, dur),
        }
        if l1_hits is not None:
            event["h"] = l1_hits
        if l1_misses is not None:
            event["m"] = l1_misses
        self._emit(event)
