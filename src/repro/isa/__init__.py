"""Simplified SASS-like instruction set used by warp traces."""

from .instruction import Instruction, MemRef, bar, exit_, fadd, ffma, iadd, ldg, stg
from .opcodes import MAX_SRC_OPERANDS, FuncUnit, Opcode, OpcodeInfo

__all__ = [
    "Instruction",
    "MemRef",
    "FuncUnit",
    "Opcode",
    "OpcodeInfo",
    "MAX_SRC_OPERANDS",
    "bar",
    "exit_",
    "fadd",
    "ffma",
    "iadd",
    "ldg",
    "stg",
]
