"""Opcode definitions for the simulator's simplified SASS-like ISA.

Every opcode belongs to a functional-unit class (:class:`FuncUnit`), which
determines the execution pipeline it dispatches to, and carries a
``latency`` (cycles from dispatch to writeback) and ``initiation_interval``
(cycles the pipeline's issue port stays busy per instruction).  Latencies
follow the Volta microbenchmarking literature (Jia et al. 2018) at the
granularity the simulator needs: dependent-issue latency, not full pipeline
depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class FuncUnit(Enum):
    """Functional-unit classes found in a Volta sub-core."""

    FP32 = "fp32"
    INT = "int"
    SFU = "sfu"
    TENSOR = "tensor"
    LDST = "ldst"
    BRANCH = "branch"
    SYNC = "sync"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of one opcode."""

    name: str
    unit: FuncUnit
    latency: int
    initiation_interval: int = 1
    is_memory: bool = False
    is_barrier: bool = False
    is_exit: bool = False


class Opcode(Enum):
    """The simulator ISA.

    The value of each member is its :class:`OpcodeInfo`.  Warp traces are
    sequences of :class:`~repro.isa.instruction.Instruction` objects over
    these opcodes.
    """

    # arithmetic
    FADD = OpcodeInfo("FADD", FuncUnit.FP32, 4)
    FMUL = OpcodeInfo("FMUL", FuncUnit.FP32, 4)
    FFMA = OpcodeInfo("FFMA", FuncUnit.FP32, 4)
    IADD = OpcodeInfo("IADD", FuncUnit.INT, 4)
    IMAD = OpcodeInfo("IMAD", FuncUnit.INT, 5)
    ISETP = OpcodeInfo("ISETP", FuncUnit.INT, 5)
    LOP3 = OpcodeInfo("LOP3", FuncUnit.INT, 4)
    SHF = OpcodeInfo("SHF", FuncUnit.INT, 4)
    # transcendental — throughput comes from the SFU's narrow lane count
    # (ceil(32/lanes) in the pipeline model), not the opcode interval.
    MUFU = OpcodeInfo("MUFU", FuncUnit.SFU, 16)
    # tensor core — same: an 8-lane tensor unit yields a 4-cycle interval.
    HMMA = OpcodeInfo("HMMA", FuncUnit.TENSOR, 16)
    # memory
    LDG = OpcodeInfo("LDG", FuncUnit.LDST, 0, is_memory=True)
    STG = OpcodeInfo("STG", FuncUnit.LDST, 0, is_memory=True)
    LDS = OpcodeInfo("LDS", FuncUnit.LDST, 24, is_memory=True)
    STS = OpcodeInfo("STS", FuncUnit.LDST, 24, is_memory=True)
    # control
    BRA = OpcodeInfo("BRA", FuncUnit.BRANCH, 2)
    BAR = OpcodeInfo("BAR", FuncUnit.SYNC, 1, is_barrier=True)
    EXIT = OpcodeInfo("EXIT", FuncUnit.SYNC, 1, is_exit=True)
    NOP = OpcodeInfo("NOP", FuncUnit.INT, 1)

    @property
    def info(self) -> OpcodeInfo:
        return self.value

    @property
    def unit(self) -> FuncUnit:
        return self.value.unit

    @property
    def latency(self) -> int:
        return self.value.latency

    @property
    def initiation_interval(self) -> int:
        return self.value.initiation_interval

    @property
    def is_memory(self) -> bool:
        return self.value.is_memory

    @property
    def is_barrier(self) -> bool:
        return self.value.is_barrier

    @property
    def is_exit(self) -> bool:
        return self.value.is_exit

    @property
    def is_global_memory(self) -> bool:
        return self in (Opcode.LDG, Opcode.STG)

    @property
    def is_shared_memory(self) -> bool:
        return self in (Opcode.LDS, Opcode.STS)


#: Maximum source operands any instruction may carry (FFMA/IMAD/HMMA take 3).
MAX_SRC_OPERANDS = 3
