"""Compiler register-allocation model.

The paper runs Accel-Sim in SASS mode precisely so that *compiler register
allocation and bank mappings are reflected in simulation*.  Our traces use
synthetic register ids; this module models the part of the compiler that
matters to the paper — bank-conflict-aware register renaming — so that the
baseline already contains a competent compiler, and RBA's gains come from
*dynamic inter-warp* conflicts the compiler cannot see.

:class:`ConflictAwareAllocator` renames the registers of a warp trace to
minimize *intra-instruction* same-bank operand pairs under a given bank
mapping, using a greedy graph-colouring pass over the operand co-occurrence
graph.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

from ..isa import Instruction
from ..trace import WarpTrace
from .bank_mapping import BankMapper, get_mapping


class ConflictAwareAllocator:
    """Greedy bank-conflict-aware register renamer.

    Builds a co-occurrence graph over architectural registers (an edge for
    every pair of source operands appearing in the same instruction,
    weighted by frequency), then greedily assigns new register ids —
    highest-degree first — preferring ids whose bank differs from already-
    placed neighbours.
    """

    def __init__(self, num_banks: int, mapping: str | BankMapper = "mod") -> None:
        if num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        self.num_banks = num_banks
        self.mapper: BankMapper = (
            get_mapping(mapping) if isinstance(mapping, str) else mapping
        )

    # -- public API ---------------------------------------------------------

    def allocate(self, trace: WarpTrace, warp_id: int = 0) -> WarpTrace:
        """Return a renamed copy of ``trace`` with reduced operand conflicts.

        Greedy colouring can occasionally *increase* the conflict count on
        adversarial co-occurrence graphs; like a real compiler pass, the
        allocator keeps the original assignment when its heuristic did not
        find an improvement, so the result is never worse than the input.
        """
        rename = self.build_renaming(trace, warp_id)
        if not rename:
            return trace
        insts = [self._rename_inst(inst, rename) for inst in trace.instructions]
        renamed = WarpTrace(insts)
        if self.conflict_cost(renamed, warp_id) >= self.conflict_cost(trace, warp_id):
            return trace
        return renamed

    def build_renaming(self, trace: WarpTrace, warp_id: int = 0) -> Dict[int, int]:
        """Compute the register renaming map for ``trace``."""
        weights = self._cooccurrence(trace)
        regs = self._registers(trace)
        if not regs:
            return {}
        # Highest total conflict weight first: place the hardest registers
        # while the bank space is still open.
        degree = defaultdict(int)
        for (a, b), w in weights.items():
            degree[a] += w
            degree[b] += w
        order = sorted(regs, key=lambda r: (-degree[r], r))

        rename: Dict[int, int] = {}
        used_ids: set[int] = set()
        for reg in order:
            new_id = self._pick_id(reg, rename, used_ids, weights, warp_id)
            rename[reg] = new_id
            used_ids.add(new_id)
        return rename

    def conflict_cost(self, trace: WarpTrace, warp_id: int = 0) -> int:
        """Number of same-bank source-operand pairs across the trace.

        The metric the allocator minimizes; exposed for tests and analysis.
        """
        cost = 0
        for inst in trace.instructions:
            banks = [self.mapper(r, warp_id, self.num_banks) for r in inst.src_regs]
            for i in range(len(banks)):
                for j in range(i + 1, len(banks)):
                    if banks[i] == banks[j]:
                        cost += 1
        return cost

    # -- internals ----------------------------------------------------------

    def _registers(self, trace: WarpTrace) -> List[int]:
        seen: set[int] = set()
        for inst in trace.instructions:
            seen.update(inst.registers())
        # int is totally ordered; the explicit key documents that the
        # result never depends on set hash order.
        return sorted(seen, key=int)

    def _cooccurrence(self, trace: WarpTrace) -> Dict[Tuple[int, int], int]:
        weights: Dict[Tuple[int, int], int] = defaultdict(int)
        for inst in trace.instructions:
            srcs = inst.src_regs
            for i in range(len(srcs)):
                for j in range(i + 1, len(srcs)):
                    a, b = sorted((srcs[i], srcs[j]))
                    if a != b:
                        weights[(a, b)] += 1
        return weights

    def _pick_id(
        self,
        reg: int,
        rename: Dict[int, int],
        used_ids: set[int],
        weights: Dict[Tuple[int, int], int],
        warp_id: int,
    ) -> int:
        # Weighted count of already-placed neighbours per bank.
        bank_pressure = [0] * self.num_banks
        for (a, b), w in weights.items():
            other = None
            if a == reg and b in rename:
                other = rename[b]
            elif b == reg and a in rename:
                other = rename[a]
            if other is not None:
                bank_pressure[self.mapper(other, warp_id, self.num_banks)] += w
        # Scan free ids in ascending order; take the first whose bank has the
        # minimum neighbour pressure (keeps ids compact, a real allocator goal).
        best_pressure = min(bank_pressure)
        candidate = 0
        while True:
            if candidate not in used_ids:
                bank = self.mapper(candidate, warp_id, self.num_banks)
                if bank_pressure[bank] == best_pressure:
                    return candidate
            candidate += 1
            if candidate > len(rename) + self.num_banks + reg + 1:
                # No id in a min-pressure bank is free within a compact
                # window; fall back to the lowest free id.
                candidate = 0
                while candidate in used_ids:
                    candidate += 1
                return candidate

    def _rename_inst(self, inst: Instruction, rename: Dict[int, int]) -> Instruction:
        return Instruction(
            opcode=inst.opcode,
            dst_reg=None if inst.dst_reg is None else rename[inst.dst_reg],
            src_regs=tuple(rename[r] for r in inst.src_regs),
            mem=inst.mem,
        )
