"""Compiler model: register→bank mapping and conflict-aware renaming."""

from .allocator import ConflictAwareAllocator
from .bank_mapping import (
    MAPPINGS,
    BankMapper,
    get_mapping,
    mod_mapping,
    scrambled_mapping,
    warp_swizzle_mapping,
)

__all__ = [
    "ConflictAwareAllocator",
    "MAPPINGS",
    "BankMapper",
    "get_mapping",
    "mod_mapping",
    "scrambled_mapping",
    "warp_swizzle_mapping",
]
