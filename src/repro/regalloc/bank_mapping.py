"""Register→bank mapping policies.

Bank conflicts depend on how architectural registers map onto the physical
register-file banks of a sub-core.  On Volta the mapping is a simple modulo
of the register id over the (two) banks, with the compiler swizzling
register ids to spread each instruction's operands (Jia et al. 2018).  The
simulator models the mapping as a pluggable policy:

``mod``
    ``bank = reg % num_banks`` — the raw hardware mapping.
``warp_swizzle``
    ``bank = (reg + warp_id) % num_banks`` — the raw mapping plus a per-warp
    rotation, decorrelating the bank pressure of different warps the way
    physical register renaming spreads warps across banks in silicon.  This
    is the default policy.
``scrambled``
    A multiplicative hash of ``(reg, warp_id)`` — an idealized conflict-
    randomizing mapping used in sensitivity tests.
"""

from __future__ import annotations

from typing import Callable, Dict

BankMapper = Callable[[int, int, int], int]
"""(register_id, warp_id, num_banks) -> bank index."""


def mod_mapping(reg: int, warp_id: int, num_banks: int) -> int:
    return reg % num_banks


def warp_swizzle_mapping(reg: int, warp_id: int, num_banks: int) -> int:
    return (reg + warp_id) % num_banks


def scrambled_mapping(reg: int, warp_id: int, num_banks: int) -> int:
    # Knuth multiplicative hash over the combined id; num_banks is small so
    # taking the low bits after mixing is adequate.
    x = (reg * 2654435761 + warp_id * 40503) & 0xFFFFFFFF
    return (x >> 8) % num_banks


MAPPINGS: Dict[str, BankMapper] = {
    "mod": mod_mapping,
    "warp_swizzle": warp_swizzle_mapping,
    "scrambled": scrambled_mapping,
}


def get_mapping(name: str) -> BankMapper:
    """Look up a mapping policy by name, raising ``KeyError`` with options."""
    try:
        return MAPPINGS[name]
    except KeyError:
        raise KeyError(
            f"unknown bank mapping {name!r}; options: {sorted(MAPPINGS)}"
        ) from None
